//! The Arctic packet: format, routing fields, and wire accounting.
//!
//! Figure 1(b) of the paper gives the StarT-X message format carried by
//! Arctic: two 32-bit header words — a route word (priority, 16-bit
//! down-route, up-route / random-uproute) and a tag word (11-bit user tag,
//! 5-bit size) — followed by a payload of 2 to 22 32-bit words.

use crate::crc::crc16_words;
use crate::path::PathTrace;

/// Minimum payload size in 32-bit words.
pub const MIN_PAYLOAD_WORDS: usize = 2;
/// Maximum payload size in 32-bit words.
pub const MAX_PAYLOAD_WORDS: usize = 22;
/// Header size in 32-bit words.
pub const HEADER_WORDS: usize = 2;

/// Arctic recognises two message priorities; a high-priority message cannot
/// be blocked by low-priority messages (§2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum Priority {
    Low,
    High,
}

/// How the sender fills the up-route bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpRoute {
    /// Deterministic ascent selected by the source address bits
    /// (`port at level l = (src >> l) & 1`). Every source ascends through
    /// edge-disjoint up-links, which makes the full fat-tree non-blocking
    /// for permutation traffic, and the fixed path per (src, dst) pair
    /// preserves Arctic's FIFO guarantee for messages "sent between two
    /// nodes along the same path". This is the mode the GCM communication
    /// library uses.
    SourceSpread,
    /// The header's "random uproute" feature: each packet picks uniformly
    /// random up-ports for load balancing (no ordering guarantee between
    /// packets of the same pair).
    Random,
}

/// A packet in flight through the fabric.
#[derive(Clone, Debug)]
pub struct Packet {
    pub priority: Priority,
    pub src: u16,
    pub dst: u16,
    /// Up-route selection bits: bit `l` selects the up-port used when
    /// ascending from level `l`. Filled by the injecting endpoint.
    pub uproute_bits: u16,
    /// 11-bit user tag (protocol-level discriminator).
    pub usr_tag: u16,
    /// Payload words (2..=22).
    pub payload: Vec<u32>,
    /// Up-hops remaining before the packet turns around and descends.
    /// Routing scratch state maintained by the fabric (not covered by the
    /// CRC; it is derived from `src`/`dst` at injection).
    pub up_remaining: u8,
    /// CRC computed at injection; re-verified at each stage.
    pub crc: u16,
    /// Set if any stage detected a CRC mismatch: the endpoint's 1-bit
    /// status. Software treats this as a catastrophic network failure.
    pub corrupted: bool,
    /// Optional path trace (observer state; see [`crate::path`]). Like
    /// the up-route scratch bits it is excluded from the CRC — it is not
    /// wire content. `None` unless built with [`Packet::with_trace`].
    pub trace: Option<Box<PathTrace>>,
}

impl Packet {
    /// Build a packet, padding the payload to the 2-word minimum. Panics if
    /// the payload exceeds 22 words — larger transfers must be segmented by
    /// the NIU.
    pub fn new(
        src: u16,
        dst: u16,
        priority: Priority,
        usr_tag: u16,
        mut payload: Vec<u32>,
    ) -> Self {
        assert!(
            payload.len() <= MAX_PAYLOAD_WORDS,
            "payload of {} words exceeds Arctic maximum of {MAX_PAYLOAD_WORDS}",
            payload.len()
        );
        while payload.len() < MIN_PAYLOAD_WORDS {
            payload.push(0);
        }
        let mut pkt = Packet {
            priority,
            src,
            dst,
            uproute_bits: 0,
            usr_tag: usr_tag & 0x7FF,
            payload,
            up_remaining: 0,
            crc: 0,
            corrupted: false,
            trace: None,
        };
        pkt.crc = pkt.compute_crc();
        pkt
    }

    /// Enable path tracing on this packet (see [`crate::path`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Box::default());
        self
    }

    /// The two header words of the wire format.
    pub fn header_words(&self) -> [u32; 2] {
        let route = ((self.priority == Priority::High) as u32) << 31
            | (self.dst as u32) << 14
            | (self.uproute_bits as u32 & 0x3FFF);
        let tag = (self.usr_tag as u32) << 5 | (self.payload.len() as u32 & 0x1F);
        [route, tag]
    }

    /// CRC over header and payload. Note the CRC intentionally excludes the
    /// up-route bits (they are rewritten per-path when the random-uproute
    /// feature is used): we mask them out of the route word.
    pub fn compute_crc(&self) -> u16 {
        let [route, tag] = self.header_words();
        let mut words = Vec::with_capacity(HEADER_WORDS + self.payload.len());
        words.push(route & !0x3FFF);
        words.push(tag);
        words.extend_from_slice(&self.payload);
        crc16_words(&words)
    }

    /// Verify the CRC; marks (and reports) corruption.
    pub fn verify(&mut self) -> bool {
        if self.compute_crc() != self.crc {
            self.corrupted = true;
        }
        !self.corrupted
    }

    /// Bytes this packet occupies on a link: header + payload words.
    pub fn wire_bytes(&self) -> u64 {
        ((HEADER_WORDS + self.payload.len()) * 4) as u64
    }

    /// Payload bytes (the quantity user-visible bandwidth counts).
    pub fn payload_bytes(&self) -> u64 {
        (self.payload.len() * 4) as u64
    }
}

/// Pack an 8-byte value into the 2-word minimum payload.
pub fn words_from_u64(v: u64) -> Vec<u32> {
    vec![(v >> 32) as u32, v as u32]
}

/// Reassemble an 8-byte value from the first two payload words.
pub fn u64_from_words(words: &[u32]) -> u64 {
    ((words[0] as u64) << 32) | words[1] as u64
}

/// Pack an `f64` (e.g. a global-sum operand) into payload words.
pub fn words_from_f64(v: f64) -> Vec<u32> {
    words_from_u64(v.to_bits())
}

/// Reassemble an `f64` from the first two payload words.
pub fn f64_from_words(words: &[u32]) -> f64 {
    f64::from_bits(u64_from_words(words))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_padded_to_minimum() {
        let p = Packet::new(0, 1, Priority::High, 3, vec![]);
        assert_eq!(p.payload.len(), MIN_PAYLOAD_WORDS);
        assert_eq!(p.wire_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds Arctic maximum")]
    fn oversized_payload_rejected() {
        Packet::new(0, 1, Priority::Low, 0, vec![0; 23]);
    }

    #[test]
    fn max_packet_is_96_bytes() {
        let p = Packet::new(0, 1, Priority::Low, 0, vec![7; 22]);
        assert_eq!(p.wire_bytes(), 96);
        assert_eq!(p.payload_bytes(), 88);
    }

    #[test]
    fn crc_roundtrip_and_corruption() {
        let mut p = Packet::new(3, 9, Priority::High, 0x7FF, vec![1, 2, 3]);
        assert!(p.verify());
        p.payload[1] ^= 0x8000;
        assert!(!p.verify());
        assert!(p.corrupted);
    }

    #[test]
    fn crc_ignores_uproute_bits() {
        let mut p = Packet::new(3, 9, Priority::High, 5, vec![1, 2]);
        p.uproute_bits = 0x2AAA;
        assert!(p.verify(), "random uproute must not invalidate the CRC");
    }

    #[test]
    fn header_word_encoding() {
        let mut p = Packet::new(2, 0x1234, Priority::High, 0x155, vec![0; 4]);
        p.uproute_bits = 0x5;
        let [route, tag] = p.header_words();
        assert_eq!(route >> 31, 1);
        assert_eq!((route >> 14) & 0xFFFF, 0x1234);
        assert_eq!(route & 0x3FFF, 0x5);
        assert_eq!(tag >> 5, 0x155);
        assert_eq!(tag & 0x1F, 4);
    }

    #[test]
    fn value_packing_roundtrips() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(u64_from_words(&words_from_u64(v)), v);
        }
        for f in [0.0f64, -1.5, std::f64::consts::PI, f64::MAX] {
            assert_eq!(f64_from_words(&words_from_f64(f)), f);
        }
    }

    #[test]
    fn trace_is_observer_state_outside_the_crc() {
        let plain = Packet::new(3, 9, Priority::High, 5, vec![1, 2]);
        let mut traced = Packet::new(3, 9, Priority::High, 5, vec![1, 2]).with_trace();
        assert_eq!(plain.crc, traced.crc);
        assert!(
            traced.verify(),
            "enabling a trace must not corrupt the packet"
        );
        assert!(traced.trace.is_some());
        assert!(plain.trace.is_none());
    }

    #[test]
    fn tag_is_masked_to_11_bits() {
        let p = Packet::new(0, 1, Priority::Low, 0xFFFF, vec![0; 2]);
        assert_eq!(p.usr_tag, 0x7FF);
    }
}

//! The Arctic router model.
//!
//! Each router is a 4×4 crossbar (2 down-ports, 2 up-ports) with:
//!
//! * a **fall-through latency** of 0.15 µs applied to the packet head at
//!   each stage (§2.2),
//! * **150 MByte/s** output links with cut-through forwarding — the head is
//!   forwarded as soon as the output link is granted, while the link stays
//!   occupied for the packet's serialization time (so serialization is paid
//!   once end-to-end, not per stage),
//! * **two priorities** per output port: a queued high-priority packet is
//!   always granted the link before any queued low-priority packet (a
//!   high-priority message "cannot be blocked by low-priority messages"),
//!   though an in-flight packet is never preempted mid-transmission,
//! * **CRC verification** at every stage: a mismatch sets the packet's
//!   corruption bit, which the endpoint surfaces as the 1-bit status word.
//!
//! FIFO order within a priority class at each port follows arrival order, so
//! two packets following the same path are delivered in injection order —
//! Arctic's per-path FIFO guarantee.

use crate::packet::{Packet, Priority};
use crate::path::HopRecord;
use crate::topology::{FatTree, RouterAddr};
use hyades_des::event::Payload;
use hyades_des::{Actor, ActorId, Ctx, SimDuration, SimTime};
use hyades_telemetry as telemetry;
use hyades_telemetry::flight;
use hyades_telemetry::sampler::{self, SampleTick};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Number of ports on an Arctic router (2 down + 2 up).
pub const PORTS: usize = 4;

/// Port index helpers: ports 0,1 are down-ports, 2,3 are up-ports.
pub fn down_port_index(b: u8) -> usize {
    b as usize
}
pub fn up_port_index(p: u8) -> usize {
    2 + p as usize
}

/// Events understood by a router.
pub enum RouterEv {
    /// A packet head arriving on an input.
    Arrive(Packet),
    /// The output link for `port` may have become free.
    TryTx { port: usize },
}

/// Where an output port leads.
#[derive(Clone, Copy, Debug)]
pub enum PortTarget {
    /// Another router stage.
    Router(ActorId),
    /// The final hop: deliver to an endpoint actor. The delivery event is
    /// scheduled at the packet *tail* (head + serialization), which is what
    /// the NIU's receive logic observes.
    Endpoint(ActorId),
    /// Unwired (up-ports at the top level).
    None,
}

struct OutputPort {
    target: PortTarget,
    free_at: SimTime,
    /// Queued packets with the time their head became eligible for the
    /// link (arrival + fall-through): the baseline for stall accounting.
    high: VecDeque<(SimTime, Packet)>,
    low: VecDeque<(SimTime, Packet)>,
    /// Traffic accounting for tests and diagnostics.
    packets: u64,
    bytes: u64,
    max_queue: usize,
    /// Link-busy time accumulated over the run (serialization charged at
    /// grant), and the value last reported to the sampler.
    busy_ps: u64,
    sampled_busy_ps: u64,
    /// Flow-control stall accounting: time packet heads spent waiting
    /// for this output link *beyond* the fall-through, i.e. blocked by
    /// link occupancy — the wormhole analogue of credit stalls.
    stall_ps: u64,
    sampled_stall_ps: u64,
    stalls: u64,
    /// Per-flow grant counts, kept only while the sampler observatory is
    /// installed (it costs a map insert per packet).
    flows: BTreeMap<(u16, u16), u64>,
}

impl OutputPort {
    fn new(target: PortTarget) -> Self {
        OutputPort {
            target,
            free_at: SimTime::ZERO,
            high: VecDeque::new(),
            low: VecDeque::new(),
            packets: 0,
            bytes: 0,
            max_queue: 0,
            busy_ps: 0,
            sampled_busy_ps: 0,
            stall_ps: 0,
            sampled_stall_ps: 0,
            stalls: 0,
            flows: BTreeMap::new(),
        }
    }

    fn queued(&self) -> usize {
        self.high.len() + self.low.len()
    }
}

/// Timing parameters shared by all routers of a fabric.
#[derive(Clone, Copy, Debug)]
pub struct RouterTiming {
    pub fall_through: SimDuration,
    pub link_mbyte_per_sec: f64,
    pub wire_latency: SimDuration,
}

impl Default for RouterTiming {
    fn default() -> Self {
        RouterTiming {
            fall_through: SimDuration::from_us_f64(0.15),
            link_mbyte_per_sec: 150.0,
            wire_latency: SimDuration::from_ns(10),
        }
    }
}

/// One simulated Arctic router.
pub struct RouterActor {
    addr: RouterAddr,
    tree: Arc<FatTree>,
    timing: RouterTiming,
    ports: Vec<OutputPort>,
    /// Stage-level CRC failures observed (packets are still forwarded with
    /// their corruption bit set).
    pub crc_failures: u64,
    /// Total packets routed through this stage.
    pub packets_routed: u64,
}

impl RouterActor {
    pub fn new(addr: RouterAddr, tree: Arc<FatTree>, timing: RouterTiming) -> Self {
        RouterActor {
            addr,
            tree,
            timing,
            ports: (0..PORTS)
                .map(|_| OutputPort::new(PortTarget::None))
                .collect(),
            crc_failures: 0,
            packets_routed: 0,
        }
    }

    pub fn addr(&self) -> RouterAddr {
        self.addr
    }

    /// Wire an output port (done by the network builder).
    pub fn wire_port(&mut self, port: usize, target: PortTarget) {
        self.ports[port].target = target;
    }

    /// Traffic counters per port: (packets, bytes, max queue depth).
    pub fn port_stats(&self, port: usize) -> (u64, u64, usize) {
        let p = &self.ports[port];
        (p.packets, p.bytes, p.max_queue)
    }

    /// Is this output port wired to anything?
    pub fn port_is_wired(&self, port: usize) -> bool {
        !matches!(self.ports[port].target, PortTarget::None)
    }

    /// Stall counters per port: (stall events, total stall picoseconds).
    pub fn port_stalls(&self, port: usize) -> (u64, u64) {
        let p = &self.ports[port];
        (p.stalls, p.stall_ps)
    }

    /// Total link-busy picoseconds per port.
    pub fn port_busy_ps(&self, port: usize) -> u64 {
        self.ports[port].busy_ps
    }

    /// Per-flow grant counts for a port, in (src, dst) order. Populated
    /// only while the sampler observatory is installed.
    pub fn port_flows(&self, port: usize) -> Vec<((u16, u16), u64)> {
        self.ports[port]
            .flows
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// The sampler entity label for one of this router's output links.
    pub fn link_entity(addr: RouterAddr, port: usize) -> String {
        format!("l{}.w{}.p{}", addr.level, addr.word, port)
    }

    fn route(&self, pkt: &Packet) -> usize {
        if pkt.up_remaining > 0 {
            let p = ((pkt.uproute_bits >> self.addr.level) & 1) as u8;
            up_port_index(p)
        } else {
            let b = self.tree.down_port(self.addr.level, pkt.dst);
            down_port_index(b)
        }
    }

    fn enqueue(&mut self, mut pkt: Packet, ctx: &mut Ctx<'_>) {
        // Per-stage CRC verification.
        if !pkt.verify() {
            self.crc_failures += 1;
            flight::record(
                ctx.now(),
                ctx.self_id(),
                "router.crc_fail",
                pkt.usr_tag as u64,
            );
            telemetry::count("arctic.router", "crc_failures", 1);
        }
        self.packets_routed += 1;
        telemetry::count("arctic.router", "stage_crossings", 1);
        flight::record(
            ctx.now(),
            ctx.self_id(),
            "router.enqueue",
            pkt.usr_tag as u64,
        );
        let port = self.route(&pkt);
        if pkt.up_remaining > 0 {
            pkt.up_remaining -= 1;
        }
        if let Some(tr) = pkt.trace.as_deref_mut() {
            tr.hops.push(HopRecord {
                router: self.addr,
                port: port as u8,
                priority: pkt.priority,
                enq: ctx.now(),
                deq: SimTime::ZERO,
            });
        }
        // The head has now fallen through the crossbar; the link grant can
        // happen no earlier than `fall_through` from arrival.
        let ready = ctx.now() + self.timing.fall_through;
        let q = &mut self.ports[port];
        match pkt.priority {
            Priority::High => q.high.push_back((ready, pkt)),
            Priority::Low => q.low.push_back((ready, pkt)),
        }
        q.max_queue = q.max_queue.max(q.queued());
        let at = ready.max(q.free_at);
        ctx.send_after(at - ctx.now(), ctx.self_id(), RouterEv::TryTx { port });
    }

    fn try_tx(&mut self, port: usize, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let q = &mut self.ports[port];
        if now < q.free_at || q.queued() == 0 {
            return;
        }
        // High priority is never blocked behind queued low priority.
        let (ready, mut pkt) = match q.high.pop_front() {
            Some(p) => p,
            None => match q.low.pop_front() {
                Some(p) => p,
                None => return,
            },
        };
        // Time the head waited for the link beyond its fall-through —
        // the flow-control stall this grant resolves.
        let waited = now.as_ps().saturating_sub(ready.as_ps());
        if waited > 0 {
            q.stalls += 1;
            q.stall_ps += waited;
        }
        let ser = SimDuration::for_bytes_at(pkt.wire_bytes(), self.timing.link_mbyte_per_sec);
        q.free_at = now + ser;
        q.packets += 1;
        q.bytes += pkt.wire_bytes();
        q.busy_ps += ser.as_ps();
        if sampler::installed() {
            *q.flows.entry((pkt.src, pkt.dst)).or_insert(0) += 1;
        }
        if let Some(tr) = pkt.trace.as_deref_mut() {
            if let Some(h) = tr.hops.last_mut() {
                h.deq = now;
            }
        }
        telemetry::record_span(ctx.self_id().0 as u64, "arctic", "router.tx", now, ser);
        telemetry::observe_hist("arctic.router", "tx_queue_depth", q.queued() as u64);
        flight::record(now, ctx.self_id(), "router.tx", pkt.usr_tag as u64);
        match q.target {
            PortTarget::Router(next) => {
                // Cut-through: the head reaches the next stage after the
                // wire latency; the body streams behind it.
                ctx.send_after(self.timing.wire_latency, next, RouterEv::Arrive(pkt));
            }
            PortTarget::Endpoint(ep) => {
                // Delivery completes at the packet tail.
                ctx.send_after(
                    self.timing.wire_latency + ser,
                    ep,
                    crate::network::Delivered { pkt },
                );
            }
            PortTarget::None => panic!(
                "router {:?} routed a packet out of an unwired port {port}",
                self.addr
            ),
        }
        // If more packets are queued, re-arm when the link frees.
        if self.ports[port].queued() > 0 {
            let free = self.ports[port].free_at;
            ctx.send_after(free - now, ctx.self_id(), RouterEv::TryTx { port });
        }
    }

    /// Answer a [`SampleTick`]: report each wired output link's state to
    /// the thread-local sampler. `busy_us` / `stall_us` are deltas since
    /// the previous tick (serialization is charged at grant time, so a
    /// packet spanning a tick boundary is attributed to the window that
    /// granted it).
    fn sample(&mut self, ctx: &mut Ctx<'_>) {
        if !sampler::installed() {
            return;
        }
        let now = ctx.now();
        let addr = self.addr;
        for (i, q) in self.ports.iter_mut().enumerate() {
            if matches!(q.target, PortTarget::None) {
                continue;
            }
            let entity = RouterActor::link_entity(addr, i);
            sampler::record("arctic.link", &entity, "occ_high", now, q.high.len() as f64);
            sampler::record("arctic.link", &entity, "occ_low", now, q.low.len() as f64);
            sampler::record("arctic.link", &entity, "occ", now, q.queued() as f64);
            let busy = q.busy_ps - q.sampled_busy_ps;
            q.sampled_busy_ps = q.busy_ps;
            sampler::record("arctic.link", &entity, "busy_us", now, busy as f64 / 1e6);
            let stall = q.stall_ps - q.sampled_stall_ps;
            q.sampled_stall_ps = q.stall_ps;
            sampler::record("arctic.link", &entity, "stall_us", now, stall as f64 / 1e6);
        }
    }
}

impl Actor for RouterActor {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        match ev.downcast::<RouterEv>() {
            Ok(ev) => match *ev {
                RouterEv::Arrive(pkt) => self.enqueue(pkt, ctx),
                RouterEv::TryTx { port } => self.try_tx(port, ctx),
            },
            Err(other) => match other.downcast::<SampleTick>() {
                Ok(_) => self.sample(ctx),
                Err(other) => panic!("router received unexpected event: {other:?}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_index_layout() {
        assert_eq!(down_port_index(0), 0);
        assert_eq!(down_port_index(1), 1);
        assert_eq!(up_port_index(0), 2);
        assert_eq!(up_port_index(1), 3);
    }

    #[test]
    fn routing_direction_selection() {
        let tree = Arc::new(FatTree::new(16));
        let r = RouterActor::new(
            RouterAddr { level: 1, word: 0 },
            tree,
            RouterTiming::default(),
        );
        // Ascending packet follows its uproute bit for level 1.
        let mut pkt = Packet::new(0, 15, Priority::Low, 0, vec![0; 2]);
        pkt.up_remaining = 2;
        pkt.uproute_bits = 0b10; // bit 1 set -> up-port 1
        assert_eq!(r.route(&pkt), up_port_index(1));
        // Descending packet follows the destination bit for level 1.
        pkt.up_remaining = 0;
        assert_eq!(r.route(&pkt), down_port_index(((15 >> 1) & 1) as u8));
    }
}

//! Per-packet path tracing: explaining a latency hop by hop.
//!
//! A packet built with [`Packet::with_trace`](crate::packet::Packet::with_trace)
//! carries an optional [`PathTrace`]. The injection port stamps the time
//! the packet won the NIU link; every router stage appends a [`HopRecord`]
//! when the packet enters an output queue and fills in the dequeue time
//! when the packet is granted the link. At delivery the trace reads as a
//! complete itinerary — which routers, which ports, and where the time
//! went (fall-through vs. queueing) — so any latency outlier can be
//! decomposed without re-running the simulation.
//!
//! Tracing is strictly opt-in: an untraced packet carries `None` (one
//! pointer-sized field), and the fabric's hot path only touches the trace
//! behind an `Option` check. The trace is deliberately *excluded* from
//! the CRC: like the up-route scratch bits, it is observer state, not
//! wire content.

use crate::packet::Priority;
use crate::topology::RouterAddr;
use hyades_des::SimTime;
use std::fmt::Write as _;

/// One router stage in a packet's journey.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// The router visited.
    pub router: RouterAddr,
    /// Output port index granted (0,1 down; 2,3 up).
    pub port: u8,
    /// Priority class the packet queued in at this stage.
    pub priority: Priority,
    /// When the packet entered the output queue (head arrival).
    pub enq: SimTime,
    /// When the packet was granted the output link.
    pub deq: SimTime,
}

impl HopRecord {
    /// Time spent queued at this stage (granted minus arrived).
    pub fn wait(&self) -> u64 {
        self.deq.as_ps().saturating_sub(self.enq.as_ps())
    }
}

/// The accumulated itinerary of one traced packet.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathTrace {
    /// When the injection port granted the packet the NIU link.
    pub injected_at: SimTime,
    /// Router stages in traversal order.
    pub hops: Vec<HopRecord>,
}

impl PathTrace {
    /// The route as `(router, output port)` pairs — comparable against
    /// [`FatTree::route_path`](crate::topology::FatTree::route_path).
    pub fn route(&self) -> Vec<(RouterAddr, u8)> {
        self.hops.iter().map(|h| (h.router, h.port)).collect()
    }

    /// Total time spent queued across all stages, in picoseconds.
    pub fn total_wait_ps(&self) -> u64 {
        self.hops.iter().map(HopRecord::wait).sum()
    }

    /// Human-readable itinerary for diagnostics and failure dumps.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "injected at {:.3} us", self.injected_at.as_us_f64());
        for h in &self.hops {
            let _ = writeln!(
                out,
                "  l{}.w{} -> port {} ({}): enq {:.3} us, deq {:.3} us, wait {:.3} us",
                h.router.level,
                h.router.word,
                h.port,
                match h.priority {
                    Priority::High => "high",
                    Priority::Low => "low",
                },
                h.enq.as_us_f64(),
                h.deq.as_us_f64(),
                h.wait() as f64 / 1e6,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_saturates_and_sums() {
        let hop = |enq_us: f64, deq_us: f64| HopRecord {
            router: RouterAddr { level: 0, word: 0 },
            port: 2,
            priority: Priority::Low,
            enq: SimTime::from_us_f64(enq_us),
            deq: SimTime::from_us_f64(deq_us),
        };
        let tr = PathTrace {
            injected_at: SimTime::ZERO,
            hops: vec![hop(1.0, 1.5), hop(2.0, 2.0)],
        };
        assert_eq!(tr.total_wait_ps(), 500_000);
        assert_eq!(tr.route().len(), 2);
        let d = tr.describe();
        assert!(d.contains("l0.w0 -> port 2"));
        assert!(d.contains("wait 0.500 us"));
    }
}

//! Synthetic traffic workloads: characterizing the fabric under load.
//!
//! The paper's claims about Arctic — full bisection bandwidth, multiple
//! simultaneous transfers with undiminished pair-wise bandwidth, path
//! diversity through the random up-route — are exercised here with the
//! standard network-evaluation patterns: nearest-neighbour, permutations
//! (transpose, bit-reverse), uniform random, and hotspot traffic, at a
//! configurable offered load.

use crate::network::{ArcticConfig, ArcticNetwork, Delivered, Inject};
use crate::observatory::{FabricReport, Observatory, ObservatoryConfig};
use crate::packet::{u64_from_words, words_from_u64, Packet, Priority, UpRoute};
use hyades_des::event::Payload;
use hyades_des::rng::SplitMix64;
use hyades_des::stats::OnlineStats;
use hyades_des::{Actor, ActorId, Ctx, SimDuration, SimTime, Simulator};

/// Traffic pattern: who sends to whom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Every node sends to a ring neighbour (the GCM-like case).
    NearestNeighbor,
    /// Node `i` sends to `bit_reverse(i)` — a fixed permutation.
    BitReverse,
    /// Node `i` of `n` sends to `(i + n/2) mod n` — maximal-distance
    /// permutation crossing the bisection.
    Transpose,
    /// Every node picks a uniformly random destination per packet.
    UniformRandom,
    /// Every node hammers endpoint 0.
    Hotspot,
}

impl Pattern {
    fn dst(&self, src: u16, n: u16, rng: &mut SplitMix64) -> u16 {
        match self {
            Pattern::NearestNeighbor => (src + 1) % n,
            Pattern::BitReverse => {
                let bits = n.trailing_zeros();
                let mut d = 0u16;
                for b in 0..bits {
                    if src & (1 << b) != 0 {
                        d |= 1 << (bits - 1 - b);
                    }
                }
                d
            }
            Pattern::Transpose => (src + n / 2) % n,
            Pattern::UniformRandom => {
                let mut d = rng.next_below(n as u64) as u16;
                if d == src {
                    d = (d + 1) % n;
                }
                d
            }
            Pattern::Hotspot => {
                if src == 0 {
                    1
                } else {
                    0
                }
            }
        }
    }
}

/// Measured behaviour under one workload.
#[derive(Clone, Debug)]
pub struct TrafficResult {
    pub pattern: Pattern,
    pub offered_fraction: f64,
    /// Aggregate delivered payload bandwidth (MByte/s) during the
    /// measurement window.
    pub delivered_mbyte_per_sec: f64,
    /// Per-packet network latency statistics (µs), measurement window
    /// only.
    pub latency: OnlineStats,
    pub packets_delivered: u64,
}

/// Source actor injecting fixed-size packets at the offered rate.
struct Source {
    me: u16,
    n: u16,
    tx_port: ActorId,
    pattern: Pattern,
    rng: SplitMix64,
    gap: SimDuration,
    stop_at: SimTime,
}

struct Fire;

impl Actor for Source {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        let Ok(_) = ev.downcast::<Fire>() else {
            panic!("source expects Fire events");
        };
        if ctx.now() >= self.stop_at {
            return;
        }
        let dst = self.pattern.dst(self.me, self.n, &mut self.rng);
        // Stamp the injection time into the payload for latency
        // accounting; pad to the full 88-byte payload.
        let mut payload = words_from_u64(ctx.now().as_ps());
        payload.resize(22, 0);
        let pkt = Packet::new(self.me, dst, Priority::Low, 1, payload);
        ctx.send_now(self.tx_port, Inject(pkt));
        // Deterministic jitter (±25%) around the nominal gap keeps
        // sources from phase-locking.
        let jitter = (self.rng.next_f64() - 0.5) * 0.5;
        let next = SimDuration::from_us_f64(self.gap.as_us_f64() * (1.0 + jitter));
        ctx.wake_after(next, Fire);
    }
}

/// Sink recording delivery latency during the measurement window.
struct Sink {
    warmup_until: SimTime,
    window_end: SimTime,
    latency: OnlineStats,
    payload_bytes: u64,
    packets: u64,
}

impl Actor for Sink {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        let Ok(d) = ev.downcast::<Delivered>() else {
            panic!("sink expects Delivered events");
        };
        assert!(!d.pkt.corrupted);
        if ctx.now() < self.warmup_until || ctx.now() >= self.window_end {
            // Outside the measurement window (including the backlog that
            // drains after injection stops).
            return;
        }
        let injected = SimTime::from_ps(u64_from_words(&d.pkt.payload));
        self.latency.push(ctx.now().since(injected).as_us_f64());
        self.payload_bytes += d.pkt.payload_bytes();
        self.packets += 1;
    }
}

/// Run `pattern` at `offered_fraction` of the per-endpoint link payload
/// capacity for `measure_us` (after an equal warmup), on `n` endpoints.
pub fn run_traffic(
    n: u16,
    pattern: Pattern,
    uproute: UpRoute,
    offered_fraction: f64,
    measure_us: f64,
    seed: u64,
) -> TrafficResult {
    run_traffic_impl(
        n,
        pattern,
        uproute,
        offered_fraction,
        measure_us,
        seed,
        None,
    )
    .0
}

/// [`run_traffic`] with the fabric observatory attached: samples every
/// link at `obs.interval` and returns the [`FabricReport`] alongside the
/// traffic result. Deterministic for a given seed.
pub fn run_traffic_observed(
    n: u16,
    pattern: Pattern,
    uproute: UpRoute,
    offered_fraction: f64,
    measure_us: f64,
    seed: u64,
    obs: ObservatoryConfig,
) -> (TrafficResult, FabricReport) {
    let (result, report) = run_traffic_impl(
        n,
        pattern,
        uproute,
        offered_fraction,
        measure_us,
        seed,
        Some(obs),
    );
    match report {
        Some(r) => (result, r),
        None => unreachable!("observatory config was provided"),
    }
}

fn run_traffic_impl(
    n: u16,
    pattern: Pattern,
    uproute: UpRoute,
    offered_fraction: f64,
    measure_us: f64,
    seed: u64,
    obs: Option<ObservatoryConfig>,
) -> (TrafficResult, Option<FabricReport>) {
    assert!((0.0..=1.0).contains(&offered_fraction));
    let mut sim = Simulator::new();
    let warmup = SimTime::from_us_f64(measure_us);
    let stop = SimTime::from_us_f64(2.0 * measure_us);
    let sinks: Vec<ActorId> = (0..n)
        .map(|_| {
            sim.add_actor(Sink {
                warmup_until: warmup,
                window_end: stop,
                latency: OnlineStats::new(),
                payload_bytes: 0,
                packets: 0,
            })
        })
        .collect();
    let cfg = ArcticConfig {
        uproute,
        ..ArcticConfig::default()
    };
    let net = ArcticNetwork::build(&mut sim, &sinks, cfg);
    let observatory = obs.map(|o| Observatory::attach(&mut sim, &net, o));
    // Per-endpoint payload capacity: 88-byte payload in a 96-byte packet
    // on a 150 MB/s link → 137.5 MB/s of payload; the offered gap follows.
    let payload_rate = 150.0 * 88.0 / 96.0 * offered_fraction;
    let gap = SimDuration::from_us_f64(88.0 / payload_rate);
    let mut seeder = SplitMix64::new(seed);
    for e in 0..n {
        let src = sim.add_actor(Source {
            me: e,
            n,
            tx_port: net.tx_port(e),
            pattern,
            rng: SplitMix64::new(seeder.next_u64()),
            gap,
            stop_at: stop,
        });
        // Stagger the starts within one gap.
        let offset = SimDuration::from_ps(seeder.next_below(gap.as_ps().max(1)));
        sim.schedule(SimTime::ZERO + offset, src, Fire);
    }
    sim.run();

    let mut latency = OnlineStats::new();
    let mut bytes = 0u64;
    let mut packets = 0u64;
    for &id in &sinks {
        let s = sim.actor::<Sink>(id);
        bytes += s.payload_bytes;
        packets += s.packets;
        latency.merge(&s.latency);
    }
    let measure_s = measure_us * 1e-6;
    let result = TrafficResult {
        pattern,
        offered_fraction,
        delivered_mbyte_per_sec: bytes as f64 / measure_s / 1e6,
        latency,
        packets_delivered: packets,
    };
    let report = observatory.map(|o| o.collect(&sim, &net));
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEASURE_US: f64 = 400.0;

    #[test]
    fn nearest_neighbor_delivers_offered_load() {
        let r = run_traffic(
            16,
            Pattern::NearestNeighbor,
            UpRoute::SourceSpread,
            0.7,
            MEASURE_US,
            1,
        );
        // 16 endpoints × 0.7 × 137.5 MB/s ≈ 1540 MB/s aggregate.
        let offered = 16.0 * 0.7 * 137.5;
        assert!(
            r.delivered_mbyte_per_sec > 0.9 * offered,
            "delivered {} of offered {offered}",
            r.delivered_mbyte_per_sec
        );
        // Uncongested latency: a couple of µs.
        assert!(r.latency.mean() < 5.0, "mean latency {}", r.latency.mean());
    }

    #[test]
    fn transpose_permutation_is_nonblocking_with_source_spread() {
        let r = run_traffic(
            16,
            Pattern::Transpose,
            UpRoute::SourceSpread,
            0.8,
            MEASURE_US,
            2,
        );
        let offered = 16.0 * 0.8 * 137.5;
        assert!(
            r.delivered_mbyte_per_sec > 0.9 * offered,
            "delivered {} of offered {offered}",
            r.delivered_mbyte_per_sec
        );
    }

    #[test]
    fn bit_reverse_is_the_deterministic_routing_adversary() {
        // The textbook butterfly worst case: with a fixed up-path per
        // source, bit-reverse traffic funnels through shared links and
        // congests badly…
        let det = run_traffic(
            16,
            Pattern::BitReverse,
            UpRoute::SourceSpread,
            0.8,
            MEASURE_US,
            3,
        );
        let offered = 16.0 * 0.8 * 137.5;
        assert!(
            det.delivered_mbyte_per_sec < 0.75 * offered,
            "expected congestion, delivered {} of {offered}",
            det.delivered_mbyte_per_sec
        );
        assert!(det.latency.mean() > 20.0, "{}", det.latency.mean());
        // …and this is exactly why Arctic's header has the random-uproute
        // feature: randomized path diversity restores full throughput.
        let rnd = run_traffic(16, Pattern::BitReverse, UpRoute::Random, 0.8, MEASURE_US, 3);
        assert!(
            rnd.delivered_mbyte_per_sec > 0.9 * offered,
            "random uproute delivered {}",
            rnd.delivered_mbyte_per_sec
        );
        assert!(rnd.latency.mean() < 10.0, "{}", rnd.latency.mean());
    }

    #[test]
    fn random_routing_keeps_transpose_throughput() {
        let det = run_traffic(
            16,
            Pattern::Transpose,
            UpRoute::SourceSpread,
            0.8,
            MEASURE_US,
            4,
        );
        let rnd = run_traffic(16, Pattern::Transpose, UpRoute::Random, 0.8, MEASURE_US, 4);
        // Transpose is friendly to both: random routing carries the large
        // majority of the deterministic throughput.
        assert!(rnd.delivered_mbyte_per_sec > 0.7 * det.delivered_mbyte_per_sec);
    }

    #[test]
    fn hotspot_saturates_the_victim_link() {
        let r = run_traffic(
            16,
            Pattern::Hotspot,
            UpRoute::SourceSpread,
            0.8,
            MEASURE_US,
            5,
        );
        // 15 sources × 0.8 × 137.5 ≈ 1650 MB/s offered at node 0, but one
        // down-link delivers at most ~137.5 MB/s of payload (plus node 0's
        // own stream to node 1).
        assert!(
            r.delivered_mbyte_per_sec < 320.0,
            "hotspot delivered {}",
            r.delivered_mbyte_per_sec
        );
        // Queueing shows up as latency.
        assert!(r.latency.max() > 20.0, "max latency {}", r.latency.max());
    }

    #[test]
    fn uniform_random_stays_stable_at_half_load() {
        let r = run_traffic(
            16,
            Pattern::UniformRandom,
            UpRoute::SourceSpread,
            0.5,
            MEASURE_US,
            6,
        );
        let offered = 16.0 * 0.5 * 137.5;
        assert!(r.delivered_mbyte_per_sec > 0.85 * offered);
        assert!(r.latency.mean() < 10.0);
    }

    #[test]
    fn observed_bit_reverse_congestion_names_hotspots() {
        // The deterministic-routing adversary again, this time with the
        // observatory watching: the funnel links must be flagged.
        let (r, rep) = run_traffic_observed(
            16,
            Pattern::BitReverse,
            UpRoute::SourceSpread,
            0.8,
            MEASURE_US,
            3,
            ObservatoryConfig::new(5.0, 2.0 * MEASURE_US),
        );
        assert!(r.packets_delivered > 0);
        assert!(rep.ticks >= (2.0 * MEASURE_US / 5.0) as u64 - 1);
        assert!(
            !rep.hotspots.is_empty(),
            "congested bit-reverse must flag at least one hotspot"
        );
        assert!(rep.hotspots[0].flows.iter().any(|f| f.packets > 0));
        // A sampled, congested link shows nonzero utilization and stalls.
        let worst = &rep.hotspots[0];
        assert!(worst.util_mean > 0.5, "worst link util {}", worst.util_mean);
        assert!(worst.stall_us > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_traffic(8, Pattern::UniformRandom, UpRoute::Random, 0.6, 200.0, 7);
        let b = run_traffic(8, Pattern::UniformRandom, UpRoute::Random, 0.6, 200.0, 7);
        assert_eq!(a.packets_delivered, b.packets_delivered);
        assert_eq!(a.delivered_mbyte_per_sec, b.delivered_mbyte_per_sec);
    }
}

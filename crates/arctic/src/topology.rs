//! Fat-tree topology construction and routing arithmetic.
//!
//! The fabric is a 2-ary n-tree ("full fat-tree") built from 4×4 Arctic
//! routers: each router has 2 down-ports and 2 up-ports. For `N = 2^n`
//! endpoints there are `n` router levels with `N/2` routers per level.
//!
//! Addressing: a router is `(level l, word w)` where `w` has `n-1` bits.
//! * Leaf router `(0, w)` connects endpoints `2w` and `2w+1` on its
//!   down-ports.
//! * Router `(l, u)` and router `(l+1, v)` are linked iff `u` and `v` agree
//!   on every bit except possibly bit `l`.
//!
//! Routing from endpoint `s` to endpoint `d`:
//! * ascend `m` levels, where `m` is the smallest value with
//!   `s >> (m+1) == d >> (m+1)` (nearest-common-ancestor height); the choice
//!   of up-port at each level is free (path diversity);
//! * descend choosing down-port `(d >> l) & 1` when leaving level `l`.
//!
//! The worst-case path for `N = 16` visits `2·3 + 1 = 7` router stages.

/// Identifies a router within the fat-tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RouterAddr {
    pub level: u8,
    pub word: u16,
}

/// Where a down-port leads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DownTarget {
    Endpoint(u16),
    Router(RouterAddr),
}

/// Static description of a 2-ary n-tree.
#[derive(Clone, Debug)]
pub struct FatTree {
    n_endpoints: u16,
    levels: u8,
}

impl FatTree {
    /// Build the description for `n_endpoints` (a power of two, >= 2).
    pub fn new(n_endpoints: u16) -> Self {
        assert!(
            n_endpoints.is_power_of_two() && n_endpoints >= 2,
            "fat-tree needs a power-of-two endpoint count >= 2, got {n_endpoints}"
        );
        let levels = n_endpoints.trailing_zeros() as u8;
        FatTree {
            n_endpoints,
            levels,
        }
    }

    pub fn n_endpoints(&self) -> u16 {
        self.n_endpoints
    }

    /// Number of router levels (`n` for `2^n` endpoints).
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Routers per level (`N/2`).
    pub fn routers_per_level(&self) -> u16 {
        self.n_endpoints / 2
    }

    /// Total router count.
    pub fn total_routers(&self) -> usize {
        self.levels as usize * self.routers_per_level() as usize
    }

    /// All router addresses, level-major.
    pub fn routers(&self) -> impl Iterator<Item = RouterAddr> + '_ {
        (0..self.levels).flat_map(move |level| {
            (0..self.routers_per_level()).map(move |word| RouterAddr { level, word })
        })
    }

    /// The leaf router an endpoint attaches to, and the down-port it uses.
    pub fn leaf_of(&self, endpoint: u16) -> (RouterAddr, u8) {
        assert!(endpoint < self.n_endpoints);
        (
            RouterAddr {
                level: 0,
                word: endpoint >> 1,
            },
            (endpoint & 1) as u8,
        )
    }

    /// The router reached from `r` through up-port `p`.
    pub fn up_neighbor(&self, r: RouterAddr, p: u8) -> RouterAddr {
        assert!(r.level + 1 < self.levels, "no up links at the top level");
        assert!(p < 2);
        let bit = 1u16 << r.level;
        let word = (r.word & !bit) | (u16::from(p) << r.level);
        RouterAddr {
            level: r.level + 1,
            word,
        }
    }

    /// What router `r`'s down-port `b` connects to.
    pub fn down_neighbor(&self, r: RouterAddr, b: u8) -> DownTarget {
        assert!(b < 2);
        if r.level == 0 {
            DownTarget::Endpoint(r.word << 1 | u16::from(b))
        } else {
            let bit = 1u16 << (r.level - 1);
            let word = (r.word & !bit) | (u16::from(b) << (r.level - 1));
            DownTarget::Router(RouterAddr {
                level: r.level - 1,
                word,
            })
        }
    }

    /// Number of up-hops needed to route from `s` to `d` (the
    /// nearest-common-ancestor height above the leaf level).
    pub fn up_hops(&self, s: u16, d: u16) -> u8 {
        assert!(s < self.n_endpoints && d < self.n_endpoints);
        let x = (s ^ d) >> 1;
        (16 - x.leading_zeros()) as u8
    }

    /// Down-port taken when leaving a router at `level` while descending
    /// towards endpoint `d`.
    pub fn down_port(&self, level: u8, d: u16) -> u8 {
        ((d >> level) & 1) as u8
    }

    /// Total router stages a packet from `s` to `d` passes through.
    pub fn path_stages(&self, s: u16, d: u16) -> u8 {
        2 * self.up_hops(s, d) + 1
    }

    /// The exact static route a packet from `s` to `d` takes given its
    /// up-route bits: each visited router paired with the output port
    /// index it grants (0,1 down-ports; 2,3 up-ports), in traversal
    /// order. This is the reference the path tracer is checked against:
    /// a traced packet's hop records must reproduce this sequence.
    pub fn route_path(&self, s: u16, d: u16, uproute_bits: u16) -> Vec<(RouterAddr, u8)> {
        let m = self.up_hops(s, d);
        let (mut r, _) = self.leaf_of(s);
        let mut path = Vec::with_capacity(2 * m as usize + 1);
        // Ascend: at level `l` the up-port is up-route bit `l`
        // (port index 2 + bit).
        for l in 0..m {
            let p = ((uproute_bits >> l) & 1) as u8;
            path.push((r, 2 + p));
            r = self.up_neighbor(r, p);
        }
        // Descend: at level `l` the down-port is destination bit `l`.
        loop {
            let b = self.down_port(r.level, d);
            path.push((r, b));
            match self.down_neighbor(r, b) {
                DownTarget::Router(next) => r = next,
                DownTarget::Endpoint(e) => {
                    debug_assert_eq!(e, d);
                    break;
                }
            }
        }
        path
    }

    /// Verify the nearest-common-ancestor property used by `up_hops`.
    pub fn ancestors_agree(&self, s: u16, d: u16) -> bool {
        let m = self.up_hops(s, d);
        (s >> (m + 1)) == (d >> (m + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_endpoint_tree_shape() {
        let t = FatTree::new(16);
        assert_eq!(t.levels(), 4);
        assert_eq!(t.routers_per_level(), 8);
        assert_eq!(t.total_routers(), 32);
        assert_eq!(t.routers().count(), 32);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        FatTree::new(12);
    }

    #[test]
    fn leaf_attachment() {
        let t = FatTree::new(16);
        assert_eq!(t.leaf_of(0), (RouterAddr { level: 0, word: 0 }, 0));
        assert_eq!(t.leaf_of(1), (RouterAddr { level: 0, word: 0 }, 1));
        assert_eq!(t.leaf_of(15), (RouterAddr { level: 0, word: 7 }, 1));
    }

    #[test]
    fn up_down_links_are_symmetric() {
        let t = FatTree::new(16);
        for r in t.routers() {
            if r.level + 1 < t.levels() {
                for p in 0..2u8 {
                    let up = t.up_neighbor(r, p);
                    // Exactly one down-port of `up` leads back to `r`.
                    let back: Vec<u8> = (0..2)
                        .filter(|&b| t.down_neighbor(up, b) == DownTarget::Router(r))
                        .collect();
                    assert_eq!(back.len(), 1, "asymmetric link {r:?} <-> {up:?}");
                }
            }
        }
    }

    #[test]
    fn up_hops_examples() {
        let t = FatTree::new(16);
        assert_eq!(t.up_hops(0, 0), 0);
        assert_eq!(t.up_hops(0, 1), 0); // same leaf
        assert_eq!(t.up_hops(0, 2), 1);
        assert_eq!(t.up_hops(0, 3), 1);
        assert_eq!(t.up_hops(0, 4), 2);
        assert_eq!(t.up_hops(0, 8), 3);
        assert_eq!(t.up_hops(0, 15), 3);
        assert_eq!(t.path_stages(0, 15), 7);
        assert_eq!(t.path_stages(0, 1), 1);
    }

    #[test]
    fn nca_property_holds_everywhere() {
        let t = FatTree::new(16);
        for s in 0..16 {
            for d in 0..16 {
                assert!(t.ancestors_agree(s, d), "NCA violated for {s}->{d}");
            }
        }
    }

    #[test]
    fn routing_descends_to_destination() {
        // Walk the topology for every (s, d, uproute) choice and check the
        // down phase lands on d.
        let t = FatTree::new(16);
        for s in 0..16u16 {
            for d in 0..16u16 {
                for up_bits in 0..8u16 {
                    let m = t.up_hops(s, d);
                    let (mut r, _) = t.leaf_of(s);
                    // Ascend with arbitrary port choices.
                    for l in 0..m {
                        let p = ((up_bits >> l) & 1) as u8;
                        r = t.up_neighbor(r, p);
                    }
                    // Descend following d's bits.
                    loop {
                        let b = t.down_port(r.level, d);
                        match t.down_neighbor(r, b) {
                            DownTarget::Router(next) => r = next,
                            DownTarget::Endpoint(e) => {
                                assert_eq!(e, d, "s={s} d={d} up_bits={up_bits}");
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn route_path_is_consistent_with_stage_count_and_lands_on_dst() {
        let t = FatTree::new(16);
        for s in 0..16u16 {
            for d in 0..16u16 {
                for up_bits in [0u16, 0b101, 0x3FFF] {
                    let path = t.route_path(s, d, up_bits);
                    assert_eq!(path.len(), t.path_stages(s, d) as usize);
                    // First router is the source leaf; last exits on a
                    // down-port leading to d.
                    assert_eq!(path[0].0, t.leaf_of(s).0);
                    let (last, port) = path[path.len() - 1];
                    assert_eq!(last.level, 0);
                    assert!(port < 2);
                    assert_eq!(t.down_neighbor(last, port), DownTarget::Endpoint(d));
                }
            }
        }
    }

    #[test]
    fn route_path_up_ports_follow_uproute_bits() {
        let t = FatTree::new(16);
        let path = t.route_path(0, 15, 0b010);
        // 3 up-hops then 4 down-stages.
        assert_eq!(path.len(), 7);
        assert_eq!(path[0].1, 2, "level 0: bit 0 clear -> up-port 0");
        assert_eq!(path[1].1, 3, "level 1: bit 1 set -> up-port 1");
        assert_eq!(path[2].1, 2, "level 2: bit 2 clear -> up-port 0");
        for (r, p) in &path[3..] {
            assert!(*p < 2, "descending stage at {r:?} must use a down-port");
        }
    }

    #[test]
    fn two_endpoint_degenerate_tree() {
        let t = FatTree::new(2);
        assert_eq!(t.levels(), 1);
        assert_eq!(t.total_routers(), 1);
        assert_eq!(t.up_hops(0, 1), 0);
        assert_eq!(t.path_stages(0, 1), 1);
    }
}

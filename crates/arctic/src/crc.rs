//! CRC-16-CCITT over packet words.
//!
//! Arctic verifies message correctness "at every router stage and at the
//! network endpoints using CRC" (§2.2). We implement CRC-16-CCITT (polynomial
//! 0x1021, init 0xFFFF) over the header and payload words; routers recompute
//! and compare at each stage, and the endpoint exposes the result as the
//! 1-bit status the software layer checks.

const POLY: u16 = 0x1021;
const INIT: u16 = 0xFFFF;

/// CRC-16-CCITT of a byte stream.
pub fn crc16_bytes(bytes: impl IntoIterator<Item = u8>) -> u16 {
    let mut crc = INIT;
    for b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ POLY;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// CRC-16-CCITT over 32-bit words, big-endian byte order within each word
/// (matching how the link serializes words onto the wire).
pub fn crc16_words(words: &[u32]) -> u16 {
    crc16_bytes(words.iter().flat_map(|w| w.to_be_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-16-CCITT("123456789") with init 0xFFFF is the classic 0x29B1.
        let crc = crc16_bytes(*b"123456789");
        assert_eq!(crc, 0x29B1);
    }

    #[test]
    fn empty_is_init() {
        assert_eq!(crc16_bytes(std::iter::empty()), INIT);
    }

    #[test]
    fn word_and_byte_agree() {
        let words = [0x0102_0304u32, 0x0506_0708];
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(crc16_words(&words), crc16_bytes(bytes));
    }

    #[test]
    fn detects_single_bit_flips() {
        let words = [0xDEAD_BEEFu32, 0x1234_5678, 0x0000_0001];
        let good = crc16_words(&words);
        for wi in 0..words.len() {
            for bit in 0..32 {
                let mut corrupted = words;
                corrupted[wi] ^= 1 << bit;
                assert_ne!(
                    crc16_words(&corrupted),
                    good,
                    "flip of word {wi} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn detects_burst_errors_up_to_16_bits() {
        // CRC-16 detects all burst errors of length <= 16.
        let words = [0xCAFE_F00Du32, 0xAAAA_5555];
        let good = crc16_words(&words);
        for start in 0..48 {
            for len in 1..=16u32 {
                if start + len > 64 {
                    continue;
                }
                let mask: u64 = (((1u128 << len) - 1) << start) as u64;
                let mut v = ((words[0] as u64) << 32) | words[1] as u64;
                v ^= mask;
                let corrupted = [(v >> 32) as u32, v as u32];
                assert_ne!(crc16_words(&corrupted), good);
            }
        }
    }
}

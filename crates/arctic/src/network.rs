//! The assembled fabric: routers + injection ports + delivery plumbing.

use crate::fault::{FaultInjector, FaultProfile};
use crate::packet::{Packet, UpRoute};
use crate::router::{
    down_port_index, up_port_index, PortTarget, RouterActor, RouterEv, RouterTiming,
};
use crate::topology::{DownTarget, FatTree, RouterAddr};
use hyades_des::event::Payload;
use hyades_des::rng::SplitMix64;
use hyades_des::{Actor, ActorId, Ctx, SimDuration, SimTime, Simulator};
use hyades_fault::FaultPlan;
use hyades_telemetry as telemetry;
use hyades_telemetry::flight;
use hyades_telemetry::sampler::{self, SampleTick};
use std::sync::Arc;

/// Fabric configuration. Defaults are the paper's hardware constants.
#[derive(Clone, Copy, Debug)]
pub struct ArcticConfig {
    pub timing: RouterTiming,
    pub uproute: UpRoute,
    /// Seed for random up-route selection (only used in `UpRoute::Random`).
    pub seed: u64,
    /// Optional fault injection applied at the injection ports; every
    /// injected fault is visible in the flight recorder and the
    /// `arctic.fault` registry counters.
    pub fault: Option<FaultProfile>,
}

impl Default for ArcticConfig {
    fn default() -> Self {
        ArcticConfig {
            timing: RouterTiming::default(),
            uproute: UpRoute::SourceSpread,
            seed: 0xA7C71C,
            fault: None,
        }
    }
}

/// Delivery event scheduled to an endpoint actor when a packet's tail
/// arrives. The endpoint checks `pkt.corrupted` — the 1-bit status word.
pub struct Delivered {
    pub pkt: Packet,
}

/// Injection event: send this packet into the fabric.
pub struct Inject(pub Packet);

/// Per-endpoint transmit port: models the NIU-to-leaf-router link
/// (150 MByte/s) and stamps routing state onto outgoing packets.
///
/// Like the StarT-X hardware (Figure 1a), the port keeps *separate high- and
/// low-priority transmit queues*: a queued high-priority message is granted
/// the link ahead of any queued low-priority messages.
pub struct TxPort {
    endpoint: u16,
    leaf: ActorId,
    tree: Arc<FatTree>,
    timing: RouterTiming,
    uproute: UpRoute,
    rng: SplitMix64,
    free_at: SimTime,
    high: std::collections::VecDeque<Packet>,
    low: std::collections::VecDeque<Packet>,
    fault: Option<FaultInjector>,
    /// Plan-driven injector installed by [`ArcticNetwork::apply_fault_plan`]
    /// (kept separate from the constant-rate `fault` so a harness can run
    /// both a background profile and scheduled fault weather).
    plan_fault: Option<FaultInjector>,
    /// NIU stall intervals for this endpoint, from the fault plan: while
    /// `from <= now < until` the port grants nothing; queued packets wait
    /// the stall out.
    stalls: Vec<(SimTime, SimTime)>,
    /// Guard so each stall window arms one wake and records one span.
    stall_armed_until: SimTime,
    pub stall_waits: u64,
    /// Link-busy accounting for the sampler (mirrors the router ports).
    busy_ps: u64,
    sampled_busy_ps: u64,
    pub packets_injected: u64,
    pub bytes_injected: u64,
}

/// Internal self-event: the injection link may have become free.
struct TxKick;

impl TxPort {
    fn uproute_bits(&mut self) -> u16 {
        match self.uproute {
            UpRoute::SourceSpread => self.endpoint & 0x3FFF,
            UpRoute::Random => (self.rng.next_u64() & 0x3FFF) as u16,
        }
    }

    /// If this endpoint's NIU is stalled at `now`, the time the stall ends.
    fn stalled_until(&self, now: SimTime) -> Option<SimTime> {
        self.stalls
            .iter()
            .filter(|(from, until)| *from <= now && now < *until)
            .map(|(_, until)| *until)
            .max()
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now < self.free_at {
            ctx.send_after(self.free_at - now, ctx.self_id(), TxKick);
            return;
        }
        if let Some(until) = self.stalled_until(now) {
            if self.high.is_empty() && self.low.is_empty() {
                return;
            }
            // One wake (and one observable span) per stall window, not
            // one per queued packet.
            if self.stall_armed_until < until {
                self.stall_armed_until = until;
                self.stall_waits += 1;
                let wait = until.since(now);
                telemetry::record_span(u64::from(self.endpoint), "arctic", "niu.stall", now, wait);
                telemetry::count("arctic.niu", "stall_waits", 1);
                flight::record(now, ctx.self_id(), "niu.stall", wait.as_ps());
                ctx.send_after(wait, ctx.self_id(), TxKick);
            }
            return;
        }
        let Some(mut pkt) = self.high.pop_front().or_else(|| self.low.pop_front()) else {
            return;
        };
        if let Some(f) = self.fault.as_mut() {
            if !f.apply(&mut pkt, now, ctx.self_id()) {
                // Dropped before the link was occupied: try the next
                // queued packet immediately.
                self.pump(ctx);
                return;
            }
        }
        if let Some(f) = self.plan_fault.as_mut() {
            if !f.apply(&mut pkt, now, ctx.self_id()) {
                self.pump(ctx);
                return;
            }
        }
        if let Some(tr) = pkt.trace.as_deref_mut() {
            tr.injected_at = now;
        }
        let ser = SimDuration::for_bytes_at(pkt.wire_bytes(), self.timing.link_mbyte_per_sec);
        self.free_at = now + ser;
        self.busy_ps += ser.as_ps();
        self.packets_injected += 1;
        self.bytes_injected += pkt.wire_bytes();
        telemetry::record_span(ctx.self_id().0 as u64, "arctic", "niu.inject", now, ser);
        telemetry::count("arctic.txport", "packets_injected", 1);
        telemetry::count("arctic.txport", "bytes_injected", pkt.wire_bytes());
        flight::record(now, ctx.self_id(), "txport.inject", pkt.usr_tag as u64);
        // Cut-through: head reaches the leaf router one wire latency after
        // transmission starts.
        ctx.send_after(self.timing.wire_latency, self.leaf, RouterEv::Arrive(pkt));
        if !self.high.is_empty() || !self.low.is_empty() {
            ctx.send_after(ser, ctx.self_id(), TxKick);
        }
    }

    /// Answer a [`SampleTick`]: report this injection link's state.
    fn sample(&mut self, ctx: &mut Ctx<'_>) {
        if !sampler::installed() {
            return;
        }
        let now = ctx.now();
        let entity = format!("ep{}", self.endpoint);
        sampler::record(
            "arctic.niu",
            &entity,
            "occ_high",
            now,
            self.high.len() as f64,
        );
        sampler::record("arctic.niu", &entity, "occ_low", now, self.low.len() as f64);
        let busy = self.busy_ps - self.sampled_busy_ps;
        self.sampled_busy_ps = self.busy_ps;
        sampler::record("arctic.niu", &entity, "busy_us", now, busy as f64 / 1e6);
    }
}

impl Actor for TxPort {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        match ev.downcast::<Inject>() {
            Ok(inject) => {
                let Inject(mut pkt) = *inject;
                assert_eq!(pkt.src, self.endpoint, "packet src must match its port");
                pkt.up_remaining = self.tree.up_hops(pkt.src, pkt.dst);
                pkt.uproute_bits = self.uproute_bits();
                match pkt.priority {
                    crate::packet::Priority::High => self.high.push_back(pkt),
                    crate::packet::Priority::Low => self.low.push_back(pkt),
                }
                self.pump(ctx);
            }
            Err(other) => match other.downcast::<TxKick>() {
                Ok(_) => self.pump(ctx),
                Err(other) => match other.downcast::<SampleTick>() {
                    Ok(_) => self.sample(ctx),
                    Err(_) => panic!("TxPort unexpected event"),
                },
            },
        }
    }
}

/// The assembled Arctic fabric within a [`Simulator`].
pub struct ArcticNetwork {
    tree: Arc<FatTree>,
    cfg: ArcticConfig,
    router_ids: Vec<ActorId>,
    tx_ports: Vec<ActorId>,
    endpoints: Vec<ActorId>,
}

impl ArcticNetwork {
    /// Build the fabric for `endpoint_actors.len()` endpoints (a power of
    /// two). `endpoint_actors[i]` receives [`Delivered`] events addressed to
    /// endpoint `i`.
    pub fn build(sim: &mut Simulator, endpoint_actors: &[ActorId], cfg: ArcticConfig) -> Self {
        let n = endpoint_actors.len() as u16;
        let tree = Arc::new(FatTree::new(n));

        // Pass 1: create the routers.
        let mut router_ids = Vec::with_capacity(tree.total_routers());
        for addr in tree.routers() {
            let id = sim.add_actor(RouterActor::new(addr, Arc::clone(&tree), cfg.timing));
            router_ids.push(id);
        }
        let idx = |addr: RouterAddr| -> usize {
            addr.level as usize * tree.routers_per_level() as usize + addr.word as usize
        };

        // Pass 2: wire the ports.
        for addr in tree.routers() {
            let id = router_ids[idx(addr)];
            for b in 0..2u8 {
                let target = match tree.down_neighbor(addr, b) {
                    DownTarget::Endpoint(e) => PortTarget::Endpoint(endpoint_actors[e as usize]),
                    DownTarget::Router(r) => PortTarget::Router(router_ids[idx(r)]),
                };
                sim.actor_mut::<RouterActor>(id)
                    .wire_port(down_port_index(b), target);
            }
            if addr.level + 1 < tree.levels() {
                for p in 0..2u8 {
                    let up = tree.up_neighbor(addr, p);
                    sim.actor_mut::<RouterActor>(id)
                        .wire_port(up_port_index(p), PortTarget::Router(router_ids[idx(up)]));
                }
            }
        }

        // Pass 3: per-endpoint injection ports.
        let mut tx_ports = Vec::with_capacity(n as usize);
        let mut seed_rng = SplitMix64::new(cfg.seed);
        for e in 0..n {
            let (leaf, _) = tree.leaf_of(e);
            let id = sim.add_actor(TxPort {
                endpoint: e,
                leaf: router_ids[idx(leaf)],
                tree: Arc::clone(&tree),
                timing: cfg.timing,
                uproute: cfg.uproute,
                rng: SplitMix64::new(seed_rng.next_u64()),
                free_at: SimTime::ZERO,
                high: std::collections::VecDeque::new(),
                low: std::collections::VecDeque::new(),
                fault: cfg
                    .fault
                    .as_ref()
                    .map(|p| FaultInjector::from_profile(p, e as u64)),
                plan_fault: None,
                stalls: Vec::new(),
                stall_armed_until: SimTime::ZERO,
                stall_waits: 0,
                busy_ps: 0,
                sampled_busy_ps: 0,
                packets_injected: 0,
                bytes_injected: 0,
            });
            tx_ports.push(id);
        }

        ArcticNetwork {
            tree,
            cfg,
            router_ids,
            tx_ports,
            endpoints: endpoint_actors.to_vec(),
        }
    }

    pub fn n_endpoints(&self) -> u16 {
        self.tree.n_endpoints()
    }

    pub fn tree(&self) -> &FatTree {
        &self.tree
    }

    pub fn config(&self) -> &ArcticConfig {
        &self.cfg
    }

    /// The injection actor for an endpoint. Actors send
    /// [`Inject`]`(packet)` events here; harnesses can `sim.schedule` to it.
    pub fn tx_port(&self, endpoint: u16) -> ActorId {
        self.tx_ports[endpoint as usize]
    }

    /// The delivery actor registered for an endpoint.
    pub fn endpoint(&self, endpoint: u16) -> ActorId {
        self.endpoints[endpoint as usize]
    }

    /// Thread a deterministic [`FaultPlan`] through the fabric: every
    /// injection port gets a windowed corrupt/drop injector drawing an
    /// independent stream from the plan seed, plus this endpoint's NIU
    /// stall intervals. Call after [`ArcticNetwork::build`], before the
    /// workload starts.
    pub fn apply_fault_plan(&self, sim: &mut Simulator, plan: &FaultPlan) {
        for e in 0..self.n_endpoints() {
            let port = sim.actor_mut::<TxPort>(self.tx_ports[e as usize]);
            if !plan.link_windows.is_empty() {
                port.plan_fault = Some(FaultInjector::windowed(
                    plan.seed,
                    u64::from(e) + 1,
                    plan.link_windows.clone(),
                ));
            }
            port.stalls = plan
                .niu_stalls
                .iter()
                .filter(|s| s.endpoint == e)
                .map(|s| (s.from, s.until))
                .collect();
        }
    }

    /// Total NIU stall waits across all injection ports.
    pub fn stall_waits(&self, sim: &Simulator) -> u64 {
        self.tx_ports
            .iter()
            .map(|&id| sim.actor::<TxPort>(id).stall_waits)
            .sum()
    }

    /// Inject a packet from outside the simulation at time `at`.
    pub fn inject_at(&self, sim: &mut Simulator, at: SimTime, pkt: Packet) {
        let port = self.tx_port(pkt.src);
        sim.schedule(at, port, Inject(pkt));
    }

    /// Router actor ids, level-major (`idx = level * routers_per_level +
    /// word`) — the observatory walks these to collect per-port state.
    pub fn router_actor_ids(&self) -> &[ActorId] {
        &self.router_ids
    }

    /// Every actor the fabric observatory samples: all routers plus all
    /// injection ports, in deterministic id order.
    pub fn sampler_targets(&self) -> Vec<ActorId> {
        let mut t = self.router_ids.clone();
        t.extend_from_slice(&self.tx_ports);
        t
    }

    /// Fault-injection totals across all injection ports:
    /// (packets corrupted, packets dropped).
    pub fn fault_counts(&self, sim: &Simulator) -> (u64, u64) {
        let mut corrupted = 0;
        let mut dropped = 0;
        for &id in &self.tx_ports {
            let p = sim.actor::<TxPort>(id);
            for f in p.fault.iter().chain(p.plan_fault.iter()) {
                corrupted += f.injected;
                dropped += f.dropped;
            }
        }
        (corrupted, dropped)
    }

    /// Sum of CRC failures observed across all router stages.
    pub fn total_crc_failures(&self, sim: &Simulator) -> u64 {
        self.router_ids
            .iter()
            .map(|&id| sim.actor::<RouterActor>(id).crc_failures)
            .sum()
    }

    /// Total packets routed across all stages (a packet through k stages
    /// counts k times).
    pub fn total_stage_crossings(&self, sim: &Simulator) -> u64 {
        self.router_ids
            .iter()
            .map(|&id| sim.actor::<RouterActor>(id).packets_routed)
            .sum()
    }

    /// Predicted uncontended head latency from `s` to `d` for a packet of
    /// `wire_bytes`, per the cut-through timing model: one fall-through and
    /// one wire hop per stage, plus the injection wire hop and the final
    /// serialization.
    pub fn uncontended_latency(&self, s: u16, d: u16, wire_bytes: u64) -> SimDuration {
        let stages = self.tree.path_stages(s, d) as u64;
        let t = &self.cfg.timing;
        let per_stage = t.fall_through + t.wire_latency;
        let ser = SimDuration::for_bytes_at(wire_bytes, t.link_mbyte_per_sec);
        t.wire_latency + per_stage * stages + ser
    }
}

/// A simple endpoint that records every delivery: used by tests and
/// measurement harnesses.
#[derive(Default)]
pub struct SinkEndpoint {
    pub deliveries: Vec<(SimTime, Packet)>,
    pub corrupted: u64,
}

impl Actor for SinkEndpoint {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        let Ok(d) = ev.downcast::<Delivered>() else {
            panic!("sink expects Delivered events");
        };
        if d.pkt.corrupted {
            self.corrupted += 1;
        }
        self.deliveries.push((ctx.now(), d.pkt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Priority;

    fn build(n: u16, cfg: ArcticConfig) -> (Simulator, ArcticNetwork) {
        let mut sim = Simulator::new();
        let eps: Vec<ActorId> = (0..n)
            .map(|_| sim.add_actor(SinkEndpoint::default()))
            .collect();
        let net = ArcticNetwork::build(&mut sim, &eps, cfg);
        (sim, net)
    }

    fn t_us(us: f64) -> SimTime {
        SimTime::from_us_f64(us)
    }

    #[test]
    fn single_packet_latency_matches_model() {
        let (mut sim, net) = build(16, ArcticConfig::default());
        let pkt = Packet::new(0, 15, Priority::High, 1, vec![1, 2]);
        let wire = pkt.wire_bytes();
        net.inject_at(&mut sim, SimTime::ZERO, pkt);
        sim.run();
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(15));
        assert_eq!(sink.deliveries.len(), 1);
        let (at, _) = &sink.deliveries[0];
        let expected = net.uncontended_latency(0, 15, wire);
        assert_eq!(at.since(SimTime::ZERO), expected);
        // 7 stages for a worst-case 16-endpoint path; latency ~1.2 us for a
        // 16-byte packet — the order of the paper's measured 1.3 us.
        let us = expected.as_us_f64();
        assert!((1.0..1.5).contains(&us), "unexpected latency {us} us");
    }

    #[test]
    fn same_leaf_path_is_short() {
        let (mut sim, net) = build(16, ArcticConfig::default());
        let pkt = Packet::new(2, 3, Priority::High, 0, vec![0, 0]);
        let wire = pkt.wire_bytes();
        net.inject_at(&mut sim, SimTime::ZERO, pkt);
        sim.run();
        let expected = net.uncontended_latency(2, 3, wire);
        assert!(expected.as_us_f64() < 0.4, "1-stage path should be fast");
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(3));
        assert_eq!(sink.deliveries[0].0.since(SimTime::ZERO), expected);
    }

    #[test]
    fn source_spread_uproute_preserves_fifo_order() {
        let (mut sim, net) = build(16, ArcticConfig::default());
        for i in 0..50u32 {
            let pkt = Packet::new(1, 14, Priority::Low, 7, vec![i, 0]);
            net.inject_at(&mut sim, SimTime::ZERO, pkt);
        }
        sim.run();
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(14));
        assert_eq!(sink.deliveries.len(), 50);
        let order: Vec<u32> = sink.deliveries.iter().map(|(_, p)| p.payload[0]).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>(), "FIFO violated");
    }

    #[test]
    fn high_priority_overtakes_queued_low() {
        let (mut sim, net) = build(16, ArcticConfig::default());
        // Saturate the path with low-priority packets, then inject one
        // high-priority packet slightly later.
        for i in 0..20u32 {
            let pkt = Packet::new(0, 15, Priority::Low, 0, vec![i; 22]);
            net.inject_at(&mut sim, SimTime::ZERO, pkt);
        }
        let hi = Packet::new(0, 15, Priority::High, 1, vec![999, 0]);
        net.inject_at(&mut sim, t_us(1.0), hi);
        sim.run();
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(15));
        assert_eq!(sink.deliveries.len(), 21);
        let pos = sink
            .deliveries
            .iter()
            .position(|(_, p)| p.usr_tag == 1)
            .unwrap();
        assert!(
            pos < 8,
            "high-priority packet was blocked behind {pos} low-priority packets"
        );
    }

    #[test]
    fn corrupted_packet_is_flagged_not_dropped() {
        let (mut sim, net) = build(16, ArcticConfig::default());
        let mut pkt = Packet::new(0, 9, Priority::High, 0, vec![5, 6]);
        pkt.payload[0] ^= 1; // corrupt after CRC computation
        net.inject_at(&mut sim, SimTime::ZERO, pkt);
        sim.run();
        assert!(net.total_crc_failures(&sim) >= 1);
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(9));
        assert_eq!(sink.deliveries.len(), 1);
        assert_eq!(sink.corrupted, 1, "endpoint must see the 1-bit status");
    }

    #[test]
    fn bisection_pairs_sustain_full_bandwidth() {
        // 8 simultaneous disjoint pairs crossing the bisection: each pair
        // should see the same completion time as a single pair (fat-tree
        // non-blocking claim, §4.1 "multiple simultaneous transfers with
        // undiminished pair-wise bandwidth").
        let cfg = ArcticConfig::default();
        let pairs: Vec<(u16, u16)> = (0..8u16).map(|i| (i, i + 8)).collect();
        let npkts = 100;

        let solo_time = {
            let (mut sim, net) = build(16, cfg);
            for i in 0..npkts {
                let pkt = Packet::new(0, 8, Priority::Low, (i % 0x7FF) as u16, vec![0; 22]);
                net.inject_at(&mut sim, SimTime::ZERO, pkt);
            }
            sim.run();
            sim.now()
        };

        let (mut sim, net) = build(16, cfg);
        for &(s, d) in &pairs {
            for i in 0..npkts {
                let pkt = Packet::new(s, d, Priority::Low, (i % 0x7FF) as u16, vec![0; 22]);
                net.inject_at(&mut sim, SimTime::ZERO, pkt);
            }
        }
        sim.run();
        let all_time = sim.now();
        let ratio = all_time.as_us_f64() / solo_time.as_us_f64();
        assert!(
            ratio < 1.05,
            "bisection degraded: 8 pairs took {ratio:.2}x a single pair"
        );
    }

    #[test]
    fn random_uproute_spreads_load() {
        let cfg = ArcticConfig {
            uproute: UpRoute::Random,
            ..ArcticConfig::default()
        };
        let (mut sim, net) = build(16, cfg);
        for i in 0..200u32 {
            let pkt = Packet::new(0, 15, Priority::Low, 0, vec![i, 0]);
            net.inject_at(&mut sim, SimTime::ZERO, pkt);
        }
        sim.run();
        // All packets delivered even with random paths.
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(15));
        assert_eq!(sink.deliveries.len(), 200);
        // Load on the two up-ports of the source's leaf router should be
        // split, not all on one port.
        let leaf_id = {
            let (leaf, _) = net.tree().leaf_of(0);
            // router ids are level-major; leaf index = word
            net.router_ids[leaf.word as usize]
        };
        let r = sim.actor::<RouterActor>(leaf_id);
        let (p0, _, _) = r.port_stats(up_port_index(0));
        let (p1, _, _) = r.port_stats(up_port_index(1));
        assert!(
            p0 > 20 && p1 > 20,
            "random uproute unbalanced: {p0} vs {p1}"
        );
    }

    #[test]
    fn niu_stall_window_delays_queued_packets() {
        let (mut sim, net) = build(16, ArcticConfig::default());
        let plan = FaultPlan::new(0xF0).niu_stall(0, 0.0, 25.0);
        net.apply_fault_plan(&mut sim, &plan);
        let pkt = Packet::new(0, 15, Priority::High, 1, vec![1, 2]);
        let wire = pkt.wire_bytes();
        net.inject_at(&mut sim, SimTime::ZERO, pkt);
        // An unstalled endpoint is unaffected.
        let free = Packet::new(1, 14, Priority::High, 2, vec![3, 4]);
        let free_wire = free.wire_bytes();
        net.inject_at(&mut sim, SimTime::ZERO, free);
        sim.run();
        let expected = net.uncontended_latency(0, 15, wire);
        let stalled_at = sim.actor::<SinkEndpoint>(net.endpoint(15)).deliveries[0].0;
        assert_eq!(
            stalled_at.since(SimTime::ZERO),
            SimDuration::from_us_f64(25.0) + expected,
            "stalled packet must wait out the window"
        );
        let free_at = sim.actor::<SinkEndpoint>(net.endpoint(14)).deliveries[0].0;
        assert_eq!(
            free_at.since(SimTime::ZERO),
            net.uncontended_latency(1, 14, free_wire)
        );
        assert_eq!(net.stall_waits(&sim), 1);
    }

    #[test]
    fn link_window_faults_only_inside_the_window() {
        let (mut sim, net) = build(16, ArcticConfig::default());
        // Window [0, 5) us drops everything; afterwards the link is clean.
        let plan = FaultPlan::new(0xF1).link_window(0.0, 5.0, 0.0, 1.0);
        net.apply_fault_plan(&mut sim, &plan);
        for i in 0..4u32 {
            let pkt = Packet::new(0, 9, Priority::High, i as u16, vec![i, 0]);
            net.inject_at(&mut sim, SimTime::ZERO, pkt);
        }
        let late = Packet::new(0, 9, Priority::High, 99, vec![7, 0]);
        net.inject_at(&mut sim, t_us(6.0), late);
        sim.run();
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(9));
        assert_eq!(sink.deliveries.len(), 1, "in-window packets must drop");
        assert_eq!(sink.deliveries[0].1.usr_tag, 99);
        let (_, dropped) = net.fault_counts(&sim);
        assert_eq!(dropped, 4);
    }

    #[test]
    fn plan_injection_is_deterministic() {
        let run = || {
            let (mut sim, net) = build(16, ArcticConfig::default());
            let plan = FaultPlan::new(0xF2).link_window(0.0, 100.0, 0.5, 0.2);
            net.apply_fault_plan(&mut sim, &plan);
            for i in 0..50u32 {
                let pkt = Packet::new(0, 15, Priority::Low, (i % 0x7FF) as u16, vec![i, 0]);
                net.inject_at(&mut sim, SimTime::ZERO, pkt);
            }
            sim.run();
            let sink = sim.actor::<SinkEndpoint>(net.endpoint(15));
            (
                net.fault_counts(&sim),
                sink.deliveries.len(),
                sink.corrupted,
            )
        };
        let a = run();
        assert_eq!(a, run(), "plan-driven faults must be deterministic");
        assert!(a.0 .0 > 0 && a.0 .1 > 0, "window rates must bite: {a:?}");
    }

    #[test]
    fn self_send_loops_through_leaf() {
        let (mut sim, net) = build(4, ArcticConfig::default());
        let pkt = Packet::new(2, 2, Priority::High, 0, vec![42, 0]);
        net.inject_at(&mut sim, SimTime::ZERO, pkt);
        sim.run();
        let sink = sim.actor::<SinkEndpoint>(net.endpoint(2));
        assert_eq!(sink.deliveries.len(), 1);
        assert_eq!(sink.deliveries[0].1.payload[0], 42);
    }
}

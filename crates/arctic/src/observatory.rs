//! The fabric observatory: per-link time series, hotspot detection, and
//! deterministic exporters.
//!
//! [`Observatory::attach`] installs the thread-local sampler and plants a
//! [`SamplerActor`] that ticks every router and injection port at a fixed
//! simulated interval; each target answers by reporting queue occupancy,
//! link-busy time, and flow-control stalls (see `router::sample`). After
//! the simulation runs, [`Observatory::collect`] folds the samples and the
//! routers' own counters into a [`FabricReport`]:
//!
//! * a [`LinkSummary`] per wired output link (utilization, occupancy
//!   mean/p99/max, stalls, traffic totals),
//! * a [`Hotspot`] per link whose sampled occupancy p99 exceeds the
//!   configured threshold, naming the flows that fed it,
//! * fault-injection and CRC-failure totals, so faults are visible in the
//!   manifest rather than silently absorbed.
//!
//! Two exporters render the report: [`FabricReport::prometheus`]
//! (Prometheus text exposition) and [`FabricReport::json_manifest`]
//! (a per-run JSON document). Both use fixed six-decimal formatting and
//! sorted iteration only, so same-seed double runs are byte-identical
//! (asserted by `tests/determinism.rs`).

use crate::network::ArcticNetwork;
use crate::router::{RouterActor, PORTS};
use hyades_des::{ActorId, SimDuration, SimTime, Simulator};
use hyades_telemetry::prom::{fixed, PromText};
use hyades_telemetry::sampler::{self, SampleSet, SamplerActor};
use std::fmt::Write as _;

/// Observatory configuration.
#[derive(Clone, Copy, Debug)]
pub struct ObservatoryConfig {
    /// Sampling interval (simulated time).
    pub interval: SimDuration,
    /// Last tick time: the sampler expires here so the simulation drains.
    pub until: SimTime,
    /// A link is a hotspot when its sampled occupancy p99 exceeds this.
    pub hotspot_occ_p99: f64,
    /// How many contributing flows to name per hotspot.
    pub top_flows: usize,
}

impl ObservatoryConfig {
    /// Sample every `interval_us` until `until_us`, with the default
    /// hotspot threshold.
    pub fn new(interval_us: f64, until_us: f64) -> Self {
        ObservatoryConfig {
            interval: SimDuration::from_us_f64(interval_us),
            until: SimTime::from_us_f64(until_us),
            hotspot_occ_p99: 4.0,
            top_flows: 4,
        }
    }
}

/// One wired output link's summarized behaviour.
#[derive(Clone, Debug)]
pub struct LinkSummary {
    /// Sampler entity label (`l{level}.w{word}.p{port}`).
    pub entity: String,
    pub samples: usize,
    /// Mean fraction of each sampling window the link spent serializing.
    pub util_mean: f64,
    pub occ_mean: f64,
    pub occ_p99: f64,
    pub occ_max: f64,
    /// Flow-control stalls resolved at this link: count and total time.
    pub stalls: u64,
    pub stall_us: f64,
    pub packets: u64,
    pub bytes: u64,
}

/// A flow contributing to a hotspot link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowShare {
    pub src: u16,
    pub dst: u16,
    pub packets: u64,
}

/// A link whose sampled occupancy p99 exceeded the threshold.
#[derive(Clone, Debug)]
pub struct Hotspot {
    pub entity: String,
    pub occ_p99: f64,
    pub util_mean: f64,
    pub stall_us: f64,
    /// Top contributing flows by grant count (count desc, then (src,
    /// dst) asc — deterministic).
    pub flows: Vec<FlowShare>,
}

/// Everything the observatory saw in one run.
#[derive(Clone, Debug)]
pub struct FabricReport {
    pub n_endpoints: u16,
    pub interval_us: f64,
    pub ticks: u64,
    pub hotspot_occ_p99: f64,
    pub links: Vec<LinkSummary>,
    pub hotspots: Vec<Hotspot>,
    pub faults_corrupted: u64,
    pub faults_dropped: u64,
    pub crc_failures: u64,
    /// The raw sample set (NIU series included), for ad-hoc queries.
    pub samples: SampleSet,
}

/// Handle returned by [`Observatory::attach`]; collect after `sim.run()`.
pub struct Observatory {
    cfg: ObservatoryConfig,
    sampler_id: ActorId,
}

impl Observatory {
    /// Install the thread-local sampler and start the sampling actor over
    /// every router and injection port of `net`.
    pub fn attach(sim: &mut Simulator, net: &ArcticNetwork, cfg: ObservatoryConfig) -> Observatory {
        sampler::install(cfg.interval);
        let sampler_id = SamplerActor::start(sim, net.sampler_targets(), cfg.interval, cfg.until);
        Observatory { cfg, sampler_id }
    }

    /// Fold the sampled series and router counters into a report. Call
    /// after the simulation has run.
    pub fn collect(self, sim: &Simulator, net: &ArcticNetwork) -> FabricReport {
        let samples = sampler::take().unwrap_or_else(|| {
            // The store can only be missing if someone re-installed the
            // sampler mid-run; treat as an empty observation.
            sampler::install(self.cfg.interval);
            sampler::take().unwrap_or_else(|| unreachable!("sampler was just installed"))
        });
        let interval_us = self.cfg.interval.as_ps() as f64 / 1e6;
        let ticks = sim.actor::<SamplerActor>(self.sampler_id).ticks;

        let mut links = Vec::new();
        let mut hotspots = Vec::new();
        for (addr, &id) in net.tree().routers().zip(net.router_actor_ids()) {
            let r = sim.actor::<RouterActor>(id);
            for port in 0..PORTS {
                if !r.port_is_wired(port) {
                    continue;
                }
                let entity = RouterActor::link_entity(addr, port);
                let occ = samples.get("arctic.link", &entity, "occ");
                let busy = samples.get("arctic.link", &entity, "busy_us");
                let (packets, bytes, _) = r.port_stats(port);
                let (stalls, stall_ps) = r.port_stalls(port);
                let (occ_mean, occ_p99, occ_max, n) = match occ {
                    Some(s) => (s.mean(), s.p99(), s.max(), s.len()),
                    None => (0.0, 0.0, 0.0, 0),
                };
                let util_mean = match busy {
                    Some(s) if interval_us > 0.0 => s.mean() / interval_us,
                    _ => 0.0,
                };
                let summary = LinkSummary {
                    entity: entity.clone(),
                    samples: n,
                    util_mean,
                    occ_mean,
                    occ_p99,
                    occ_max,
                    stalls,
                    stall_us: stall_ps as f64 / 1e6,
                    packets,
                    bytes,
                };
                if occ_p99 > self.cfg.hotspot_occ_p99 {
                    let mut flows: Vec<FlowShare> = r
                        .port_flows(port)
                        .into_iter()
                        .map(|((src, dst), packets)| FlowShare { src, dst, packets })
                        .collect();
                    flows.sort_by(|a, b| {
                        b.packets
                            .cmp(&a.packets)
                            .then((a.src, a.dst).cmp(&(b.src, b.dst)))
                    });
                    flows.truncate(self.cfg.top_flows);
                    hotspots.push(Hotspot {
                        entity,
                        occ_p99,
                        util_mean,
                        stall_us: stall_ps as f64 / 1e6,
                        flows,
                    });
                }
                links.push(summary);
            }
        }
        // Worst hotspots first; entity breaks ties deterministically.
        hotspots.sort_by(|a, b| {
            b.occ_p99
                .total_cmp(&a.occ_p99)
                .then(a.entity.cmp(&b.entity))
        });

        let (faults_corrupted, faults_dropped) = net.fault_counts(sim);
        FabricReport {
            n_endpoints: net.n_endpoints(),
            interval_us,
            ticks,
            hotspot_occ_p99: self.cfg.hotspot_occ_p99,
            links,
            hotspots,
            faults_corrupted,
            faults_dropped,
            crc_failures: net.total_crc_failures(sim),
            samples,
        }
    }
}

impl FabricReport {
    /// Links carrying traffic, in entity order (the order collected).
    pub fn active_links(&self) -> impl Iterator<Item = &LinkSummary> + '_ {
        self.links.iter().filter(|l| l.packets > 0)
    }

    /// Prometheus text exposition (see module docs; byte-identical across
    /// same-seed runs).
    pub fn prometheus(&self) -> String {
        let mut p = PromText::new();
        p.type_line("hyades_fabric_ticks", "gauge");
        p.sample("hyades_fabric_ticks", &[], self.ticks as f64);
        p.type_line("hyades_fabric_endpoints", "gauge");
        p.sample("hyades_fabric_endpoints", &[], self.n_endpoints as f64);

        p.type_line("hyades_link_util_mean", "gauge");
        for l in &self.links {
            p.sample("hyades_link_util_mean", &[("link", &l.entity)], l.util_mean);
        }
        p.type_line("hyades_link_occ", "gauge");
        for l in &self.links {
            p.sample(
                "hyades_link_occ",
                &[("link", &l.entity), ("agg", "mean")],
                l.occ_mean,
            );
            p.sample(
                "hyades_link_occ",
                &[("link", &l.entity), ("agg", "p99")],
                l.occ_p99,
            );
            p.sample(
                "hyades_link_occ",
                &[("link", &l.entity), ("agg", "max")],
                l.occ_max,
            );
        }
        p.type_line("hyades_link_stall_us_total", "counter");
        for l in &self.links {
            p.sample(
                "hyades_link_stall_us_total",
                &[("link", &l.entity)],
                l.stall_us,
            );
        }
        p.type_line("hyades_link_packets_total", "counter");
        for l in &self.links {
            p.sample(
                "hyades_link_packets_total",
                &[("link", &l.entity)],
                l.packets as f64,
            );
        }
        p.type_line("hyades_link_bytes_total", "counter");
        for l in &self.links {
            p.sample(
                "hyades_link_bytes_total",
                &[("link", &l.entity)],
                l.bytes as f64,
            );
        }

        // NIU injection-port series, straight from the sample set
        // (BTreeMap order).
        p.type_line("hyades_niu_busy_us_total", "counter");
        for (k, s) in self.samples.iter() {
            if k.component == "arctic.niu" && k.metric == "busy_us" {
                let total: f64 = s.points.iter().map(|&(_, v)| v).sum();
                p.sample("hyades_niu_busy_us_total", &[("ep", &k.entity)], total);
            }
        }

        p.type_line("hyades_fabric_hotspot_occ_p99", "gauge");
        for h in &self.hotspots {
            p.sample(
                "hyades_fabric_hotspot_occ_p99",
                &[("link", &h.entity)],
                h.occ_p99,
            );
        }
        p.type_line("hyades_fault_total", "counter");
        p.sample(
            "hyades_fault_total",
            &[("kind", "corrupted")],
            self.faults_corrupted as f64,
        );
        p.sample(
            "hyades_fault_total",
            &[("kind", "dropped")],
            self.faults_dropped as f64,
        );
        p.type_line("hyades_crc_failures_total", "counter");
        p.sample("hyades_crc_failures_total", &[], self.crc_failures as f64);
        p.finish()
    }

    /// Deterministic per-run JSON manifest. `run` names the scenario;
    /// `seed` records what seeded it.
    pub fn json_manifest(&self, run: &str, seed: u64) -> String {
        let mut o = String::new();
        let _ = write!(
            o,
            "{{\n  \"run\": \"{}\",\n  \"seed\": {seed},\n  \"n_endpoints\": {},\n  \
             \"interval_us\": {},\n  \"ticks\": {},\n  \"hotspot_occ_p99_threshold\": {},\n",
            json_escape(run),
            self.n_endpoints,
            fixed(self.interval_us),
            self.ticks,
            fixed(self.hotspot_occ_p99),
        );
        o.push_str("  \"links\": [\n");
        for (i, l) in self.links.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"link\": \"{}\", \"samples\": {}, \"util_mean\": {}, \
                 \"occ_mean\": {}, \"occ_p99\": {}, \"occ_max\": {}, \"stalls\": {}, \
                 \"stall_us\": {}, \"packets\": {}, \"bytes\": {}}}{}\n",
                json_escape(&l.entity),
                l.samples,
                fixed(l.util_mean),
                fixed(l.occ_mean),
                fixed(l.occ_p99),
                fixed(l.occ_max),
                l.stalls,
                fixed(l.stall_us),
                l.packets,
                l.bytes,
                if i + 1 < self.links.len() { "," } else { "" },
            );
        }
        o.push_str("  ],\n  \"hotspots\": [\n");
        for (i, h) in self.hotspots.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"link\": \"{}\", \"occ_p99\": {}, \"util_mean\": {}, \
                 \"stall_us\": {}, \"flows\": [",
                json_escape(&h.entity),
                fixed(h.occ_p99),
                fixed(h.util_mean),
                fixed(h.stall_us),
            );
            for (j, f) in h.flows.iter().enumerate() {
                let _ = write!(
                    o,
                    "{}{{\"src\": {}, \"dst\": {}, \"packets\": {}}}",
                    if j > 0 { ", " } else { "" },
                    f.src,
                    f.dst,
                    f.packets,
                );
            }
            let _ = writeln!(
                o,
                "]}}{}",
                if i + 1 < self.hotspots.len() { "," } else { "" }
            );
        }
        let _ = write!(
            o,
            "  ],\n  \"faults\": {{\"corrupted\": {}, \"dropped\": {}, \"crc_failures\": {}}}\n}}\n",
            self.faults_corrupted, self.faults_dropped, self.crc_failures,
        );
        o
    }

    /// Both renderings bundled behind the unified
    /// [`Exporter`](hyades_telemetry::Exporter) API: `fabric.prom`
    /// (Prometheus exposition) and `fabric_manifest.json` (run
    /// manifest). The bytes are exactly what [`FabricReport::prometheus`]
    /// and [`FabricReport::json_manifest`] render.
    pub fn as_exporter(&self, run: &str, seed: u64) -> hyades_telemetry::Prebuilt {
        use hyades_telemetry::ArtifactKind;
        hyades_telemetry::Prebuilt::default()
            .with("fabric", ArtifactKind::Prom, self.prometheus())
            .with(
                "fabric_manifest",
                ArtifactKind::Json,
                self.json_manifest(run, seed),
            )
    }
}

/// Minimal JSON string escaping for entity labels and run names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ArcticConfig, SinkEndpoint};
    use crate::packet::{Packet, Priority};

    fn congested_run() -> FabricReport {
        let mut sim = Simulator::new();
        let eps: Vec<ActorId> = (0..16)
            .map(|_| sim.add_actor(SinkEndpoint::default()))
            .collect();
        let net = ArcticNetwork::build(&mut sim, &eps, ArcticConfig::default());
        let obs = Observatory::attach(&mut sim, &net, ObservatoryConfig::new(2.0, 120.0));
        // Hammer endpoint 0's down-link from many sources: a guaranteed
        // hotspot at the leaf.
        for s in 1..16u16 {
            for i in 0..30u32 {
                let pkt = Packet::new(s, 0, Priority::Low, (i % 0x7FF) as u16, vec![i; 22]);
                net.inject_at(&mut sim, SimTime::ZERO, pkt);
            }
        }
        sim.run();
        obs.collect(&sim, &net)
    }

    #[test]
    fn congestion_is_detected_with_contributing_flows() {
        let rep = congested_run();
        assert!(rep.ticks > 0);
        assert!(!rep.links.is_empty());
        assert!(
            !rep.hotspots.is_empty(),
            "a 15-to-1 hammer must produce a hotspot"
        );
        // The worst hotspot is the victim's leaf down-link, fed by flows
        // all destined for endpoint 0.
        let h = &rep.hotspots[0];
        assert_eq!(h.entity, "l0.w0.p0", "expected the leaf down-link: {h:?}");
        assert!(!h.flows.is_empty());
        assert!(h.flows.iter().all(|f| f.dst == 0), "{:?}", h.flows);
        assert!(h.occ_p99 > rep.hotspot_occ_p99);
        assert!(h.stall_us > 0.0, "congestion must show up as stalls");
    }

    #[test]
    fn exports_render_and_agree_with_the_report() {
        let rep = congested_run();
        let prom = rep.prometheus();
        assert!(prom.contains("# TYPE hyades_link_occ gauge"));
        assert!(prom.contains("hyades_fabric_hotspot_occ_p99{link=\"l0.w0.p0\"}"));
        let json = rep.json_manifest("congested", 0);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"run\": \"congested\""));
        assert!(json.contains("\"link\": \"l0.w0.p0\""));
        assert!(json.contains("\"faults\": {\"corrupted\": 0, \"dropped\": 0"));
    }

    #[test]
    fn exporter_bundle_matches_legacy_renderings() {
        use hyades_telemetry::Exporter as _;
        let rep = congested_run();
        let arts = rep.as_exporter("congested", 7).artifacts();
        assert_eq!(arts.len(), 2);
        assert_eq!(arts[0].file_name(), "fabric.prom");
        assert_eq!(arts[1].file_name(), "fabric_manifest.json");
        assert_eq!(arts[0].bytes, rep.prometheus());
        assert_eq!(arts[1].bytes, rep.json_manifest("congested", 7));
    }

    #[test]
    fn quiet_fabric_has_no_hotspots() {
        let mut sim = Simulator::new();
        let eps: Vec<ActorId> = (0..4)
            .map(|_| sim.add_actor(SinkEndpoint::default()))
            .collect();
        let net = ArcticNetwork::build(&mut sim, &eps, ArcticConfig::default());
        let obs = Observatory::attach(&mut sim, &net, ObservatoryConfig::new(2.0, 20.0));
        net.inject_at(
            &mut sim,
            SimTime::ZERO,
            Packet::new(0, 3, Priority::High, 1, vec![1, 2]),
        );
        sim.run();
        let rep = obs.collect(&sim, &net);
        assert!(rep.hotspots.is_empty());
        assert_eq!(rep.active_links().count(), 3, "one 3-stage path");
    }
}

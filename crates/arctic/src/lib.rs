//! # hyades-arctic — the Arctic Switch Fabric, simulated
//!
//! A packet-level model of the Arctic Switch Fabric (Boughton 1994, 1997),
//! the system-area network of the Hyades cluster in *"A Personal
//! Supercomputer for Climate Research"* (SC'99, §2.2).
//!
//! The simulated fabric reproduces the properties the paper's communication
//! library depends on:
//!
//! * **Fat-tree topology** built from 4×4 Arctic routers (2 down-ports,
//!   2 up-ports), a 2-ary n-tree supporting `N = 2^n` endpoints with full
//!   bisection bandwidth (`2 × N × 150 MByte/s` counting both directions).
//! * **150 MByte/s links** in each direction, with wormhole-style cut-through
//!   switching: each router stage adds a fall-through latency of **0.15 µs**
//!   while packet serialization overlaps across stages.
//! * **Two message priorities**: a high-priority packet is never blocked
//!   behind queued low-priority packets at an output port.
//! * **FIFO ordering** of packets sent between two nodes along the same
//!   path; the up-route selection can be deterministic (hashed, the mode the
//!   communication library uses to obtain ordering) or random (the header's
//!   "random uproute" feature, for load balancing).
//! * **CRC verification at every router stage** and at the endpoints; the
//!   software layer only checks a 1-bit status word. A fault-injection hook
//!   exercises this path in tests.
//!
//! The paper's packet format (Figure 1b) is carried faithfully: two 32-bit
//! header words followed by a payload of 2–22 32-bit words.

pub mod crc;
pub mod fault;
pub mod network;
pub mod observatory;
pub mod packet;
pub mod path;
pub mod router;
pub mod topology;
pub mod workload;

pub use network::{ArcticConfig, ArcticNetwork, Delivered};
pub use observatory::{FabricReport, Hotspot, LinkSummary, Observatory, ObservatoryConfig};
pub use packet::{Packet, Priority, MAX_PAYLOAD_WORDS, MIN_PAYLOAD_WORDS};
pub use path::{HopRecord, PathTrace};
pub use topology::FatTree;

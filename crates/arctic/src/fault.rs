//! Fault injection for exercising the CRC / 1-bit-status path.
//!
//! Arctic's link technology lets software "assume error-free operations";
//! corrupted packets are a catastrophic-failure case detected via CRC and a
//! 1-bit status word (§2.2). This module provides deterministic corruption
//! (and, for harsher scenarios, outright drops) of in-flight packets so
//! tests can verify the detection path end to end.
//!
//! Every injected fault is *observable*: [`FaultInjector::apply`] leaves a
//! flight-recorder crumb and bumps the `arctic.fault` counters in the
//! telemetry registry, so a run manifest shows exactly how many packets
//! were corrupted or dropped — faults never disappear silently into the
//! simulation.

use crate::packet::Packet;
use hyades_des::rng::SplitMix64;
use hyades_des::{ActorId, SimTime};
use hyades_fault::LinkFaultWindow;
use hyades_telemetry as telemetry;
use hyades_telemetry::flight;

/// Deterministically corrupts (and optionally drops) a configurable
/// fraction of packets passed through it. Rates are either constant
/// (the base `rate`/`drop_rate`) or scheduled: when `windows` is
/// non-empty, a packet entering the fabric inside a
/// [`LinkFaultWindow`] uses that window's rates and packets outside
/// every window fall back to the base rates (zero for plan-driven
/// injectors, so faults happen *only* inside the scheduled weather).
pub struct FaultInjector {
    rng: SplitMix64,
    /// Probability in [0, 1] that a packet gets a single bit flip.
    pub rate: f64,
    /// Probability in [0, 1] that a packet is dropped outright.
    pub drop_rate: f64,
    /// Scheduled rate overrides from a `hyades_fault::FaultPlan`.
    pub windows: Vec<LinkFaultWindow>,
    pub injected: u64,
    pub dropped: u64,
}

/// Fault configuration carried by
/// [`ArcticConfig`](crate::network::ArcticConfig): each injection port
/// derives its own deterministic [`FaultInjector`] from this profile.
#[derive(Clone, Copy, Debug)]
pub struct FaultProfile {
    pub seed: u64,
    /// Per-packet single-bit-flip probability.
    pub corrupt_rate: f64,
    /// Per-packet drop probability (checked before corruption).
    pub drop_rate: f64,
}

impl FaultInjector {
    pub fn new(seed: u64, rate: f64) -> Self {
        Self::with_drop_rate(seed, rate, 0.0)
    }

    pub fn with_drop_rate(seed: u64, rate: f64, drop_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        assert!(
            (0.0..=1.0).contains(&drop_rate),
            "drop_rate must be a probability"
        );
        FaultInjector {
            rng: SplitMix64::new(seed),
            rate,
            drop_rate,
            windows: Vec::new(),
            injected: 0,
            dropped: 0,
        }
    }

    pub fn from_profile(p: &FaultProfile, stream: u64) -> Self {
        // Mix the stream index so per-port injectors draw independent
        // sequences from one profile seed.
        let mut mix = SplitMix64::new(p.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self::with_drop_rate(mix.next_u64(), p.corrupt_rate, p.drop_rate)
    }

    /// Plan-driven injector: zero base rates, faults only inside the
    /// scheduled windows. `stream` mixes the per-port index into the
    /// plan seed so ports draw independent deterministic sequences.
    pub fn windowed(seed: u64, stream: u64, windows: Vec<LinkFaultWindow>) -> Self {
        let mut mix = SplitMix64::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut f = Self::with_drop_rate(mix.next_u64(), 0.0, 0.0);
        f.windows = windows;
        f
    }

    /// Effective (corrupt, drop) rates at simulated time `at`.
    fn rates_at(&self, at: SimTime) -> (f64, f64) {
        for w in &self.windows {
            if w.covers(at) {
                return (w.corrupt_rate, w.drop_rate);
            }
        }
        (self.rate, self.drop_rate)
    }

    /// Flip one random payload bit with probability `rate`. Returns true if
    /// the packet was corrupted.
    pub fn maybe_corrupt(&mut self, pkt: &mut Packet) -> bool {
        let rate = self.rate;
        self.corrupt_with(pkt, rate)
    }

    fn corrupt_with(&mut self, pkt: &mut Packet, rate: f64) -> bool {
        if rate <= 0.0 || self.rng.next_f64() >= rate {
            return false;
        }
        let word = self.rng.next_below(pkt.payload.len() as u64) as usize;
        let bit = self.rng.next_below(32) as u32;
        pkt.payload[word] ^= 1 << bit;
        self.injected += 1;
        true
    }

    /// Apply the full fault model to a packet about to enter the fabric.
    /// Returns `false` if the packet is dropped (the caller must not
    /// forward it). Both outcomes leave a flight-recorder crumb and a
    /// registry counter so the faults are visible in run manifests.
    pub fn apply(&mut self, pkt: &mut Packet, at: SimTime, actor: ActorId) -> bool {
        let (corrupt_rate, drop_rate) = self.rates_at(at);
        if drop_rate > 0.0 && self.rng.next_f64() < drop_rate {
            self.dropped += 1;
            flight::record(at, actor, "fault.drop", pkt.usr_tag as u64);
            telemetry::count("arctic.fault", "dropped", 1);
            return false;
        }
        if self.corrupt_with(pkt, corrupt_rate) {
            flight::record(at, actor, "fault.corrupt", pkt.usr_tag as u64);
            telemetry::count("arctic.fault", "corrupted", 1);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Priority;

    #[test]
    fn zero_rate_never_corrupts() {
        let mut f = FaultInjector::new(1, 0.0);
        let mut pkt = Packet::new(0, 1, Priority::Low, 0, vec![1, 2, 3]);
        for _ in 0..100 {
            assert!(!f.maybe_corrupt(&mut pkt));
        }
        assert!(pkt.verify());
        assert_eq!(f.injected, 0);
    }

    #[test]
    fn unit_rate_always_corrupts_and_crc_detects() {
        let mut f = FaultInjector::new(2, 1.0);
        for i in 0..50u32 {
            let mut pkt = Packet::new(0, 1, Priority::Low, 0, vec![i, i + 1, i + 2]);
            assert!(f.maybe_corrupt(&mut pkt));
            assert!(!pkt.verify(), "single bit flip must fail the CRC");
        }
        assert_eq!(f.injected, 50);
    }

    #[test]
    fn intermediate_rate_is_roughly_honoured() {
        let mut f = FaultInjector::new(3, 0.3);
        let mut hits = 0;
        for i in 0..1000u32 {
            let mut pkt = Packet::new(0, 1, Priority::Low, 0, vec![i, 0]);
            if f.maybe_corrupt(&mut pkt) {
                hits += 1;
            }
        }
        assert!((200..400).contains(&hits), "rate drifted: {hits}/1000");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_rate_rejected() {
        FaultInjector::new(0, 1.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_drop_rate_rejected() {
        FaultInjector::with_drop_rate(0, 0.0, -0.1);
    }

    #[test]
    fn apply_drops_at_unit_drop_rate_and_is_observable() {
        flight::install(16);
        let mut f = FaultInjector::with_drop_rate(7, 0.0, 1.0);
        let mut pkt = Packet::new(0, 1, Priority::Low, 42, vec![1, 2]);
        assert!(!f.apply(&mut pkt, SimTime::ZERO, ActorId(3)));
        assert_eq!(f.dropped, 1);
        let tr = flight::take().unwrap();
        let labels: Vec<&str> = tr.iter().map(|r| r.label).collect();
        assert_eq!(labels, ["fault.drop"]);
    }

    #[test]
    fn apply_corrupts_and_leaves_crumb() {
        flight::install(16);
        let mut f = FaultInjector::with_drop_rate(8, 1.0, 0.0);
        let mut pkt = Packet::new(0, 1, Priority::Low, 9, vec![1, 2]);
        assert!(f.apply(&mut pkt, SimTime::ZERO, ActorId(0)));
        assert!(!pkt.verify());
        assert_eq!(f.injected, 1);
        let tr = flight::take().unwrap();
        assert_eq!(tr.iter().next().unwrap().label, "fault.corrupt");
    }

    #[test]
    fn profile_streams_are_independent_but_deterministic() {
        let p = FaultProfile {
            seed: 11,
            corrupt_rate: 0.5,
            drop_rate: 0.1,
        };
        let mut a0 = FaultInjector::from_profile(&p, 0);
        let mut b0 = FaultInjector::from_profile(&p, 0);
        let mut a1 = FaultInjector::from_profile(&p, 1);
        let draw0 = a0.rng.next_u64();
        assert_eq!(draw0, b0.rng.next_u64(), "same stream, same draws");
        assert_ne!(draw0, a1.rng.next_u64(), "different streams diverge");
    }
}

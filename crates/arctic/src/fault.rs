//! Fault injection for exercising the CRC / 1-bit-status path.
//!
//! Arctic's link technology lets software "assume error-free operations";
//! corrupted packets are a catastrophic-failure case detected via CRC and a
//! 1-bit status word (§2.2). This module provides deterministic corruption
//! of in-flight packets so tests can verify the detection path end to end.

use crate::packet::Packet;
use hyades_des::rng::SplitMix64;

/// Deterministically corrupts a configurable fraction of packets passed
/// through [`FaultInjector::maybe_corrupt`].
pub struct FaultInjector {
    rng: SplitMix64,
    /// Probability in [0, 1] that a packet gets a single bit flip.
    pub rate: f64,
    pub injected: u64,
}

impl FaultInjector {
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FaultInjector {
            rng: SplitMix64::new(seed),
            rate,
            injected: 0,
        }
    }

    /// Flip one random payload bit with probability `rate`. Returns true if
    /// the packet was corrupted.
    pub fn maybe_corrupt(&mut self, pkt: &mut Packet) -> bool {
        if self.rng.next_f64() >= self.rate {
            return false;
        }
        let word = self.rng.next_below(pkt.payload.len() as u64) as usize;
        let bit = self.rng.next_below(32) as u32;
        pkt.payload[word] ^= 1 << bit;
        self.injected += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Priority;

    #[test]
    fn zero_rate_never_corrupts() {
        let mut f = FaultInjector::new(1, 0.0);
        let mut pkt = Packet::new(0, 1, Priority::Low, 0, vec![1, 2, 3]);
        for _ in 0..100 {
            assert!(!f.maybe_corrupt(&mut pkt));
        }
        assert!(pkt.verify());
        assert_eq!(f.injected, 0);
    }

    #[test]
    fn unit_rate_always_corrupts_and_crc_detects() {
        let mut f = FaultInjector::new(2, 1.0);
        for i in 0..50u32 {
            let mut pkt = Packet::new(0, 1, Priority::Low, 0, vec![i, i + 1, i + 2]);
            assert!(f.maybe_corrupt(&mut pkt));
            assert!(!pkt.verify(), "single bit flip must fail the CRC");
        }
        assert_eq!(f.injected, 50);
    }

    #[test]
    fn intermediate_rate_is_roughly_honoured() {
        let mut f = FaultInjector::new(3, 0.3);
        let mut hits = 0;
        for i in 0..1000u32 {
            let mut pkt = Packet::new(0, 1, Priority::Low, 0, vec![i, 0]);
            if f.maybe_corrupt(&mut pkt) {
                hits += 1;
            }
        }
        assert!((200..400).contains(&hits), "rate drifted: {hits}/1000");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_rate_rejected() {
        FaultInjector::new(0, 1.5);
    }
}

//! Property-based tests of the simulated fabric's delivery guarantees:
//! every injected packet is delivered exactly once, uncorrupted, and
//! packets between the same pair keep their injection order under the
//! deterministic routing mode (Arctic's per-path FIFO guarantee, §2.2).

use hyades_arctic::network::{ArcticConfig, ArcticNetwork, SinkEndpoint};
use hyades_arctic::packet::{Packet, Priority, UpRoute};
use hyades_des::{ActorId, SimTime, Simulator};
use hyades_telemetry::flight;
use proptest::prelude::*;

/// Dumps the flight recorder when a property fails: the router/NIU event
/// paths append to the thread-local `des::Trace` installed by
/// [`run_fabric`], and this guard prints the buffered event history while
/// the failing assertion unwinds — the "black box" for the wreck.
struct FlightDumpOnFailure;

impl Drop for FlightDumpOnFailure {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(tr) = flight::take() {
                eprintln!(
                    "--- arctic flight recorder: last {} events ({} dropped) ---\n{}",
                    tr.len(),
                    tr.dropped(),
                    tr.dump()
                );
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Injection {
    src: u16,
    dst: u16,
    at_us: u32,
    payload_words: usize,
    high: bool,
}

fn injection_strategy(n: u16) -> impl Strategy<Value = Injection> {
    (0..n, 0..n, 0u32..500, 2usize..=22, any::<bool>()).prop_map(
        |(src, dst, at_us, payload_words, high)| Injection {
            src,
            dst,
            at_us,
            payload_words,
            high,
        },
    )
}

fn run_fabric(n: u16, uproute: UpRoute, injections: &[Injection]) -> Vec<Vec<(u64, Packet)>> {
    // Arm the flight recorder: router enqueue/tx and NIU injection events
    // are recorded as they happen, bounded to the most recent 4096.
    flight::install(4096);
    let mut sim = Simulator::new();
    let sinks: Vec<ActorId> = (0..n)
        .map(|_| sim.add_actor(SinkEndpoint::default()))
        .collect();
    let cfg = ArcticConfig {
        uproute,
        ..ArcticConfig::default()
    };
    let net = ArcticNetwork::build(&mut sim, &sinks, cfg);
    for (seq, inj) in injections.iter().enumerate() {
        let mut payload = vec![0u32; inj.payload_words];
        payload[0] = seq as u32;
        let pkt = Packet::new(
            inj.src,
            inj.dst,
            if inj.high {
                Priority::High
            } else {
                Priority::Low
            },
            (seq % 0x7FF) as u16,
            payload,
        );
        net.inject_at(&mut sim, SimTime::from_us_f64(inj.at_us as f64), pkt);
    }
    sim.run();
    sinks
        .iter()
        .map(|&id| {
            sim.actor::<SinkEndpoint>(id)
                .deliveries
                .iter()
                .map(|(t, p)| (t.as_ps(), p.clone()))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_packet_delivered_exactly_once_uncorrupted(
        injections in prop::collection::vec(injection_strategy(8), 1..120),
        random_route in any::<bool>(),
    ) {
        let uproute = if random_route { UpRoute::Random } else { UpRoute::SourceSpread };
        let _flight_dump = FlightDumpOnFailure;
        let delivered = run_fabric(8, uproute, &injections);
        let mut seen = vec![0u32; injections.len()];
        for (dst, sink) in delivered.iter().enumerate() {
            for (_, pkt) in sink {
                prop_assert!(!pkt.corrupted);
                prop_assert_eq!(pkt.dst as usize, dst, "misrouted packet");
                let seq = pkt.payload[0] as usize;
                prop_assert!(seq < injections.len());
                prop_assert_eq!(injections[seq].dst as usize, dst);
                prop_assert_eq!(injections[seq].src, pkt.src);
                seen[seq] += 1;
            }
        }
        for (seq, &count) in seen.iter().enumerate() {
            prop_assert_eq!(count, 1, "packet {} delivered {} times", seq, count);
        }
    }

    #[test]
    fn same_pair_same_priority_is_fifo_under_deterministic_routing(
        injections in prop::collection::vec(injection_strategy(8), 1..120),
    ) {
        // Make the ordering well-defined: sort by injection time; packets
        // of a pair injected at the same microsecond keep vector order
        // (the queue breaks time ties by insertion sequence).
        let mut inj = injections.clone();
        inj.sort_by_key(|i| i.at_us);
        let _flight_dump = FlightDumpOnFailure;
        let delivered = run_fabric(8, UpRoute::SourceSpread, &inj);
        // For each (src, dst, priority) class, delivery order must match
        // injection order.
        for sink in &delivered {
            let mut last_seen: std::collections::HashMap<(u16, bool), usize> =
                std::collections::HashMap::new();
            for (_, pkt) in sink {
                let seq = pkt.payload[0] as usize;
                let key = (pkt.src, pkt.priority == Priority::High);
                if let Some(&prev) = last_seen.get(&key) {
                    // Same pair & class: injection times must be
                    // non-decreasing along the delivery order.
                    prop_assert!(
                        inj[prev].at_us <= inj[seq].at_us
                            || (inj[prev].at_us == inj[seq].at_us),
                        "FIFO violated: {} then {}", prev, seq
                    );
                    if inj[prev].at_us == inj[seq].at_us {
                        prop_assert!(prev < seq, "tie order violated: {} then {}", prev, seq);
                    }
                }
                last_seen.insert(key, seq);
            }
        }
    }
}

/// The flight recorder actually sees the router/NIU event paths: a short
/// deterministic run leaves injection, enqueue, and transmit records in
/// the buffer (guards against the instrumentation silently rotting).
#[test]
fn flight_recorder_captures_router_and_niu_events() {
    let injections = [
        Injection {
            src: 0,
            dst: 7,
            at_us: 0,
            payload_words: 4,
            high: true,
        },
        Injection {
            src: 3,
            dst: 1,
            at_us: 2,
            payload_words: 8,
            high: false,
        },
    ];
    let _ = run_fabric(8, UpRoute::SourceSpread, &injections);
    let tr = flight::take().expect("run_fabric installs the recorder");
    assert!(!tr.is_empty());
    for label in ["txport.inject", "router.enqueue", "router.tx"] {
        assert!(
            tr.iter().any(|r| r.label == label),
            "no '{label}' record in:\n{}",
            tr.dump()
        );
    }
    // Packet 0's injection is the first record of its path.
    assert_eq!(tr.last_matching("txport.inject", 2).len(), 2);
}

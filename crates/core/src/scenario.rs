//! High-level scenario builders: the entry points the examples use.

use hyades_gcm::config::ModelConfig;
use hyades_gcm::coupler::CoupledModel;
use hyades_gcm::decomp::Decomp;
use hyades_gcm::driver::Model;
use hyades_gcm::grid::{stretched_levels, Grid};

/// The paper's coupled configuration at 2.8125° (atmosphere: 5 levels,
/// ocean: 15 levels with idealized continents), as a single-rank
/// functional run. `couple_every` steps between boundary exchanges.
pub fn paper_coupled_scenario(couple_every: u64) -> CoupledModel {
    let d = Decomp::blocks(128, 64, 1, 1, 3);
    let atmos = Model::new(ModelConfig::atmosphere_2p8125(d), 0);
    let ocean = Model::new(ModelConfig::ocean_2p8125(d), 0);
    CoupledModel::new(atmos, ocean, couple_every)
}

/// A reduced-size coupled scenario for fast demonstrations and tests:
/// `nx × ny` grid, shorter time steps, same physics.
pub fn small_coupled_scenario(nx: usize, ny: usize, couple_every: u64) -> CoupledModel {
    let d = Decomp::blocks(nx, ny, 1, 1, 3);
    let mut acfg = ModelConfig::atmosphere_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
    acfg.grid = Grid::global(nx, ny, 5, 78.75, vec![2.0e4; 5]);
    acfg.decomp = d;
    let mut ocfg = ModelConfig::ocean_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
    ocfg.grid = Grid::global(nx, ny, 15, 78.75, stretched_levels(15, 4000.0));
    ocfg.decomp = d;
    ocfg.continents = true;
    let atmos = Model::new(acfg, 0);
    let ocean = Model::new(ocfg, 0);
    CoupledModel::new(atmos, ocean, couple_every)
}

/// A standalone wind-driven ocean configuration (e.g. for gyre
/// spin-up experiments) on a `px × py` decomposition.
pub fn ocean_gyre_config(nx: usize, ny: usize, nz: usize, px: usize, py: usize) -> ModelConfig {
    let d = Decomp::blocks(nx, ny, px, py, 3);
    let mut cfg = ModelConfig::test_ocean(nx, ny, nz, d);
    cfg.forcing = hyades_gcm::config::SurfaceForcing::Climatology;
    cfg.continents = false;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyades_comms::SerialWorld;

    #[test]
    fn small_coupled_scenario_steps() {
        let mut c = small_coupled_scenario(16, 8, 2);
        let mut wa = SerialWorld;
        let mut wo = SerialWorld;
        for _ in 0..4 {
            let (sa, so) = c.step(&mut wa, &mut wo);
            assert!(sa.cg_converged && so.cg_converged);
        }
        assert!(c.atmos.state.is_finite() && c.ocean.state.is_finite());
    }

    #[test]
    fn gyre_config_is_forced() {
        let cfg = ocean_gyre_config(16, 8, 4, 1, 1);
        assert_eq!(cfg.forcing, hyades_gcm::config::SurfaceForcing::Climatology);
    }
}

//! The telemetry tour: one instrumented run through every tier.
//!
//! Exercises the whole flight-recorder stack in a single deterministic
//! harness:
//!
//! 1. a 2×2-rank functional GCM run under a [`TimedWorld`] with per-rank
//!    telemetry recorders — PS/DS phase attribution, charged comm and
//!    compute spans, and the metric registry;
//! 2. a DES microbenchmark pass (exchange + global sum on the simulated
//!    Arctic fabric) with the event-timeline spans from the router, NIU,
//!    and comms actors, plus the flight recorder ring;
//! 3. a model-vs-measured phase report lining the run's charged PS/DS
//!    seconds up against eqs. (4)–(13) of the paper.
//!
//! Everything is a pure function of `seed`: two runs with the same seed
//! produce byte-identical artifacts (the determinism test pins this), and
//! different seeds perturb both the physics and the microbench shapes.

use hyades_cluster::interconnect::{arctic_paper, ExchangeShape, Interconnect};
use hyades_comms::exchange::{measure_exchange, measure_exchange_faulty};
use hyades_comms::gsum::{measure_gsum, measure_gsum_faulty};
use hyades_comms::{RecoveryCounters, ThreadWorld, TimedWorld};
use hyades_des::rng::SplitMix64;
use hyades_fault::FaultPlan;
use hyades_gcm::config::{ModelConfig, SurfaceForcing};
use hyades_gcm::coupler::CoupledModel;
use hyades_gcm::decomp::Decomp;
use hyades_gcm::driver::Model;
use hyades_gcm::grid::{stretched_levels, Grid};
use hyades_gcm::monitor::{RunMonitor, SentinelConfig};
use hyades_gcm::resilient::ResilientRunner;
use hyades_perf::model::PerfModel;
use hyades_perf::params::{DsParams, PsParams};
use hyades_perf::phases::{self, MeasuredPhases, StepSample};
use hyades_startx::HostParams;
use hyades_telemetry as telemetry;
use hyades_telemetry::artifact::{Artifact, ArtifactKind, Prebuilt};
use hyades_telemetry::{flight, RankTelemetry, RunTelemetry};
use std::fmt::Write as _;

/// Grid/decomposition constants of the tour run.
const NX: usize = 16;
const NY: usize = 8;
const NZ: usize = 4;
const PX: usize = 2;
const PY: usize = 2;
const NRANKS: usize = PX * PY;
const STEPS: usize = 4;

/// Sustained kernel rates used both to charge compute time and as the
/// model's `Fps`/`Fds` (Figure 11's values).
const FPS_MFLOPS: f64 = 50.0;
const FDS_MFLOPS: f64 = 60.0;

/// One configuration for every tour entry point.
///
/// The four tours (profiling E14, run-health E18, critical-path E19,
/// fault-recovery E21) used to each grow their own argument list; this
/// builder is the single shared surface. `seed` is the only required
/// input — everything else has the historical defaults, so
/// `TourConfig::new(seed).run_tour()` is byte-identical to the old
/// `run(seed)` (which survives as a shim over exactly that call).
#[derive(Clone, Debug)]
pub struct TourConfig {
    /// Seeds the physics perturbation and the microbench shapes.
    pub seed: u64,
    /// GCM steps of the single-model profiling tour.
    pub steps: usize,
    /// Coupled steps of the diag/critpath/resilient tours.
    pub coupled_steps: usize,
    /// Injected compute straggler (critical-path tour only).
    pub straggler: Option<Straggler>,
    /// Fault schedule: drives the resilient tour's crash/rollback and
    /// the DES recovery legs' link faults. Empty means fault-free.
    pub fault_plan: FaultPlan,
    /// Checkpoint cadence of the resilient tour, in coupled steps (must
    /// be a multiple of the coupling interval, 2).
    pub checkpoint_every: u64,
    /// Record per-op comm logs (feeds Chrome flow events and the
    /// critical-path DAG). Off saves memory but drops the arrows.
    pub commlog: bool,
    /// Install the DES flight recorder during microbench legs.
    pub flight: bool,
}

impl TourConfig {
    pub fn new(seed: u64) -> TourConfig {
        TourConfig {
            seed,
            steps: STEPS,
            coupled_steps: CSTEPS,
            straggler: None,
            fault_plan: FaultPlan::default(),
            checkpoint_every: 2,
            commlog: true,
            flight: true,
        }
    }

    pub fn steps(mut self, steps: usize) -> TourConfig {
        self.steps = steps;
        self
    }

    pub fn coupled_steps(mut self, steps: usize) -> TourConfig {
        self.coupled_steps = steps;
        self
    }

    pub fn straggler(mut self, s: Straggler) -> TourConfig {
        self.straggler = Some(s);
        self
    }

    pub fn fault_plan(mut self, plan: FaultPlan) -> TourConfig {
        self.fault_plan = plan;
        self
    }

    pub fn checkpoint_every(mut self, every: u64) -> TourConfig {
        self.checkpoint_every = every;
        self
    }

    pub fn commlog(mut self, on: bool) -> TourConfig {
        self.commlog = on;
        self
    }

    pub fn flight(mut self, on: bool) -> TourConfig {
        self.flight = on;
        self
    }

    /// The demonstration fault schedule the resilient tour and bench
    /// use: a mid-run rank crash plus a seeded window of link corruption
    /// and one NIU stall, so every recovery mechanism (rollback/replay,
    /// CRC retransmit, stall timeout) fires in one run.
    pub fn demo_fault_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .rank_crash(1, 3)
            .link_window(0.0, 60.0, 0.2, 0.1)
            .niu_stall(1, 5.0, 25.0)
    }
}

/// Everything the tour produces.
pub struct TourArtifacts {
    /// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
    pub chrome_json: String,
    /// Deterministic text summary of spans, counters, stats, histograms,
    /// with the DES flight-recorder dump appended.
    pub text_summary: String,
    /// Model-vs-measured phase report with per-term residuals.
    pub phase_report: String,
    /// Per-step model-vs-measured residual series (drift over the run,
    /// not just the end-state average).
    pub residual_series: String,
    /// Largest |relative residual| over the four phase terms.
    pub max_abs_residual: f64,
    /// Largest |per-step residual| over the run.
    pub max_step_residual: f64,
    /// Total spans across all ranks (sanity handle for tests).
    pub span_count: usize,
}

/// Per-worker results shipped back from the fan-out.
struct RankRun {
    telemetry: RankTelemetry,
    /// Stamped comm log (feeds the Chrome flow events).
    stamped: Vec<telemetry::commlog::Stamped>,
    total_cg_iterations: u64,
    wet_cells: u64,
    wet_columns: u64,
    measured_nps: f64,
    measured_nds: f64,
    /// This rank's per-step charged phase deltas + iteration counts.
    steps: Vec<StepSample>,
}

fn run_rank<W: hyades_comms::CommWorld>(world: &mut W, tour: &TourConfig) -> RankRun {
    let rank = world.rank();
    telemetry::enable_with_rates(rank, FPS_MFLOPS, FDS_MFLOPS);
    if tour.commlog {
        telemetry::commlog::install();
    }
    let d = Decomp::blocks(NX, NY, PX, PY, 3);
    let cfg = ModelConfig::test_ocean(NX, NY, NZ, d);
    let mut m = Model::new(cfg, rank);
    // Seeded perturbation of the initial stratification: makes the run a
    // genuine function of `seed` (solver trajectories, residuals, and the
    // exported artifacts all move with it).
    let mut rng =
        SplitMix64::new(tour.seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for (i, j, k) in m.state.theta.clone().interior() {
        m.state.theta.add(i, j, k, (rng.next_f64() - 0.5) * 0.2);
    }
    let net = arctic_paper();
    let mut timed = TimedWorld::new(world, &net);
    let mut steps = Vec::with_capacity(tour.steps);
    for _ in 0..tour.steps {
        let before = telemetry::phase_totals();
        let s = m.step(&mut timed);
        assert!(s.cg_converged, "tour solver diverged");
        let after = telemetry::phase_totals();
        steps.push(StepSample {
            ni: s.cg_iterations as u64,
            measured: MeasuredPhases {
                ps_compute_s: (after.ps_compute - before.ps_compute).as_secs_f64(),
                ps_comm_s: (after.ps_comm - before.ps_comm).as_secs_f64(),
                ds_compute_s: (after.ds_compute - before.ds_compute).as_secs_f64(),
                ds_comm_s: (after.ds_comm - before.ds_comm).as_secs_f64(),
            },
        });
    }
    let (nps, nds) = m.measured_n_coefficients();
    RankRun {
        stamped: telemetry::commlog::take_stamped(),
        telemetry: telemetry::disable().expect("telemetry was enabled"),
        total_cg_iterations: m.total_cg_iterations,
        wet_cells: m.masks.wet_cells,
        wet_columns: m.masks.wet_columns(),
        measured_nps: nps,
        measured_nds: nds,
        steps,
    }
}

/// The DES microbenchmark leg: exchange + butterfly gsum on the simulated
/// fabric, recorded as event-timeline spans under a dedicated rank, with
/// the flight recorder capturing router/NIU/comms breadcrumbs.
fn run_microbench(tour: &TourConfig) -> (RankTelemetry, String) {
    let seed = tour.seed;
    telemetry::enable_with_rates(NRANKS, FPS_MFLOPS, FDS_MFLOPS);
    if tour.flight {
        flight::install(4096);
    }
    let host = HostParams::default();
    let leg_bytes = 256 + (seed % 7) * 64;
    let t_exch = measure_exchange(host, 2, 2, leg_bytes);
    let values: Vec<f64> = (0..8)
        .map(|i| ((seed >> (i % 8)) & 0xF) as f64 + i as f64)
        .collect();
    let g = measure_gsum(host, &values, false);
    telemetry::observe_duration_us("tour.microbench", "exchange_elapsed_us", t_exch);
    telemetry::observe_duration_us("tour.microbench", "gsum_elapsed_us", g.elapsed);
    telemetry::count("tour.microbench", "exchange_leg_bytes", leg_bytes);
    let dump = match flight::take() {
        Some(tr) => format!(
            "[flight recorder] {} events ({} dropped)\n{}",
            tr.len(),
            tr.dropped(),
            tr.dump()
        ),
        None => String::from("[flight recorder] not installed\n"),
    };
    let tel = telemetry::disable().expect("telemetry was enabled");
    (tel, dump)
}

/// Build the analytical model for one model instance on the tour's 2×2
/// decomposition: `nz` levels, the run's measured flop coefficients, and
/// the same interconnect cost model `TimedWorld` charged against.
fn model_for(
    net: &dyn Interconnect,
    nz: usize,
    nps: f64,
    nds: f64,
    wet_cells: u64,
    wet_columns: u64,
) -> PerfModel {
    let (tx, ty) = (NX / PX, NY / PY);
    let elem = 8u64;
    // One 3-D field exchange: x phase moves width-3 strips to 2 neighbors
    // (send + receive legs each), then y phase moves halo-widened rows.
    let xleg3 = (3 * ty * nz) as u64 * elem;
    let yleg3 = ((tx + 6) * 3 * nz) as u64 * elem;
    let texch_xyz = net.exchange_time(&ExchangeShape::from_legs(vec![
        xleg3, xleg3, xleg3, xleg3, yleg3, yleg3, yleg3, yleg3,
    ]));
    // One 2-D field exchange, width 1.
    let xleg2 = ty as u64 * elem;
    let yleg2 = (tx + 2) as u64 * elem;
    let texch_xy = net.exchange_time(&ExchangeShape::from_legs(vec![
        xleg2, xleg2, xleg2, xleg2, yleg2, yleg2, yleg2, yleg2,
    ]));
    PerfModel {
        ps: PsParams {
            nps,
            nxyz: wet_cells,
            texch_xyz_us: texch_xyz.as_us_f64(),
            fps_mflops: FPS_MFLOPS,
        },
        ds: DsParams {
            nds,
            nxy: wet_columns,
            tgsum_us: net.gsum_time(NRANKS as u32).as_us_f64(),
            texch_xy_us: texch_xy.as_us_f64(),
            fds_mflops: FDS_MFLOPS,
        },
    }
}

/// The analytical model matching the single-model tour configuration.
fn tour_model(net: &dyn Interconnect, rank0: &RankRun) -> PerfModel {
    model_for(
        net,
        NZ,
        rank0.measured_nps,
        rank0.measured_nds,
        rank0.wet_cells,
        rank0.wet_columns,
    )
}

/// Run the full tour for `seed` with the default [`TourConfig`].
pub fn run(seed: u64) -> TourArtifacts {
    TourConfig::new(seed).run_tour()
}

impl TourConfig {
    /// The profiling tour (E14): instrumented GCM fan-out + DES
    /// microbench + model-vs-measured phase report.
    pub fn run_tour(&self) -> TourArtifacts {
        run_tour_impl(self)
    }
}

fn run_tour_impl(tour: &TourConfig) -> TourArtifacts {
    // 1. Instrumented GCM fan-out.
    let net = arctic_paper();
    let mut runs = ThreadWorld::run(NRANKS, |w| run_rank(w, tour));

    // 2. DES microbench on this thread, as an extra "rank" holding the
    //    event timeline.
    let (bench_tel, flight_dump) = run_microbench(tour);

    // 3. Model-vs-measured phase comparison (mean over the GCM ranks;
    //    every rank ran the same-shape tile, so the mean is the per-rank
    //    story eqs. (4)–(13) tell).
    let model = tour_model(&net, &runs[0]);
    let mut totals = telemetry::PhaseTotals::default();
    for r in &runs {
        totals.merge(&r.telemetry.phases);
    }
    let n = NRANKS as f64;
    let measured = MeasuredPhases {
        ps_compute_s: totals.ps_compute.as_secs_f64() / n,
        ps_comm_s: totals.ps_comm.as_secs_f64() / n,
        ds_compute_s: totals.ds_compute.as_secs_f64() / n,
        ds_comm_s: totals.ds_comm.as_secs_f64() / n,
    };
    let ni_total = runs[0].total_cg_iterations;
    let cmp = phases::compare(&model, tour.steps as u64, ni_total, &measured);
    let max_abs_residual = cmp.max_abs_residual();
    let phase_report = cmp.render();

    // Per-step residual series: each step's sample is the rank-mean of
    // the charged phase deltas (iteration counts are global, so any
    // rank's `ni` works).
    let step_samples: Vec<StepSample> = (0..tour.steps)
        .map(|i| StepSample {
            ni: runs[0].steps[i].ni,
            measured: MeasuredPhases {
                ps_compute_s: runs
                    .iter()
                    .map(|r| r.steps[i].measured.ps_compute_s)
                    .sum::<f64>()
                    / n,
                ps_comm_s: runs
                    .iter()
                    .map(|r| r.steps[i].measured.ps_comm_s)
                    .sum::<f64>()
                    / n,
                ds_compute_s: runs
                    .iter()
                    .map(|r| r.steps[i].measured.ds_compute_s)
                    .sum::<f64>()
                    / n,
                ds_comm_s: runs
                    .iter()
                    .map(|r| r.steps[i].measured.ds_comm_s)
                    .sum::<f64>()
                    / n,
            },
        })
        .collect();
    let series = phases::step_residual_series(&model, &step_samples);
    let max_step_residual = series.max_abs_residual();
    let residual_series = series.render();

    // 4. Merge per-rank telemetry (rank order, then the bench rank) and
    //    export both formats. Matched send→recv pairs from the stamped
    //    comm logs become Chrome flow events, so the cross-rank arrows
    //    are visible in the trace viewer.
    let stamped: Vec<Vec<telemetry::commlog::Stamped>> = runs
        .iter_mut()
        .map(|r| std::mem::take(&mut r.stamped))
        .collect();
    let mut ranks: Vec<RankTelemetry> = runs.drain(..).map(|r| r.telemetry).collect();
    ranks.push(bench_tel);
    let mut run_tel = RunTelemetry::from_ranks(ranks);
    run_tel.set_flows(telemetry::flows_from_stamped(&stamped));
    let span_count = run_tel.span_count();
    let chrome_json = run_tel.chrome_trace_json();
    let text_summary = format!("{}\n{}", run_tel.text_summary(), flight_dump);

    TourArtifacts {
        chrome_json,
        text_summary,
        phase_report,
        residual_series,
        max_abs_residual,
        max_step_residual,
        span_count,
    }
}

// --- the coupled diagnostics tour -------------------------------------

/// Steps of the coupled run-health tour.
const CSTEPS: usize = 4;

/// Everything the coupled diagnostics tour produces. Every artifact is a
/// pure function of `seed` (pinned byte-identical by
/// `tests/determinism.rs`).
pub struct DiagArtifacts {
    /// Per-timestep diagnostics tables for both isomorphs (MITgcm
    /// monitor style).
    pub text: String,
    /// Machine-readable series (consumed by the bench differ).
    pub json: String,
    /// Prometheus gauges for the final state of both series.
    pub prom: String,
    /// Steps monitored per isomorph.
    pub steps: u64,
    /// Sentinel trips across both isomorphs (0 for a healthy run).
    pub sentinel_trips: u64,
    /// CG iterations-per-solve quantiles over every solve of the run
    /// (both isomorphs, from the telemetry histogram).
    pub cg_iters_p50: u64,
    pub cg_iters_p99: u64,
    /// Largest advective CFL seen by either isomorph.
    pub max_cfl: f64,
}

/// The coupled pair of the diagnostics tour: miniature 2.8125°-style
/// atmosphere over a test ocean, both on the tour's 2×2 decomposition.
fn coupled_pair(rank: usize) -> CoupledModel {
    let d = Decomp::blocks(NX, NY, PX, PY, 3);
    let mut acfg = ModelConfig::atmosphere_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
    acfg.grid = Grid::global(NX, NY, 5, 60.0, vec![2.0e4; 5]);
    acfg.decomp = d;
    acfg.dt = 600.0;
    let mut ocfg = ModelConfig::test_ocean(NX, NY, 6, d);
    ocfg.grid = Grid::global(NX, NY, 6, 60.0, stretched_levels(6, 3000.0));
    ocfg.forcing = SurfaceForcing::Coupled;
    CoupledModel::new(Model::new(acfg, rank), Model::new(ocfg, rank), 2)
}

struct CoupledRankRun {
    telemetry: RankTelemetry,
    atmos: RunMonitor,
    ocean: RunMonitor,
}

/// Build the seeded coupled pair shared by the diag/critpath/resilient
/// tours: `coupled_pair` for this rank with the ocean stratification
/// perturbed by `seed` and the boundary fields re-derived so the coupled
/// state stays self-consistent.
fn seeded_coupled_pair(rank: usize, seed: u64) -> CoupledModel {
    let mut c = coupled_pair(rank);
    let mut rng = SplitMix64::new(seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for (i, j, k) in c.ocean.state.theta.clone().interior() {
        c.ocean
            .state
            .theta
            .add(i, j, k, (rng.next_f64() - 0.5) * 0.2);
    }
    c.exchange_boundary_conditions();
    c
}

fn run_coupled_rank<W: hyades_comms::CommWorld>(
    world: &mut W,
    tour: &TourConfig,
) -> CoupledRankRun {
    let rank = world.rank();
    telemetry::enable_with_rates(rank, FPS_MFLOPS, FDS_MFLOPS);
    let mut c = seeded_coupled_pair(rank, tour.seed);

    let net = arctic_paper();
    let mut timed = TimedWorld::new(world, &net);
    let mut atmos = RunMonitor::new("atmos", SentinelConfig::default());
    let mut ocean = RunMonitor::new("ocean", SentinelConfig::default());
    for _ in 0..tour.coupled_steps {
        let healthy = c.step_monitored(&mut timed, &mut atmos, &mut ocean);
        assert!(
            healthy,
            "coupled diag tour tripped the sentinel: {}",
            atmos
                .blowup()
                .or(ocean.blowup())
                .map(|r| r.render())
                .unwrap_or_default()
        );
    }
    CoupledRankRun {
        telemetry: telemetry::disable().expect("telemetry was enabled"),
        atmos,
        ocean,
    }
}

/// Run the coupled diagnostics tour: a 2×2-rank coupled
/// atmosphere–ocean run under `TimedWorld` with per-step run-health
/// monitoring and the sentinel armed. Every diagnostic is reduced
/// through the communicator, so all ranks hold identical series; rank
/// 0's is *the* global series.
pub fn run_coupled_diag(seed: u64) -> DiagArtifacts {
    TourConfig::new(seed).run_coupled_diag()
}

impl TourConfig {
    /// The run-health tour (E18): monitored coupled run, all three
    /// diagnostics renderings.
    pub fn run_coupled_diag(&self) -> DiagArtifacts {
        run_coupled_diag_impl(self)
    }
}

fn run_coupled_diag_impl(tour: &TourConfig) -> DiagArtifacts {
    let runs = ThreadWorld::run(NRANKS, |w| run_coupled_rank(w, tour));
    let r0 = &runs[0];

    let text = format!(
        "{}\n{}",
        r0.atmos.series().render_text(),
        r0.ocean.series().render_text()
    );
    let json = format!(
        "{{\"diag\":[{},{}]}}",
        r0.atmos.series().render_json(),
        r0.ocean.series().render_json()
    );
    let prom = format!(
        "{}{}",
        r0.atmos.series().render_prom("hyades"),
        r0.ocean.series().render_prom("hyades")
    );

    let (cg_iters_p50, cg_iters_p99) = r0
        .telemetry
        .registry
        .hist("gcm.cg", "iterations_per_solve")
        .map(|h| (h.p50(), h.p99()))
        .unwrap_or((0, 0));
    let max_cfl = r0
        .atmos
        .series()
        .max("cfl_adv")
        .unwrap_or(f64::NAN)
        .max(r0.ocean.series().max("cfl_adv").unwrap_or(f64::NAN));

    DiagArtifacts {
        text,
        json,
        prom,
        steps: r0.ocean.steps(),
        // Trip decisions come from reduced values, so every rank agrees;
        // rank 0's count is the global count.
        sentinel_trips: r0.atmos.trips() + r0.ocean.trips(),
        cg_iters_p50,
        cg_iters_p99,
        max_cfl,
    }
}

// --- the critical-path tour -------------------------------------------

/// A deliberate per-rank compute perturbation: before each timestep's
/// communication, `rank` is charged `extra_flops` of PS compute, slowing
/// its entry into every exchange and reduction of that step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Straggler {
    pub rank: usize,
    pub extra_flops: u64,
}

/// Everything the critical-path tour produces. Every artifact is a pure
/// function of `(seed, straggler)` (pinned byte-identical by
/// `tests/determinism.rs`).
pub struct CritArtifacts {
    /// The full critical-path report (per-step table, chain, slack,
    /// attribution, wait-vs-wire).
    pub report: String,
    /// Machine-readable summary (consumed by the bench differ).
    pub json: String,
    /// Chrome trace with flow events linking matched sends to recvs.
    pub chrome_json: String,
    /// Model-predicted vs observed per-step critical-path residuals.
    pub slack_report: String,
    /// Largest |per-step residual| of the slack series.
    pub max_step_residual: f64,
    /// The straggler the profiler attributes the path to.
    pub blame: Option<(usize, telemetry::Phase)>,
    /// Whole-run critical-path length in microseconds.
    pub total_path_us: f64,
    /// Matched send→recv pairs in the run.
    pub messages: usize,
}

struct CritRankRun {
    telemetry: RankTelemetry,
    stamped: Vec<telemetry::commlog::Stamped>,
    /// Per-step CG iteration counts for each isomorph (globally reduced,
    /// so identical on every rank).
    ni_atmos: Vec<u64>,
    ni_ocean: Vec<u64>,
    atmos_coeffs: (f64, f64, u64, u64),
    ocean_coeffs: (f64, f64, u64, u64),
}

fn run_critpath_rank<W: hyades_comms::CommWorld>(world: &mut W, tour: &TourConfig) -> CritRankRun {
    let rank = world.rank();
    telemetry::enable_with_rates(rank, FPS_MFLOPS, FDS_MFLOPS);
    telemetry::commlog::install();
    let mut c = seeded_coupled_pair(rank, tour.seed);

    let net = arctic_paper();
    let mut timed = TimedWorld::new(world, &net);
    let mut atmos = RunMonitor::new("atmos", SentinelConfig::default());
    let mut ocean = RunMonitor::new("ocean", SentinelConfig::default());
    let mut ni_atmos = Vec::with_capacity(tour.coupled_steps);
    let mut ni_ocean = Vec::with_capacity(tour.coupled_steps);
    for s in 0..tour.coupled_steps {
        telemetry::commlog::mark_step(s as u32 + 1);
        if let Some(st) = tour.straggler {
            if st.rank == rank {
                // The perturbation lands *before* the step's first comm
                // op: compute after a rank's last recorded event is
                // invisible to the DAG.
                telemetry::charge_flops(telemetry::Phase::Ps, st.extra_flops);
            }
        }
        let (sa, so, healthy) = c.step_monitored_full(&mut timed, &mut atmos, &mut ocean);
        assert!(healthy, "critpath tour tripped the sentinel");
        ni_atmos.push(sa.cg_iterations as u64);
        ni_ocean.push(so.cg_iterations as u64);
    }
    let (anps, ands) = c.atmos.measured_n_coefficients();
    let (onps, onds) = c.ocean.measured_n_coefficients();
    CritRankRun {
        stamped: telemetry::commlog::take_stamped(),
        telemetry: telemetry::disable().expect("telemetry was enabled"),
        ni_atmos,
        ni_ocean,
        atmos_coeffs: (
            anps,
            ands,
            c.atmos.masks.wet_cells,
            c.atmos.masks.wet_columns(),
        ),
        ocean_coeffs: (
            onps,
            onds,
            c.ocean.masks.wet_cells,
            c.ocean.masks.wet_columns(),
        ),
    }
}

/// Run the critical-path tour: the coupled diagnostics run, stamped and
/// reconstructed into the global event DAG, with an optional injected
/// straggler. Returns the byte-stable report/JSON/trace plus the
/// model-vs-path residuals.
pub fn run_critpath(seed: u64, straggler: Option<Straggler>) -> CritArtifacts {
    let mut cfg = TourConfig::new(seed);
    cfg.straggler = straggler;
    cfg.run_critpath()
}

impl TourConfig {
    /// The critical-path tour (E19): stamped coupled run reconstructed
    /// into the global event DAG, with the configured straggler (if any).
    pub fn run_critpath(&self) -> CritArtifacts {
        run_critpath_impl(self)
    }
}

fn run_critpath_impl(tour: &TourConfig) -> CritArtifacts {
    let mut runs = ThreadWorld::run(NRANKS, |w| run_critpath_rank(w, tour));
    let logs: Vec<Vec<telemetry::commlog::Stamped>> = runs
        .iter_mut()
        .map(|r| std::mem::take(&mut r.stamped))
        .collect();

    let net = arctic_paper();
    let wire = |words: usize| net.ptp_time((words * 8) as u64).as_ps();
    let cp = telemetry::critpath::analyze(&logs, &wire)
        .unwrap_or_else(|e| panic!("critpath analysis failed: {e}"));

    // Model-predicted coupled step cost vs the observed per-step path.
    let r0 = &runs[0];
    let (anps, ands, acells, acols) = r0.atmos_coeffs;
    let (onps, onds, ocells, ocols) = r0.ocean_coeffs;
    let ma = model_for(&net, 5, anps, ands, acells, acols);
    let mo = model_for(&net, 6, onps, onds, ocells, ocols);
    let predicted: Vec<f64> = (0..tour.coupled_steps)
        .map(|s| {
            hyades_perf::slack::predicted_coupled_step(&ma, &mo, r0.ni_atmos[s], r0.ni_ocean[s])
        })
        .collect();
    let observed: Vec<f64> = cp
        .per_step_path_ps()
        .iter()
        .map(|&(_, ps)| ps as f64 * 1e-12)
        .collect();
    let series = hyades_perf::slack::critpath_series(&predicted, &observed);

    // Chrome trace with the matched-message flow arrows.
    let mut run_tel = RunTelemetry::from_ranks(runs.drain(..).map(|r| r.telemetry).collect());
    run_tel.set_flows(telemetry::flows_from_stamped(&logs));

    CritArtifacts {
        report: cp.render(),
        json: cp.render_json(),
        chrome_json: run_tel.chrome_trace_json(),
        slack_report: series.render(),
        max_step_residual: series.max_abs_residual(),
        blame: cp.blame(),
        total_path_us: cp.total_path_ps as f64 / 1e6,
        messages: cp.messages,
    }
}

// --- the fault-recovery tour ------------------------------------------

/// Everything the fault-recovery tour (E21) produces. Every artifact is
/// a pure function of the [`TourConfig`] (pinned byte-identical by
/// `tests/determinism.rs`).
pub struct ResilientArtifacts {
    /// Human-readable recovery report: fault plan, rollback/replay
    /// accounting, retransmit counters, clean-vs-faulty DES timings.
    pub report: String,
    /// The machine-readable `recovery` block (embedded verbatim in the
    /// bench baseline JSON).
    pub json: String,
    /// Per-timestep diagnostics of the *recovered* run (byte-identical
    /// to an uninterrupted run when `recovered_identical`).
    pub diag_text: String,
    /// Flight-recorder dump of the DES recovery legs (retransmit and
    /// backoff crumbs).
    pub flight_dump: String,
    /// Coupled steps completed.
    pub steps: u64,
    pub checkpoints: u64,
    pub restarts: u64,
    pub replayed_steps: u64,
    /// Total retransmitted legs across the faulty exchange + gsum runs.
    pub retries: u64,
    /// Timeout firings (each armed a capped-exponential backoff wait).
    pub backoff_waits: u64,
    /// Final state and diagnostics series bit-identical to the
    /// uninterrupted reference on every rank.
    pub recovered_identical: bool,
    /// The first planned crash's rank, if the plan had one.
    pub crashed_rank: Option<usize>,
}

struct ResilientRankRun {
    atmos: RunMonitor,
    ocean: RunMonitor,
    stats: hyades_gcm::resilient::RecoveryStats,
    identical: bool,
}

fn run_resilient_rank<W: hyades_comms::CommWorld>(
    world: &mut W,
    tour: &TourConfig,
) -> ResilientRankRun {
    let rank = world.rank();
    telemetry::enable_with_rates(rank, FPS_MFLOPS, FDS_MFLOPS);
    let net = arctic_paper();

    // Uninterrupted reference first (same seed, no faults): the identity
    // check below is against this run. Both runs execute the same
    // collective schedule on every rank, so interleaving them through
    // one communicator is safe.
    let mut clean = seeded_coupled_pair(rank, tour.seed);
    let mut ca = RunMonitor::new("atmos", SentinelConfig::default());
    let mut co = RunMonitor::new("ocean", SentinelConfig::default());
    {
        let mut timed = TimedWorld::new(world, &net);
        for _ in 0..tour.coupled_steps {
            let (_, _, healthy) = clean.step_monitored_full(&mut timed, &mut ca, &mut co);
            assert!(healthy, "clean reference tripped the sentinel");
        }
    }

    // The resilient run under the replicated fault plan.
    let mut c = seeded_coupled_pair(rank, tour.seed);
    let mut atmos = RunMonitor::new("atmos", SentinelConfig::default());
    let mut ocean = RunMonitor::new("ocean", SentinelConfig::default());
    let mut runner = ResilientRunner::new(&c, tour.fault_plan.clone(), tour.checkpoint_every);
    {
        let mut timed = TimedWorld::new(world, &net);
        let healthy = runner.run(
            &mut c,
            &mut timed,
            &mut atmos,
            &mut ocean,
            tour.coupled_steps as u64,
        );
        assert!(healthy, "resilient tour tripped the sentinel");
    }

    let identical = clean.atmos.state.theta.raw() == c.atmos.state.theta.raw()
        && clean.atmos.state.u.raw() == c.atmos.state.u.raw()
        && clean.ocean.state.theta.raw() == c.ocean.state.theta.raw()
        && clean.ocean.state.u.raw() == c.ocean.state.u.raw()
        && clean.ocean.state.ps.raw() == c.ocean.state.ps.raw()
        && ca.series() == atmos.series()
        && co.series() == ocean.series();
    telemetry::disable().expect("telemetry was enabled");
    ResilientRankRun {
        atmos,
        ocean,
        stats: runner.stats(),
        identical,
    }
}

impl TourConfig {
    /// The fault-recovery tour (E21): the coupled run under this
    /// config's [`FaultPlan`] — checkpoint/rollback/replay on the
    /// functional 4-rank world, plus DES exchange/gsum legs under the
    /// plan's link faults to exercise the CRC-retransmit protocol — with
    /// a built-in bit-identity check against the uninterrupted run.
    pub fn run_resilient(&self) -> ResilientArtifacts {
        let runs = ThreadWorld::run(NRANKS, |w| run_resilient_rank(w, self));
        let r0 = &runs[0];
        let stats = r0.stats;
        let recovered_identical = runs.iter().all(|r| r.identical);
        let crashed_rank = self
            .fault_plan
            .rank_crashes
            .iter()
            .min_by_key(|cr| (cr.at_step, cr.rank))
            .map(|cr| cr.rank);

        // DES recovery legs: the same microbench shapes as the profiling
        // tour, but under the plan's link faults, with the flight
        // recorder catching the retransmit crumbs.
        if self.flight {
            flight::install(4096);
        }
        let host = HostParams::default();
        let leg_bytes = 256 + (self.seed % 7) * 64;
        let t_exch = measure_exchange(host, 2, 2, leg_bytes);
        let (t_exch_faulty, ex) = measure_exchange_faulty(host, 2, 2, leg_bytes, &self.fault_plan);
        let values: Vec<f64> = (0..8)
            .map(|i| ((self.seed >> (i % 8)) & 0xF) as f64 + i as f64)
            .collect();
        let g = measure_gsum(host, &values, false);
        let (g_faulty, gs) = measure_gsum_faulty(host, &values, &self.fault_plan);
        let gsum_exact = g_faulty.value == g.value;
        let mut counters = ex;
        counters.merge(&gs);
        let flight_dump = match flight::take() {
            Some(tr) => format!(
                "[flight recorder] {} events ({} dropped)\n{}",
                tr.len(),
                tr.dropped(),
                tr.dump()
            ),
            None => String::from("[flight recorder] not installed\n"),
        };

        let diag_text = format!(
            "{}\n{}",
            r0.atmos.series().render_text(),
            r0.ocean.series().render_text()
        );
        let report = render_recovery_report(
            self,
            &stats,
            &counters,
            recovered_identical,
            crashed_rank,
            (t_exch.as_us_f64(), t_exch_faulty.as_us_f64()),
            (g.elapsed.as_us_f64(), g_faulty.elapsed.as_us_f64()),
            gsum_exact,
        );
        let json = format!(
            "{{\"checkpoints\": {}, \"restarts\": {}, \"replayed_steps\": {}, \"retries\": {}, \"backoff_waits\": {}, \"recovered_identical\": {}, \"gsum_exact_under_faults\": {}}}",
            stats.checkpoints,
            stats.restarts,
            stats.replayed_steps,
            counters.total_retransmits(),
            counters.timeouts,
            recovered_identical,
            gsum_exact,
        );

        ResilientArtifacts {
            report,
            json,
            diag_text,
            flight_dump,
            steps: r0.ocean.steps(),
            checkpoints: stats.checkpoints,
            restarts: stats.restarts,
            replayed_steps: stats.replayed_steps,
            retries: counters.total_retransmits(),
            backoff_waits: counters.timeouts,
            recovered_identical,
            crashed_rank,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_recovery_report(
    tour: &TourConfig,
    stats: &hyades_gcm::resilient::RecoveryStats,
    counters: &RecoveryCounters,
    recovered_identical: bool,
    crashed_rank: Option<usize>,
    exch_us: (f64, f64),
    gsum_us: (f64, f64),
    gsum_exact: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault-recovery tour: seed {:#x}, {} ranks, {} coupled steps, checkpoint every {}",
        tour.seed, NRANKS, tour.coupled_steps, tour.checkpoint_every
    );
    out.push_str("\n[fault plan]\n");
    out.push_str(&tour.fault_plan.render());
    out.push_str("\n[rollback / replay]\n");
    let _ = writeln!(
        out,
        "  checkpoints = {}, restarts = {}, replayed steps = {}, crashed rank = {}",
        stats.checkpoints,
        stats.restarts,
        stats.replayed_steps,
        crashed_rank.map_or("-".to_string(), |r| r.to_string()),
    );
    let _ = writeln!(
        out,
        "  recovered run bit-identical to uninterrupted run: {recovered_identical}"
    );
    out.push_str("\n[retransmit protocol under link faults]\n");
    let _ = writeln!(
        out,
        "  exchange: clean {:.3} us, faulty {:.3} us",
        exch_us.0, exch_us.1
    );
    let _ = writeln!(
        out,
        "  gsum:     clean {:.3} us, faulty {:.3} us, sum exact: {gsum_exact}",
        gsum_us.0, gsum_us.1
    );
    let _ = writeln!(
        out,
        "  timeouts(backoff waits) = {}, total retransmits = {}",
        counters.timeouts,
        counters.total_retransmits()
    );
    let _ = writeln!(
        out,
        "  req_resends = {}, probes = {}, acks_resent = {}, dones_resent = {}, data_rewinds = {}",
        counters.req_resends,
        counters.probes,
        counters.acks_resent,
        counters.dones_resent,
        counters.data_rewinds
    );
    let _ = writeln!(
        out,
        "  value_resends = {}, retries = {}, corrupt_discarded = {}, stale_ignored = {}",
        counters.value_resends,
        counters.retries,
        counters.corrupt_discarded,
        counters.stale_ignored
    );
    out
}

// --- the unified export surface ---------------------------------------

impl TourArtifacts {
    /// The tour's artifacts behind the unified
    /// [`Exporter`](hyades_telemetry::Exporter) API.
    pub fn exporter(&self) -> Prebuilt {
        Prebuilt::default()
            .with("trace", ArtifactKind::ChromeTrace, self.chrome_json.clone())
            .with("telemetry", ArtifactKind::Text, self.text_summary.clone())
            .with(
                "phase_report",
                ArtifactKind::Text,
                self.phase_report.clone(),
            )
            .with(
                "residual_series",
                ArtifactKind::Text,
                self.residual_series.clone(),
            )
    }
}

impl DiagArtifacts {
    /// `diag.{txt,json,prom}` behind the unified exporter API (the same
    /// combined atmos+ocean documents the bench has always written).
    pub fn exporter(&self) -> Prebuilt {
        Prebuilt::default()
            .with("diag", ArtifactKind::Text, self.text.clone())
            .with("diag", ArtifactKind::Json, self.json.clone())
            .with("diag", ArtifactKind::Prom, self.prom.clone())
    }
}

impl CritArtifacts {
    /// Critical-path artifacts behind the unified exporter API. `name`
    /// distinguishes variants of the run (e.g. `"critpath"` vs
    /// `"critpath_straggler"`).
    pub fn exporter(&self, name: &str) -> Prebuilt {
        Prebuilt::new(vec![
            Artifact::new(name, ArtifactKind::Text, self.report.clone()),
            Artifact::new(name, ArtifactKind::Json, self.json.clone()),
            Artifact::new(
                &format!("{name}_trace"),
                ArtifactKind::ChromeTrace,
                self.chrome_json.clone(),
            ),
            Artifact::new(
                &format!("{name}_slack"),
                ArtifactKind::Text,
                self.slack_report.clone(),
            ),
        ])
    }
}

impl ResilientArtifacts {
    /// Recovery artifacts behind the unified exporter API.
    pub fn exporter(&self) -> Prebuilt {
        Prebuilt::default()
            .with("recovery", ArtifactKind::Text, self.report.clone())
            .with("recovery", ArtifactKind::Json, self.json.clone())
            .with("recovery_diag", ArtifactKind::Text, self.diag_text.clone())
            .with(
                "recovery_flight",
                ArtifactKind::Text,
                self.flight_dump.clone(),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tour_produces_all_artifacts() {
        let t = run(7);
        assert!(t.span_count > 0);
        // Valid-looking Chrome trace with both timelines present.
        assert!(t.chrome_json.starts_with("{\"traceEvents\":["));
        assert!(t.chrome_json.contains("\"ph\":\"X\""));
        assert!(t.chrome_json.contains("gcm charged timeline"));
        assert!(t.chrome_json.contains("des event timeline"));
        // The summary covers the instrumented components.
        for needle in [
            "[phase totals",
            "comm",
            "gcm.cg",
            "arctic",
            "[flight recorder]",
        ] {
            assert!(t.text_summary.contains(needle), "missing {needle}");
        }
        // The phase report names all four terms and its residuals are
        // finite (the analytical and executable models genuinely agree to
        // within model error, not by construction).
        for needle in ["ps.compute", "ps.comm", "ds.compute", "ds.comm"] {
            assert!(t.phase_report.contains(needle), "missing {needle}");
        }
        assert!(
            t.max_abs_residual.is_finite(),
            "residuals: {}",
            t.phase_report
        );
        assert!(
            t.max_abs_residual < 2.0,
            "model and measurement diverged: {}",
            t.phase_report
        );
    }

    #[test]
    fn tour_is_deterministic_per_seed() {
        let a = run(3);
        let b = run(3);
        assert_eq!(a.chrome_json, b.chrome_json);
        assert_eq!(a.text_summary, b.text_summary);
        assert_eq!(a.phase_report, b.phase_report);
        assert_eq!(a.residual_series, b.residual_series);
    }

    #[test]
    fn tour_residual_series_has_one_row_per_step() {
        let t = run(7);
        assert!(t.residual_series.contains(&format!(
            "per-step model-vs-measured residuals ({STEPS} steps)"
        )));
        assert!(
            t.max_step_residual.is_finite() && t.max_step_residual < 2.0,
            "per-step drift: {}",
            t.residual_series
        );
        // The step series can only refine the end-of-run average, never
        // contradict it wildly.
        assert!(t.max_step_residual >= t.max_abs_residual / 10.0 || t.max_abs_residual < 0.05);
    }

    #[test]
    fn tour_chrome_trace_carries_flow_events() {
        let t = run(7);
        assert!(t.chrome_json.contains("\"ph\":\"s\""), "no flow starts");
        assert!(
            t.chrome_json.contains("\"ph\":\"f\",\"bp\":\"e\""),
            "no flow finishes"
        );
    }

    #[test]
    fn critpath_tour_without_straggler_is_balanced() {
        let c = run_critpath(7, None);
        assert!(c.messages > 0);
        assert!(c.total_path_us > 0.0);
        // Identical tiles: no rank should own a grossly dominant share,
        // and the model should predict the path within the residual
        // budget the bench gate enforces.
        assert!(
            c.max_step_residual.is_finite() && c.max_step_residual < 2.0,
            "path vs model diverged:\n{}",
            c.slack_report
        );
        for needle in [
            "[per-step critical path]",
            "[per-rank slack]",
            "[straggler attribution]",
            "[wait vs wire]",
        ] {
            assert!(c.report.contains(needle), "missing {needle}");
        }
        assert!(c.json.starts_with("{\"critpath\":{"));
        assert!(c.chrome_json.contains("\"ph\":\"s\""));
    }

    #[test]
    fn critpath_tour_blames_the_injected_straggler() {
        let c = run_critpath(
            7,
            Some(Straggler {
                rank: 2,
                extra_flops: 50_000_000,
            }),
        );
        assert_eq!(
            c.blame,
            Some((2, telemetry::Phase::Ps)),
            "wrong blame; report:\n{}",
            c.report
        );
        // The injected second of compute (50 Mflop at 50 Mflop/s)
        // dominates the whole path.
        assert!(c.total_path_us > 4.0 * 0.9e6, "path {} us", c.total_path_us);
    }

    #[test]
    fn resilient_tour_recovers_bit_identically() {
        let cfg = TourConfig::new(7).fault_plan(TourConfig::demo_fault_plan(7));
        let r = cfg.run_resilient();
        assert_eq!(r.steps, CSTEPS as u64);
        assert_eq!(r.crashed_rank, Some(1));
        assert!(r.restarts >= 1, "planned crash never fired");
        assert!(
            r.recovered_identical,
            "recovered run diverged from the uninterrupted reference:\n{}",
            r.report
        );
        assert!(r.retries > 0, "link faults produced no retransmits");
        assert!(r.backoff_waits > 0 || r.retries > 0);
        assert!(r.report.contains("[fault plan]"), "{}", r.report);
        assert!(r.report.contains("rank-crash"), "{}", r.report);
        assert!(r.report.contains("sum exact: true"), "{}", r.report);
        assert!(r.json.contains("\"recovered_identical\": true"));
        assert!(r.diag_text.contains("# diag series: ocean"));
        // Recovery crumbs made it into the DES flight dump.
        assert!(
            r.flight_dump.contains("exchange.") || r.flight_dump.contains("gsum."),
            "{}",
            r.flight_dump
        );
    }

    #[test]
    fn resilient_tour_without_faults_is_a_plain_run() {
        let r = TourConfig::new(7).run_resilient();
        assert_eq!(r.restarts, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.crashed_rank, None);
        assert!(r.recovered_identical);
    }

    #[test]
    fn tour_config_shims_match_legacy_entry_points() {
        let a = run(5);
        let b = TourConfig::new(5).run_tour();
        assert_eq!(a.chrome_json, b.chrome_json);
        assert_eq!(a.text_summary, b.text_summary);
        let da = run_coupled_diag(5);
        let db = TourConfig::new(5).run_coupled_diag();
        assert_eq!(da.json, db.json);
        assert_eq!(da.prom, db.prom);
    }

    #[test]
    fn exporters_bundle_the_tour_artifacts() {
        use hyades_telemetry::Exporter as _;
        let d = run_coupled_diag(7);
        let arts = d.exporter().artifacts();
        assert_eq!(arts.len(), 3);
        assert_eq!(arts[0].file_name(), "diag.txt");
        assert_eq!(arts[1].file_name(), "diag.json");
        assert_eq!(arts[2].file_name(), "diag.prom");
        assert_eq!(arts[1].bytes, d.json);
        let c = run_critpath(7, None);
        let names: Vec<String> = c
            .exporter("critpath")
            .artifacts()
            .iter()
            .map(|a| a.file_name())
            .collect();
        assert_eq!(
            names,
            [
                "critpath.txt",
                "critpath.json",
                "critpath_trace.json",
                "critpath_slack.txt"
            ]
        );
    }

    #[test]
    fn coupled_diag_tour_is_healthy_and_complete() {
        let d = run_coupled_diag(7);
        assert_eq!(d.steps, CSTEPS as u64);
        assert_eq!(d.sentinel_trips, 0);
        assert!(d.cg_iters_p50 >= 1);
        assert!(d.cg_iters_p99 >= d.cg_iters_p50);
        assert!(
            d.max_cfl > 0.0 && d.max_cfl < 1.0,
            "max_cfl = {}",
            d.max_cfl
        );
        // Both isomorphs' series in every exporter.
        assert!(d.text.contains("# diag series: atmos"));
        assert!(d.text.contains("# diag series: ocean"));
        assert!(d.json.starts_with("{\"diag\":[{\"series\":\"atmos\""));
        assert!(d.json.contains("\"series\":\"ocean\""));
        assert!(d
            .prom
            .contains("hyades_diag_steps{series=\"atmos\"} 4.000000"));
        assert!(d.prom.contains("series=\"ocean\",metric=\"cfl_adv\""));
        for key in ["vol_anom", "ke_u", "cg_iters", "theta_max", "sentinel_trip"] {
            assert!(d.json.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }
}

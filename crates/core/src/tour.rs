//! The telemetry tour: one instrumented run through every tier.
//!
//! Exercises the whole flight-recorder stack in a single deterministic
//! harness:
//!
//! 1. a 2×2-rank functional GCM run under a [`TimedWorld`] with per-rank
//!    telemetry recorders — PS/DS phase attribution, charged comm and
//!    compute spans, and the metric registry;
//! 2. a DES microbenchmark pass (exchange + global sum on the simulated
//!    Arctic fabric) with the event-timeline spans from the router, NIU,
//!    and comms actors, plus the flight recorder ring;
//! 3. a model-vs-measured phase report lining the run's charged PS/DS
//!    seconds up against eqs. (4)–(13) of the paper.
//!
//! Everything is a pure function of `seed`: two runs with the same seed
//! produce byte-identical artifacts (the determinism test pins this), and
//! different seeds perturb both the physics and the microbench shapes.

use hyades_cluster::interconnect::{arctic_paper, ExchangeShape, Interconnect};
use hyades_comms::exchange::measure_exchange;
use hyades_comms::gsum::measure_gsum;
use hyades_comms::{ThreadWorld, TimedWorld};
use hyades_des::rng::SplitMix64;
use hyades_gcm::config::ModelConfig;
use hyades_gcm::decomp::Decomp;
use hyades_gcm::driver::Model;
use hyades_perf::model::PerfModel;
use hyades_perf::params::{DsParams, PsParams};
use hyades_perf::phases::{self, MeasuredPhases};
use hyades_startx::HostParams;
use hyades_telemetry as telemetry;
use hyades_telemetry::{flight, RankTelemetry, RunTelemetry};

/// Grid/decomposition constants of the tour run.
const NX: usize = 16;
const NY: usize = 8;
const NZ: usize = 4;
const PX: usize = 2;
const PY: usize = 2;
const NRANKS: usize = PX * PY;
const STEPS: usize = 4;

/// Sustained kernel rates used both to charge compute time and as the
/// model's `Fps`/`Fds` (Figure 11's values).
const FPS_MFLOPS: f64 = 50.0;
const FDS_MFLOPS: f64 = 60.0;

/// Everything the tour produces.
pub struct TourArtifacts {
    /// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
    pub chrome_json: String,
    /// Deterministic text summary of spans, counters, stats, histograms,
    /// with the DES flight-recorder dump appended.
    pub text_summary: String,
    /// Model-vs-measured phase report with per-term residuals.
    pub phase_report: String,
    /// Largest |relative residual| over the four phase terms.
    pub max_abs_residual: f64,
    /// Total spans across all ranks (sanity handle for tests).
    pub span_count: usize,
}

/// Per-worker results shipped back from the fan-out.
struct RankRun {
    telemetry: RankTelemetry,
    total_cg_iterations: u64,
    wet_cells: u64,
    wet_columns: u64,
    measured_nps: f64,
    measured_nds: f64,
}

fn run_rank<W: hyades_comms::CommWorld>(world: &mut W, seed: u64) -> RankRun {
    let rank = world.rank();
    telemetry::enable_with_rates(rank, FPS_MFLOPS, FDS_MFLOPS);
    let d = Decomp::blocks(NX, NY, PX, PY, 3);
    let cfg = ModelConfig::test_ocean(NX, NY, NZ, d);
    let mut m = Model::new(cfg, rank);
    // Seeded perturbation of the initial stratification: makes the run a
    // genuine function of `seed` (solver trajectories, residuals, and the
    // exported artifacts all move with it).
    let mut rng = SplitMix64::new(seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for (i, j, k) in m.state.theta.clone().interior() {
        m.state.theta.add(i, j, k, (rng.next_f64() - 0.5) * 0.2);
    }
    let net = arctic_paper();
    let mut timed = TimedWorld::new(world, &net);
    for _ in 0..STEPS {
        let s = m.step(&mut timed);
        assert!(s.cg_converged, "tour solver diverged");
    }
    let (nps, nds) = m.measured_n_coefficients();
    RankRun {
        telemetry: telemetry::disable().expect("telemetry was enabled"),
        total_cg_iterations: m.total_cg_iterations,
        wet_cells: m.masks.wet_cells,
        wet_columns: m.masks.wet_columns(),
        measured_nps: nps,
        measured_nds: nds,
    }
}

/// The DES microbenchmark leg: exchange + butterfly gsum on the simulated
/// fabric, recorded as event-timeline spans under a dedicated rank, with
/// the flight recorder capturing router/NIU/comms breadcrumbs.
fn run_microbench(seed: u64) -> (RankTelemetry, String) {
    telemetry::enable_with_rates(NRANKS, FPS_MFLOPS, FDS_MFLOPS);
    flight::install(4096);
    let host = HostParams::default();
    let leg_bytes = 256 + (seed % 7) * 64;
    let t_exch = measure_exchange(host, 2, 2, leg_bytes);
    let values: Vec<f64> = (0..8)
        .map(|i| ((seed >> (i % 8)) & 0xF) as f64 + i as f64)
        .collect();
    let g = measure_gsum(host, &values, false);
    telemetry::observe_duration_us("tour.microbench", "exchange_elapsed_us", t_exch);
    telemetry::observe_duration_us("tour.microbench", "gsum_elapsed_us", g.elapsed);
    telemetry::count("tour.microbench", "exchange_leg_bytes", leg_bytes);
    let dump = match flight::take() {
        Some(tr) => format!(
            "[flight recorder] {} events ({} dropped)\n{}",
            tr.len(),
            tr.dropped(),
            tr.dump()
        ),
        None => String::from("[flight recorder] not installed\n"),
    };
    let tel = telemetry::disable().expect("telemetry was enabled");
    (tel, dump)
}

/// Build the analytical model matching the tour configuration, using the
/// run's measured flop coefficients and the same interconnect cost model
/// `TimedWorld` charged against.
fn tour_model(net: &dyn Interconnect, rank0: &RankRun) -> PerfModel {
    let (tx, ty) = (NX / PX, NY / PY);
    let elem = 8u64;
    // One 3-D field exchange: x phase moves width-3 strips to 2 neighbors
    // (send + receive legs each), then y phase moves halo-widened rows.
    let xleg3 = (3 * ty * NZ) as u64 * elem;
    let yleg3 = ((tx + 6) * 3 * NZ) as u64 * elem;
    let texch_xyz = net.exchange_time(&ExchangeShape::from_legs(vec![
        xleg3, xleg3, xleg3, xleg3, yleg3, yleg3, yleg3, yleg3,
    ]));
    // One 2-D field exchange, width 1.
    let xleg2 = ty as u64 * elem;
    let yleg2 = (tx + 2) as u64 * elem;
    let texch_xy = net.exchange_time(&ExchangeShape::from_legs(vec![
        xleg2, xleg2, xleg2, xleg2, yleg2, yleg2, yleg2, yleg2,
    ]));
    PerfModel {
        ps: PsParams {
            nps: rank0.measured_nps,
            nxyz: rank0.wet_cells,
            texch_xyz_us: texch_xyz.as_us_f64(),
            fps_mflops: FPS_MFLOPS,
        },
        ds: DsParams {
            nds: rank0.measured_nds,
            nxy: rank0.wet_columns,
            tgsum_us: net.gsum_time(NRANKS as u32).as_us_f64(),
            texch_xy_us: texch_xy.as_us_f64(),
            fds_mflops: FDS_MFLOPS,
        },
    }
}

/// Run the full tour for `seed`.
pub fn run(seed: u64) -> TourArtifacts {
    // 1. Instrumented GCM fan-out.
    let net = arctic_paper();
    let mut runs = ThreadWorld::run(NRANKS, |w| run_rank(w, seed));

    // 2. DES microbench on this thread, as an extra "rank" holding the
    //    event timeline.
    let (bench_tel, flight_dump) = run_microbench(seed);

    // 3. Model-vs-measured phase comparison (mean over the GCM ranks;
    //    every rank ran the same-shape tile, so the mean is the per-rank
    //    story eqs. (4)–(13) tell).
    let model = tour_model(&net, &runs[0]);
    let mut totals = telemetry::PhaseTotals::default();
    for r in &runs {
        totals.merge(&r.telemetry.phases);
    }
    let n = NRANKS as f64;
    let measured = MeasuredPhases {
        ps_compute_s: totals.ps_compute.as_secs_f64() / n,
        ps_comm_s: totals.ps_comm.as_secs_f64() / n,
        ds_compute_s: totals.ds_compute.as_secs_f64() / n,
        ds_comm_s: totals.ds_comm.as_secs_f64() / n,
    };
    let ni_total = runs[0].total_cg_iterations;
    let cmp = phases::compare(&model, STEPS as u64, ni_total, &measured);
    let max_abs_residual = cmp.max_abs_residual();
    let phase_report = cmp.render();

    // 4. Merge per-rank telemetry (rank order, then the bench rank) and
    //    export both formats.
    let mut ranks: Vec<RankTelemetry> = runs.drain(..).map(|r| r.telemetry).collect();
    ranks.push(bench_tel);
    let run_tel = RunTelemetry::from_ranks(ranks);
    let span_count = run_tel.span_count();
    let chrome_json = run_tel.chrome_trace_json();
    let text_summary = format!("{}\n{}", run_tel.text_summary(), flight_dump);

    TourArtifacts {
        chrome_json,
        text_summary,
        phase_report,
        max_abs_residual,
        span_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tour_produces_all_artifacts() {
        let t = run(7);
        assert!(t.span_count > 0);
        // Valid-looking Chrome trace with both timelines present.
        assert!(t.chrome_json.starts_with("{\"traceEvents\":["));
        assert!(t.chrome_json.contains("\"ph\":\"X\""));
        assert!(t.chrome_json.contains("gcm charged timeline"));
        assert!(t.chrome_json.contains("des event timeline"));
        // The summary covers the instrumented components.
        for needle in [
            "[phase totals",
            "comm",
            "gcm.cg",
            "arctic",
            "[flight recorder]",
        ] {
            assert!(t.text_summary.contains(needle), "missing {needle}");
        }
        // The phase report names all four terms and its residuals are
        // finite (the analytical and executable models genuinely agree to
        // within model error, not by construction).
        for needle in ["ps.compute", "ps.comm", "ds.compute", "ds.comm"] {
            assert!(t.phase_report.contains(needle), "missing {needle}");
        }
        assert!(
            t.max_abs_residual.is_finite(),
            "residuals: {}",
            t.phase_report
        );
        assert!(
            t.max_abs_residual < 2.0,
            "model and measurement diverged: {}",
            t.phase_report
        );
    }

    #[test]
    fn tour_is_deterministic_per_seed() {
        let a = run(3);
        let b = run(3);
        assert_eq!(a.chrome_json, b.chrome_json);
        assert_eq!(a.text_summary, b.text_summary);
        assert_eq!(a.phase_report, b.phase_report);
    }
}

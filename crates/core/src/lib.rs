//! # hyades — a personal supercomputer for climate research, reproduced
//!
//! The facade crate of the workspace: high-level scenario builders plus an
//! [`experiments`] registry with one entry per table and figure of the
//! SC'99 paper. Each experiment runs against the simulated hardware
//! (`hyades-arctic` / `hyades-startx`), the communication library
//! (`hyades-comms`), the Rust MIT GCM (`hyades-gcm`), and the analytical
//! performance model (`hyades-perf`), and renders a plain-text report
//! comparing the paper's published numbers with the values this
//! reproduction measures.
//!
//! ```
//! // Regenerate Figure 2 (LogP characteristics of PIO messaging):
//! let report = hyades::experiments::fig2::run();
//! assert!(report.contains("RTT/2"));
//! ```

pub mod charging;
pub mod experiments;
pub mod scenario;
pub mod tour;

pub use hyades_arctic as arctic;
pub use hyades_cluster as cluster;
pub use hyades_comms as comms;
pub use hyades_des as des;
pub use hyades_fault as fault;
pub use hyades_gcm as gcm;
pub use hyades_perf as perf;
pub use hyades_startx as startx;
pub use hyades_telemetry as telemetry;

//! E15 — fabric observatory: per-link telemetry of the Arctic fat-tree
//! versus the Ethernet baseline.
//!
//! The paper argues (§2.2, §6) that Arctic sustains fine-grain GCM
//! communication where Ethernet cannot. This experiment makes the claim
//! observable at the *link* level: it runs the deterministic-routing
//! adversary (bit-reverse at 0.8 offered load) with the fabric
//! observatory attached, reports the congested links and the flows that
//! feed them, then shows how the random up-route disperses the same
//! traffic — and contrasts both with a hammered single-switch Ethernet
//! port, where no path diversity exists to disperse anything.

use hyades_arctic::observatory::ObservatoryConfig;
use hyades_arctic::packet::UpRoute;
use hyades_arctic::workload::{run_traffic_observed, Pattern};
use hyades_cluster::ethernet_sim::{
    EtherFrame, EtherSink, EthernetSim, FAST_ETHERNET_MBYTE_PER_SEC,
};
use hyades_des::{SimDuration, SimTime, Simulator};
use hyades_telemetry::sampler;
use std::fmt::Write as _;

/// Fixed seed: the experiment is a regression artefact, not a sweep.
const SEED: u64 = 0x0B5_E7A;
const MEASURE_US: f64 = 400.0;

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E15: fabric observatory — per-link telemetry under congestion\n\n");

    let obs = ObservatoryConfig::new(5.0, 2.0 * MEASURE_US);
    let (det, det_rep) = run_traffic_observed(
        16,
        Pattern::BitReverse,
        UpRoute::SourceSpread,
        0.8,
        MEASURE_US,
        SEED,
        obs,
    );
    let _ = writeln!(
        out,
        "[arctic, bit-reverse 0.8 load, source-spread uproute]\n\
         delivered {:.0} MB/s, mean latency {:.1} us, {} hotspot link(s) \
         (occ p99 > {:.0})",
        det.delivered_mbyte_per_sec,
        det.latency.mean(),
        det_rep.hotspots.len(),
        det_rep.hotspot_occ_p99,
    );
    for h in det_rep.hotspots.iter().take(4) {
        let _ = write!(
            out,
            "  {}: occ p99 {:.1}, util {:.2}, stalled {:.0} us; fed by",
            h.entity, h.occ_p99, h.util_mean, h.stall_us
        );
        for f in &h.flows {
            let _ = write!(out, " {}->{} ({} pkts)", f.src, f.dst, f.packets);
        }
        out.push('\n');
    }

    let (rnd, rnd_rep) = run_traffic_observed(
        16,
        Pattern::BitReverse,
        UpRoute::Random,
        0.8,
        MEASURE_US,
        SEED,
        obs,
    );
    let _ = writeln!(
        out,
        "\n[arctic, same traffic, random uproute]\n\
         delivered {:.0} MB/s, mean latency {:.1} us, {} hotspot link(s) — \
         path diversity disperses the funnel",
        rnd.delivered_mbyte_per_sec,
        rnd.latency.mean(),
        rnd_rep.hotspots.len(),
    );

    // Ethernet contrast: hammer one port of a store-and-forward switch.
    let mut sim = Simulator::new();
    let eps: Vec<_> = (0..16)
        .map(|_| sim.add_actor(EtherSink::default()))
        .collect();
    let net = EthernetSim::build(&mut sim, &eps, FAST_ETHERNET_MBYTE_PER_SEC);
    net.observe(
        &mut sim,
        SimDuration::from_us(50),
        SimTime::from_us_f64(20_000.0),
    );
    for s in 1..16u16 {
        for i in 0..10 {
            net.inject_at(
                &mut sim,
                SimTime::from_us_f64(i as f64 * 3.0),
                EtherFrame {
                    src: s,
                    dst: 0,
                    payload_bytes: 1000,
                    injected_at: SimTime::ZERO,
                },
            );
        }
    }
    sim.run();
    let samples = sampler::take().map(|s| {
        s.get("ether.link", "p0", "occ")
            .map(|occ| (occ.mean(), occ.p99(), occ.max()))
            .unwrap_or((0.0, 0.0, 0.0))
    });
    let (occ_mean, occ_p99, occ_max) = samples.unwrap_or((0.0, 0.0, 0.0));
    let (packets, _, max_q, stalls, stall_ps) = net.port_stats(&sim, 0);
    let _ = writeln!(
        out,
        "\n[fast ethernet switch, 15-to-1 hammer on port 0]\n\
         {} frames through one 12.5 MB/s port: occ mean {:.1} / p99 {:.1} / \
         max {:.0}, {} stalls totalling {:.0} us, peak queue {}",
        packets,
        occ_mean,
        occ_p99,
        occ_max,
        stalls,
        stall_ps as f64 / 1e6,
        max_q,
    );
    let _ = writeln!(
        out,
        "\nThe fat-tree's congestion is a *routing* artefact (random uproute \
         removes it); the Ethernet queue is *structural* — one port, no \
         diversity. This is the interconnect-level view behind Figure 12."
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_hotspots_and_both_fabrics() {
        let r = super::run();
        assert!(r.contains("hotspot link(s)"), "{r}");
        assert!(r.contains("source-spread uproute"), "{r}");
        assert!(r.contains("random uproute"), "{r}");
        assert!(r.contains("fast ethernet switch"), "{r}");
        assert!(r.contains("fed by"), "hotspot flows must be named:\n{r}");
    }

    #[test]
    fn deterministic_double_run() {
        assert_eq!(super::run(), super::run());
    }
}

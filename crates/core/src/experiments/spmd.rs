//! E20 — §3/§5: static SPMD collective-uniformity proof.
//!
//! The paper's machine is a single-program-multiple-data ensemble: all
//! endpoints step the same model and meet at blocking exchanges and
//! reductions every timestep. One rank taking a rank-dependent branch
//! around a collective is the classic SPMD deadlock, and no amount of
//! recorded-run checking (E17's dynamic cousin, the happens-before
//! checker) can rule it out for inputs that were never run. This
//! experiment runs [`hyades_lint::uniform`] over the whole workspace —
//! rank-dependence taint fixpoint over the call graph, per-function
//! collective-sequence abstraction — and emits the per-crate proof
//! table: every collective call site in non-test code is reached
//! uniformly, or sits in a function carrying an audited
//! `lint:uniform-trusted` pragma.

use hyades_lint::uniform::{self, UniformReport};

pub struct SpmdReport {
    pub files: usize,
    pub uniform: UniformReport,
}

pub fn measure() -> SpmdReport {
    let sources = hyades_lint::collect_sources(&hyades_lint::workspace_root())
        .unwrap_or_else(|e| panic!("collecting workspace sources: {e}"));
    let uniform = uniform::analyze(&sources);
    SpmdReport {
        files: sources.len(),
        uniform,
    }
}

pub fn run() -> String {
    let rep = measure();
    let un = &rep.uniform;
    let mut s = String::new();
    s.push_str("E20 Sections 3/5: static SPMD collective-uniformity proof\n\n");
    s.push_str(&format!(
        "workspace: {} files, {} functions, {} call edges\n",
        rep.files, un.functions, un.call_edges
    ));
    s.push_str(&format!(
        "collective call sites in non-test code: {}\n",
        un.collective_sites
    ));
    s.push_str("lattice: Uniform < RankDependent; sources: .rank reads, received halo data\n\n");

    s.push_str("per-crate proof table:\n");
    s.push_str(&format!(
        "  {:<12} {:>4} {:>6} {:>7} {:>8} {:>9}\n",
        "crate", "fns", "sites", "proven", "trusted", "divergent"
    ));
    for c in &un.crates {
        s.push_str(&format!(
            "  {:<12} {:>4} {:>6} {:>7} {:>8} {:>9}\n",
            c.crate_name,
            c.fns_with_collectives,
            c.collective_sites,
            c.proven,
            c.trusted,
            c.findings
        ));
    }

    s.push_str(&format!(
        "\nuniform-trusted audit: {} pragma(s)",
        un.trusted.len()
    ));
    for t in &un.trusted {
        s.push_str(&format!(" {t}"));
    }
    s.push('\n');
    let divergences = un
        .findings
        .iter()
        .filter(|f| f.rule == "collective-divergence")
        .count();
    s.push_str(&format!("collective-divergence findings: {divergences}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_collective_is_proven_uniform_or_audited() {
        let rep = measure();
        assert!(
            rep.uniform.collective_sites > 0,
            "the workspace has collectives; the analysis must see them"
        );
        for f in &rep.uniform.fns {
            assert_ne!(
                f.verdict, "divergent",
                "fn {} ({}:{}) diverges at a collective",
                f.qual, f.file, f.line
            );
        }
        assert!(
            rep.uniform
                .findings
                .iter()
                .all(|f| f.rule != "collective-divergence"),
            "{:?}",
            rep.uniform.findings
        );
    }

    #[test]
    fn report_renders_the_proof() {
        let r = run();
        assert!(r.contains("collective-divergence findings: 0"), "{r}");
        assert!(r.contains("per-crate proof table:"), "{r}");
        assert!(r.contains("comms"), "{r}");
        assert!(r.contains("gcm"), "{r}");
    }
}

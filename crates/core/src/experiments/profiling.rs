//! E14 — telemetry flight recorder: model-vs-measured phase profiling.
//!
//! Runs the instrumented telemetry tour (GCM fan-out under a `TimedWorld`
//! plus the DES microbench) and reports the per-term comparison between
//! the charged PS/DS phase seconds and the analytical model of
//! eqs. (4)–(13) — the §5.3 validation exercised per phase term instead
//! of against one wall-clock total.

use crate::tour;

/// Fixed seed: the experiment is a regression artefact, not a sweep.
const SEED: u64 = 0xC11_317;

pub fn run() -> String {
    let t = tour::run(SEED);
    let mut out = String::new();
    out.push_str("E14: model-vs-measured phase profiling (telemetry tour)\n\n");
    out.push_str(&t.phase_report);
    out.push_str(&format!(
        "\nmax |residual| = {:.2}% over {} spans recorded across {} timelines\n",
        t.max_abs_residual * 100.0,
        t.span_count,
        2
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_names_every_phase_term() {
        let r = super::run();
        for needle in ["ps.compute", "ps.comm", "ds.compute", "ds.comm", "total"] {
            assert!(r.contains(needle), "missing {needle}:\n{r}");
        }
        assert!(r.contains("max |residual|"));
    }
}

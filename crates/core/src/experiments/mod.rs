//! The experiment registry: one entry per table/figure of the paper.
//!
//! | id | artefact | module |
//! |----|----------|--------|
//! | E1 | Figure 2 — LogP of PIO messaging | [`fig2`] |
//! | E2 | Figure 7 — VI bandwidth vs block size | [`fig7`] |
//! | E3 | §4.2 — global-sum latencies + fit | [`gsum`] |
//! | E4 | Figure 10 — platform comparison | [`fig10`] |
//! | E5 | Figure 11 — performance-model parameters | [`fig11`] |
//! | E6 | §5.3 — model validation | [`sec53`] |
//! | E7 | Figure 12 — Pfpp by interconnect | [`fig12`] |
//! | E8 | §6 — HPVM comparison | [`hpvm`] |
//! | E9 | Figure 9 — model output maps | [`fig9`] |
//! | E10 | §6 — century-in-two-weeks throughput | [`century`] |
//! | E11 | §6 — generality tax (MPI vs custom) | [`api_tax`] |
//! | E12 | §2.2 — routing under adversarial traffic | [`routing`] |
//! | E13 | §1/§6 — price-performance economics | [`economics`] |
//! | E14 | §5.3 extended — model-vs-measured phase profiling | [`profiling`] |
//! | E15 | §2.2/§6 — fabric observatory: per-link telemetry under congestion | [`observatory`] |
//! | E16 | §4 — schedule proof + happens-before audit | [`schedcheck`] |
//! | E17 | §4/§5 — interprocedural determinism proof of the artefact surface | [`detflow`] |
//! | E18 | §5/§6 — GCM run-health observatory over a coupled run | [`runhealth`] |
//! | E19 | §5/§6 — cross-rank critical path of a coupled step | [`critpath`] |
//! | E20 | §3/§5 — static SPMD collective-uniformity proof | [`spmd`] |
//! | E21 | §2.2/§4/§6 — fault injection and recovery | [`recovery`] |

pub mod api_tax;
pub mod century;
pub mod critpath;
pub mod detflow;
pub mod economics;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig7;
pub mod fig9;
pub mod gsum;
pub mod hpvm;
pub mod observatory;
pub mod profiling;
pub mod recovery;
pub mod routing;
pub mod runhealth;
pub mod schedcheck;
pub mod sec53;
pub mod spmd;

/// A registered experiment.
pub struct Experiment {
    pub id: &'static str,
    pub paper_artefact: &'static str,
    pub run: fn() -> String,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            paper_artefact: "Figure 2: LogP characteristics of PIO message passing",
            run: fig2::run,
        },
        Experiment {
            id: "E2",
            paper_artefact: "Figure 7: transfer bandwidth as a function of block size",
            run: fig7::run,
        },
        Experiment {
            id: "E3",
            paper_artefact: "Section 4.2: global sum latencies and least-squares fit",
            run: gsum::run,
        },
        Experiment {
            id: "E4",
            paper_artefact: "Figure 10: sustained performance across platforms",
            run: fig10::run,
        },
        Experiment {
            id: "E5",
            paper_artefact: "Figure 11: performance model parameters",
            run: fig11::run,
        },
        Experiment {
            id: "E6",
            paper_artefact: "Section 5.3: validation of the performance model",
            run: sec53::run,
        },
        Experiment {
            id: "E7",
            paper_artefact: "Figure 12: Potential Floating-Point Performance",
            run: fig12::run,
        },
        Experiment {
            id: "E8",
            paper_artefact: "Section 6: HPVM/Myrinet comparison",
            run: hpvm::run,
        },
        Experiment {
            id: "E9",
            paper_artefact: "Figure 9: model output (currents and winds)",
            run: fig9::run,
        },
        Experiment {
            id: "E10",
            paper_artefact: "Section 6: century-long coupled simulation in two weeks",
            run: century::run,
        },
        Experiment {
            id: "E11",
            paper_artefact: "Section 6: generality tax (MPI-StarT vs custom primitives)",
            run: api_tax::run,
        },
        Experiment {
            id: "E12",
            paper_artefact: "Section 2.2: fabric routing under adversarial traffic",
            run: routing::run,
        },
        Experiment {
            id: "E13",
            paper_artefact: "Sections 1/2/6: price-performance of a personal supercomputer",
            run: economics::run,
        },
        Experiment {
            id: "E14",
            paper_artefact: "Section 5.3 extended: model-vs-measured phase profiling",
            run: profiling::run,
        },
        Experiment {
            id: "E15",
            paper_artefact:
                "Sections 2.2/6: fabric observatory, per-link telemetry under congestion",
            run: observatory::run,
        },
        Experiment {
            id: "E16",
            paper_artefact: "Section 4: communication schedule proof and happens-before audit",
            run: schedcheck::run,
        },
        Experiment {
            id: "E17",
            paper_artefact:
                "Sections 4/5: interprocedural determinism proof of the artefact surface",
            run: detflow::run,
        },
        Experiment {
            id: "E18",
            paper_artefact: "Sections 5/6: GCM run-health observatory over a coupled run",
            run: runhealth::run,
        },
        Experiment {
            id: "E19",
            paper_artefact: "Sections 5/6: cross-rank critical path of a coupled step",
            run: critpath::run,
        },
        Experiment {
            id: "E20",
            paper_artefact: "Sections 3/5: static SPMD collective-uniformity proof",
            run: spmd::run,
        },
        Experiment {
            id: "E21",
            paper_artefact:
                "Sections 2.2/4/6: fault injection and recovery (retransmit + checkpoint/rollback)",
            run: recovery::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_is_complete() {
        let all = super::all();
        assert_eq!(all.len(), 21);
        let ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            [
                "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
                "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21"
            ]
        );
    }
}

//! E16 — §4: communication schedule proof and happens-before audit.
//!
//! Two complementary checks on the paper's hand-scheduled communication
//! layer. Statically, the 16-node halo exchange (§4.1) concatenated with
//! the global-sum butterfly (§4.2) is reified as a [`CommGraph`] and
//! proven deadlock-free and tag-unique by `lint::schedule`. Dynamically,
//! a live 16-rank [`ThreadWorld`] run of the same primitives is recorded
//! through the telemetry comm log and replayed through the vector-clock
//! happens-before checker in `lint::hb`, which must find every matched
//! send/recv pair strictly ordered.
//!
//! [`CommGraph`]: hyades_comms::schedule::CommGraph
//! [`ThreadWorld`]: hyades_comms::world::ThreadWorld

use hyades_comms::schedule::{exchange_graph, gsum_graph};
use hyades_comms::world::{CommWorld, ThreadWorld};
use hyades_lint::hb;
use hyades_lint::schedule as schedule_proof;
use hyades_telemetry::commlog;

pub struct SchedCheckReport {
    pub proof: schedule_proof::ScheduleProof,
    pub hb: hb::HbReport,
}

/// The live run audited by the happens-before checker: a few steps of
/// ring halo exchange plus vector global sums, the GCM's inner-loop
/// communication pattern.
fn logged_run(ranks: usize, steps: usize) -> Vec<Vec<commlog::CommEvent>> {
    ThreadWorld::run(ranks, |w| {
        commlog::install();
        let (me, n) = (w.rank(), w.size());
        let left = (me + n - 1) % n;
        let right = (me + 1) % n;
        for step in 0..steps {
            let halo = vec![me as f64; 8 + step];
            let got = w.exchange(vec![(left, halo.clone()), (right, halo)]);
            assert_eq!(got.len(), 2);
            let mut sums = [me as f64, 1.0];
            w.global_sum_vec(&mut sums);
            assert_eq!(sums[1], n as f64);
        }
        w.barrier();
        commlog::take()
    })
}

pub fn measure() -> SchedCheckReport {
    // Static side: the full 16-node schedule, exchange then butterfly.
    let mut g = exchange_graph(4, 4);
    g.append(&gsum_graph(16));
    let proof = match schedule_proof::verify(&g) {
        Ok(p) => p,
        Err(e) => panic!("static schedule verification failed: {e}"),
    };
    // Dynamic side: replay a recorded run through the vector clocks.
    let logs = logged_run(16, 3);
    let hb = match hb::check(&logs) {
        Ok(r) => r,
        Err(e) => panic!("happens-before replay failed: {e}"),
    };
    SchedCheckReport { proof, hb }
}

pub fn run() -> String {
    let rep = measure();
    format!(
        "E16 Section 4: communication schedule proof and happens-before audit\n\n\
         static check, 4x4 exchange + global-sum butterfly schedule:\n  {}\n\
         dynamic vector-clock replay of a 16-rank ThreadWorld run:\n  {}",
        rep.proof,
        rep.hb.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_schedule_is_deadlock_free() {
        let rep = measure();
        assert_eq!(rep.proof.nodes, 16);
        assert!(rep.proof.critical_depth >= 16);
    }

    #[test]
    fn live_run_has_no_unordered_pairs() {
        let rep = measure();
        assert_eq!(rep.hb.ranks, 16);
        assert!(rep.hb.messages > 0, "exchange traffic must be logged");
        assert!(rep.hb.reductions > 0, "global sums must be logged");
        assert!(rep.hb.unordered.is_empty(), "{:?}", rep.hb.unordered);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("deadlock-free"));
        assert!(r.contains("0 unordered pair(s)"));
    }
}

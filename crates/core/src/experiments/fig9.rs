//! E9 — Figure 9: model output from a coupled run.
//!
//! The paper shows ocean currents at 25 m and the atmospheric zonal wind
//! at 250 mb from the coupled simulation. This experiment spins up a
//! reduced coupled configuration and renders the equivalent fields
//! (surface-level ocean temperature/currents, upper-level zonal wind) as
//! ASCII maps plus summary statistics. The full-resolution run is
//! available through `examples/coupled_climate.rs`.

use crate::scenario::small_coupled_scenario;
use hyades_comms::SerialWorld;
use hyades_gcm::coupler::CoupledModel;
use hyades_gcm::diagnostics::{ascii_map, global_diagnostics};

/// Spin up a small coupled run for `steps` steps.
pub fn spin_up(steps: usize) -> CoupledModel {
    let mut c = small_coupled_scenario(32, 16, 4);
    let mut wa = SerialWorld;
    let mut wo = SerialWorld;
    for _ in 0..steps {
        let (sa, so) = c.step(&mut wa, &mut wo);
        assert!(sa.cg_converged && so.cg_converged, "solver diverged");
    }
    c
}

pub fn run() -> String {
    let c = spin_up(60);
    let mut w = SerialWorld;
    let da = global_diagnostics(&c.atmos, &mut w);
    let do_ = global_diagnostics(&c.ocean, &mut w);
    // Zonal-mean zonal wind at the upper atmospheric level (the paper's
    // 250 mb panel corresponds to our level 3 of 5).
    let lvl = 3;
    let mut zonal = String::new();
    for j in 0..c.atmos.tile.ny as i64 {
        let lat = c.atmos.cfg.grid.lat_c(j).to_degrees();
        let mean: f64 = (0..c.atmos.tile.nx as i64)
            .map(|i| c.atmos.state.u.at(i, j, lvl))
            .sum::<f64>()
            / c.atmos.tile.nx as f64;
        zonal.push_str(&format!("{lat:7.1}  {mean:8.3}\n"));
    }
    format!(
        "E9  Figure 9: coupled-model output after spin-up (reduced 32x16 grid)\n\n\
         ATMOSPHERE  max speed {:.2} m/s, CFL {:.3}\n\
         zonal-mean zonal wind at upper level (lat, u m/s):\n{zonal}\n\
         OCEAN  max speed {:.3} m/s, heat content {:.3e}\n\
         sea-surface temperature map ('#' = land):\n{}",
        da.max_speed,
        da.cfl,
        do_.max_speed,
        do_.heat_content,
        ascii_map(&c.ocean, 0, 32),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_spin_up_develops_winds_and_currents() {
        let c = spin_up(40);
        let mut w = SerialWorld;
        let da = global_diagnostics(&c.atmos, &mut w);
        let do_ = global_diagnostics(&c.ocean, &mut w);
        // Radiative forcing must have spun up a circulation...
        assert!(da.max_speed > 0.1, "atmosphere stayed at rest");
        // ...within physical bounds.
        assert!(da.max_speed < 150.0, "atmosphere blew up: {}", da.max_speed);
        assert!(da.cfl < 1.0, "CFL violated: {}", da.cfl);
        // The ocean responds through the coupled stress.
        assert!(do_.max_speed > 1e-7, "ocean never moved");
        assert!(do_.max_speed < 3.0, "ocean blew up: {}", do_.max_speed);
        assert!(c.atmos.state.is_finite() && c.ocean.state.is_finite());
    }

    #[test]
    fn report_renders_maps() {
        let r = run();
        assert!(r.contains("zonal-mean"));
        assert!(r.contains("sea-surface temperature"));
    }
}

//! E10 — §6's production-throughput claim: "the Hyades cluster is a
//! platform on which a century long synchronous climate simulation,
//! coupling an atmosphere at 2.8° resolution to a 1° ocean, can be
//! completed within a two week period."
//!
//! Both isomorphs run concurrently on half the cluster each (8 endpoints,
//! 16 processors); the coupled run finishes when the slower isomorph
//! does. The atmosphere's year is §5.3's validated 183 minutes; the 1°
//! ocean is costed through the same performance model with communication
//! from the simulated fabric.

use hyades_cluster::interconnect::{ExchangeShape, Interconnect};
use hyades_comms::measured::simulated_arctic_model;
use hyades_perf::model::{paper_atmosphere, PerfModel};
use hyades_perf::params::{DsParams, PsParams};

/// The 1° ocean: 360×160 columns (walls poleward of ±80°), 15 levels, on
/// 8 endpoints (4×2 tiles of 90×80), both SMP processors working per
/// endpoint (the mixed-mode configuration: 2 × 50 MFlop/s per endpoint on
/// PS, 2 × 60 on DS).
pub fn ocean_1deg_model() -> PerfModel {
    let net = simulated_arctic_model();
    let (tx, ty, levels) = (90u32, 80u32, 15u32);
    let ps_shape = ExchangeShape::from_legs(
        vec![(ty * 3 * levels * 8) as u64; 4]
            .into_iter()
            .chain(vec![(tx * 3 * levels * 8) as u64; 4])
            .collect(),
    );
    let ds_shape = ExchangeShape::from_legs(
        vec![(ty * 8) as u64; 4]
            .into_iter()
            .chain(vec![(tx * 8) as u64; 4])
            .collect(),
    );
    PerfModel {
        ps: PsParams {
            nps: 751.0,
            nxyz: (tx * ty * levels) as u64,
            texch_xyz_us: net.exchange_time(&ps_shape).as_us_f64(),
            fps_mflops: 100.0, // both processors of the SMP
        },
        ds: DsParams {
            nds: 36.0,
            nxy: (tx * ty) as u64,
            tgsum_us: net.smp_gsum_time(8).as_us_f64(),
            texch_xy_us: net.exchange_time(&ds_shape).as_us_f64(),
            fds_mflops: 120.0,
        },
    }
}

/// Ocean time stepping at 1°: one-hour steps, more solver iterations on
/// the finer grid (CG iteration count grows roughly with the grid
/// diameter: ~60 at 128×64 → ~150 at 360×160).
pub const OCEAN_STEPS_PER_YEAR: u64 = 8766;
pub const OCEAN_NI: f64 = 150.0;

/// Wall-clock days for a century of each isomorph and of the coupled run.
pub struct CenturyEstimate {
    pub atmos_days: f64,
    pub ocean_days: f64,
    pub coupled_days: f64,
}

pub fn estimate() -> CenturyEstimate {
    // Atmosphere: the §5.3-validated year.
    let atmos = paper_atmosphere();
    let atmos_year_s = atmos.t_run(77_760, 60.0);
    // Ocean at 1°.
    let ocean = ocean_1deg_model();
    let ocean_year_s = ocean.t_run(OCEAN_STEPS_PER_YEAR, OCEAN_NI);
    let to_days = |s: f64| s * 100.0 / 86_400.0;
    let (a, o) = (to_days(atmos_year_s), to_days(ocean_year_s));
    CenturyEstimate {
        atmos_days: a,
        ocean_days: o,
        // Synchronous coupling: the two run concurrently on disjoint
        // halves; the slower isomorph sets the pace.
        coupled_days: a.max(o),
    }
}

pub fn run() -> String {
    let e = estimate();
    let ocean = ocean_1deg_model();
    format!(
        "E10 Section 6: century-long coupled simulation throughput\n\n\
         atmosphere (2.8125 deg, validated 183 min/yr): {:.1} days/century\n\
         ocean (1 deg, 360x160x15, {} steps/yr, Ni={}): {:.1} days/century\n\
         (ocean efficiency {:.0}%, texch_xyz {:.0} us, texch_xy {:.0} us)\n\n\
         coupled century (slower isomorph paces): {:.1} days\n\
         paper's claim: \"within a two week period\" -> {}\n",
        e.atmos_days,
        OCEAN_STEPS_PER_YEAR,
        OCEAN_NI,
        e.ocean_days,
        ocean.efficiency(OCEAN_NI) * 100.0,
        ocean.ps.texch_xyz_us,
        ocean.ds.texch_xy_us,
        e.coupled_days,
        if e.coupled_days <= 14.5 {
            "HOLDS"
        } else {
            "DOES NOT HOLD"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn century_fits_in_two_weeks() {
        let e = estimate();
        // Atmosphere: 183 min/yr × 100 ≈ 12.7 days.
        assert!((12.0..13.5).contains(&e.atmos_days), "{}", e.atmos_days);
        // The 1° ocean must keep pace on its half of the cluster.
        assert!(e.ocean_days < 14.5, "ocean century {} days", e.ocean_days);
        assert!(e.coupled_days <= 14.5, "coupled {} days", e.coupled_days);
        // And the claim is not trivially slack: it is within ~3 days of
        // the two-week budget.
        assert!(e.coupled_days > 9.0);
    }

    #[test]
    fn ocean_is_compute_dominated_at_one_degree() {
        // Bigger tiles = coarser grain: the 1° ocean should be *more*
        // efficient than the 2.8° configuration, which is the reason a
        // personal cluster can afford the finer ocean at all.
        let one_deg = ocean_1deg_model();
        let coarse = hyades_perf::model::paper_ocean();
        assert!(one_deg.efficiency(OCEAN_NI) > coarse.efficiency(60.0));
        assert!(one_deg.efficiency(OCEAN_NI) > 0.85);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("two week"));
        assert!(r.contains("HOLDS"));
    }
}

//! E3 — §4.2: global-sum latencies and the least-squares fit.

use hyades_comms::gsum::latency_table;
use hyades_perf::fit::log2_fit;
use hyades_perf::report::Table;
use hyades_startx::HostParams;

/// Paper values: (N, plain µs, 2×N SMP µs).
pub const PAPER: [(u16, f64, f64); 4] = [
    (2, 4.0, 4.8),
    (4, 8.3, 9.1),
    (8, 12.8, 13.5),
    (16, 18.2, 19.5),
];

/// Paper fit: `t = 4.67·log2 N − 0.95` µs.
pub const PAPER_FIT: (f64, f64) = (4.67, -0.95);

pub struct GsumReport {
    /// (N, measured plain µs, measured SMP µs).
    pub rows: Vec<(u16, f64, f64)>,
    /// Our least-squares fit (C, B) to the plain latencies.
    pub fit: (f64, f64),
}

pub fn measure() -> GsumReport {
    let table = latency_table(HostParams::default());
    let rows: Vec<(u16, f64, f64)> = table
        .iter()
        .map(|(n, plain, smp)| (*n, plain.elapsed.as_us_f64(), smp.elapsed.as_us_f64()))
        .collect();
    let pts: Vec<(u32, f64)> = rows.iter().map(|&(n, t, _)| (n as u32, t)).collect();
    GsumReport {
        fit: log2_fit(&pts),
        rows,
    }
}

pub fn run() -> String {
    let rep = measure();
    let mut t = Table::new(&["N-way", "t (us)", "paper", "2xN-way (us)", "paper"]);
    for ((n, plain, smp), paper) in rep.rows.iter().zip(PAPER.iter()) {
        t.row(&[
            n.to_string(),
            format!("{plain:.1}"),
            format!("{}", paper.1),
            format!("{smp:.1}"),
            format!("{}", paper.2),
        ]);
    }
    format!(
        "E3  Section 4.2: N-way global sum latency (simulated fabric)\n\n{}\n\
         least-squares fit: t = {:.2}*log2(N) {:+.2} us   (paper: {}*log2(N) {:+})\n",
        t.render(),
        rep.fit.0,
        rep.fit.1,
        PAPER_FIT.0,
        PAPER_FIT.1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_paper_within_25_percent() {
        let rep = measure();
        for ((n, plain, smp), paper) in rep.rows.iter().zip(PAPER.iter()) {
            assert!(
                (plain - paper.1).abs() / paper.1 < 0.25,
                "{n}-way: {plain} vs {}",
                paper.1
            );
            assert!(
                (smp - paper.2).abs() / paper.2 < 0.25,
                "2x{n}-way: {smp} vs {}",
                paper.2
            );
        }
    }

    #[test]
    fn fit_slope_is_in_paper_regime() {
        let rep = measure();
        // Paper slope 4.67 µs/round; ours must be the same order with the
        // same log-linear form.
        assert!(
            (3.0..6.0).contains(&rep.fit.0),
            "slope {} out of range",
            rep.fit.0
        );
        assert!(rep.fit.1.abs() < 3.0, "intercept {}", rep.fit.1);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("least-squares fit"));
        assert!(r.contains("16"));
    }
}

//! E2 — Figure 7: VI-mode transfer bandwidth as a function of block size.

use hyades_perf::report::Table;
use hyades_startx::vi::{bandwidth_sweep, TransferMeasurement, ViConfig};
use hyades_startx::HostParams;

/// Paper anchors: 56.8 MB/s at 1 KB, ≥90% of 110 MB/s at 9 KB, 110 MB/s
/// peak.
pub const PAPER_1KB_MBS: f64 = 56.8;
pub const PAPER_PEAK_MBS: f64 = 110.0;

/// Sweep the figure's block sizes on the simulated fabric.
pub fn measure() -> Vec<TransferMeasurement> {
    bandwidth_sweep(HostParams::default(), ViConfig::default())
}

pub fn run() -> String {
    let sweep = measure();
    let mut t = Table::new(&["block (B)", "time (us)", "bandwidth (MB/s)", "% of peak"]);
    for m in &sweep {
        t.row(&[
            m.len.to_string(),
            format!("{:.1}", m.elapsed.as_us_f64()),
            format!("{:.1}", m.mbyte_per_sec),
            format!("{:.0}%", m.mbyte_per_sec / PAPER_PEAK_MBS * 100.0),
        ]);
    }
    format!(
        "E2  Figure 7: perceived VI-mode transfer bandwidth vs block size\n\
         (paper: {PAPER_1KB_MBS} MB/s at 1 KB; 90% of {PAPER_PEAK_MBS} MB/s by ~9 KB)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_paper_anchors() {
        let sweep = measure();
        let at = |len: u64| {
            sweep
                .iter()
                .find(|m| m.len == len)
                .unwrap_or_else(|| panic!("no sample at {len}"))
                .mbyte_per_sec
        };
        // 1 KB: 56.8 MB/s ± 15%.
        assert!(
            (at(1024) - PAPER_1KB_MBS).abs() / PAPER_1KB_MBS < 0.15,
            "{}",
            at(1024)
        );
        // Half-power point near 1 KB: 512 B below 50%, 4 KB above 75%.
        assert!(at(512) < 0.5 * PAPER_PEAK_MBS);
        assert!(at(4096) > 0.75 * PAPER_PEAK_MBS);
        // ~90% by 8–16 KB.
        assert!(at(16384) > 0.9 * PAPER_PEAK_MBS);
        // Peak approached at 128 KB.
        assert!(at(131072) > 0.95 * PAPER_PEAK_MBS);
        assert!(at(131072) <= PAPER_PEAK_MBS + 0.5);
    }

    #[test]
    fn report_has_all_sixteen_block_sizes() {
        let r = run();
        // 4 B .. 128 KB in powers of two = 16 rows.
        assert_eq!(measure().len(), 16);
        assert!(r.contains("131072"));
        assert!(r.contains("Figure 7"));
    }
}

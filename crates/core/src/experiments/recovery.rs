//! E21 — §2.2/§4/§6: fault injection and recovery on the personal
//! supercomputer.
//!
//! The paper's unattended-fortnight argument (§6) assumes the machine
//! *keeps* computing: a flipped link bit or a crashed rank on day 3
//! must not cost the run. This experiment drives the full recovery
//! stack under a deterministic, seeded fault plan
//! ([`hyades_fault::FaultPlan`]):
//!
//! * **Link faults** (§2.2): a corrupt/drop window over the Arctic
//!   fabric exercises the CRC-triggered retransmit protocol in
//!   `exchange` and `gsum` — timeouts arm capped exponential backoff,
//!   and the REQ/RETRY legs are proven deadlock-free by the schedule
//!   checker (E16's machinery).
//! * **Rank crash** (§4/§6): a planned crash mid-run rolls the coupled
//!   GCM back to its last checkpoint and replays; the recovered run
//!   must be *bit-identical* to an uninterrupted run — final state,
//!   per-timestep diagnostics, everything.
//!
//! All recovery cost is charged to simulated time, so the report itself
//! is a deterministic artefact.

use crate::tour::TourConfig;

/// Fixed seed: the experiment is a regression artefact, not a sweep.
const SEED: u64 = 0xFA_017;

pub fn run() -> String {
    let tour = TourConfig::new(SEED).fault_plan(TourConfig::demo_fault_plan(SEED));
    let r = tour.run_resilient();
    let mut out = String::new();
    out.push_str("E21: fault injection and recovery (coupled pair, 4 ranks)\n\n");
    out.push_str(&r.report);
    out.push_str(&format!(
        "\nrecovered bit-identical to uninterrupted run: {}\n",
        r.recovered_identical
    ));
    out.push_str(&format!(
        "steps = {}, checkpoints = {}, restarts = {}, replayed = {}, retransmits = {}, backoff waits = {}\n",
        r.steps, r.checkpoints, r.restarts, r.replayed_steps, r.retries, r.backoff_waits
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_a_crash_survived_and_faults_retransmitted() {
        let r = super::run();
        assert!(r.contains("[fault plan]"), "{r}");
        assert!(r.contains("rank-crash"), "{r}");
        assert!(
            r.contains("recovered bit-identical to uninterrupted run: true"),
            "{r}"
        );
        assert!(r.contains("restarts = 1"), "{r}");
        assert!(r.contains("[retransmit protocol under link faults]"), "{r}");
        assert!(r.contains("sum exact: true"), "{r}");
    }
}

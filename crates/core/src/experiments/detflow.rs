//! E17 — §4/§5: interprocedural determinism proof of the artefact
//! surface.
//!
//! Every number this repo quotes against the paper comes out of a
//! declared sink: the comms reductions feeding the 16-node run, the
//! telemetry exporters, the DES trace, the bench writers. This
//! experiment runs [`hyades_lint::flow`] over the whole workspace —
//! symbol table, call graph, effect fixpoint over the lattice
//! `Det < DetModuloSeed < Nondet` — and emits the inferred effect
//! table plus the per-sink proof that none of them transitively
//! reaches `Nondet` code outside test scope.

use hyades_lint::flow::{self, Effect, FlowReport};

pub struct DetFlowReport {
    pub files: usize,
    pub flow: FlowReport,
}

pub fn measure() -> DetFlowReport {
    let sources = hyades_lint::collect_sources(&hyades_lint::workspace_root())
        .unwrap_or_else(|e| panic!("collecting workspace sources: {e}"));
    let flow = flow::analyze(&sources, flow::WORKSPACE_SINKS);
    DetFlowReport {
        files: sources.len(),
        flow,
    }
}

pub fn run() -> String {
    let rep = measure();
    let fl = &rep.flow;
    let (det, dms, nondet) = fl.effect_counts();
    let mut s = String::new();
    s.push_str(
        "E17 Sections 4/5: interprocedural determinism proof (call graph + effect lattice)\n\n",
    );
    s.push_str(&format!(
        "workspace: {} files, {} functions, {} call edges\n",
        rep.files, fl.functions, fl.call_edges
    ));
    s.push_str(&format!(
        "effect table: {det} Det, {dms} DetModuloSeed, {nondet} Nondet\n"
    ));
    s.push_str("lattice: Det < DetModuloSeed < Nondet; effect(f) = max(intrinsic, callees)\n\n");

    s.push_str("sink proof (the 16-node run's artefact surface):\n");
    for k in &fl.sinks {
        s.push_str(&format!(
            "  {:<44} {:<18} {}\n",
            k.qual,
            k.what,
            k.effect.name()
        ));
    }

    let nondet_fns: Vec<_> = fl
        .fns
        .iter()
        .filter(|f| f.effect == Effect::Nondet && !f.is_test)
        .collect();
    s.push_str(&format!(
        "\nNondet outside test scope ({} function(s), none reachable from a sink):\n",
        nondet_fns.len()
    ));
    for f in nondet_fns {
        match &f.source {
            Some((line, what)) => {
                s.push_str(&format!("  {} <- {} ({}:{})\n", f.qual, what, f.file, line))
            }
            None => s.push_str(&format!("  {} (inherited from a callee)\n", f.qual)),
        }
    }

    s.push_str(&format!(
        "\ndet-trusted audit: {} pragma(s)",
        fl.trusted.len()
    ));
    for t in &fl.trusted {
        s.push_str(&format!(" {t}"));
    }
    s.push('\n');
    s.push_str(&format!(
        "nondet-reachable findings: {}\n",
        fl.findings.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sink_is_proven_det_or_seeded() {
        let rep = measure();
        assert!(
            rep.flow.sinks.len() >= flow::WORKSPACE_SINKS.len(),
            "every declared sink matches at least one definition"
        );
        for k in &rep.flow.sinks {
            assert_ne!(
                k.effect,
                Effect::Nondet,
                "sink {} reaches Nondet via {:?}",
                k.qual,
                k.chain
            );
        }
        assert!(rep.flow.findings.is_empty(), "{:?}", rep.flow.findings);
    }

    #[test]
    fn report_renders_the_proof() {
        let r = run();
        assert!(r.contains("nondet-reachable findings: 0"), "{r}");
        assert!(r.contains("comms::world::ThreadWorld::exchange"), "{r}");
        assert!(r.contains("effect table:"), "{r}");
    }
}

//! E19 — §5/§6: cross-rank critical path of a coupled step.
//!
//! The phase model (eqs. 4–13) predicts the aggregate step time of a
//! balanced run but cannot say *which* rank, phase, or link sets it.
//! This experiment reconstructs the global event DAG of the 4-rank
//! coupled run from stamped comm logs ([`hyades_telemetry::critpath`])
//! and reports the longest weighted path: first for the balanced run
//! (every tile identical, so no rank should dominate and the path should
//! track the model's step prediction), then with a deliberate straggler
//! — one rank charged an extra second of PS compute per step — to show
//! the attribution table pinning the blame on exactly that (rank,
//! phase). The paper's slowest-rank argument, made causal and checkable.

use crate::tour::{self, Straggler};
use hyades_telemetry::critpath::phase_label;

/// Fixed seed: the experiment is a regression artefact, not a sweep.
const SEED: u64 = 0xC817_9A7;

/// The injected perturbation: 50 Mflop at 50 Mflop/s = one extra second
/// of PS compute per step, dwarfing the millisecond-scale step itself.
const STRAGGLER: Straggler = Straggler {
    rank: 2,
    extra_flops: 50_000_000,
};

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E19: cross-rank critical path of a coupled step (4 ranks)\n");

    let base = tour::run_critpath(SEED, None);
    out.push_str("\n--- balanced run ---\n");
    out.push_str(&base.report);
    out.push('\n');
    out.push_str(&base.slack_report);
    out.push_str(&format!(
        "\nmax |path vs model residual| = {:.4} (budget 2.0)\n",
        base.max_step_residual
    ));

    let perturbed = tour::run_critpath(SEED, Some(STRAGGLER));
    out.push_str(&format!(
        "\n--- injected straggler: rank {} + {} Mflop PS per step ---\n",
        STRAGGLER.rank,
        STRAGGLER.extra_flops / 1_000_000
    ));
    out.push_str(&perturbed.report);
    match perturbed.blame {
        Some((rank, phase)) => out.push_str(&format!(
            "\nattributed straggler: rank {rank} {} (injected: rank {} ps) -> {}\n",
            phase_label(phase),
            STRAGGLER.rank,
            if rank == STRAGGLER.rank {
                "correct"
            } else {
                "WRONG"
            }
        )),
        None => out.push_str("\nattributed straggler: none (WRONG)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_attributes_the_injected_straggler() {
        let r = super::run();
        assert!(r.contains("--- balanced run ---"), "{r}");
        assert!(r.contains("--- injected straggler: rank 2"), "{r}");
        assert!(r.contains("-> correct"), "{r}");
        assert!(!r.contains("WRONG"), "{r}");
        for needle in [
            "[per-step critical path]",
            "[per-rank slack]",
            "[straggler attribution]",
            "[wait vs wire]",
            "critical path vs phase model",
        ] {
            assert!(r.contains(needle), "missing {needle}:\n{r}");
        }
    }
}

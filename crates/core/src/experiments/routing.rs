//! E12 — §2.2's fabric features under adversarial traffic.
//!
//! Arctic's header carries a "random uproute" option (Figure 1b). This
//! study shows why: with one fixed up-path per source, the fat-tree is
//! only rearrangeably non-blocking, and the classic bit-reverse
//! permutation collapses its throughput; randomized path diversity
//! restores it. The GCM's own patterns (neighbor exchanges) are friendly
//! either way, which is why the communication library can afford the
//! deterministic mode (and gain Arctic's per-path FIFO ordering).

use hyades_arctic::packet::UpRoute;
use hyades_arctic::workload::{run_traffic, Pattern, TrafficResult};
use hyades_perf::report::Table;

const LOAD: f64 = 0.8;
const WINDOW_US: f64 = 400.0;

pub fn measure(pattern: Pattern, uproute: UpRoute, seed: u64) -> TrafficResult {
    run_traffic(16, pattern, uproute, LOAD, WINDOW_US, seed)
}

pub fn run() -> String {
    let offered = 16.0 * LOAD * 137.5;
    let mut t = Table::new(&[
        "pattern",
        "uproute",
        "delivered (MB/s)",
        "% offered",
        "mean latency (us)",
    ]);
    let cases = [
        (Pattern::NearestNeighbor, "nearest-neighbor"),
        (Pattern::Transpose, "transpose"),
        (Pattern::BitReverse, "bit-reverse"),
        (Pattern::UniformRandom, "uniform random"),
        (Pattern::Hotspot, "hotspot"),
    ];
    for (i, (p, name)) in cases.iter().enumerate() {
        for (up, upname) in [
            (UpRoute::SourceSpread, "deterministic"),
            (UpRoute::Random, "random"),
        ] {
            let r = measure(*p, up, 10 + i as u64);
            t.row(&[
                name.to_string(),
                upname.to_string(),
                format!("{:.0}", r.delivered_mbyte_per_sec),
                format!("{:.0}%", r.delivered_mbyte_per_sec / offered * 100.0),
                format!("{:.1}", r.latency.mean()),
            ]);
        }
    }
    format!(
        "E12 Fabric routing study: 16 endpoints at {:.0}% offered load\n\
         (offered aggregate {offered:.0} MB/s of payload)\n\n{}\n\
         Bit-reverse collapses deterministic routing (the butterfly worst case);\n\
         Arctic's random-uproute feature restores full throughput. Hotspot traffic\n\
         is bounded by the victim's single link regardless of routing.\n",
        LOAD * 100.0,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_patterns() {
        let r = run();
        for name in ["nearest-neighbor", "bit-reverse", "hotspot"] {
            assert!(r.contains(name), "missing {name}");
        }
    }
}

//! E11 — §6: the cost of API generality (MPI-StarT vs custom primitives).
//!
//! "The Hyades cluster does have general-purpose, high-level programming
//! interfaces, like MPI-StarT and Cilk … However, in an
//! application-specific cluster, there is little reason to give up any
//! performance for an API that is more general than required."
//! This experiment puts a number on "any performance".

use hyades_cluster::interconnect::{arctic_paper, ExchangeShape, Interconnect};
use hyades_comms::mpistart::{mpistart_model, reduction_tax};
use hyades_perf::model::paper_atmosphere;
use hyades_perf::pfpp::pfpp_ds;
use hyades_perf::report::Table;

pub fn run() -> String {
    let mut t = Table::new(&["N-way reduction", "custom (us)", "MPI-StarT (us)", "tax"]);
    for n in [2u16, 4, 8, 16] {
        let (custom, mpi) = reduction_tax(n);
        t.row(&[
            n.to_string(),
            format!("{custom:.1}"),
            format!("{mpi:.1}"),
            format!("{:.1}x", mpi / custom),
        ]);
    }
    // Application-level consequence: Pfpp_ds through each API.
    let base = paper_atmosphere();
    let custom_model = base.on_interconnect(&arctic_paper(), 5, 8);
    let mpi_model = base.on_interconnect(&mpistart_model(), 5, 8);
    let ds = ExchangeShape::square_tile(32, 1, 1, 8);
    format!(
        "E11 Section 6: the generality tax (same fabric, different API)\n\n{}\n\
         DS-phase exchange (2-D field): custom {:.0} us vs MPI {:.0} us\n\
         Pfpp_ds through the custom primitives: {:.0} MF/s\n\
         Pfpp_ds through MPI-StarT:            {:.0} MF/s\n\
         The custom library keeps the application compute-bound (Pfpp_ds > 60);\n\
         a general-purpose API on the *same hardware* gives most of that back.\n\
         (The primitives took \"less than one man-month\" to write — the paper's\n\
         trade.)\n",
        t.render(),
        arctic_paper().exchange_time(&ds).as_us_f64(),
        mpistart_model().exchange_time(&ds).as_us_f64(),
        pfpp_ds(&custom_model),
        pfpp_ds(&mpi_model),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_halves_or_worse_the_fine_grain_headroom() {
        let base = paper_atmosphere();
        let custom = pfpp_ds(&base.on_interconnect(&arctic_paper(), 5, 8));
        let mpi = pfpp_ds(&base.on_interconnect(&mpistart_model(), 5, 8));
        assert!(mpi < 0.55 * custom, "custom {custom} vs mpi {mpi}");
        // Custom clears the 60 MF/s bar…
        assert!(custom > 60.0);
        // …MPI on the same fabric is marginal-to-failing.
        assert!(mpi < 80.0);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("generality tax"));
        assert!(r.contains("man-month"));
    }
}

//! E4 — Figure 10: sustained performance of the ocean isomorph across
//! platforms.
//!
//! The vector-machine rows are comparator data (we cannot rebuild a Cray);
//! the Hyades rows are *computed* from this reproduction: the
//! single-processor rate from the kernel mix, and the 16-processor rate
//! from the performance model with communication costs measured on the
//! simulated fabric.

use hyades_cluster::interconnect::{ExchangeShape, Interconnect};
use hyades_cluster::machines::figure10_vector_rows;
use hyades_comms::measured::simulated_arctic_model;
use hyades_perf::model::PerfModel;
use hyades_perf::params::{DsParams, PsParams};
use hyades_perf::report::Table;

/// Paper's Hyades rows: (procs, sustained GFlop/s).
pub const PAPER_HYADES: [(u32, f64); 2] = [(1, 0.054), (16, 0.8)];

/// Single-processor sustained rate (GFlop/s): the whole ocean domain on
/// one CPU, no communication — the harmonic mix of the PS and DS kernel
/// rates weighted by their flop shares.
pub fn hyades_single_proc_gflops() -> f64 {
    let (nps, fps) = (751.0, 50.0e6);
    let (nds, fds, ni) = (36.0, 60.0e6, 60.0);
    let cells = 128.0 * 64.0 * 15.0;
    let cols = 128.0 * 64.0;
    let flops = nps * cells + ni * nds * cols;
    let time = nps * cells / fps + ni * nds * cols / fds;
    flops / time / 1e9
}

/// Sixteen processors on sixteen SMPs (one endpoint each): the
/// full-cluster ocean run. Communication from the simulated Arctic
/// fabric.
pub fn hyades_16proc_gflops() -> (f64, PerfModel) {
    let net = simulated_arctic_model();
    // 128×64 over a 4×4 process grid: 32×16 tiles, 15 levels.
    let (tx, ty, levels) = (32u32, 16u32, 15u32);
    let ps_legs: Vec<u64> = vec![(ty * 3 * levels * 8) as u64; 4]
        .into_iter()
        .chain(vec![(tx * 3 * levels * 8) as u64; 4])
        .collect();
    let ds_legs: Vec<u64> = vec![(ty * 8) as u64; 4]
        .into_iter()
        .chain(vec![(tx * 8) as u64; 4])
        .collect();
    let m = PerfModel {
        ps: PsParams {
            nps: 751.0,
            nxyz: (tx * ty * levels) as u64,
            texch_xyz_us: net
                .exchange_time(&ExchangeShape::from_legs(ps_legs))
                .as_us_f64(),
            fps_mflops: 50.0,
        },
        ds: DsParams {
            nds: 36.0,
            nxy: (tx * ty) as u64,
            tgsum_us: net.gsum_time(16).as_us_f64(),
            texch_xy_us: net
                .exchange_time(&ExchangeShape::from_legs(ds_legs))
                .as_us_f64(),
            fds_mflops: 60.0,
        },
    };
    (m.sustained_mflops(16, 60.0) / 1000.0, m)
}

pub fn run() -> String {
    let mut t = Table::new(&["machine", "procs", "sustained (GFlop/s)", "note"]);
    for v in figure10_vector_rows() {
        t.row(&[
            v.name.to_string(),
            v.processors.to_string(),
            format!("{:.1}", v.sustained_mflops / 1000.0),
            format!("paper value; {:.0}% of peak", v.efficiency() * 100.0),
        ]);
    }
    let one = hyades_single_proc_gflops();
    let (sixteen, _) = hyades_16proc_gflops();
    t.row(&[
        "Hyades".into(),
        "1".into(),
        format!("{one:.3}"),
        format!("computed (paper: {})", PAPER_HYADES[0].1),
    ]);
    t.row(&[
        "Hyades".into(),
        "16".into(),
        format!("{sixteen:.2}"),
        format!(
            "computed, {:.1}x self-speedup (paper: {}, 15x)",
            sixteen / one,
            PAPER_HYADES[1].1
        ),
    ]);
    format!(
        "E4  Figure 10: sustained performance of the coarse-resolution ocean isomorph\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_processor_rate_matches_paper() {
        // Paper: 0.054 GFlop/s. The harmonic kernel mix gives 51–54
        // MFlop/s depending on how the DS share is rounded.
        let g = hyades_single_proc_gflops();
        assert!((g - 0.054).abs() < 0.004, "{g}");
    }

    #[test]
    fn sixteen_processor_rate_shape() {
        let one = hyades_single_proc_gflops();
        let (sixteen, m) = hyades_16proc_gflops();
        // Paper reports 0.8 GFlop/s (≈15×); our simulated communication
        // costs land in the same regime: >10× speedup, >0.55 GF.
        let speedup = sixteen / one;
        assert!(
            (10.0..16.5).contains(&speedup),
            "speedup {speedup} (rate {sixteen} GF)"
        );
        assert!(m.efficiency(60.0) > 0.6, "{}", m.efficiency(60.0));
        // Sixteen Hyades PCs still trail a 4-way C90 (2.2 GF) — the
        // paper's larger point is cost, not raw speed.
        assert!(sixteen < 2.2);
    }

    #[test]
    fn hyades_16_is_comparable_to_one_vector_processor() {
        // §5.1: "performance on sixteen processors of our cluster is
        // comparable to a one-processor vector machine."
        let (sixteen, _) = hyades_16proc_gflops();
        let rows = figure10_vector_rows();
        let c90_1 = rows
            .iter()
            .find(|r| r.name == "Cray C90" && r.processors == 1)
            .unwrap();
        let ratio = sixteen * 1000.0 / c90_1.sustained_mflops;
        assert!((0.7..1.5).contains(&ratio), "ratio to C90 {ratio}");
    }

    #[test]
    fn report_renders_all_rows() {
        let r = run();
        assert!(r.contains("Cray Y-MP"));
        assert!(r.contains("NEC SX-4"));
        assert!(r.contains("Hyades"));
        // 6 vector rows + 2 Hyades rows + header/separator.
        assert!(r.lines().count() >= 11);
    }
}

//! E18 — §5/§6: GCM run-health observatory over a coupled run.
//!
//! The paper's century-in-two-weeks argument (§6) presumes runs that
//! *finish*: a coupled integration that blows up on day 30 of an
//! unattended fortnight wastes the machine. This experiment drives the
//! coupled atmosphere–ocean pair through the monitored stepper
//! ([`hyades_gcm::monitor::RunMonitor`]) on the 4-rank thread world and
//! emits the per-timestep diagnostics: conserved-quantity budgets,
//! CFL/stability indicators, per-field extremes with blame coordinates,
//! and the CG convergence telemetry — the MITgcm `monitor` package
//! recast on deterministic reductions, so the health record itself is
//! byte-identical run to run.

use crate::tour;

/// Fixed seed: the experiment is a regression artefact, not a sweep.
const SEED: u64 = 0xD1A_607;

pub fn run() -> String {
    let d = tour::run_coupled_diag(SEED);
    let mut out = String::new();
    out.push_str("E18: GCM run-health observatory (coupled pair, 4 ranks)\n\n");
    out.push_str(&d.text);
    out.push_str(&format!(
        "\nsteps monitored = {} per component, sentinel trips = {}\n",
        d.steps, d.sentinel_trips
    ));
    out.push_str(&format!(
        "CG iterations: p50 = {}, p99 = {}; max advective CFL = {:.6}\n",
        d.cg_iters_p50, d.cg_iters_p99, d.max_cfl
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_carries_both_series_and_a_clean_bill() {
        let r = super::run();
        assert!(r.contains("# diag series: atmos"), "{r}");
        assert!(r.contains("# diag series: ocean"), "{r}");
        assert!(r.contains("sentinel trips = 0"), "{r}");
        assert!(r.contains("CG iterations: p50 ="), "{r}");
        for col in ["vol_anom", "cfl_adv", "cg_iters", "theta_max"] {
            assert!(r.contains(col), "missing column {col}:\n{r}");
        }
    }
}

//! E5 — Figure 11: performance-model parameters, paper vs measured.
//!
//! `Nps`/`Nds` are measured by instrumented runs of this implementation's
//! kernels; `texch`/`tgsum` come from the simulated fabric's stand-alone
//! benchmarks. The paper's values were obtained the same way on the real
//! hardware, so this table is the honest side-by-side.

use hyades_cluster::interconnect::{ExchangeShape, Interconnect};
use hyades_comms::measured::{measure_exchange_mixmode, simulated_arctic_model};
use hyades_comms::SerialWorld;
use hyades_gcm::config::ModelConfig;
use hyades_gcm::decomp::Decomp;
use hyades_gcm::driver::Model;
use hyades_perf::report::Table;

/// Measured flop coefficients from `steps` instrumented steps of a model.
pub fn measure_flops(cfg: ModelConfig, steps: usize) -> (f64, f64, f64) {
    let mut m = Model::new(cfg, 0);
    let mut w = SerialWorld;
    hyades_gcm::flops::reset();
    m.run(&mut w, steps);
    let (nps, nds) = m.measured_n_coefficients();
    (nps, nds, m.mean_cg_iterations())
}

/// Measured communication costs on the simulated fabric for the coupled
/// 8-endpoint layout (32×32 tiles): `(texch_xyz(levels), texch_xy, tgsum_2x8)`.
///
/// The PS exchange runs in the paper's *mixed mode* (both SMP processors
/// own tiles; the slave's remote legs go through the master, §4.1); the
/// DS exchange and global sum run on the masters.
pub fn measure_comm(levels: u32) -> (f64, f64, f64) {
    let net = simulated_arctic_model();
    let ds = ExchangeShape::square_tile(32, 1, 1, 8);
    let leg_bytes = (32 * 3 * levels * 8) as u64;
    let ps_mix = measure_exchange_mixmode(hyades_startx::HostParams::default(), 4, 2, leg_bytes);
    (
        ps_mix.as_us_f64(),
        net.exchange_time(&ds).as_us_f64(),
        net.smp_gsum_time(8).as_us_f64(),
    )
}

pub fn run() -> String {
    // Reduced-size instrumented runs (the coefficients are per-cell, so a
    // smaller grid measures the same numbers much faster).
    let d = Decomp::blocks(32, 16, 1, 1, 3);
    let mut acfg = ModelConfig::atmosphere_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
    acfg.grid = hyades_gcm::grid::Grid::global(32, 16, 5, 78.75, vec![2.0e4; 5]);
    acfg.decomp = d;
    let (a_nps, a_nds, a_ni) = measure_flops(acfg, 3);
    let mut ocfg = ModelConfig::ocean_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
    ocfg.grid = hyades_gcm::grid::Grid::global(
        32,
        16,
        15,
        78.75,
        hyades_gcm::grid::stretched_levels(15, 4000.0),
    );
    ocfg.decomp = d;
    ocfg.continents = false;
    let (o_nps, o_nds, o_ni) = measure_flops(ocfg, 3);

    let (a_xyz, xy, gsum) = measure_comm(5);
    let (o_xyz, _, _) = measure_comm(15);

    let mut t = Table::new(&["parameter", "paper", "this reproduction"]);
    t.row(&[
        "PS atmos: Nps (flops/cell)".into(),
        "781".into(),
        format!("{a_nps:.0}"),
    ]);
    t.row(&[
        "PS atmos: texch_xyz (us)".into(),
        "1640".into(),
        format!("{a_xyz:.0}"),
    ]);
    t.row(&[
        "PS ocean: Nps (flops/cell)".into(),
        "751".into(),
        format!("{o_nps:.0}"),
    ]);
    t.row(&[
        "PS ocean: texch_xyz (us)".into(),
        "4573".into(),
        format!("{o_xyz:.0}"),
    ]);
    t.row(&[
        "DS: Nds (flops/col/iter)".into(),
        "36".into(),
        format!("{:.0}", 0.5 * (a_nds + o_nds)),
    ]);
    t.row(&[
        "DS: tgsum 2x8-way (us)".into(),
        "13.5".into(),
        format!("{gsum:.1}"),
    ]);
    t.row(&["DS: texch_xy (us)".into(), "115".into(), format!("{xy:.0}")]);
    t.row(&[
        "DS: mean Ni (solver iters)".into(),
        "60".into(),
        format!("{:.0}/{:.0} (atm/oce)", a_ni, o_ni),
    ]);
    t.row(&[
        "nxyz per endpoint (atmos)".into(),
        "5120".into(),
        "5120 (128x64x5 / 8)".into(),
    ]);
    t.row(&[
        "nxyz per endpoint (ocean)".into(),
        "15360".into(),
        "15360 (128x64x15 / 8)".into(),
    ]);
    t.row(&[
        "nxy per endpoint".into(),
        "1024".into(),
        "1024 (128x64 / 8)".into(),
    ]);
    format!(
        "E5  Figure 11: performance model parameters (2.8125 deg, 8 endpoints)\n\
         Nps/Nds measured from instrumented kernels; exchange/global-sum\n\
         costs measured on the simulated Arctic fabric.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_nps_same_order_as_paper() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 5, d);
        let (nps, nds, ni) = measure_flops(cfg, 3);
        // Paper: 751–781 and 36. Our leaner kernels must be within ~3× on
        // Nps and close on Nds.
        assert!((250.0..1600.0).contains(&nps), "Nps {nps}");
        assert!((15.0..60.0).contains(&nds), "Nds {nds}");
        assert!(ni > 1.0);
    }

    #[test]
    fn measured_comm_same_order_as_paper() {
        let (xyz5, xy, gsum) = measure_comm(5);
        // Paper: 1640 / 115 / 13.5 µs. The simulated fabric reproduces
        // the gsum closely and the exchanges within a small factor (the
        // paper's exchange includes host-side effects we model leanly —
        // see EXPERIMENTS.md).
        assert!((8.0..20.0).contains(&gsum), "gsum {gsum}");
        assert!((60.0..250.0).contains(&xy), "texch_xy {xy}");
        assert!((250.0..2000.0).contains(&xyz5), "texch_xyz {xyz5}");
        // Ocean exchange ~3x the atmosphere's (15 vs 5 levels).
        let (xyz15, _, _) = measure_comm(15);
        let ratio = xyz15 / xyz5;
        assert!((2.2..3.3).contains(&ratio), "level scaling {ratio}");
    }
}

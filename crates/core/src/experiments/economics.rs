//! E13 — the affordability argument (§1, §2, §6).
//!
//! The paper's thesis is economic as much as technical: the cluster costs
//! "less than $100,000, about evenly divided between the processing nodes
//! and the interconnect", which makes it *ownable* by a single research
//! group — "the turn-around time is simply the CPU time", with no shared
//! job queue. This experiment quantifies the price–performance gap
//! against the Figure 10 vector machines.
//!
//! Vector-machine prices are circa-1999 street estimates (documented as
//! such; exact contract prices were never public): they are comparator
//! data in the same sense as the Figure 10 sustained rates.

use crate::experiments::fig10::{hyades_16proc_gflops, hyades_single_proc_gflops};
use hyades_cluster::machines::figure10_vector_rows;
use hyades_perf::queueing::{campaign_hours, SharedQueue};
use hyades_perf::report::Table;

/// Estimated 1999 system price (USD) for each Figure 10 configuration.
pub fn estimated_price_usd(name: &str, processors: u32) -> f64 {
    let per_cpu = match name {
        "Cray Y-MP" => 2.5e6,
        "Cray C90" => 2.0e6,
        "NEC SX-4" => 1.0e6,
        _ => panic!("unknown machine {name}"),
    };
    per_cpu * processors as f64
}

/// Dollars per sustained MFlop/s on the GCM workload.
pub struct PricePerf {
    pub name: String,
    pub procs: u32,
    pub price_usd: f64,
    pub sustained_mflops: f64,
    pub usd_per_mflops: f64,
}

pub fn rows() -> Vec<PricePerf> {
    let mut out: Vec<PricePerf> = figure10_vector_rows()
        .into_iter()
        .map(|v| {
            let price = estimated_price_usd(v.name, v.processors);
            PricePerf {
                name: v.name.to_string(),
                procs: v.processors,
                price_usd: price,
                sustained_mflops: v.sustained_mflops,
                usd_per_mflops: price / v.sustained_mflops,
            }
        })
        .collect();
    let (sixteen, _) = hyades_16proc_gflops();
    let hyades_mf = sixteen * 1000.0;
    out.push(PricePerf {
        name: "Hyades".to_string(),
        procs: 16,
        price_usd: 100_000.0,
        sustained_mflops: hyades_mf,
        usd_per_mflops: 100_000.0 / hyades_mf,
    });
    let _ = hyades_single_proc_gflops();
    out
}

pub fn run() -> String {
    let mut t = Table::new(&[
        "system",
        "procs",
        "est. price (1999 USD)",
        "sustained (MF/s)",
        "$ / sustained MF/s",
    ]);
    let rows = rows();
    for r in &rows {
        t.row(&[
            r.name.clone(),
            r.procs.to_string(),
            format!("{:.1}M", r.price_usd / 1e6),
            format!("{:.0}", r.sustained_mflops),
            format!("{:.0}", r.usd_per_mflops),
        ]);
    }
    let hyades = rows.last().unwrap();
    let best_vector = rows[..rows.len() - 1]
        .iter()
        .map(|r| r.usd_per_mflops)
        .fold(f64::INFINITY, f64::min);
    // The queue-time half of the argument: a 20-experiment campaign of
    // 3-CPU-hour jobs (the validated one-year run) on a shared machine at
    // 85% utilization vs the dedicated cluster.
    let q = SharedQueue::new(0.85, 3.0, 1.5);
    let shared = campaign_hours(Some(&q), 20, 3.0);
    let dedicated = campaign_hours(None, 20, 3.0);
    format!(
        "E13 The economics of a personal supercomputer\n\n{}\n\
         Hyades delivers a sustained MFlop/s for ${:.0} against ${:.0} on the most\n\
         cost-effective vector machine — a {:.0}x price-performance advantage.\n\
         Queue time: a 20-experiment campaign of 3-CPU-hour jobs takes {:.0} h\n\
         dedicated vs ~{:.0} h behind a shared queue at 85% utilization (M/G/1,\n\
         cv=1.5) — the \"CPU time dwarfed by the job queue\" effect of section 6.\n\
         Prices are published-estimate comparator data; the Hyades rate is computed\n\
         by this reproduction (E4).\n",
        t.render(),
        hyades.usd_per_mflops,
        best_vector,
        best_vector / hyades.usd_per_mflops,
        dedicated,
        shared,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyades_wins_price_performance_by_an_order_of_magnitude() {
        let rows = rows();
        let hyades = rows.last().unwrap();
        assert_eq!(hyades.name, "Hyades");
        for v in &rows[..rows.len() - 1] {
            let advantage = v.usd_per_mflops / hyades.usd_per_mflops;
            assert!(
                advantage > 5.0,
                "{} {}cpu: only {advantage:.1}x",
                v.name,
                v.procs
            );
        }
    }

    #[test]
    fn hyades_cost_within_paper_budget() {
        let rows = rows();
        let hyades = rows.last().unwrap();
        assert!(hyades.price_usd <= 100_000.0);
        assert!(hyades.sustained_mflops > 500.0);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("price-performance advantage"));
        assert!(r.contains("NEC SX-4"));
    }
}

//! E8 — §6: the HPVM/Myrinet comparison.
//!
//! The paper's argument for application-specific primitives: a
//! general-purpose cluster suite with comparable hardware (HPVM on
//! Myrinet) needs more than 50 µs for a 16-way barrier — over 2.5× the
//! Hyades context-specific primitive — and moves 1-KB blocks at
//! ~42 MByte/s, about 25% slower than the Hyades exchange legs.

use hyades_cluster::ethernet::hpvm_myrinet;
use hyades_cluster::interconnect::Interconnect;
use hyades_comms::barrier::measure_barrier;
use hyades_perf::report::Table;
use hyades_startx::vi::{measure_transfer, ViConfig};
use hyades_startx::HostParams;

pub struct HpvmComparison {
    pub hyades_barrier_us: f64,
    pub hpvm_barrier_us: f64,
    pub hyades_1kb_mbs: f64,
    pub hpvm_1kb_mbs: f64,
}

pub fn measure() -> HpvmComparison {
    let host = HostParams::default();
    let hpvm = hpvm_myrinet();
    let hyades_barrier = measure_barrier(host, 16).as_us_f64();
    let t1k = measure_transfer(host, ViConfig::default(), 16, 1024);
    HpvmComparison {
        hyades_barrier_us: hyades_barrier,
        hpvm_barrier_us: hpvm.barrier_time(16).as_us_f64(),
        hyades_1kb_mbs: t1k.mbyte_per_sec,
        hpvm_1kb_mbs: 1024.0 / hpvm.ptp_time(1024).as_secs_f64() / 1e6,
    }
}

pub fn run() -> String {
    let c = measure();
    let mut t = Table::new(&["metric", "Hyades (simulated)", "HPVM/Myrinet", "ratio"]);
    t.row(&[
        "16-way barrier (us)".into(),
        format!("{:.1}", c.hyades_barrier_us),
        format!("{:.1}", c.hpvm_barrier_us),
        format!("{:.1}x", c.hpvm_barrier_us / c.hyades_barrier_us),
    ]);
    t.row(&[
        "1-KB transfer (MB/s)".into(),
        format!("{:.1}", c.hyades_1kb_mbs),
        format!("{:.1}", c.hpvm_1kb_mbs),
        format!(
            "{:.0}% slower",
            (1.0 - c.hpvm_1kb_mbs / c.hyades_1kb_mbs) * 100.0
        ),
    ]);
    format!(
        "E8  Section 6: application-specific primitives vs the general-purpose\n\
         HPVM suite on comparable hardware\n\n{}\n\
         paper: HPVM barrier > 50 us (>2.5x Hyades); HPVM 1-KB transfers ~42 MB/s\n\
         (~25% slower than the Hyades exchange).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_ratio_exceeds_2_5x() {
        let c = measure();
        assert!(c.hpvm_barrier_us > 50.0);
        assert!(
            c.hpvm_barrier_us / c.hyades_barrier_us > 2.5,
            "{} vs {}",
            c.hpvm_barrier_us,
            c.hyades_barrier_us
        );
    }

    #[test]
    fn hpvm_1kb_rate_about_42() {
        let c = measure();
        assert!((c.hpvm_1kb_mbs - 42.0).abs() < 1.0, "{}", c.hpvm_1kb_mbs);
        // ~25% slower than Hyades.
        let slowdown = 1.0 - c.hpvm_1kb_mbs / c.hyades_1kb_mbs;
        assert!((0.1..0.4).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("HPVM"));
    }
}

//! E1 — Figure 2: LogP characteristics of PIO message passing.

use hyades_perf::report::Table;
use hyades_startx::logp::{figure2, LogPRow};
use hyades_startx::HostParams;

/// Paper values: (payload, Os, Or, RTT/2, L) in µs.
pub const PAPER: [(u64, f64, f64, f64, f64); 2] =
    [(8, 0.4, 2.0, 3.7, 1.3), (64, 1.7, 8.6, 11.7, 1.4)];

/// Measured rows from the simulated fabric.
pub fn measure() -> Vec<LogPRow> {
    figure2(HostParams::default())
}

/// Render the paper-vs-simulation table.
pub fn run() -> String {
    let rows = measure();
    let mut t = Table::new(&[
        "size (B)",
        "Os (us)",
        "Or (us)",
        "RTT/2 (us)",
        "L (us)",
        "paper Os/Or/RTT2/L",
    ]);
    for (row, paper) in rows.iter().zip(PAPER.iter()) {
        t.row(&[
            row.payload_bytes.to_string(),
            format!("{:.2}", row.os.as_us_f64()),
            format!("{:.2}", row.or.as_us_f64()),
            format!("{:.2}", row.half_rtt.as_us_f64()),
            format!("{:.2}", row.latency.as_us_f64()),
            format!("{}/{}/{}/{}", paper.1, paper.2, paper.3, paper.4),
        ]);
    }
    format!(
        "E1  Figure 2: LogP characteristics of StarT-X PIO messaging\n\
         (simulated fabric, 16 endpoints, worst-case 7-stage path)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_within_15_percent_of_paper() {
        for (row, paper) in measure().iter().zip(PAPER.iter()) {
            let checks = [
                (row.os.as_us_f64(), paper.1),
                (row.or.as_us_f64(), paper.2),
                (row.half_rtt.as_us_f64(), paper.3),
            ];
            for (ours, theirs) in checks {
                assert!(
                    (ours - theirs).abs() / theirs < 0.15,
                    "size {}: {ours} vs paper {theirs}",
                    paper.0
                );
            }
            // Latency is the small residual of the subtraction; allow a
            // wider band.
            assert!(
                (row.latency.as_us_f64() - paper.4).abs() / paper.4 < 0.35,
                "L {} vs {}",
                row.latency,
                paper.4
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Figure 2"));
        assert!(r.contains("RTT/2"));
        assert!(r.lines().count() > 5);
    }
}

//! E6 — §5.3: validating the performance model.
//!
//! Two validations are reported:
//!
//! 1. **The paper's own numbers**: plugging Figure 11's parameters into
//!    eqs. (12)–(13) must reproduce the published 30.1 + 151 ≈ 181 min
//!    prediction against 183 min observed.
//! 2. **This reproduction's closed loop**: the time-charging executor
//!    replays an instrumented run of our GCM (actual flops, actual
//!    per-step solver iterations) and extrapolates to the year-long run;
//!    the closed-form model (mean parameters) must predict that
//!    "observed" time to within a couple of percent, which is the same
//!    agreement the paper demonstrates.

use crate::charging::run_charged;
use hyades_gcm::config::ModelConfig;
use hyades_gcm::decomp::Decomp;
use hyades_perf::model::PerfModel;
use hyades_perf::params::{paper_validation_run, DsParams, PsParams};
use hyades_perf::validate::{paper_validation, validate, Validation};

/// Closed-loop validation on a reduced grid (per-cell coefficients are
/// grid-size independent).
pub fn closed_loop(steps: usize) -> (Validation, f64) {
    let d = Decomp::blocks(32, 16, 1, 1, 3);
    let mut cfg = ModelConfig::atmosphere_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
    cfg.grid = hyades_gcm::grid::Grid::global(32, 16, 5, 78.75, vec![2.0e4; 5]);
    cfg.decomp = d;
    // Charge with the paper's 8-endpoint layout and its measured
    // communication costs.
    let base = hyades_perf::model::paper_atmosphere();
    let run = run_charged(cfg, &base, steps);
    let nt = paper_validation_run().nt;
    let observed_minutes = run.extrapolated_minutes(nt);
    // Closed-form prediction from the run's mean parameters.
    let pm = PerfModel {
        ps: PsParams {
            nps: run.measured_nps,
            ..base.ps
        },
        ds: DsParams {
            nds: run.measured_nds,
            ..base.ds
        },
    };
    (
        validate(&pm, nt, run.mean_ni, observed_minutes),
        run.mean_ni,
    )
}

pub fn run() -> String {
    let paper = paper_validation();
    let (ours, ni) = closed_loop(6);
    format!(
        "E6  Section 5.3: validation of the performance model\n\n\
         Paper's validation (Figure 11 parameters, Nt=77760, Ni=60):\n\
         predicted communication: {:6.1} min   (paper: 30.1)\n\
         predicted computation:   {:6.1} min   (paper: 151)\n\
         predicted total:         {:6.1} min   vs observed 183 min ({:+.1}%)\n\n\
         This reproduction's closed loop (instrumented GCM -> charging executor,\n\
         mean Ni = {ni:.1}):\n\
         model-predicted total:   {:6.1} min\n\
         charged 'observed':      {:6.1} min   ({:+.1}%)\n",
        paper.predicted_comm_minutes,
        paper.predicted_comp_minutes,
        paper.predicted_total_minutes,
        paper.relative_error * 100.0,
        ours.predicted_total_minutes,
        ours.observed_minutes,
        ours.relative_error * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduced() {
        let v = paper_validation();
        assert!((v.predicted_comm_minutes - 30.1).abs() < 1.0);
        assert!((v.predicted_comp_minutes - 151.0).abs() < 1.5);
        assert!(v.relative_error.abs() < 0.02);
    }

    #[test]
    fn closed_loop_agrees_within_three_percent() {
        let (v, ni) = closed_loop(4);
        assert!(
            v.relative_error.abs() < 0.03,
            "model vs charged run disagree: {v:?}"
        );
        assert!(ni > 1.0);
        assert!(v.observed_minutes > 0.0);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("183 min"));
        assert!(r.contains("closed loop"));
    }
}

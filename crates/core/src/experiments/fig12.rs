//! E7 — Figure 12: Potential Floating-Point Performance by interconnect.
//!
//! The Fast/Gigabit Ethernet rows use primitive costs calibrated to the
//! paper's stand-alone measurements; the Arctic row is *measured on the
//! simulated fabric*. The derived Pfpp columns — who can support the
//! fine-grain DS phase, by what factor the Ethernets miss — are computed,
//! not copied, and the paper's published row is shown alongside.

use hyades_cluster::ethernet::{fast_ethernet, gigabit_ethernet};
use hyades_comms::measured::simulated_arctic_model;
use hyades_perf::model::{paper_atmosphere, PerfModel};
use hyades_perf::pfpp::{self, PfppRow};
use hyades_perf::report::{mflops, us, Table};

/// Paper's Figure 12 rows: (name, tgsum, texch_xy, texch_xyz, Pfpp_ps,
/// Pfpp_ds) in µs / MFlop/s.
pub const PAPER: [(&str, f64, f64, f64, f64, f64); 3] = [
    ("F.E.", 942.0, 10_008.0, 100_000.0, 8.0, 1.6),
    ("G.E.", 1_193.0, 1_789.0, 5_742.0, 139.0, 6.2),
    ("Arctic", 13.5, 115.0, 1_640.0, 487.0, 143.0),
];

/// Build the three rows (plus the paper-constant Arctic row for
/// reference) on the 2.8125° atmosphere configuration.
pub fn rows() -> Vec<PfppRow> {
    let base = paper_atmosphere();
    let fe = base.on_interconnect(&fast_ethernet(), 5, 8);
    let ge = base.on_interconnect(&gigabit_ethernet(), 5, 8);
    let arctic_sim = base.on_interconnect(&simulated_arctic_model(), 5, 8);
    vec![
        pfpp::row("Fast Ethernet", &fe),
        pfpp::row("Gigabit Ethernet", &ge),
        pfpp::row("Arctic (simulated)", &arctic_sim),
        pfpp::row("Arctic (paper)", &base),
    ]
}

pub fn run() -> String {
    let mut t = Table::new(&[
        "interconnect",
        "tgsum (us)",
        "texch_xy (us)",
        "texch_xyz (us)",
        "Pfpp_ps (MF/s)",
        "Pfpp_ds (MF/s)",
        "verdict",
    ]);
    for r in rows() {
        let verdict = match (r.viable_for_ps(), r.viable_for_ds()) {
            (true, true) => "supports PS and DS",
            (true, false) => "PS only (DS-bound)",
            _ => "interconnect-bound",
        };
        t.row(&[
            r.name.clone(),
            us(r.tgsum_us),
            us(r.texch_xy_us),
            us(r.texch_xyz_us),
            mflops(r.pfpp_ps),
            mflops(r.pfpp_ds),
            verdict.to_string(),
        ]);
    }
    let budget = PfppRow::ds_comm_budget_us(36.0, 1024, 60.0);
    let m: PerfModel = paper_atmosphere();
    let ge = m.on_interconnect(&gigabit_ethernet(), 5, 8);
    let ge_sum = ge.ds.tgsum_us + ge.ds.texch_xy_us;
    format!(
        "E7  Figure 12: Potential Floating-Point Performance, 2.8125 deg atmosphere,\n\
         sixteen processors on eight SMPs\n\n{}\n\
         DS budget: tgsum + texch_xy must not exceed {budget:.0} us for Pfpp_ds = 60 MF/s\n\
         (paper: 306 us); Gigabit Ethernet is at {ge_sum:.0} us, a factor {:.1} away.\n",
        t.render(),
        ge_sum / budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_rows_match_paper_figures() {
        let rows = rows();
        let fe = &rows[0];
        let ge = &rows[1];
        assert!((fe.pfpp_ps - 8.0).abs() < 0.3, "FE Pfpp_ps {}", fe.pfpp_ps);
        assert!((fe.pfpp_ds - 1.6).abs() < 0.2, "FE Pfpp_ds {}", fe.pfpp_ds);
        assert!(
            (ge.pfpp_ps - 139.0).abs() < 3.0,
            "GE Pfpp_ps {}",
            ge.pfpp_ps
        );
        assert!((ge.pfpp_ds - 6.2).abs() < 0.3, "GE Pfpp_ds {}", ge.pfpp_ds);
    }

    #[test]
    fn simulated_arctic_dominates_both_ethernets() {
        let rows = rows();
        let (fe, ge, arctic) = (&rows[0], &rows[1], &rows[2]);
        assert!(arctic.pfpp_ds > 10.0 * ge.pfpp_ds);
        assert!(arctic.pfpp_ds > 50.0 * fe.pfpp_ds);
        assert!(arctic.pfpp_ps > 2.0 * ge.pfpp_ps);
        // Only Arctic clears both phases.
        assert!(arctic.viable_for_ps() && arctic.viable_for_ds());
        assert!(ge.viable_for_ps() && !ge.viable_for_ds());
        assert!(!fe.viable_for_ps() && !fe.viable_for_ds());
    }

    #[test]
    fn simulated_arctic_close_to_paper_row() {
        let rows = rows();
        let (sim, paper) = (&rows[2], &rows[3]);
        // Global sum within ~25%.
        assert!(
            (sim.tgsum_us - paper.tgsum_us).abs() / paper.tgsum_us < 0.3,
            "tgsum {} vs {}",
            sim.tgsum_us,
            paper.tgsum_us
        );
        // Exchanges: same order (our lean host model is faster; see
        // EXPERIMENTS.md); Pfpp conclusions unchanged.
        assert!(sim.texch_xy_us < 3.0 * paper.texch_xy_us);
        assert!(sim.texch_xyz_us < 3.0 * paper.texch_xyz_us);
        assert!(sim.pfpp_ds > 100.0);
    }

    #[test]
    fn ge_misses_ds_budget_by_about_10x() {
        let m = paper_atmosphere().on_interconnect(&gigabit_ethernet(), 5, 8);
        let budget = PfppRow::ds_comm_budget_us(36.0, 1024, 60.0);
        let factor = (m.ds.tgsum_us + m.ds.texch_xy_us) / budget;
        assert!((7.0..13.0).contains(&factor), "factor {factor}");
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Gigabit Ethernet"));
        assert!(r.contains("DS budget"));
    }
}

//! The time-charging executor.
//!
//! Runs the *functional* GCM and charges each step with simulated wall
//! time: measured flops divided by the sustained kernel rates, plus the
//! communication primitives at their interconnect costs, using the
//! *actual* per-step solver iteration count rather than a mean. This is
//! the "observed" side of the §5.3 validation — the closest synthetic
//! equivalent of running the year-long simulation on the real cluster —
//! while the closed-form performance model provides the prediction.

use hyades_comms::{CommWorld, SerialWorld};
use hyades_gcm::config::ModelConfig;
use hyades_gcm::driver::Model;
use hyades_perf::model::PerfModel;

/// Result of a charged run.
#[derive(Clone, Debug)]
pub struct ChargedRun {
    /// Steps actually executed.
    pub steps: usize,
    /// Simulated wall time charged (s).
    pub charged_seconds: f64,
    /// Split for the comm/compute validation.
    pub compute_seconds: f64,
    pub comm_seconds: f64,
    /// Mean solver iterations observed.
    pub mean_ni: f64,
    /// Flop coefficients measured from the run (per-cell Nps, per-column
    /// per-iteration Nds).
    pub measured_nps: f64,
    pub measured_nds: f64,
}

impl ChargedRun {
    /// Linearly extrapolate the charged time to `nt` steps (minutes).
    pub fn extrapolated_minutes(&self, nt: u64) -> f64 {
        self.charged_seconds * nt as f64 / self.steps as f64 / 60.0
    }
}

/// Execute `steps` of the model, charging time per the performance-model
/// parameters in `pm` (whose `nps`/`nds`/`nxyz`/`nxy` describe the target
/// cluster layout — e.g. Figure 11's 8-endpoint coupled configuration)
/// but using the run's *measured* flop coefficients and per-step solver
/// iteration counts.
pub fn run_charged(cfg: ModelConfig, pm: &PerfModel, steps: usize) -> ChargedRun {
    let mut world = SerialWorld;
    run_charged_on(cfg, pm, steps, &mut world)
}

/// As [`run_charged`] with an explicit world (rank 0 reports).
pub fn run_charged_on(
    cfg: ModelConfig,
    pm: &PerfModel,
    steps: usize,
    world: &mut dyn CommWorld,
) -> ChargedRun {
    assert!(steps > 0);
    let mut model = Model::new(cfg, world.rank());
    let mut compute = 0.0f64;
    let mut comm = 0.0f64;
    let mut total_ni = 0u64;
    let wet_cells = model.masks.wet_cells.max(1) as f64;
    let wet_cols = model.masks.wet_columns().max(1) as f64;
    for _ in 0..steps {
        let s = model.step(world);
        assert!(s.cg_converged, "solver diverged during charged run");
        // Per-cell coefficients from this step's measured flops, applied
        // to the target layout's per-endpoint cell counts.
        let nps_step = s.ps_flops as f64 / wet_cells;
        let nds_step = if s.cg_iterations > 0 {
            s.ds_flops as f64 / (s.cg_iterations as f64 * wet_cols)
        } else {
            0.0
        };
        let ni = s.cg_iterations as f64;
        compute += nps_step * pm.ps.nxyz as f64 / (pm.ps.fps_mflops * 1e6)
            + ni * nds_step * pm.ds.nxy as f64 / (pm.ds.fds_mflops * 1e6);
        comm += pm.tps_exch() + ni * pm.tds_comm();
        total_ni += s.cg_iterations as u64;
    }
    let (nps, nds) = model.measured_n_coefficients();
    ChargedRun {
        steps,
        charged_seconds: compute + comm,
        compute_seconds: compute,
        comm_seconds: comm,
        mean_ni: total_ni as f64 / steps as f64,
        measured_nps: nps,
        measured_nds: nds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyades_gcm::decomp::Decomp;
    use hyades_perf::model::paper_atmosphere;

    #[test]
    fn charged_run_produces_consistent_split() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 4, d);
        let pm = paper_atmosphere();
        let r = run_charged(cfg, &pm, 5);
        assert_eq!(r.steps, 5);
        assert!(r.charged_seconds > 0.0);
        let sum = r.compute_seconds + r.comm_seconds;
        assert!((sum - r.charged_seconds).abs() < 1e-12);
        assert!(r.mean_ni > 0.0);
        assert!(r.measured_nps > 50.0);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 4, d);
        let pm = paper_atmosphere();
        let r = run_charged(cfg, &pm, 4);
        let m1 = r.extrapolated_minutes(100);
        let m2 = r.extrapolated_minutes(200);
        assert!((m2 / m1 - 2.0).abs() < 1e-12);
    }
}

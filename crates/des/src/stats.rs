//! Online statistics and histograms for measurement harnesses.

use crate::time::SimDuration;

/// Welford online mean/variance with min/max tracking.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration sample in microseconds.
    pub fn push_duration_us(&mut self, d: SimDuration) {
        self.push(d.as_us_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Pool another sample set into this one (Chan et al. parallel
    /// variance update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram (bucket i counts values in
/// `[2^i, 2^(i+1))`, bucket 0 also holds 0).
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.total += 1;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Smallest upper bound `2^(i+1)` such that at least `q` (0..=1) of the
    /// samples fall below it. Returns 0 for an empty histogram. The top
    /// bucket's upper bound `2^64` does not fit in a `u64` and saturates
    /// to `u64::MAX` (inclusive), keeping it distinct from bucket 62's
    /// bound of `2^63`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
            }
        }
        u64::MAX
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile_upper_bound(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    /// Pool another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.total += other.total;
    }
}

/// Simple named counter set used by simulated components for occupancy /
/// traffic accounting.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, name: &'static str, delta: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 += delta;
        } else {
            self.entries.push((name, delta));
        }
    }

    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn stats_degenerate_cases() {
        let mut s = OnlineStats::new();
        assert_eq!(s.variance(), 0.0);
        s.push(5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 5.0);
    }

    #[test]
    fn merge_matches_single_stream() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..4] {
            a.push(x);
        }
        for &x in &xs[4..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Merging into empty copies the source.
        let mut e = OnlineStats::new();
        e.merge(&whole);
        assert_eq!(e.count(), whole.count());
    }

    #[test]
    fn duration_samples() {
        let mut s = OnlineStats::new();
        s.push_duration_us(SimDuration::from_us(4));
        s.push_duration_us(SimDuration::from_us(6));
        assert!((s.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2, 3
        assert_eq!(h.bucket(2), 2); // 4, 7
        assert_eq!(h.bucket(3), 1); // 8
        assert_eq!(h.bucket(10), 1); // 1024
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile_upper_bound(0.5), 16);
        assert!(h.quantile_upper_bound(1.0) > 1_000_000);
        assert_eq!(Log2Histogram::new().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn quantile_accessors_on_empty_zero_and_one_sample() {
        // Empty histogram: all quantiles are 0.
        let h = Log2Histogram::new();
        assert_eq!((h.p50(), h.p90(), h.p99()), (0, 0, 0));
        // A single zero lands in bucket 0, upper bound 2.
        let mut h = Log2Histogram::new();
        h.record(0);
        assert_eq!((h.p50(), h.p90(), h.p99()), (2, 2, 2));
        // One sample: every quantile reports its bucket's bound.
        let mut h = Log2Histogram::new();
        h.record(5); // bucket 2 = [4, 8)
        assert_eq!((h.p50(), h.p90(), h.p99()), (8, 8, 8));
    }

    #[test]
    fn top_buckets_have_distinct_bounds() {
        // Bucket 62 = [2^62, 2^63): bound is exactly 2^63.
        let mut h62 = Log2Histogram::new();
        h62.record(1u64 << 62);
        assert_eq!(h62.p99(), 1u64 << 63);
        // Bucket 63 = [2^63, u64::MAX]: its 2^64 bound saturates, and
        // must stay strictly above bucket 62's (the old `(i+1).min(63)`
        // shift collapsed both to 2^63).
        let mut h63 = Log2Histogram::new();
        h63.record(u64::MAX);
        assert_eq!(h63.p99(), u64::MAX);
        assert!(h62.p99() < h63.p99());
        // Top-bucket samples dominate high quantiles of a mixed stream.
        let mut h = Log2Histogram::new();
        for _ in 0..9 {
            h.record(1);
        }
        h.record(u64::MAX);
        assert_eq!(h.p50(), 2);
        assert_eq!(h.quantile_upper_bound(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_matches_single_stream() {
        let mut whole = Log2Histogram::new();
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [0u64, 1, 7, 1024, u64::MAX] {
            whole.record(v);
            a.record(v);
        }
        for v in [3u64, 9, 1 << 40] {
            whole.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        for i in 0..64 {
            assert_eq!(a.bucket(i), whole.bucket(i), "bucket {i}");
        }
        assert_eq!(a.p50(), whole.p50());
    }

    #[test]
    fn counters() {
        let mut c = Counters::new();
        c.add("pkts", 3);
        c.add("pkts", 2);
        c.add("drops", 1);
        assert_eq!(c.get("pkts"), 5);
        assert_eq!(c.get("drops"), 1);
        assert_eq!(c.get("nope"), 0);
        assert_eq!(c.iter().count(), 2);
    }
}

//! Integer simulated time.
//!
//! All simulated timestamps are integer **picoseconds**. The paper's hardware
//! constants are given in fractions of a microsecond (e.g. 0.15 µs router
//! fall-through, 0.18 µs back-to-back PCI writes); picoseconds represent all
//! of them exactly, keep event ordering deterministic, and still allow
//! simulations of many simulated minutes inside a `u64`
//! (2^64 ps ≈ 213 simulated days).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// An instant of simulated time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Construct from integer microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Construct from fractional microseconds (rounded to the nearest
    /// picosecond). Panics on negative or non-finite input.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us} us");
        SimDuration((us * 1e6).round() as u64)
    }

    /// Construct from fractional seconds (rounded to the nearest picosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s} s");
        SimDuration((s * 1e12).round() as u64)
    }

    /// The number of picoseconds in this duration.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Time to move `bytes` bytes at `mbyte_per_sec` MByte/s (decimal
    /// megabytes, as in the paper's link-rate figures).
    pub fn for_bytes_at(bytes: u64, mbyte_per_sec: f64) -> Self {
        assert!(mbyte_per_sec > 0.0, "bandwidth must be positive");
        // ps = bytes / (MB/s * 1e6 B/s) * 1e12 ps/s = bytes * 1e6 / (MB/s)
        SimDuration(((bytes as f64) * 1e6 / mbyte_per_sec).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }
}

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from picoseconds since the epoch.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from fractional microseconds since the epoch.
    pub fn from_us_f64(us: f64) -> Self {
        SimTime(SimDuration::from_us_f64(us).as_ps())
    }

    /// Picoseconds since the epoch.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Elapsed duration since `earlier`. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(self >= earlier, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        self.since(t)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let d = SimDuration::from_us_f64(0.15);
        assert_eq!(d.as_ps(), 150_000);
        assert!((d.as_us_f64() - 0.15).abs() < 1e-12);
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(2).as_ps(), 2_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_us(3);
        let u = t + SimDuration::from_us(2);
        assert_eq!(u.since(t), SimDuration::from_us(2));
        assert_eq!(u - t, SimDuration::from_us(2));
        assert_eq!((u - SimDuration::from_us(5)), SimTime::ZERO);
    }

    #[test]
    fn bandwidth_times() {
        // 150 bytes at 150 MB/s is exactly 1 us.
        let d = SimDuration::for_bytes_at(150, 150.0);
        assert_eq!(d, SimDuration::from_us(1));
        // 88-byte Arctic payload at 150 MB/s.
        let d = SimDuration::for_bytes_at(88, 150.0);
        assert!((d.as_us_f64() - 88.0 / 150.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_elapsed_panics() {
        let t = SimTime::from_ps(10);
        let _ = SimTime::ZERO.since(t);
    }

    #[test]
    fn duration_ops() {
        let a = SimDuration::from_us(10);
        let b = SimDuration::from_us(4);
        assert_eq!(a - b, SimDuration::from_us(6));
        assert_eq!(a + b, SimDuration::from_us(14));
        assert_eq!(a * 3, SimDuration::from_us(30));
        assert_eq!(a / 2, SimDuration::from_us(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        let v = [a, b, b];
        assert_eq!(v.into_iter().sum::<SimDuration>(), SimDuration::from_us(18));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_us_f64(1.5)), "1.500us");
        assert_eq!(format!("{}", SimTime::from_us_f64(2.25)), "t=2.250us");
    }
}

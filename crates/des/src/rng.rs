//! A tiny deterministic RNG for simulated hardware decisions.
//!
//! SplitMix64 (Steele, Lea & Flood 2014). It is not cryptographic; it only
//! has to be fast, seedable, and reproducible across platforms so that the
//! Arctic fabric's random up-route selection is identical on every run.

/// SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Fast path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for n in [1u64, 2, 3, 5, 7, 16, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(n) < n);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(123);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}

//! The simulation driver.

use crate::actor::{Actor, ActorId, Ctx};
use crate::event::EventQueue;
#[cfg(test)]
use crate::event::Payload;
use crate::time::SimTime;
use std::any::Any;

/// A deterministic discrete-event simulator.
///
/// Components are registered with [`Simulator::add_actor`]; external stimulus
/// is injected with [`Simulator::schedule`]; then the event loop is driven by
/// [`Simulator::run`] (until the queue drains or an actor halts) or
/// [`Simulator::run_until`].
///
/// ```
/// use hyades_des::{Actor, Ctx, SimDuration, SimTime, Simulator};
///
/// struct Echo { received: u32 }
/// impl Actor for Echo {
///     fn on_event(&mut self, ev: Box<dyn std::any::Any>, _ctx: &mut Ctx<'_>) {
///         self.received += *ev.downcast::<u32>().unwrap();
///     }
/// }
///
/// let mut sim = Simulator::new();
/// let id = sim.add_actor(Echo { received: 0 });
/// sim.schedule(SimTime::ZERO + SimDuration::from_us(5), id, 42u32);
/// sim.run();
/// assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_us(5));
/// assert_eq!(sim.actor::<Echo>(id).received, 42);
/// ```
#[derive(Default)]
pub struct Simulator {
    actors: Vec<Option<Box<dyn Actor>>>,
    queue: EventQueue,
    now: SimTime,
    halted: bool,
    dispatched: u64,
}

impl Simulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an actor, returning its id.
    pub fn add_actor(&mut self, actor: impl Actor + 'static) -> ActorId {
        self.add_boxed_actor(Box::new(actor))
    }

    /// Register a boxed actor, returning its id.
    pub fn add_boxed_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Some(actor));
        id
    }

    /// Current simulated time (the timestamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Inject an event from outside the simulation.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, payload: impl Any) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, target, Box::new(payload));
    }

    /// Immutable access to a registered actor, downcast to its concrete type.
    ///
    /// Panics if the id is invalid or the type does not match — both are
    /// programming errors in the simulation harness.
    pub fn actor<T: Actor + 'static>(&self, id: ActorId) -> &T {
        let slot = match self.actors[id.0].as_ref() {
            Some(a) => a,
            None => panic!("actor {} is currently executing or removed", id.0),
        };
        match slot.as_any().downcast_ref::<T>() {
            Some(t) => t,
            None => panic!("actor {} type mismatch", id.0),
        }
    }

    /// Mutable access to a registered actor, downcast to its concrete type.
    pub fn actor_mut<T: Actor + 'static>(&mut self, id: ActorId) -> &mut T {
        let slot = match self.actors[id.0].as_mut() {
            Some(a) => a,
            None => panic!("actor {} is currently executing or removed", id.0),
        };
        match slot.as_any_mut().downcast_mut::<T>() {
            Some(t) => t,
            None => panic!("actor {} type mismatch", id.0),
        }
    }

    /// Run until no events remain or an actor calls [`Ctx::halt`].
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run while the next event is at or before `deadline`. Returns the
    /// number of events dispatched.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.dispatched;
        while !self.halted {
            match self.queue.next_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.dispatched - start
    }

    /// Dispatch a single event. Returns false if the queue is empty or the
    /// simulation has been halted.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue violated causality");
        self.now = ev.time;
        self.dispatched += 1;

        // Temporarily take the actor out so it can borrow the context
        // mutably while the simulator stays usable.
        let mut actor = self.actors[ev.target.0]
            .take()
            .unwrap_or_else(|| panic!("event for unregistered/busy actor {:?}", ev.target));
        let mut outbox = Vec::new();
        {
            let mut ctx = Ctx::new(self.now, ev.target, &mut outbox, &mut self.halted);
            actor.on_event(ev.payload, &mut ctx);
        }
        self.actors[ev.target.0] = Some(actor);
        for (t, target, payload) in outbox {
            self.queue.push(t, target, payload);
        }
        true
    }

    /// Whether an actor has halted the simulation.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clear the halted flag so the simulation can be resumed.
    pub fn resume(&mut self) {
        self.halted = false;
    }

    /// Take an actor back out of the simulator (e.g. to read results after a
    /// run). The slot is left empty; scheduling further events for this id
    /// will panic.
    pub fn remove_actor(&mut self, id: ActorId) -> Box<dyn Actor> {
        self.actors[id.0].take().expect("actor already removed")
    }

    /// Fill an empty slot (created by [`Simulator::remove_actor`]) with a
    /// new actor. Harnesses use this to swap placeholder endpoints for
    /// protocol actors once wiring information (e.g. network port ids)
    /// exists.
    pub fn insert_actor_at(&mut self, id: ActorId, actor: Box<dyn Actor>) {
        assert!(self.actors[id.0].is_none(), "slot {id:?} is still occupied");
        self.actors[id.0] = Some(actor);
    }

    /// Mutable access to an actor slot for harness-level inspection.
    ///
    /// The closure receives the boxed actor; use `downcast_with` from
    /// [`crate::actor`] helpers or keep concrete handles externally.
    pub fn with_actor<R>(&mut self, id: ActorId, f: impl FnOnce(&mut dyn Actor) -> R) -> R {
        let a = self.actors[id.0]
            .as_mut()
            .expect("actor is currently executing or removed");
        f(a.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A pair of actors playing ping-pong a fixed number of times.
    struct Pinger {
        peer: Option<ActorId>,
        remaining: u32,
        last_time: SimTime,
    }

    impl Actor for Pinger {
        fn on_event(&mut self, _ev: Payload, ctx: &mut Ctx<'_>) {
            self.last_time = ctx.now();
            if self.remaining == 0 {
                ctx.halt();
                return;
            }
            self.remaining -= 1;
            let peer = self.peer.expect("peer wired");
            ctx.send_after(SimDuration::from_us(1), peer, ());
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Simulator::new();
        let a = sim.add_actor(Pinger {
            peer: None,
            remaining: 5,
            last_time: SimTime::ZERO,
        });
        let b = sim.add_actor(Pinger {
            peer: None,
            remaining: 5,
            last_time: SimTime::ZERO,
        });
        sim.actor_mut::<Pinger>(a).peer = Some(b);
        sim.actor_mut::<Pinger>(b).peer = Some(a);
        sim.schedule(SimTime::ZERO, a, ());
        sim.run();
        // a fires at t=0 (sends to b at 1), b at 1, a at 2 ... until one side
        // exhausts its count and halts.
        assert!(sim.now() > SimTime::ZERO);
        assert!(sim.events_dispatched() >= 10);
    }

    struct Counter {
        count: u64,
    }
    impl Actor for Counter {
        fn on_event(&mut self, _ev: Payload, _ctx: &mut Ctx<'_>) {
            self.count += 1;
        }
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new();
        let c = sim.add_actor(Counter { count: 0 });
        for i in 0..10 {
            sim.schedule(SimTime::from_ps(i * 1_000_000), c, ());
        }
        let n = sim.run_until(SimTime::from_ps(4_500_000));
        assert_eq!(n, 5); // events at 0..=4 us
        assert_eq!(sim.pending_events(), 5);
        let n = sim.run_until(SimTime::from_ps(100_000_000));
        assert_eq!(n, 5);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        let c = sim.add_actor(Counter { count: 0 });
        sim.schedule(SimTime::from_ps(10), c, ());
        sim.run();
        sim.schedule(SimTime::from_ps(5), c, ());
    }
}

//! The pending-event queue.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, so two events scheduled for
//! the same instant are dispatched in the order they were scheduled. This
//! makes entire simulations bit-for-bit reproducible.

use crate::actor::ActorId;
use crate::time::SimTime;
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event payload. Actors downcast to their own message types.
pub type Payload = Box<dyn Any>;

pub(crate) struct ScheduledEvent {
    pub time: SimTime,
    pub seq: u64,
    pub target: ActorId,
    pub payload: Payload,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic pending-event set.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub(crate) fn push(&mut self, time: SimTime, target: ActorId, payload: Payload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            target,
            payload,
        });
    }

    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_ps(us * 1_000_000)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), ActorId(0), Box::new(5u64));
        q.push(t(1), ActorId(0), Box::new(1u64));
        q.push(t(3), ActorId(0), Box::new(3u64));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u64>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(t(7), ActorId(0), Box::new(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u64>().unwrap())
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(t(9), ActorId(1), Box::new(()));
        q.push(t(2), ActorId(1), Box::new(()));
        assert_eq!(q.next_time(), Some(t(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}

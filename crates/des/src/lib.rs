//! # hyades-des — discrete-event simulation kernel
//!
//! A small, deterministic discrete-event simulation (DES) engine used to model
//! the hardware substrate of the Hyades cluster from *"A Personal
//! Supercomputer for Climate Research"* (SC'99): the Arctic Switch Fabric,
//! the StarT-X network interface, and the communication protocols built on
//! them.
//!
//! The engine is deliberately simple:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond timestamps, so that
//!   every run is exactly reproducible (no floating-point drift in event
//!   ordering).
//! * [`Simulator`] — a binary-heap event queue dispatching events to
//!   registered [`Actor`]s. Ties are broken by insertion sequence number, so
//!   execution order is fully deterministic.
//! * [`rng::SplitMix64`] — a tiny deterministic RNG for components that need
//!   randomized decisions (e.g. Arctic's random up-route selection).
//! * [`stats`] — online statistics and log-scale histograms used by the
//!   measurement harnesses.
//!
//! The engine makes no attempt at parallel simulation: the simulated
//! workloads are microbenchmarks (micro- to millisecond scale), and full
//! application runs are charged analytically from the microbenchmark results
//! — the same methodology the paper itself uses (stand-alone benchmarks feed
//! an analytical performance model).

pub mod actor;
pub mod event;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use actor::{Actor, ActorId, AsAny, Ctx};
pub use sim::Simulator;
pub use time::{SimDuration, SimTime};

//! Event tracing for simulation debugging.
//!
//! A bounded ring buffer of `(time, actor, label)` records that simulated
//! components can append to cheaply. Harnesses dump the trace when an
//! assertion fails to see the event history that led there — the DES
//! equivalent of a flight recorder.

use crate::actor::ActorId;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    pub at: SimTime,
    pub actor: ActorId,
    pub label: &'static str,
    pub detail: u64,
}

/// Bounded trace buffer (oldest records are dropped first).
#[derive(Debug)]
pub struct Trace {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    pub fn new(capacity: usize) -> Trace {
        assert!(capacity > 0);
        Trace {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append a record; drops the oldest when full.
    pub fn record(&mut self, at: SimTime, actor: ActorId, label: &'static str, detail: u64) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord {
            at,
            actor,
            label,
            detail,
        });
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// The most recent records whose label matches.
    pub fn last_matching(&self, label: &str, n: usize) -> Vec<&TraceRecord> {
        self.buf
            .iter()
            .rev()
            .filter(|r| r.label == label)
            .take(n)
            .collect()
    }

    /// Human-readable dump.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        // Writing into a String is infallible, so the results are ignored.
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier records dropped ...", self.dropped);
        }
        for r in &self.buf {
            let _ = writeln!(
                out,
                "{}  actor {:>4}  {:<24} {}",
                r.at, r.actor.0, r.label, r.detail
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_ps(us * 1_000_000)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::new(8);
        tr.record(t(1), ActorId(0), "tx", 10);
        tr.record(t(2), ActorId(1), "rx", 10);
        assert_eq!(tr.len(), 2);
        let labels: Vec<&str> = tr.iter().map(|r| r.label).collect();
        assert_eq!(labels, ["tx", "rx"]);
        assert!(!tr.is_empty());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut tr = Trace::new(3);
        for i in 0..5u64 {
            tr.record(t(i), ActorId(0), "ev", i);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let details: Vec<u64> = tr.iter().map(|r| r.detail).collect();
        assert_eq!(details, [2, 3, 4]);
        assert!(tr.dump().contains("2 earlier records dropped"));
    }

    #[test]
    fn filtered_lookup() {
        let mut tr = Trace::new(16);
        for i in 0..6u64 {
            tr.record(t(i), ActorId(0), if i % 2 == 0 { "a" } else { "b" }, i);
        }
        let recent_a = tr.last_matching("a", 2);
        assert_eq!(recent_a.len(), 2);
        assert_eq!(recent_a[0].detail, 4);
        assert_eq!(recent_a[1].detail, 2);
    }

    #[test]
    fn dump_renders() {
        let mut tr = Trace::new(4);
        tr.record(t(7), ActorId(3), "deliver", 42);
        let d = tr.dump();
        assert!(d.contains("deliver"));
        assert!(d.contains("42"));
        assert!(d.contains("t=7.000us"));
    }
}

//! Actors: the units of simulated hardware and protocol state.
//!
//! Every simulated component — an Arctic router, a StarT-X NIU, a protocol
//! state machine running on a host CPU — is an [`Actor`]. Actors communicate
//! exclusively by scheduling events for one another through the [`Ctx`]
//! handle passed to their event handler; this is how link latencies and
//! processing delays are expressed.

use crate::event::Payload;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Identifies a registered actor within one [`crate::Simulator`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub usize);

/// Blanket downcast support so harnesses can inspect concrete actor state
/// after a run. Implemented automatically for every `'static` type.
pub trait AsAny {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated component.
pub trait Actor: AsAny {
    /// Handle an event addressed to this actor. `ev` is whatever payload the
    /// sender scheduled; actors downcast to the message types they expect.
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>);
}

/// The scheduling context handed to an actor while it processes an event.
///
/// Events emitted here are buffered and merged into the main queue after the
/// handler returns, which keeps the borrow of the actor and the queue
/// disjoint.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ActorId,
    outbox: &'a mut Vec<(SimTime, ActorId, Payload)>,
    halted: &'a mut bool,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        now: SimTime,
        self_id: ActorId,
        outbox: &'a mut Vec<(SimTime, ActorId, Payload)>,
        halted: &'a mut bool,
    ) -> Self {
        Ctx {
            now,
            self_id,
            outbox,
            halted,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently handling an event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedule `payload` for `target` after `delay`.
    pub fn send_after(&mut self, delay: SimDuration, target: ActorId, payload: impl Any) {
        self.outbox
            .push((self.now + delay, target, Box::new(payload)));
    }

    /// Schedule `payload` for `target` at the current instant (dispatched
    /// after the current handler returns, in scheduling order).
    pub fn send_now(&mut self, target: ActorId, payload: impl Any) {
        self.send_after(SimDuration::ZERO, target, payload);
    }

    /// Schedule an event for this actor itself after `delay`.
    pub fn wake_after(&mut self, delay: SimDuration, payload: impl Any) {
        self.send_after(delay, self.self_id, payload);
    }

    /// Stop the simulation once the current handler returns. Pending events
    /// remain queued; `Simulator::run` returns immediately.
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_events() {
        let mut outbox = Vec::new();
        let mut halted = false;
        let mut ctx = Ctx::new(SimTime::ZERO, ActorId(3), &mut outbox, &mut halted);
        assert_eq!(ctx.self_id(), ActorId(3));
        assert_eq!(ctx.now(), SimTime::ZERO);
        ctx.send_after(SimDuration::from_us(1), ActorId(7), 42u32);
        ctx.wake_after(SimDuration::from_us(2), "tick");
        ctx.send_now(ActorId(1), ());
        assert_eq!(outbox.len(), 3);
        assert_eq!(outbox[0].0, SimTime::ZERO + SimDuration::from_us(1));
        assert_eq!(outbox[0].1, ActorId(7));
        assert_eq!(outbox[1].1, ActorId(3));
        assert_eq!(outbox[2].0, SimTime::ZERO);
        assert!(!halted);
    }

    #[test]
    fn halt_sets_flag() {
        let mut outbox = Vec::new();
        let mut halted = false;
        let mut ctx = Ctx::new(SimTime::ZERO, ActorId(0), &mut outbox, &mut halted);
        ctx.halt();
        assert!(halted);
    }
}

//! Cross-run bench differ: compare two `BENCH_pr*.json` summaries
//! against per-metric tolerance budgets.
//!
//! The baseline harness emits one summary per PR; this module lines two
//! of them up and renders a machine-readable verdict. Metrics fall into
//! two classes:
//!
//! * **relative** — wall-clock keys (`wall_ms.*`) are compared
//!   new-vs-old with a generous ratio budget plus a fixed slack, since
//!   absolute times are environment noise;
//! * **absolute** — correctness keys (`lint.violations`,
//!   `failures.len`, `tour.max_abs_residual`, `determinism.*`,
//!   `diag.sentinel_trips`) are judged on the new summary alone.
//!
//! Only keys present in *both* files are compared relatively, so an
//! older summary that predates a section (e.g. `diag` before PR 7)
//! never fails the gate; absolute checks apply whenever the new file
//! carries the key.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A flattened JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    Num(f64),
    Bool(bool),
    Str(String),
    Null,
}

impl Val {
    fn render(&self) -> String {
        match self {
            Val::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{n:.0}")
                } else {
                    format!("{n:.6}")
                }
            }
            Val::Bool(b) => b.to_string(),
            Val::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Val::Null => "null".to_string(),
        }
    }
}

/// Wall-clock budget: `new ≤ old · RATIO + SLACK_MS`. The ratio is
/// deliberately loose — the gate catches order-of-magnitude blowups,
/// not scheduler jitter.
pub const WALL_RATIO_BUDGET: f64 = 25.0;
pub const WALL_SLACK_MS: f64 = 1000.0;

/// Residual sanity bar shared with the baseline harness.
pub const RESIDUAL_BUDGET: f64 = 2.0;

/// Flatten a JSON document into dotted-path scalars. Object keys join
/// with `.`; array elements land at `path.<index>` and every array also
/// records `path.len`. The parser covers the subset the bench summaries
/// use (and standard escapes); it rejects trailing garbage.
pub fn flatten_json(src: &str) -> Result<BTreeMap<String, Val>, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    let mut out = BTreeMap::new();
    p.ws();
    p.value(String::new(), &mut out)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(out)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self, path: String, out: &mut BTreeMap<String, Val>) -> Result<(), String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(path, out),
            Some(b'[') => self.array(path, out),
            Some(b'"') => {
                let s = self.string()?;
                out.insert(path, Val::Str(s));
                Ok(())
            }
            Some(b't') => self.literal("true", path, Val::Bool(true), out),
            Some(b'f') => self.literal("false", path, Val::Bool(false), out),
            Some(b'n') => self.literal("null", path, Val::Null, out),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                while self.peek().is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.i += 1;
                }
                let txt = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
                let n: f64 = txt
                    .parse()
                    .map_err(|_| format!("bad number {txt:?} at byte {start}"))?;
                out.insert(path, Val::Num(n));
                Ok(())
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(
        &mut self,
        word: &str,
        path: String,
        v: Val,
        out: &mut BTreeMap<String, Val>,
    ) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            out.insert(path, v);
            Ok(())
        } else {
            Err(format!("expected {word} at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Strings in the summaries are ASCII, but pass UTF-8
                    // through byte-faithfully.
                    let start = self.i;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn object(&mut self, path: String, out: &mut BTreeMap<String, Val>) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            let child = if path.is_empty() {
                key
            } else {
                format!("{path}.{key}")
            };
            self.value(child, out)?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self, path: String, out: &mut BTreeMap<String, Val>) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        let mut n = 0usize;
        if self.peek() == Some(b']') {
            self.i += 1;
            out.insert(format!("{path}.len"), Val::Num(0.0));
            return Ok(());
        }
        loop {
            self.value(format!("{path}.{n}"), out)?;
            n += 1;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    out.insert(format!("{path}.len"), Val::Num(n as f64));
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

/// One budgeted comparison.
#[derive(Clone, Debug)]
pub struct Check {
    pub metric: String,
    pub old: Option<Val>,
    pub new: Option<Val>,
    pub budget: String,
    pub pass: bool,
}

fn num(v: Option<&Val>) -> Option<f64> {
    match v {
        Some(Val::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Run every budget over the two flattened summaries.
pub fn compare(old: &BTreeMap<String, Val>, new: &BTreeMap<String, Val>) -> Vec<Check> {
    let mut checks = Vec::new();

    // Relative wall-clock budgets: only keys present in both files.
    for (k, nv) in new.range("wall_ms.".to_string()..) {
        if !k.starts_with("wall_ms.") {
            break;
        }
        if let (Some(o), Some(n)) = (num(old.get(k)), num(Some(nv))) {
            let limit = o * WALL_RATIO_BUDGET + WALL_SLACK_MS;
            checks.push(Check {
                metric: k.clone(),
                old: old.get(k).cloned(),
                new: Some(nv.clone()),
                budget: format!("<= old*{WALL_RATIO_BUDGET:.0} + {WALL_SLACK_MS:.0}ms"),
                pass: n <= limit,
            });
        }
    }

    // Coverage ratchets: the lint pass never scans fewer files, and the
    // uniformity proof never covers fewer collective call sites.
    for key in ["lint.files_scanned", "uniform.collective_sites"] {
        if let (Some(o), Some(n)) = (num(old.get(key)), num(new.get(key))) {
            checks.push(Check {
                metric: key.into(),
                old: old.get(key).cloned(),
                new: new.get(key).cloned(),
                budget: ">= old".into(),
                pass: n >= o,
            });
        }
    }

    // Absolute budgets on the new summary.
    let absolute = [
        ("lint.violations", "== 0", 0.0f64, 0.0f64),
        ("failures.len", "== 0", 0.0, 0.0),
        (
            "tour.max_abs_residual",
            "<= 2.0",
            f64::NEG_INFINITY,
            RESIDUAL_BUDGET,
        ),
        ("diag.sentinel_trips", "== 0", 0.0, 0.0),
        ("uniform.findings", "== 0", 0.0, 0.0),
        (
            "critpath.max_step_residual",
            "abs <= 2.0",
            -RESIDUAL_BUDGET,
            RESIDUAL_BUDGET,
        ),
        // The fault-recovery tour must actually recover from its
        // planned crash (the bit-identity flag itself rides the
        // `determinism.*` sweep below).
        ("recovery.restarts", ">= 1", 1.0, f64::INFINITY),
    ];
    for (key, budget, lo, hi) in absolute {
        if let Some(v) = new.get(key) {
            let pass = num(Some(v)).is_some_and(|n| n >= lo && n <= hi);
            checks.push(Check {
                metric: key.into(),
                old: old.get(key).cloned(),
                new: Some(v.clone()),
                budget: budget.into(),
                pass,
            });
        }
    }

    // Every determinism flag in the new summary must hold.
    for (k, v) in new.range("determinism.".to_string()..) {
        if !k.starts_with("determinism.") {
            break;
        }
        checks.push(Check {
            metric: k.clone(),
            old: old.get(k).cloned(),
            new: Some(v.clone()),
            budget: "== true".into(),
            pass: *v == Val::Bool(true),
        });
    }

    checks
}

/// Render the verdict JSON. Returns `(json, all_passed)`.
pub fn render_verdict(old_name: &str, new_name: &str, checks: &[Check]) -> (String, bool) {
    let pass = checks.iter().all(|c| c.pass);
    let mut j = String::new();
    let _ = write!(
        j,
        "{{\n  \"bench_diff\": {{\"old\": \"{old_name}\", \"new\": \"{new_name}\"}},\n  \"checks\": [\n"
    );
    for (i, c) in checks.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"metric\": \"{}\", \"old\": {}, \"new\": {}, \"budget\": \"{}\", \"pass\": {}}}{}\n",
            c.metric,
            c.old.as_ref().map_or("null".to_string(), Val::render),
            c.new.as_ref().map_or("null".to_string(), Val::render),
            c.budget,
            c.pass,
            if i + 1 < checks.len() { "," } else { "" }
        );
    }
    let _ = write!(
        j,
        "  ],\n  \"checked\": {},\n  \"verdict\": \"{}\"\n}}\n",
        checks.len(),
        if pass { "pass" } else { "fail" }
    );
    (j, pass)
}

/// Full pipeline: parse both summaries, compare, render. `Err` means a
/// summary failed to parse, which is itself a gate failure.
pub fn diff_summaries(
    old_name: &str,
    old_src: &str,
    new_name: &str,
    new_src: &str,
) -> Result<(String, bool), String> {
    let old = flatten_json(old_src).map_err(|e| format!("{old_name}: {e}"))?;
    let new = flatten_json(new_src).map_err(|e| format!("{new_name}: {e}"))?;
    let checks = compare(&old, &new);
    if checks.is_empty() {
        return Err("no comparable metrics between the two summaries".into());
    }
    Ok(render_verdict(old_name, new_name, &checks))
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
      "bench": "pr6-baseline",
      "wall_ms": {"total": 100.0, "tour": 10.0},
      "lint": {"files_scanned": 154, "violations": 0},
      "tour": {"max_abs_residual": 0.63},
      "determinism": {"prometheus_identical": true},
      "failures": []
    }"#;

    #[test]
    fn flatten_handles_nesting_arrays_and_escapes() {
        let m = flatten_json(r#"{"a": {"b": [1, "x\n\"y", true]}, "c": null}"#).unwrap();
        assert_eq!(m.get("a.b.0"), Some(&Val::Num(1.0)));
        assert_eq!(m.get("a.b.1"), Some(&Val::Str("x\n\"y".into())));
        assert_eq!(m.get("a.b.2"), Some(&Val::Bool(true)));
        assert_eq!(m.get("a.b.len"), Some(&Val::Num(3.0)));
        assert_eq!(m.get("c"), Some(&Val::Null));
        assert!(flatten_json("{}garbage").is_err());
        assert!(flatten_json(r#"{"a": }"#).is_err());
    }

    #[test]
    fn healthy_new_summary_passes_every_budget() {
        let new = r#"{
          "bench": "pr8-baseline",
          "wall_ms": {"total": 180.0, "tour": 12.0, "diag": 40.0},
          "lint": {"files_scanned": 160, "violations": 0},
          "tour": {"max_abs_residual": 0.7},
          "diag": {"sentinel_trips": 0},
          "critpath": {"max_step_residual": -0.4, "straggler_blamed": true},
          "determinism": {"prometheus_identical": true, "diag_identical": true, "critpath_identical": true},
          "failures": []
        }"#;
        let (j, pass) = diff_summaries("old.json", OLD, "new.json", new).unwrap();
        assert!(pass, "{j}");
        assert!(j.contains("\"verdict\": \"pass\""));
        // diag-only keys never compare against the pre-diag summary...
        assert!(!j.contains("wall_ms.diag"));
        // ...but the diag absolute check still runs on the new file.
        assert!(j.contains("diag.sentinel_trips"));
        // A negative critpath residual inside the band passes the
        // two-sided budget; the determinism flag is swept up with the
        // rest.
        assert!(j.contains("critpath.max_step_residual"));
        assert!(j.contains("determinism.critpath_identical"));
        assert!(j.contains("\"metric\": \"wall_ms.total\""));
    }

    #[test]
    fn wall_clock_blowup_and_violations_fail() {
        let new = r#"{
          "wall_ms": {"total": 99999.0},
          "lint": {"files_scanned": 140, "violations": 3},
          "tour": {"max_abs_residual": 5.0},
          "critpath": {"max_step_residual": -5.0},
          "determinism": {"prometheus_identical": false},
          "failures": ["boom"]
        }"#;
        let (j, pass) = diff_summaries("old.json", OLD, "new.json", new).unwrap();
        assert!(!pass);
        assert!(j.contains("\"verdict\": \"fail\""));
        for metric in [
            "wall_ms.total",
            "lint.files_scanned",
            "lint.violations",
            "tour.max_abs_residual",
            "critpath.max_step_residual",
            "determinism.prometheus_identical",
            "failures.len",
        ] {
            let line = j
                .lines()
                .find(|l| l.contains(&format!("\"{metric}\"")))
                .unwrap_or_else(|| panic!("no check for {metric}:\n{j}"));
            assert!(line.contains("\"pass\": false"), "{line}");
        }
    }

    #[test]
    fn real_pr6_summary_diffs_cleanly_against_itself() {
        let (j, pass) = diff_summaries("a", OLD, "b", OLD).unwrap();
        assert!(pass, "{j}");
        let (j2, _) = diff_summaries("a", OLD, "b", OLD).unwrap();
        assert_eq!(j, j2);
    }

    #[test]
    fn unparseable_summary_is_a_gate_failure() {
        assert!(diff_summaries("a", OLD, "b", "{not json").is_err());
        assert!(diff_summaries("a", "[]", "b", "[]").is_err());
    }
}

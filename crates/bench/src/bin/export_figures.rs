//! Export the regenerated figure data as CSV for plotting:
//! `cargo run -p hyades-bench --bin export_figures --release -- [outdir]`
//!
//! Writes one file per figure/table with paper values alongside where the
//! paper published point data.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

fn main() {
    let outdir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "output".into())
        .into();
    fs::create_dir_all(&outdir).expect("create output dir");

    // Figure 2: LogP rows.
    {
        let mut csv = String::from("payload_bytes,os_us,or_us,half_rtt_us,latency_us,paper_os,paper_or,paper_half_rtt,paper_latency\n");
        for (row, paper) in hyades::experiments::fig2::measure()
            .iter()
            .zip(hyades::experiments::fig2::PAPER.iter())
        {
            writeln!(
                csv,
                "{},{:.3},{:.3},{:.3},{:.3},{},{},{},{}",
                row.payload_bytes,
                row.os.as_us_f64(),
                row.or.as_us_f64(),
                row.half_rtt.as_us_f64(),
                row.latency.as_us_f64(),
                paper.1,
                paper.2,
                paper.3,
                paper.4
            )
            .unwrap();
        }
        fs::write(outdir.join("fig2_logp.csv"), csv).unwrap();
    }

    // Figure 7: bandwidth curve.
    {
        let mut csv = String::from("block_bytes,time_us,mbyte_per_sec\n");
        for m in hyades::experiments::fig7::measure() {
            writeln!(
                csv,
                "{},{:.3},{:.3}",
                m.len,
                m.elapsed.as_us_f64(),
                m.mbyte_per_sec
            )
            .unwrap();
        }
        fs::write(outdir.join("fig7_bandwidth.csv"), csv).unwrap();
    }

    // §4.2 global-sum latencies.
    {
        let rep = hyades::experiments::gsum::measure();
        let mut csv = String::from("n,measured_us,measured_smp_us,paper_us,paper_smp_us\n");
        for ((n, plain, smp), paper) in rep.rows.iter().zip(hyades::experiments::gsum::PAPER.iter())
        {
            writeln!(csv, "{n},{plain:.3},{smp:.3},{},{}", paper.1, paper.2).unwrap();
        }
        writeln!(
            csv,
            "# fit: t = {:.3}*log2(N) + {:.3}",
            rep.fit.0, rep.fit.1
        )
        .unwrap();
        fs::write(outdir.join("gsum_latency.csv"), csv).unwrap();
    }

    // Figure 12: Pfpp rows.
    {
        let mut csv = String::from(
            "interconnect,tgsum_us,texch_xy_us,texch_xyz_us,pfpp_ps_mflops,pfpp_ds_mflops\n",
        );
        for r in hyades::experiments::fig12::rows() {
            writeln!(
                csv,
                "{},{:.2},{:.2},{:.2},{:.2},{:.2}",
                r.name, r.tgsum_us, r.texch_xy_us, r.texch_xyz_us, r.pfpp_ps, r.pfpp_ds
            )
            .unwrap();
        }
        fs::write(outdir.join("fig12_pfpp.csv"), csv).unwrap();
    }

    // E12: routing table.
    {
        use hyades_arctic::packet::UpRoute;
        use hyades_arctic::workload::Pattern;
        let mut csv =
            String::from("pattern,uproute,delivered_mbs,mean_latency_us,max_latency_us\n");
        for (i, (p, name)) in [
            (Pattern::NearestNeighbor, "nearest"),
            (Pattern::Transpose, "transpose"),
            (Pattern::BitReverse, "bitreverse"),
            (Pattern::UniformRandom, "uniform"),
            (Pattern::Hotspot, "hotspot"),
        ]
        .iter()
        .enumerate()
        {
            for (up, upname) in [
                (UpRoute::SourceSpread, "deterministic"),
                (UpRoute::Random, "random"),
            ] {
                let r = hyades::experiments::routing::measure(*p, up, 100 + i as u64);
                writeln!(
                    csv,
                    "{name},{upname},{:.1},{:.2},{:.2}",
                    r.delivered_mbyte_per_sec,
                    r.latency.mean(),
                    r.latency.max()
                )
                .unwrap();
            }
        }
        fs::write(outdir.join("routing_traffic.csv"), csv).unwrap();
    }

    println!("wrote fig2_logp.csv, fig7_bandwidth.csv, gsum_latency.csv, fig12_pfpp.csv, routing_traffic.csv to {}", outdir.display());
}

//! The perf-baseline harness: one deterministic, instrumented pass over
//! the E14-style experiments plus the fabric observatory, the run-health
//! observatory, the cross-rank critical-path profiler, the
//! fault-recovery tour, and the full static-analysis tree walk, emitting
//! `BENCH_pr10.json` — one point of the regression trajectory every
//! later PR is compared against.
//!
//! ```text
//! scripts/bench.sh            # full run
//! scripts/bench.sh --smoke    # CI-sized run (same checks, shorter windows)
//! baseline diff OLD NEW       # budgeted cross-run comparison
//! ```
//!
//! The harness fails (non-zero exit) if any of its embedded acceptance
//! checks fail:
//!
//! * the deliberately congested workload (bit-reverse at 0.8 offered
//!   load, deterministic up-routes) must flag at least one hotspot;
//! * the Prometheus exposition and the JSON manifest must be
//!   byte-identical across a same-seed double run;
//! * the telemetry tour's model-vs-measured phase residual must stay
//!   within the tour's own sanity bar (|residual| < 200 %): the analytic
//!   model and the executable simulation must not diverge wholesale;
//! * the coupled run-health observatory must finish with zero sentinel
//!   trips and byte-identical diagnostics across a same-seed double run;
//! * the full-tree hyades-lint pass (timed as `lint_full_tree_ms`) must
//!   come back clean;
//! * the interprocedural flow pass alone (call-graph build + effect
//!   fixpoint, timed as `lint_flow_ms`) must stay under its smoke
//!   budget;
//! * the SPMD collective-uniformity proof alone (taint fixpoint +
//!   sequence check, timed as `lint_uniform_ms`) must stay under the
//!   same smoke budget and report zero collective-divergence findings;
//! * the critical-path profiler must blame the injected straggler's
//!   exact (rank, phase), replay byte-identically across a same-seed
//!   double run, and keep the balanced run's per-step path within the
//!   phase model's residual budget;
//! * the fault-recovery tour (a seeded rank crash plus a lossy link
//!   window) must roll back, replay to a state bit-identical to the
//!   uninterrupted run, and retransmit its way to an exact global sum —
//!   surfaced as the `recovery` block.
//!
//! All raw artifacts land through the unified exporter API
//! ([`hyades_telemetry::Exporter`] / [`write_artifacts_to_dir`]): one
//! bundle, one writer, one file per [`hyades_telemetry::Artifact`].
//!
//! The `diff` subcommand compares two summaries through
//! [`hyades_bench::diff`]'s per-metric budgets and prints a
//! machine-readable verdict (non-zero exit on any busted budget).
//!
//! Wall-clock numbers in the output are environment-dependent by nature;
//! everything else in `BENCH_pr10.json` is deterministic.

use hyades::tour::{self, TourConfig};
use hyades_arctic::observatory::ObservatoryConfig;
use hyades_arctic::packet::UpRoute;
use hyades_arctic::workload::{run_traffic_observed, Pattern};
use hyades_cluster::ethernet_sim::{
    EtherFrame, EtherSink, EthernetSim, FAST_ETHERNET_MBYTE_PER_SEC,
};
use hyades_des::{SimDuration, SimTime, Simulator};
use hyades_telemetry::{sampler, write_artifacts_to_dir, ArtifactKind};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

const SEED: u64 = 0x0B5_E7A;

/// Smoke budget for the interprocedural flow pass alone: call-graph
/// build plus effect fixpoint over the whole tree must stay interactive.
const FLOW_SMOKE_BUDGET_MS: f64 = 3000.0;

fn run_diff(paths: &[String]) -> ! {
    if paths.len() != 2 {
        eprintln!("usage: baseline diff OLD.json NEW.json");
        std::process::exit(2);
    }
    let read = |p: &String| {
        fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("FAIL: reading {p}: {e}");
            std::process::exit(2);
        })
    };
    let (old_src, new_src) = (read(&paths[0]), read(&paths[1]));
    match hyades_bench::diff::diff_summaries(&paths[0], &old_src, &paths[1], &new_src) {
        Ok((verdict, pass)) => {
            print!("{verdict}");
            std::process::exit(if pass { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    }
}

struct Args {
    smoke: bool,
    out: PathBuf,
    artifact_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: PathBuf::from("BENCH_pr10.json"),
        artifact_dir: PathBuf::from("target/observatory"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--full" => args.smoke = false,
            "--out" => {
                args.out = PathBuf::from(it.next().expect("--out needs a path"));
            }
            "--artifacts" => {
                args.artifact_dir = PathBuf::from(it.next().expect("--artifacts needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("diff") {
        run_diff(&argv[1..]);
    }
    let args = parse_args();
    let mode = if args.smoke { "smoke" } else { "full" };
    let measure_us = if args.smoke { 120.0 } else { 400.0 };
    let wall = Instant::now();
    let mut failures: Vec<String> = Vec::new();

    // 1. Telemetry tour: model-vs-measured phase residuals (E14).
    let wall_tour = Instant::now();
    let t = tour::run(SEED);
    let tour_ms = wall_tour.elapsed().as_secs_f64() * 1e3;
    if t.max_abs_residual >= 2.0 {
        failures.push(format!(
            "tour residual {:.1}% exceeds the 200% sanity bar",
            t.max_abs_residual * 100.0
        ));
    }

    // 2. Fabric observatory on the deliberately congested workload, run
    //    twice with the same seed: the exports must match byte-for-byte.
    let obs = ObservatoryConfig::new(5.0, 2.0 * measure_us);
    let observed = || {
        run_traffic_observed(
            16,
            Pattern::BitReverse,
            UpRoute::SourceSpread,
            0.8,
            measure_us,
            SEED,
            obs,
        )
    };
    let wall_fabric = Instant::now();
    let (traffic, report) = observed();
    let fabric_ms = wall_fabric.elapsed().as_secs_f64() * 1e3;
    let prom = report.prometheus();
    let manifest = report.json_manifest("bitreverse-0.8-sourcespread", SEED);
    let (_, report2) = observed();
    let prom_identical = prom == report2.prometheus();
    let manifest_identical = manifest == report2.json_manifest("bitreverse-0.8-sourcespread", SEED);
    if report.hotspots.is_empty() {
        failures.push("congested bit-reverse run detected no hotspot".into());
    }
    if !prom_identical {
        failures.push("prometheus exposition differs across same-seed double run".into());
    }
    if !manifest_identical {
        failures.push("json manifest differs across same-seed double run".into());
    }

    // 3. Ethernet contrast: the same sampler on a hammered switch port.
    let wall_ether = Instant::now();
    let mut sim = Simulator::new();
    let eps: Vec<_> = (0..16)
        .map(|_| sim.add_actor(EtherSink::default()))
        .collect();
    let enet = EthernetSim::build(&mut sim, &eps, FAST_ETHERNET_MBYTE_PER_SEC);
    enet.observe(
        &mut sim,
        SimDuration::from_us(50),
        SimTime::from_us_f64(20_000.0),
    );
    for s in 1..16u16 {
        for i in 0..10 {
            enet.inject_at(
                &mut sim,
                SimTime::from_us_f64(i as f64 * 3.0),
                EtherFrame {
                    src: s,
                    dst: 0,
                    payload_bytes: 1000,
                    injected_at: SimTime::ZERO,
                },
            );
        }
    }
    sim.run();
    let ether_samples = sampler::take().expect("ethernet run was observed");
    let ether_prom = EthernetSim::prometheus(&ether_samples);
    let ether_occ_p99 = ether_samples
        .get("ether.link", "p0", "occ")
        .map(|s| s.p99())
        .unwrap_or(0.0);
    let ether_ms = wall_ether.elapsed().as_secs_f64() * 1e3;

    // 4. Full-tree static analysis: time one cold pass of every rule over
    //    every workspace source (the per-PR `lint_full_tree_ms` figure).
    let wall_lint = Instant::now();
    let lint = hyades_lint::lint_workspace(&hyades_lint::workspace_root())
        .expect("lint pass over the workspace sources");
    let lint_ms = wall_lint.elapsed().as_secs_f64() * 1e3;
    if !lint.is_clean() {
        failures.push(format!(
            "hyades-lint found {} unsuppressed violation(s)",
            lint.violations.len()
        ));
    }

    // 5. The interprocedural flow pass alone (call graph + fixpoint),
    //    timed separately so regressions in the analysis itself show up.
    let sources = hyades_lint::collect_sources(&hyades_lint::workspace_root())
        .expect("collect workspace sources");
    let wall_flow = Instant::now();
    let fl = hyades_lint::flow::analyze(&sources, hyades_lint::flow::WORKSPACE_SINKS);
    let flow_ms = wall_flow.elapsed().as_secs_f64() * 1e3;
    let (det, dms, nondet) = fl.effect_counts();
    if args.smoke && flow_ms > FLOW_SMOKE_BUDGET_MS {
        failures.push(format!(
            "lint::flow took {flow_ms:.0} ms (smoke budget {FLOW_SMOKE_BUDGET_MS:.0} ms)"
        ));
    }

    // 5b. The SPMD collective-uniformity proof alone (rank-dependence
    //     taint fixpoint + collective-sequence check), timed separately
    //     and required to come back with zero divergences: the 16-node
    //     run's collective schedule is only trustworthy if no rank can
    //     branch around a blocking collective.
    let wall_uniform = Instant::now();
    let un = hyades_lint::uniform::analyze(&sources);
    let uniform_ms = wall_uniform.elapsed().as_secs_f64() * 1e3;
    let uniform_findings = un
        .findings
        .iter()
        .filter(|f| f.rule == "collective-divergence")
        .count();
    if uniform_findings != 0 {
        failures.push(format!(
            "lint::uniform found {uniform_findings} collective-divergence finding(s)"
        ));
    }
    if args.smoke && uniform_ms > FLOW_SMOKE_BUDGET_MS {
        failures.push(format!(
            "lint::uniform took {uniform_ms:.0} ms (smoke budget {FLOW_SMOKE_BUDGET_MS:.0} ms)"
        ));
    }

    // 6. Run-health observatory: the coupled pair through the monitored
    //    stepper, twice — the health record itself must be byte-identical
    //    and the sentinel must stay quiet on the healthy run.
    let wall_diag = Instant::now();
    let diag = tour::run_coupled_diag(SEED);
    let diag_ms = wall_diag.elapsed().as_secs_f64() * 1e3;
    let diag2 = tour::run_coupled_diag(SEED);
    let diag_identical =
        diag.text == diag2.text && diag.json == diag2.json && diag.prom == diag2.prom;
    if !diag_identical {
        failures.push("diagnostics exports differ across same-seed double run".into());
    }
    if diag.sentinel_trips != 0 {
        failures.push(format!(
            "blowup sentinel tripped {} time(s) on the healthy coupled run",
            diag.sentinel_trips
        ));
    }

    // 7. Critical-path profiler: balanced run checked against the phase
    //    model, straggler run (rank 2 + 1 s of PS compute per step)
    //    checked for exact blame, both for byte-identical replay.
    let straggler = tour::Straggler {
        rank: 2,
        extra_flops: 50_000_000,
    };
    let wall_crit = Instant::now();
    let crit_base = tour::run_critpath(SEED, None);
    let crit_perturbed = tour::run_critpath(SEED, Some(straggler));
    let crit_ms = wall_crit.elapsed().as_secs_f64() * 1e3;
    let crit_base2 = tour::run_critpath(SEED, None);
    let crit_perturbed2 = tour::run_critpath(SEED, Some(straggler));
    let critpath_identical = crit_base.report == crit_base2.report
        && crit_base.json == crit_base2.json
        && crit_perturbed.report == crit_perturbed2.report
        && crit_perturbed.json == crit_perturbed2.json;
    if !critpath_identical {
        failures.push("critpath artifacts differ across same-seed double run".into());
    }
    let blame_rank = crit_perturbed.blame.map(|(r, _)| r);
    let straggler_blamed = blame_rank == Some(straggler.rank);
    if !straggler_blamed {
        failures.push(format!(
            "critpath blamed rank {blame_rank:?}, injected straggler was rank {}",
            straggler.rank
        ));
    }
    if crit_base.max_step_residual.abs() >= 2.0 {
        failures.push(format!(
            "balanced critical path off the phase model by {:.1}% (budget 200%)",
            crit_base.max_step_residual * 100.0
        ));
    }

    // 8. Fault-recovery tour: a seeded rank crash plus a lossy link
    //    window, end to end. The run must roll back, replay to a state
    //    bit-identical to the uninterrupted reference, and retransmit
    //    its way to an exact global sum.
    let wall_rec = Instant::now();
    let rec = TourConfig::new(SEED)
        .fault_plan(TourConfig::demo_fault_plan(SEED))
        .run_resilient();
    let rec_ms = wall_rec.elapsed().as_secs_f64() * 1e3;
    if rec.restarts == 0 {
        failures.push("fault-recovery tour: planned rank crash never fired".into());
    }
    if !rec.recovered_identical {
        failures.push("fault-recovery tour: recovered run not bit-identical".into());
    }
    if rec.retries == 0 {
        failures.push("fault-recovery tour: link faults produced no retransmits".into());
    }

    // Every raw artifact through the one unified bundle: fabric
    // observatory, ethernet contrast, run-health diagnostics, both
    // critical-path runs, and the recovery tour — one writer, one file
    // per artifact, legacy file names preserved.
    let bundle = report
        .as_exporter("bitreverse-0.8-sourcespread", SEED)
        .with("ethernet", ArtifactKind::Prom, ether_prom.clone())
        .extend_from(&diag.exporter())
        .extend_from(&crit_base.exporter("critpath"))
        .extend_from(&crit_perturbed.exporter("critpath_straggler"))
        .extend_from(&rec.exporter());
    write_artifacts_to_dir(&bundle, &args.artifact_dir).expect("write artifact dir");

    // The summary JSON.
    let worst = report.hotspots.first();
    let mut j = String::new();
    let _ = write!(
        j,
        "{{\n  \"bench\": \"pr10-baseline\",\n  \"mode\": \"{mode}\",\n  \"seed\": {SEED},\n"
    );
    let _ = write!(
        j,
        "  \"wall_ms\": {{\"total\": {:.1}, \"tour\": {tour_ms:.1}, \"fabric\": {fabric_ms:.1}, \"ethernet\": {ether_ms:.1}, \"diag\": {diag_ms:.1}, \"critpath\": {crit_ms:.1}, \"recovery\": {rec_ms:.1}, \"lint_full_tree_ms\": {lint_ms:.1}, \"lint_flow_ms\": {flow_ms:.1}, \"lint_uniform_ms\": {uniform_ms:.1}}},\n",
        wall.elapsed().as_secs_f64() * 1e3
    );
    let _ = write!(
        j,
        "  \"lint\": {{\"files_scanned\": {}, \"violations\": {}}},\n",
        lint.files_scanned,
        lint.violations.len()
    );
    let _ = write!(
        j,
        "  \"flow\": {{\"functions\": {}, \"call_edges\": {}, \"det\": {det}, \"det_modulo_seed\": {dms}, \"nondet\": {nondet}, \"sinks\": {}}},\n",
        fl.functions,
        fl.call_edges,
        fl.sinks.len()
    );
    let _ = write!(
        j,
        "  \"uniform\": {{\"functions\": {}, \"call_edges\": {}, \"collective_sites\": {}, \"collective_fns\": {}, \"trusted\": {}, \"findings\": {uniform_findings}}},\n",
        un.functions,
        un.call_edges,
        un.collective_sites,
        un.fns.len(),
        un.trusted.len()
    );
    let _ = write!(
        j,
        "  \"tour\": {{\"max_abs_residual\": {:.6}, \"max_step_residual\": {:.6}, \"span_count\": {}}},\n",
        t.max_abs_residual, t.max_step_residual, t.span_count
    );
    let _ = write!(
        j,
        "  \"diag\": {{\"steps\": {}, \"cg_iters_p50\": {}, \"cg_iters_p99\": {}, \"max_cfl\": {:.6}, \"sentinel_trips\": {}}},\n",
        diag.steps, diag.cg_iters_p50, diag.cg_iters_p99, diag.max_cfl, diag.sentinel_trips
    );
    let _ = write!(
        j,
        "  \"fabric\": {{\"pattern\": \"bit_reverse\", \"uproute\": \"source_spread\", \
         \"offered_fraction\": 0.8,\n    \"simulated_us\": {:.1}, \"delivered_mbyte_per_sec\": {:.3}, \
         \"latency_mean_us\": {:.3}, \"latency_max_us\": {:.3},\n    \"packets_delivered\": {}, \
         \"links_sampled\": {}, \"sample_ticks\": {}, \"hotspots\": {},\n",
        2.0 * measure_us,
        traffic.delivered_mbyte_per_sec,
        traffic.latency.mean(),
        traffic.latency.max(),
        traffic.packets_delivered,
        report.links.len(),
        report.ticks,
        report.hotspots.len(),
    );
    match worst {
        Some(h) => {
            let _ = write!(
                j,
                "    \"worst_hotspot\": {{\"link\": \"{}\", \"occ_p99\": {:.3}, \"util_mean\": {:.3}, \"stall_us\": {:.1}}}}},\n",
                h.entity, h.occ_p99, h.util_mean, h.stall_us
            );
        }
        None => {
            j.push_str("    \"worst_hotspot\": null},\n");
        }
    }
    let _ = write!(
        j,
        "  \"ethernet\": {{\"rate_mbyte_per_sec\": {FAST_ETHERNET_MBYTE_PER_SEC:.1}, \
         \"hammered_port_occ_p99\": {ether_occ_p99:.3}}},\n"
    );
    let _ = write!(
        j,
        "  \"critpath\": {{\"max_step_residual\": {:.6}, \"balanced_path_us\": {:.6}, \"straggler_path_us\": {:.6}, \"messages\": {}, \"straggler_blamed\": {straggler_blamed}, \"blame_rank\": {}}},\n",
        crit_base.max_step_residual,
        crit_base.total_path_us,
        crit_perturbed.total_path_us,
        crit_base.messages,
        blame_rank
            .map(|r| r.to_string())
            .unwrap_or_else(|| "null".into())
    );
    let _ = write!(j, "  \"recovery\": {},\n", rec.json);
    let _ = write!(
        j,
        "  \"determinism\": {{\"prometheus_identical\": {prom_identical}, \"manifest_identical\": {manifest_identical}, \"diag_identical\": {diag_identical}, \"critpath_identical\": {critpath_identical}, \"recovery_identical\": {}}},\n",
        rec.recovered_identical
    );
    let _ = write!(
        j,
        "  \"failures\": [{}]\n}}\n",
        failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", ")
    );
    fs::write(&args.out, &j).expect("write bench summary");

    println!("perf baseline ({mode}) -> {}", args.out.display());
    println!(
        "  fabric: {} links sampled, {} ticks, {} hotspot(s); worst {}",
        report.links.len(),
        report.ticks,
        report.hotspots.len(),
        worst.map(|h| h.entity.as_str()).unwrap_or("-"),
    );
    println!(
        "  exports: prometheus {} B, manifest {} B, byte-identical double run: {}",
        prom.len(),
        manifest.len(),
        prom_identical && manifest_identical
    );
    println!(
        "  tour residual {:.2}% (per-step max {:.2}%), ethernet hammered-port occ p99 {:.1}",
        t.max_abs_residual * 100.0,
        t.max_step_residual * 100.0,
        ether_occ_p99
    );
    println!(
        "  diag: {} steps/component, cg p50/p99 {}/{} iters, max CFL {:.3}, trips {}, byte-identical: {diag_identical}",
        diag.steps, diag.cg_iters_p50, diag.cg_iters_p99, diag.max_cfl, diag.sentinel_trips
    );
    println!(
        "  critpath: balanced {:.1} us / straggler {:.1} us over {} msgs, blame rank {}, byte-identical: {critpath_identical}",
        crit_base.total_path_us,
        crit_perturbed.total_path_us,
        crit_base.messages,
        blame_rank
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "  recovery: {} checkpoint(s), {} restart(s), {} step(s) replayed, {} retransmit(s), bit-identical: {}",
        rec.checkpoints, rec.restarts, rec.replayed_steps, rec.retries, rec.recovered_identical
    );
    println!(
        "  lint: {} files in {lint_ms:.0} ms, {} violation(s)",
        lint.files_scanned,
        lint.violations.len()
    );
    println!(
        "  flow: {} fns, {} edges in {flow_ms:.0} ms ({det} Det / {dms} DetModuloSeed / {nondet} Nondet), {} sink(s) proven",
        fl.functions,
        fl.call_edges,
        fl.sinks.len()
    );
    println!(
        "  uniform: {} collective site(s) in {uniform_ms:.0} ms, {} trusted, {uniform_findings} divergence(s)",
        un.collective_sites,
        un.trusted.len()
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

//! # hyades-bench — benchmark harnesses
//!
//! Criterion benches regenerating each table/figure of the paper (the
//! reported values are the *simulated* quantities; the wall time measures
//! this implementation's own throughput), plus ablation studies of the
//! design decisions DESIGN.md calls out. `examples/reproduce_all.rs` at
//! the workspace root prints every experiment's table in one run.

pub mod diff;

/// Shared tiny-config builders for kernel benchmarks.
pub mod setup {
    use hyades_gcm::config::ModelConfig;
    use hyades_gcm::decomp::Decomp;
    use hyades_gcm::driver::Model;

    /// A paper-shaped (32×32×5 tile) single-rank model.
    pub fn tile_model() -> Model {
        let d = Decomp::blocks(32, 32, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(32, 32, 5, d);
        Model::new(cfg, 0)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tile_model_is_paper_shaped() {
        let m = super::setup::tile_model();
        assert_eq!(m.tile.nx * m.tile.ny * m.cfg.grid.nz, 5120);
        assert_eq!(m.tile.halo, 3);
    }
}

//! Ablation — tracer advection scheme (centred vs upwind vs Superbee).
//!
//! Measures both the wall-clock cost of each scheme on a paper-shaped
//! tile and (printed) the quality trade: total variation of an advected
//! front after a fixed number of revolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyades_bench::setup::tile_model;
use hyades_gcm::config::AdvectionScheme;
use hyades_gcm::kernel::{gterms, Workspace};

fn bench(c: &mut Criterion) {
    let m = tile_model();
    let mut ws = Workspace::new(&m.cfg, &m.tile);
    let theta = m.state.theta.clone();

    let mut g = c.benchmark_group("ablation_advection");
    g.sample_size(30);
    for (name, scheme) in [
        ("centered2", AdvectionScheme::Centered2),
        ("upwind1", AdvectionScheme::Upwind1),
        ("superbee", AdvectionScheme::Superbee),
    ] {
        g.bench_with_input(
            BenchmarkId::new("tracer_tendency", name),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    gterms::tracer_tendency_scheme(
                        &m.cfg, &m.tile, &m.geom, &m.masks, &m.state, &theta, &mut ws.gt, 1e3,
                        1e-5, 0, s,
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

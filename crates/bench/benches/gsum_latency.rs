//! E3 bench — §4.2: global-sum latencies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyades_comms::gsum::measure_gsum;
use hyades_startx::HostParams;

fn bench(c: &mut Criterion) {
    println!("\n{}", hyades::experiments::gsum::run());

    let mut g = c.benchmark_group("gsum_latency");
    g.sample_size(30);
    for n in [2usize, 4, 8, 16] {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::new("butterfly_sim", n), &vals, |b, v| {
            b.iter(|| measure_gsum(HostParams::default(), v, false));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E1 bench — Figure 2: LogP characterization of PIO messaging.
//!
//! Reports the simulated LogP values (printed once) and benchmarks the
//! measurement harness itself (packet-level fabric simulation throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyades_startx::logp::measure_logp;
use hyades_startx::HostParams;

fn bench(c: &mut Criterion) {
    // Print the regenerated table once, so `cargo bench` output contains
    // the figure data.
    println!("\n{}", hyades::experiments::fig2::run());

    let mut g = c.benchmark_group("fig2_logp");
    g.sample_size(20);
    for payload in [8u64, 64] {
        g.bench_with_input(
            BenchmarkId::new("pingpong_sim", payload),
            &payload,
            |b, &p| {
                b.iter(|| measure_logp(HostParams::default(), p, 16, 0, 15, 20));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Microbenchmarks of the numerical kernels: the real (wall-clock)
//! throughput of the PS tendency evaluation, the DS solver, the halo
//! exchange machinery, and the DES engine itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hyades_bench::setup::tile_model;
use hyades_comms::SerialWorld;
use hyades_des::{Actor, Ctx, SimDuration, SimTime, Simulator};
use hyades_gcm::halo;
use hyades_gcm::kernel::{gterms, Workspace};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gcm_kernels");
    g.sample_size(25);

    // PS tendencies on a 32×32×5 tile (5120 cells, the paper's per-
    // endpoint atmosphere tile).
    {
        let m = tile_model();
        let mut ws = Workspace::new(&m.cfg, &m.tile);
        g.throughput(Throughput::Elements(5120));
        g.bench_function("momentum_tendencies_32x32x5", |b| {
            b.iter(|| {
                gterms::momentum_tendencies(
                    &m.cfg, &m.tile, &m.geom, &m.masks, &m.state, &mut ws, 1,
                )
            });
        });
        let theta = m.state.theta.clone();
        g.bench_function("tracer_tendency_32x32x5", |b| {
            b.iter(|| {
                gterms::tracer_tendency(
                    &m.cfg, &m.tile, &m.geom, &m.masks, &m.state, &theta, &mut ws.gt, 1e3, 1e-5, 0,
                )
            });
        });
    }

    // Full step (PS + DS with the CG solve).
    g.bench_function("full_step_32x32x5", |b| {
        let mut m = tile_model();
        let mut w = SerialWorld;
        b.iter(|| m.step(&mut w));
    });

    // Halo exchange pack/unpack through the serial world (pure memory
    // path, no threads).
    {
        let mut m = tile_model();
        let mut w = SerialWorld;
        let d = m.cfg.decomp;
        g.bench_function("halo_exchange_5fields_w3", |b| {
            b.iter(|| {
                let st = &mut m.state;
                halo::exchange3(
                    &mut w,
                    &d,
                    &m.tile,
                    &mut [&mut st.u, &mut st.v, &mut st.w, &mut st.theta, &mut st.s],
                    3,
                );
            });
        });
    }

    // Solver variants: rigid lid vs free surface vs non-hydrostatic, one
    // full step each (the per-step price of the configuration options).
    {
        use hyades_gcm::config::ModelConfig;
        use hyades_gcm::decomp::Decomp;
        use hyades_gcm::driver::Model;
        let build = |free: bool, nh: bool| {
            let d = Decomp::blocks(32, 32, 1, 1, 3);
            let mut cfg = ModelConfig::test_ocean(32, 32, 5, d);
            cfg.free_surface = free;
            cfg.nonhydrostatic = nh;
            Model::new(cfg, 0)
        };
        for (name, free, nh) in [
            ("rigid_lid", false, false),
            ("free_surface", true, false),
            ("nonhydrostatic", false, true),
        ] {
            g.bench_function(format!("step_variant_{name}"), |b| {
                let mut m = build(free, nh);
                let mut w = SerialWorld;
                b.iter(|| m.step(&mut w));
            });
        }
    }

    // DES engine: raw event dispatch throughput.
    {
        struct Relay {
            left: u64,
        }
        impl Actor for Relay {
            fn on_event(&mut self, _ev: Box<dyn std::any::Any>, ctx: &mut Ctx<'_>) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.wake_after(SimDuration::from_ns(1), ());
                }
            }
        }
        g.throughput(Throughput::Elements(10_000));
        g.bench_function("des_dispatch_10k_events", |b| {
            b.iter(|| {
                let mut sim = Simulator::new();
                let id = sim.add_actor(Relay { left: 10_000 });
                sim.schedule(SimTime::ZERO, id, ());
                sim.run();
                sim.events_dispatched()
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

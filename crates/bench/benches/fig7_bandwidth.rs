//! E2 bench — Figure 7: VI-mode transfer bandwidth vs block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyades_startx::vi::{measure_transfer, ViConfig};
use hyades_startx::HostParams;

fn bench(c: &mut Criterion) {
    println!("\n{}", hyades::experiments::fig7::run());

    let mut g = c.benchmark_group("fig7_vi_transfer");
    g.sample_size(15);
    for len in [1024u64, 9 * 1024, 128 * 1024] {
        g.throughput(Throughput::Bytes(len));
        g.bench_with_input(BenchmarkId::new("transfer_sim", len), &len, |b, &l| {
            b.iter(|| measure_transfer(HostParams::default(), ViConfig::default(), 16, l));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E12 bench — fabric behaviour under synthetic traffic patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyades_arctic::packet::UpRoute;
use hyades_arctic::workload::{run_traffic, Pattern};

fn bench(c: &mut Criterion) {
    println!("\n{}", hyades::experiments::routing::run());

    let mut g = c.benchmark_group("fabric_traffic");
    g.sample_size(10);
    for (name, p) in [
        ("nearest", Pattern::NearestNeighbor),
        ("bitrev", Pattern::BitReverse),
        ("uniform", Pattern::UniformRandom),
    ] {
        g.bench_with_input(BenchmarkId::new("traffic_sim", name), &p, |b, &p| {
            b.iter(|| run_traffic(16, p, UpRoute::SourceSpread, 0.7, 200.0, 42));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E4 bench — Figure 10: platform comparison.
//!
//! Prints the regenerated table and measures this implementation's *real*
//! sustained kernel rate: a full GCM time step on a paper-shaped tile,
//! converted to MFlop/s via the instrumented flop counters. This is the
//! modern-hardware analogue of the paper's single-processor row.

use criterion::{criterion_group, criterion_main, Criterion};
use hyades_bench::setup::tile_model;
use hyades_comms::SerialWorld;

fn bench(c: &mut Criterion) {
    println!("\n{}", hyades::experiments::fig10::run());

    // Measure the real flop rate of this implementation on one tile.
    {
        let mut m = tile_model();
        let mut w = SerialWorld;
        hyades_gcm::flops::reset();
        let t0 = std::time::Instant::now();
        let steps = 20;
        m.run(&mut w, steps);
        let wall = t0.elapsed().as_secs_f64();
        let (ps, ds) = hyades_gcm::flops::read();
        println!(
            "this implementation on this machine: {:.1} Mflop/s sustained \
             ({} counted flops over {steps} steps, {wall:.2}s)\n",
            (ps + ds) as f64 / wall / 1e6,
            ps + ds
        );
        hyades_gcm::flops::reset();
    }

    let mut g = c.benchmark_group("fig10_gcm_step");
    g.sample_size(20);
    g.bench_function("tile_32x32x5_step", |b| {
        let mut m = tile_model();
        let mut w = SerialWorld;
        b.iter(|| m.step(&mut w));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation — the global-sum algorithm choice of §4.2.
//!
//! The paper spends `N·log2 N` messages to get a `log2 N`-latency
//! butterfly ("our implementation of global sum minimizes latency at the
//! expense of more messages"). The comparator is the conventional binary
//! tree reduce + broadcast: `2(N−1)` messages but a `2·log2 N` critical
//! path. On a latency-bound primitive called 120 times per model step
//! (2 × Ni), the factor-two latency matters far more than the message
//! count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyades_comms::gsum::{measure_gsum, measure_gsum_tree};
use hyades_startx::HostParams;

fn bench(c: &mut Criterion) {
    let host = HostParams::default();
    println!("\nAblation: global-sum algorithm (simulated latency)");
    println!("  N    butterfly     tree reduce+bcast   ratio");
    for n in [2usize, 4, 8, 16] {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let fly = measure_gsum(host, &vals, false).elapsed;
        let tree = measure_gsum_tree(host, &vals).elapsed;
        println!(
            "  {n:<4} {:>9}   {:>12}        {:.2}x",
            format!("{fly}"),
            format!("{tree}"),
            tree.as_us_f64() / fly.as_us_f64()
        );
    }
    println!();

    let mut g = c.benchmark_group("ablation_gsum");
    g.sample_size(20);
    for n in [8usize, 16] {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::new("butterfly", n), &vals, |b, v| {
            b.iter(|| measure_gsum(host, v, false));
        });
        g.bench_with_input(BenchmarkId::new("tree", n), &vals, |b, v| {
            b.iter(|| measure_gsum_tree(host, v));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Overhead of the telemetry hooks (DESIGN.md §9 acceptance bar).
//!
//! The instrumentation is compiled into the kernels unconditionally, so
//! the quantity that matters is the *disabled-path* cost: every hook
//! must bail on a thread-local flag check before touching its
//! arguments. Three measurements:
//!
//! * `disabled_hooks_4k` — raw per-call price of the four hook shapes
//!   (counter, stat, span, comm charge) with the recorder off; this is
//!   the cost every instrumented call site pays in a normal run.
//! * `full_step_telemetry_off` — the instrumented GCM step with the
//!   recorder off; compare against `gcm_kernels/full_step_32x32x5`
//!   (same model, same world) — the two should agree within the ≤ 2 %
//!   acceptance bar.
//! * `full_step_telemetry_on` — the same step with a live recorder, to
//!   show what enabling the flight recorder actually costs.
//! * `disabled_sampler_4k` — per-call price of the fabric-observatory
//!   sampler hook (`sampler::record`) with no sampler installed; the
//!   same ≤ 2 % disabled-path bar applies to the PR 3 hooks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hyades_bench::setup::tile_model;
use hyades_comms::SerialWorld;
use hyades_des::{SimDuration, SimTime};
use hyades_telemetry as telemetry;
use hyades_telemetry::sampler;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(25);

    // Per-call price of each hook shape with the recorder disabled
    // (the state every call site is in during ordinary runs).
    {
        assert!(
            telemetry::disable().is_none(),
            "recorder must start disabled"
        );
        const CALLS: u64 = 1000;
        g.throughput(Throughput::Elements(4 * CALLS));
        g.bench_function("disabled_hooks_4k", |b| {
            b.iter(|| {
                for i in 0..CALLS {
                    telemetry::count("bench", "counter", black_box(i));
                    telemetry::observe("bench", "stat", black_box(i as f64));
                    telemetry::record_span(
                        black_box(i),
                        "bench",
                        "span",
                        SimTime::ZERO,
                        SimDuration::from_ns(1),
                    );
                    telemetry::charge_comm("bench", SimDuration::from_ns(black_box(i)));
                }
            });
        });
    }

    // Per-call price of the fabric-observatory sampler hook with no
    // sampler installed — the state every router/NIU call site is in
    // unless an Observatory is attached.
    {
        assert!(
            !sampler::installed() && sampler::take().is_none(),
            "sampler must start uninstalled"
        );
        const CALLS: u64 = 1000;
        g.throughput(Throughput::Elements(4 * CALLS));
        g.bench_function("disabled_sampler_4k", |b| {
            b.iter(|| {
                for i in 0..CALLS {
                    let v = black_box(i as f64);
                    sampler::record("bench", black_box("l0.w0.p0"), "occ", SimTime::ZERO, v);
                    sampler::record("bench", black_box("l0.w0.p0"), "occ_high", SimTime::ZERO, v);
                    sampler::record("bench", black_box("l0.w0.p0"), "busy_us", SimTime::ZERO, v);
                    sampler::record("bench", black_box("ep0"), "occ", SimTime::ZERO, v);
                }
            });
        });
    }

    // Instrumented full step, recorder off: should match the
    // uninstrumented-era gcm_kernels/full_step_32x32x5 figure within 2 %.
    g.throughput(Throughput::Elements(5120));
    g.bench_function("full_step_telemetry_off", |b| {
        let mut m = tile_model();
        let mut w = SerialWorld;
        b.iter(|| m.step(&mut w));
    });

    // Same step with a live recorder: the price of actually flying the
    // flight recorder (span pushes, registry updates, phase accounting).
    {
        let mut m = tile_model();
        let mut w = SerialWorld;
        telemetry::enable(0);
        g.bench_function("full_step_telemetry_on", |b| {
            b.iter(|| m.step(&mut w));
        });
        let t = telemetry::disable().expect("recorder was enabled");
        println!(
            "  (enabled run recorded {} spans, {} steps)",
            t.spans.len(),
            t.registry.counter("gcm.driver", "steps")
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation — the exchange design choices of §4.1.
//!
//! 1. **Overcomputation**: one width-3 exchange per PS step (the paper's
//!    design) versus three width-1 exchanges (what a no-overcomputation
//!    code would need between sub-stages). The simulated cost shows why
//!    the paper buys redundant flops with wider halos.
//! 2. **Staging chunk size**: the copy/DMA overlap is only effective with
//!    small chunks; large chunks serialize the first copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyades_comms::exchange::measure_exchange;
use hyades_startx::vi::{measure_transfer, ViConfig};
use hyades_startx::HostParams;

fn bench(c: &mut Criterion) {
    let host = HostParams::default();

    // --- Overcomputation ablation (printed) ---
    // Atmosphere tile 32×32, 5 levels, 8-byte elements.
    let leg_w3 = 32 * 3 * 5 * 8; // one width-3 exchange
    let leg_w1 = 32 * 5 * 8; // one width-1 exchange
    let once_wide = measure_exchange(host, 4, 2, leg_w3);
    let thrice_narrow = measure_exchange(host, 4, 2, leg_w1) * 3;
    println!("\nAblation: PS halo strategy (per field, simulated 8-endpoint fabric)");
    println!("  one width-3 exchange (overcompute): {once_wide}");
    println!("  three width-1 exchanges (no overcompute): {thrice_narrow}");
    println!(
        "  overcomputation saves {:.0}% of PS exchange time\n",
        (1.0 - once_wide.as_us_f64() / thrice_narrow.as_us_f64()) * 100.0
    );

    // --- Chunk-size ablation (printed) ---
    println!("Ablation: VI staging chunk size (64 KB transfer)");
    for chunk in [256u64, 512, 2048, 8192, 65536] {
        let cfg = ViConfig {
            chunk_bytes: chunk,
            notify_sender: true,
        };
        let m = measure_transfer(host, cfg, 16, 65536);
        println!("  chunk {chunk:>6} B: {:>7.1} MB/s", m.mbyte_per_sec);
    }
    println!();

    let mut g = c.benchmark_group("ablation_exchange");
    g.sample_size(10);
    for (name, leg) in [("ds_256B", 256u64), ("ps_3840B", 3840)] {
        g.bench_with_input(BenchmarkId::new("exchange_sim", name), &leg, |b, &l| {
            b.iter(|| measure_exchange(host, 4, 2, l));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E7 bench — Figure 12: Pfpp per interconnect (plus §5.3 and §6 tables).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("\n{}", hyades::experiments::fig12::run());
    println!("\n{}", hyades::experiments::hpvm::run());

    let mut g = c.benchmark_group("fig12_pfpp");
    g.sample_size(10);
    g.bench_function("rows_from_simulated_fabric", |b| {
        b.iter(hyades::experiments::fig12::rows);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

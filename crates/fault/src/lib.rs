//! Deterministic fault plans and recovery policy.
//!
//! The paper's Hyades cluster assumed a reliable Arctic fabric: per-stage
//! CRC *detects* corruption, but §2.2 treats a failed check as a
//! catastrophic error and the measured runs never had to survive one. A
//! production-scale system serving month-long climate runs must keep
//! stepping when a link corrupts packets, an NIU stalls, or a rank dies
//! mid-step. This crate is the *plan* half of that story: a seeded,
//! fully deterministic description of which faults happen when, shared
//! verbatim by every rank so fault handling never desynchronizes the
//! collective schedule.
//!
//! * [`FaultPlan`] — scheduled [`LinkFaultWindow`]s (corrupt/drop rates
//!   active over a simulated-time interval), [`NiuStall`] intervals
//!   (an injection port holds its queue until the window closes), and
//!   [`RankCrash`] events (a rank loses its in-memory model state at a
//!   given coupled step).
//! * [`RetryPolicy`] — timeout + capped exponential backoff, consumed
//!   by the `comms` retransmit protocols.
//!
//! Injection lives with the consumers (`arctic` applies link windows
//! and stalls at its injection ports, `gcm` applies rank crashes in its
//! resilient stepper); this crate only describes the schedule, which is
//! why it depends on nothing but the simulation clock.

use hyades_des::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A corrupt/drop-rate window on the fabric's injection links: between
/// `from` (inclusive) and `until` (exclusive), packets entering the
/// fabric are corrupted or dropped at the given per-packet rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaultWindow {
    pub from: SimTime,
    pub until: SimTime,
    /// Per-packet single-bit-flip probability while the window is open.
    pub corrupt_rate: f64,
    /// Per-packet drop probability (checked before corruption).
    pub drop_rate: f64,
}

impl LinkFaultWindow {
    pub fn covers(&self, at: SimTime) -> bool {
        self.from <= at && at < self.until
    }
}

/// An NIU stall: endpoint `endpoint`'s injection port stops granting the
/// link between `from` and `until`; queued packets wait the stall out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NiuStall {
    pub endpoint: u16,
    pub from: SimTime,
    pub until: SimTime,
}

/// A rank loses its in-memory model state at the *start* of coupled
/// step `at_step` (1-based, matching `steps_taken + 1`). Recovery is
/// the resilient stepper's job: restart from the last checkpoint and
/// replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankCrash {
    pub rank: usize,
    pub at_step: u64,
}

/// A seeded, deterministic fault schedule. The seed feeds the per-port
/// corruption RNG streams so two runs of the same plan inject byte-for-
/// byte identical faults; the plan itself is replicated on every rank,
/// so decisions taken from it (notably crash recovery) are uniform
/// across the collective.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub link_windows: Vec<LinkFaultWindow>,
    pub niu_stalls: Vec<NiuStall>,
    pub rank_crashes: Vec<RankCrash>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Add a link corrupt/drop window over `[from_us, until_us)`
    /// microseconds of simulated time.
    pub fn link_window(
        mut self,
        from_us: f64,
        until_us: f64,
        corrupt_rate: f64,
        drop_rate: f64,
    ) -> FaultPlan {
        assert!(from_us <= until_us, "window must not be inverted");
        assert!(
            (0.0..=1.0).contains(&corrupt_rate) && (0.0..=1.0).contains(&drop_rate),
            "rates must be probabilities"
        );
        self.link_windows.push(LinkFaultWindow {
            from: SimTime::from_us_f64(from_us),
            until: SimTime::from_us_f64(until_us),
            corrupt_rate,
            drop_rate,
        });
        self
    }

    /// Stall endpoint `endpoint`'s NIU over `[from_us, until_us)`.
    pub fn niu_stall(mut self, endpoint: u16, from_us: f64, until_us: f64) -> FaultPlan {
        assert!(from_us <= until_us, "stall must not be inverted");
        self.niu_stalls.push(NiuStall {
            endpoint,
            from: SimTime::from_us_f64(from_us),
            until: SimTime::from_us_f64(until_us),
        });
        self
    }

    /// Crash `rank` at the start of coupled step `at_step` (1-based).
    pub fn rank_crash(mut self, rank: usize, at_step: u64) -> FaultPlan {
        assert!(at_step >= 1, "steps are 1-based");
        self.rank_crashes.push(RankCrash { rank, at_step });
        self
    }

    /// The link window covering `at`, if any (first match wins — plans
    /// with overlapping windows are ordered by insertion).
    pub fn link_window_at(&self, at: SimTime) -> Option<&LinkFaultWindow> {
        self.link_windows.iter().find(|w| w.covers(at))
    }

    /// If `endpoint`'s NIU is stalled at `at`, the time the stall ends.
    pub fn stalled_until(&self, endpoint: u16, at: SimTime) -> Option<SimTime> {
        self.niu_stalls
            .iter()
            .filter(|s| s.endpoint == endpoint && s.from <= at && at < s.until)
            .map(|s| s.until)
            .max()
    }

    /// The crash scheduled for step `step`, if any. At most one rank
    /// crashes per step in a well-formed plan; the lowest rank wins.
    pub fn crash_at_step(&self, step: u64) -> Option<&RankCrash> {
        self.rank_crashes
            .iter()
            .filter(|c| c.at_step == step)
            .min_by_key(|c| c.rank)
    }

    pub fn is_empty(&self) -> bool {
        self.link_windows.is_empty() && self.niu_stalls.is_empty() && self.rank_crashes.is_empty()
    }

    /// Deterministic one-plan-per-line rendering for run manifests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# fault plan (seed {:#x})", self.seed);
        for w in &self.link_windows {
            let _ = writeln!(
                out,
                "link-window {}..{} us corrupt {:.4} drop {:.4}",
                w.from.as_us_f64(),
                w.until.as_us_f64(),
                w.corrupt_rate,
                w.drop_rate
            );
        }
        for s in &self.niu_stalls {
            let _ = writeln!(
                out,
                "niu-stall ep{} {}..{} us",
                s.endpoint,
                s.from.as_us_f64(),
                s.until.as_us_f64()
            );
        }
        for c in &self.rank_crashes {
            let _ = writeln!(out, "rank-crash rank {} at step {}", c.rank, c.at_step);
        }
        if self.is_empty() {
            out.push_str("(no faults scheduled)\n");
        }
        out
    }
}

/// Timeout + capped exponential backoff, driving the `comms` retransmit
/// protocols. Retry `k` (0-based) is armed `arm(k)` after the request it
/// guards: `timeout · 2^k`, saturating at `cap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base wait before the first retry fires.
    pub timeout: SimDuration,
    /// Ceiling on the backed-off wait.
    pub cap: SimDuration,
    /// Give up (catastrophic failure) after this many retries of one
    /// message.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        // The longest fault-free leg in the exchange microbench is a few
        // hundred microseconds; a 1 ms base timeout never fires
        // spuriously but still recovers a dropped control packet in
        // small multiples of the leg time.
        RetryPolicy {
            timeout: SimDuration::from_us_f64(1000.0),
            cap: SimDuration::from_us_f64(8000.0),
            max_attempts: 10,
        }
    }
}

impl RetryPolicy {
    /// The wait armed before retry `attempt` (0-based): capped
    /// exponential backoff.
    pub fn arm(&self, attempt: u32) -> SimDuration {
        let mut d = self.timeout;
        for _ in 0..attempt {
            let doubled = d + d;
            d = if doubled > self.cap {
                self.cap
            } else {
                doubled
            };
            if d == self.cap {
                break;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_renders_deterministically() {
        let p = FaultPlan::new(0xFA)
            .link_window(10.0, 20.0, 0.5, 0.1)
            .niu_stall(3, 5.0, 9.0)
            .rank_crash(2, 4);
        assert_eq!(p.link_windows.len(), 1);
        assert_eq!(p.niu_stalls.len(), 1);
        assert_eq!(p.rank_crashes.len(), 1);
        assert!(!p.is_empty());
        let r = p.render();
        assert_eq!(r, p.render(), "render must be deterministic");
        assert!(r.contains("link-window 10..20 us corrupt 0.5000 drop 0.1000"));
        assert!(r.contains("niu-stall ep3 5..9 us"));
        assert!(r.contains("rank-crash rank 2 at step 4"));
    }

    #[test]
    fn window_lookup_honours_half_open_interval() {
        let p = FaultPlan::new(1).link_window(10.0, 20.0, 0.2, 0.0);
        assert!(p.link_window_at(SimTime::from_us_f64(9.9)).is_none());
        assert!(p.link_window_at(SimTime::from_us_f64(10.0)).is_some());
        assert!(p.link_window_at(SimTime::from_us_f64(19.9)).is_some());
        assert!(p.link_window_at(SimTime::from_us_f64(20.0)).is_none());
    }

    #[test]
    fn stall_lookup_is_per_endpoint_and_takes_longest_cover() {
        let p = FaultPlan::new(1)
            .niu_stall(0, 0.0, 10.0)
            .niu_stall(0, 5.0, 30.0)
            .niu_stall(1, 0.0, 50.0);
        let at = SimTime::from_us_f64(6.0);
        assert_eq!(p.stalled_until(0, at), Some(SimTime::from_us_f64(30.0)));
        assert_eq!(p.stalled_until(1, at), Some(SimTime::from_us_f64(50.0)));
        assert_eq!(p.stalled_until(2, at), None);
        assert_eq!(p.stalled_until(0, SimTime::from_us_f64(40.0)), None);
    }

    #[test]
    fn crash_lookup_prefers_lowest_rank() {
        let p = FaultPlan::new(1).rank_crash(3, 5).rank_crash(1, 5);
        assert_eq!(p.crash_at_step(5).map(|c| c.rank), Some(1));
        assert_eq!(p.crash_at_step(4), None);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let pol = RetryPolicy {
            timeout: SimDuration::from_us_f64(100.0),
            cap: SimDuration::from_us_f64(500.0),
            max_attempts: 8,
        };
        assert_eq!(pol.arm(0), SimDuration::from_us_f64(100.0));
        assert_eq!(pol.arm(1), SimDuration::from_us_f64(200.0));
        assert_eq!(pol.arm(2), SimDuration::from_us_f64(400.0));
        assert_eq!(pol.arm(3), SimDuration::from_us_f64(500.0));
        assert_eq!(pol.arm(9), SimDuration::from_us_f64(500.0));
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_rates_rejected() {
        let _ = FaultPlan::new(0).link_window(0.0, 1.0, 1.5, 0.0);
    }
}

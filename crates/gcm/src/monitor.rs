//! Per-timestep run-health monitor and blowup sentinel.
//!
//! MITgcm ships a `monitor` package that prints global statistics every
//! time step precisely because coupled fine-grid runs fail in ways only
//! per-step diagnostics catch: a CG solve that silently degrades, a CFL
//! violation, a NaN born in one tile's physics column. This module is
//! that package's isomorph for the reproduction:
//!
//! * [`RunMonitor::observe`] computes, after every model step,
//!   conserved-quantity budgets (free-surface volume anomaly, tracer
//!   integrals, kinetic energy per velocity component), stability
//!   indicators (advective and gravity-wave CFL numbers, max divergence
//!   norm), per-field min/max extrema with the owning rank/level/cell,
//!   and the step's CG convergence trace — every number reduced through
//!   the [`CommWorld`] collectives so all ranks agree bit-for-bit and
//!   the reductions are charged to telemetry like real communication.
//! * A blowup sentinel watches the same reduced values for NaN/Inf and
//!   threshold breaches. On trip it attributes blame — the *first*
//!   offending field/level/cell in a deterministic order — drops
//!   flight-recorder crumbs, captures a snapshot of the reduced state,
//!   and reports failure gracefully instead of letting the run dissolve
//!   into NaN soup.
//!
//! Every rank calls [`RunMonitor::observe`] collectively (the reduction
//! schedule is identical on all ranks whether or not anything is wrong
//! locally), so a trip can never leave one rank stranded in a
//! collective.

use crate::driver::{Model, StepStats};
use crate::field::{Field2, Field3};
use crate::grid::GRAVITY;
use hyades_comms::CommWorld;
use hyades_telemetry::diag::{DiagRow, DiagSeries};
use hyades_telemetry::{self as telemetry, flight};
use std::fmt::Write as _;

/// Prognostic fields in blame order: a non-finite value is attributed to
/// the first field (in this order) that carries one.
const FIELDS: [&str; 6] = ["u", "v", "w", "theta", "s", "ps"];

/// Sentinel thresholds. Defaults are deliberately loose — they catch a
/// run that is already unphysical, not one that is merely energetic.
#[derive(Clone, Copy, Debug)]
pub struct SentinelConfig {
    pub armed: bool,
    /// Trip when the global max horizontal speed exceeds this (m/s).
    pub max_speed: f64,
    /// Trip when the advective CFL number exceeds this.
    pub max_cfl: f64,
}

impl Default for SentinelConfig {
    fn default() -> SentinelConfig {
        SentinelConfig {
            armed: true,
            max_speed: 1.0e3,
            max_cfl: 1.0,
        }
    }
}

/// What tripped the sentinel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlowupKind {
    /// NaN or ±Inf in a prognostic field.
    NonFinite,
    /// Global max speed breached [`SentinelConfig::max_speed`].
    Speed,
    /// Advective CFL breached [`SentinelConfig::max_cfl`].
    Cfl,
}

/// Blame attribution for a tripped sentinel. Identical on every rank.
#[derive(Clone, Debug)]
pub struct BlowupReport {
    pub step: u64,
    pub kind: BlowupKind,
    /// Offending field name (one of [`FIELDS`]).
    pub field: &'static str,
    /// Rank owning the offending cell.
    pub rank: usize,
    pub level: usize,
    /// Global cell indices.
    pub gi: i64,
    pub gj: i64,
    /// Breaching value for threshold trips; NaN for [`BlowupKind::NonFinite`].
    pub value: f64,
    /// Deterministic snapshot of the reduced diagnostics at the trip.
    pub snapshot: String,
}

impl BlowupReport {
    pub fn render(&self) -> String {
        let what = match self.kind {
            BlowupKind::NonFinite => "non-finite value".to_string(),
            BlowupKind::Speed => format!("speed {} m/s over threshold", fixed(self.value)),
            BlowupKind::Cfl => format!("CFL {} over threshold", fixed(self.value)),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "BLOWUP at step {}: {what} in field {} (rank {}, level {}, cell gi={} gj={})",
            self.step, self.field, self.rank, self.level, self.gi, self.gj
        );
        out.push_str(&self.snapshot);
        out
    }
}

fn fixed(v: f64) -> String {
    telemetry::prom::fixed(v)
}

/// Pack an owner location into a reduction tag: rank(19b) above
/// level(6b) above gj(14b) above gi(14b) — 53 bits, exactly
/// representable as an `f64` as [`CommWorld::global_argmax`] requires.
fn pack_loc(rank: usize, k: usize, gj: i64, gi: i64) -> u64 {
    debug_assert!(rank < (1 << 19) && k < (1 << 6) && gj < (1 << 14) && gi < (1 << 14));
    ((rank as u64) << 34) | ((k as u64) << 28) | ((gj as u64) << 14) | gi as u64
}

fn unpack_loc(tag: u64) -> (usize, usize, i64, i64) {
    (
        (tag >> 34) as usize,
        ((tag >> 28) & 0x3f) as usize,
        ((tag >> 14) & 0x3fff) as i64,
        (tag & 0x3fff) as i64,
    )
}

/// Blame key for the sentinel: orders by (field, level, gj, gi, rank) so
/// the global minimum is the *first* offending cell in a deterministic
/// scan order, independent of how many ranks saw trouble.
fn pack_blame(field: usize, k: usize, gj: i64, gi: i64, rank: usize) -> u64 {
    debug_assert!(field < (1 << 3) && rank < (1 << 14));
    ((field as u64) << 48)
        | ((k as u64) << 42)
        | ((gj as u64) << 28)
        | ((gi as u64) << 14)
        | rank as u64
}

fn unpack_blame(key: u64) -> (usize, usize, i64, i64, usize) {
    (
        (key >> 48) as usize,
        ((key >> 42) & 0x3f) as usize,
        ((key >> 28) & 0x3fff) as i64,
        ((key >> 14) & 0x3fff) as i64,
        (key & 0x3fff) as usize,
    )
}

/// One field's reduced extrema with owner attribution.
struct Extremes {
    max: f64,
    max_tag: u64,
    min: f64,
    min_tag: u64,
}

/// The per-run monitor: accumulates a [`DiagSeries`] row per observed
/// step and arms the blowup sentinel.
#[derive(Debug)]
pub struct RunMonitor {
    sentinel: SentinelConfig,
    series: DiagSeries,
    steps: u64,
    trips: u64,
    report: Option<BlowupReport>,
}

impl RunMonitor {
    /// `name` labels the series in every exporter (e.g. `"ocean"`).
    pub fn new(name: &str, sentinel: SentinelConfig) -> RunMonitor {
        RunMonitor {
            sentinel,
            series: DiagSeries::new(name),
            steps: 0,
            trips: 0,
            report: None,
        }
    }

    pub fn series(&self) -> &DiagSeries {
        &self.series
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub fn trips(&self) -> u64 {
        self.trips
    }

    pub fn blowup(&self) -> Option<&BlowupReport> {
        self.report.as_ref()
    }

    /// Rewind the monitor to `to_steps` observed steps, dropping every
    /// later diagnostics row. The resilient stepper calls this on a
    /// rank-crash rollback so the replayed steps re-record their rows
    /// and the final series is byte-identical to an uninterrupted run.
    /// Trip state is not rewound — a sentinel trip before the crash is
    /// still a trip.
    pub fn truncate(&mut self, to_steps: u64) {
        assert!(to_steps <= self.steps, "cannot truncate forward");
        self.series.truncate(to_steps as usize);
        self.steps = to_steps;
    }

    /// Observe one completed step. Collective: every rank must call with
    /// its own `model`/`stats`. Returns `true` while the run is healthy;
    /// `false` once the sentinel has tripped (the report is identical on
    /// every rank — callers stop stepping and render it).
    pub fn observe(&mut self, world: &mut dyn CommWorld, model: &Model, stats: &StepStats) -> bool {
        let step = model.steps_taken;
        self.steps += 1;
        let rank = world.rank();
        let mut row = DiagRow::new(step);

        // --- conserved-quantity budgets: one batched rank-order sum ---
        let b = local_budgets(model);
        let mut sums = b;
        world.global_sum_vec(&mut sums);
        row.set("vol_anom", sums[0]);
        row.set("theta_int", sums[1]);
        row.set("s_int", sums[2]);
        row.set("ke_u", sums[3]);
        row.set("ke_v", sums[4]);
        row.set("ke_w", sums[5]);

        // --- stability indicators -----------------------------------
        let dt = model.cfg.dt;
        let min_dx = model.cfg.grid.min_dx();
        let speed = world.global_max(stats.max_speed);
        let cfl_adv = speed * dt / min_dx;
        let cfl_gw = (GRAVITY * model.cfg.grid.full_depth()).sqrt() * dt / min_dx;
        let div_max = world.global_max(model.divergence_norm());
        row.set("speed_max", speed);
        row.set("cfl_adv", cfl_adv);
        row.set("cfl_gw", cfl_gw);
        row.set("div_max", div_max);

        // --- CG convergence trace (already global on every rank) ----
        row.set("cg_iters", stats.cg_iterations as f64);
        row.set("cg_r0", stats.cg_initial_residual);
        row.set("cg_rfinal", stats.cg_final_residual);
        row.set("cg_converged", if stats.cg_converged { 1.0 } else { 0.0 });

        // --- per-field extrema with owner attribution ---------------
        let s = &model.state;
        let fields3: [(&Field3, &'static str, [&'static str; 6]); 5] = [
            (
                &s.u,
                "u",
                [
                    "u_max",
                    "u_max_rank",
                    "u_max_k",
                    "u_min",
                    "u_min_rank",
                    "u_min_k",
                ],
            ),
            (
                &s.v,
                "v",
                [
                    "v_max",
                    "v_max_rank",
                    "v_max_k",
                    "v_min",
                    "v_min_rank",
                    "v_min_k",
                ],
            ),
            (
                &s.w,
                "w",
                [
                    "w_max",
                    "w_max_rank",
                    "w_max_k",
                    "w_min",
                    "w_min_rank",
                    "w_min_k",
                ],
            ),
            (
                &s.theta,
                "theta",
                [
                    "theta_max",
                    "theta_max_rank",
                    "theta_max_k",
                    "theta_min",
                    "theta_min_rank",
                    "theta_min_k",
                ],
            ),
            (
                &s.s,
                "s",
                [
                    "s_max",
                    "s_max_rank",
                    "s_max_k",
                    "s_min",
                    "s_min_rank",
                    "s_min_k",
                ],
            ),
        ];
        for (f, _, cols) in &fields3 {
            let e = extremes3(world, model, f, rank);
            let (max_rank, max_k, _, _) = unpack_loc(e.max_tag);
            let (min_rank, min_k, _, _) = unpack_loc(e.min_tag);
            row.set(cols[0], e.max);
            row.set(cols[1], max_rank as f64);
            row.set(cols[2], max_k as f64);
            row.set(cols[3], e.min);
            row.set(cols[4], min_rank as f64);
            row.set(cols[5], min_k as f64);
        }
        let eps = extremes2(world, model, &s.ps, rank);
        let (ps_max_rank, _, _, _) = unpack_loc(eps.max_tag);
        let (ps_min_rank, _, _, _) = unpack_loc(eps.min_tag);
        row.set("ps_max", eps.max);
        row.set("ps_max_rank", ps_max_rank as f64);
        row.set("ps_min", eps.min);
        row.set("ps_min_rank", ps_min_rank as f64);

        // --- sentinel -----------------------------------------------
        // The non-finite scan + reduction runs every step on every rank
        // regardless of local state, so the collective schedule never
        // diverges across ranks. The verdict branch below *does* issue
        // extremes3 reductions conditionally, but every input to its
        // condition is rank-uniform: `blame` and `speed` are global
        // reductions, and `cfl_adv` / the sentinel thresholds derive
        // from the replicated config. `lint::uniform` checks the rest
        // of this schedule mechanically; this one branch carries an
        // audited allow because the taint lattice tracks `model` and
        // `self` wholesale and cannot see that `.cfg` / `.sentinel`
        // are replicated (struct fields are not taint-tracked).
        let local_blame = first_non_finite(model, rank);
        let blame = world.global_min(local_blame.map_or(f64::INFINITY, |k| k as f64));

        telemetry::count("gcm.monitor", "steps", 1);
        telemetry::observe("gcm.monitor", "cfl_adv", cfl_adv);
        telemetry::observe("gcm.monitor", "div_max", div_max);
        flight::crumb(step, rank, "monitor.step", stats.cg_iterations as u64);

        // lint:allow(collective-divergence, condition inputs are global reductions or replicated config; see sentinel comment above)
        let verdict = if blame.is_finite() {
            let (field, k, gj, gi, owner) = unpack_blame(blame as u64);
            Some((BlowupKind::NonFinite, field, k, gj, gi, owner, f64::NAN))
        } else if self.sentinel.armed && speed > self.sentinel.max_speed {
            // Blame the owner of the fastest |u| or |v| cell.
            let eu = extremes3(world, model, &s.u, rank);
            let ev = extremes3(world, model, &s.v, rank);
            let (val, tag, field) =
                if eu.max.abs().max(eu.min.abs()) >= ev.max.abs().max(ev.min.abs()) {
                    pick_abs_extreme(&eu, 0)
                } else {
                    pick_abs_extreme(&ev, 1)
                };
            let (owner, k, gj, gi) = unpack_loc(tag);
            Some((BlowupKind::Speed, field, k, gj, gi, owner, val))
        } else if self.sentinel.armed && cfl_adv > self.sentinel.max_cfl {
            let eu = extremes3(world, model, &s.u, rank);
            let (val, tag, field) = pick_abs_extreme(&eu, 0);
            let (owner, k, gj, gi) = unpack_loc(tag);
            Some((BlowupKind::Cfl, field, k, gj, gi, owner, val))
        } else {
            None
        };

        row.set("sentinel_trip", if verdict.is_some() { 1.0 } else { 0.0 });
        let tripped = verdict.is_some();
        let snapshot = if tripped {
            row_snapshot(&row)
        } else {
            String::new()
        };
        self.series.push(row);

        if let Some((kind, field, k, gj, gi, owner, value)) = verdict {
            // Only the first trip is reported; later observations (if a
            // harness keeps stepping) just count.
            self.trips += 1;
            telemetry::count("gcm.monitor", "sentinel_trips", 1);
            flight::crumb(
                step,
                rank,
                "monitor.trip",
                pack_blame(field, k, gj, gi, owner),
            );
            if self.report.is_none() {
                self.report = Some(BlowupReport {
                    step,
                    kind,
                    field: FIELDS.get(field).copied().unwrap_or("?"),
                    rank: owner,
                    level: k,
                    gi,
                    gj,
                    value,
                    snapshot,
                });
            }
            return false;
        }
        !tripped
    }
}

/// Returns `(value, owner_tag, field_idx)` for whichever signed extreme
/// of `e` has the larger magnitude.
fn pick_abs_extreme(e: &Extremes, field_idx: usize) -> (f64, u64, usize) {
    if e.max.abs() >= e.min.abs() {
        (e.max, e.max_tag, field_idx)
    } else {
        (e.min, e.min_tag, field_idx)
    }
}

/// Local contributions to the batched budget reduction:
/// `[vol_anom, theta_int, s_int, ke_u, ke_v, ke_w]`.
fn local_budgets(model: &Model) -> [f64; 6] {
    let s = &model.state;
    let m = &model.masks;
    let g = &model.geom;
    let dz = &model.cfg.grid.dz;
    let mut out = [0.0f64; 6];
    for (i, j) in s.ps.interior() {
        if m.depth.at(i, j) > 0.0 {
            out[0] += g.area_at(j) * s.ps.at(i, j);
        }
    }
    for (i, j, k) in s.theta.interior() {
        let vol = g.area_at(j) * dz[k];
        let wet_c = m.c.at(i, j, k);
        out[1] += wet_c * vol * s.theta.at(i, j, k);
        out[2] += wet_c * vol * s.s.at(i, j, k);
        out[3] += 0.5 * m.u.at(i, j, k) * vol * s.u.at(i, j, k).powi(2);
        out[4] += 0.5 * m.v.at(i, j, k) * vol * s.v.at(i, j, k).powi(2);
        out[5] += 0.5 * wet_c * vol * s.w.at(i, j, k).powi(2);
    }
    out
}

/// Reduced min/max of a 3-D field with deterministic owner attribution.
fn extremes3(world: &mut dyn CommWorld, model: &Model, f: &Field3, rank: usize) -> Extremes {
    let t = &model.tile;
    let mut max = f64::NEG_INFINITY;
    let mut min = f64::INFINITY;
    let (mut max_loc, mut min_loc) = ((0usize, 0i64, 0i64), (0usize, 0i64, 0i64));
    for (i, j, k) in f.interior() {
        let v = f.at(i, j, k);
        if v > max {
            max = v;
            max_loc = (k, t.gy(j), t.gx(i));
        }
        if v < min {
            min = v;
            min_loc = (k, t.gy(j), t.gx(i));
        }
    }
    reduce_extremes(world, rank, max, max_loc, min, min_loc)
}

/// Reduced min/max of a 2-D field (level recorded as 0).
fn extremes2(world: &mut dyn CommWorld, model: &Model, f: &Field2, rank: usize) -> Extremes {
    let t = &model.tile;
    let mut max = f64::NEG_INFINITY;
    let mut min = f64::INFINITY;
    let (mut max_loc, mut min_loc) = ((0usize, 0i64, 0i64), (0usize, 0i64, 0i64));
    for (i, j) in f.interior() {
        let v = f.at(i, j);
        if v > max {
            max = v;
            max_loc = (0, t.gy(j), t.gx(i));
        }
        if v < min {
            min = v;
            min_loc = (0, t.gy(j), t.gx(i));
        }
    }
    reduce_extremes(world, rank, max, max_loc, min, min_loc)
}

fn reduce_extremes(
    world: &mut dyn CommWorld,
    rank: usize,
    max: f64,
    max_loc: (usize, i64, i64),
    min: f64,
    min_loc: (usize, i64, i64),
) -> Extremes {
    let (max, max_tag) = world.global_argmax(max, pack_loc(rank, max_loc.0, max_loc.1, max_loc.2));
    let (min, min_tag) = world.global_argmin(min, pack_loc(rank, min_loc.0, min_loc.1, min_loc.2));
    Extremes {
        max,
        max_tag,
        min,
        min_tag,
    }
}

/// First non-finite value in this rank's prognostic state, as a blame
/// key ordered (field, level, gj, gi, rank); `None` when clean.
fn first_non_finite(model: &Model, rank: usize) -> Option<u64> {
    let s = &model.state;
    let t = &model.tile;
    let fields3: [&Field3; 5] = [&s.u, &s.v, &s.w, &s.theta, &s.s];
    let mut best: Option<u64> = None;
    for (fi, f) in fields3.iter().enumerate() {
        for (i, j, k) in f.interior() {
            if !f.at(i, j, k).is_finite() {
                let key = pack_blame(fi, k, t.gy(j), t.gx(i), rank);
                best = Some(best.map_or(key, |b| b.min(key)));
                break; // interior() scans in (k, j, i) order: first hit wins
            }
        }
    }
    for (i, j) in s.ps.interior() {
        if !s.ps.at(i, j).is_finite() {
            let key = pack_blame(5, 0, t.gy(j), t.gx(i), rank);
            best = Some(best.map_or(key, |b| b.min(key)));
            break;
        }
    }
    best
}

/// Render one reduced row as a key = value snapshot (the "state dump" a
/// tripped sentinel attaches to its report).
fn row_snapshot(row: &DiagRow) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "reduced state at step {}:", row.step);
    for (k, v) in row.iter() {
        let _ = writeln!(out, "  {k} = {}", fixed(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::decomp::Decomp;
    use hyades_comms::SerialWorld;

    fn small_model() -> Model {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        Model::new(ModelConfig::test_ocean(16, 8, 4, d), 0)
    }

    #[test]
    fn healthy_run_records_per_step_rows() {
        let mut w = SerialWorld;
        let mut m = small_model();
        let mut mon = RunMonitor::new("ocean", SentinelConfig::default());
        for _ in 0..3 {
            let stats = m.step(&mut w);
            assert!(mon.observe(&mut w, &m, &stats), "healthy run tripped");
        }
        assert_eq!(mon.steps(), 3);
        assert_eq!(mon.trips(), 0);
        assert!(mon.blowup().is_none());
        let s = mon.series();
        assert_eq!(s.len(), 3);
        // Budgets and indicators are present and finite.
        for key in [
            "vol_anom",
            "theta_int",
            "s_int",
            "ke_u",
            "ke_v",
            "ke_w",
            "cfl_adv",
            "cfl_gw",
            "div_max",
            "cg_iters",
            "theta_max",
            "ps_min",
        ] {
            let v = s.last(key).unwrap_or(f64::NAN);
            assert!(v.is_finite(), "{key} = {v}");
        }
        assert!(s.last("cfl_adv").unwrap_or(2.0) < 1.0, "advective CFL sane");
        assert_eq!(s.last("sentinel_trip"), Some(0.0));
        // Temperature extrema bracket the test-ocean initial profile.
        let tmax = s.last("theta_max").unwrap_or(0.0);
        let tmin = s.last("theta_min").unwrap_or(0.0);
        assert!(tmax > tmin);
    }

    #[test]
    fn nan_injection_is_blamed_to_field_level_and_cell() {
        let mut w = SerialWorld;
        let mut m = small_model();
        let mut mon = RunMonitor::new("ocean", SentinelConfig::default());
        let stats = m.step(&mut w);
        // Poison one interior theta cell at a known location.
        m.state.theta.set(5, 3, 2, f64::NAN);
        assert!(!mon.observe(&mut w, &m, &stats), "sentinel must trip");
        let r = mon.blowup().expect("no blowup report");
        assert_eq!(r.kind, BlowupKind::NonFinite);
        assert_eq!(r.field, "theta");
        assert_eq!(r.rank, 0);
        assert_eq!(r.level, 2);
        assert_eq!((r.gi, r.gj), (5, 3));
        assert_eq!(r.step, 1);
        assert!(r.render().contains("field theta"));
        assert!(r.render().contains("reduced state at step 1"));
        assert_eq!(mon.trips(), 1);
    }

    #[test]
    fn earlier_field_in_blame_order_wins() {
        let mut w = SerialWorld;
        let mut m = small_model();
        let mut mon = RunMonitor::new("ocean", SentinelConfig::default());
        let stats = m.step(&mut w);
        m.state.s.set(1, 1, 0, f64::INFINITY);
        m.state.v.set(7, 2, 1, f64::NAN);
        mon.observe(&mut w, &m, &stats);
        let r = mon.blowup().expect("no blowup report");
        // v precedes s in FIELDS even though s's cell scans earlier.
        assert_eq!(r.field, "v");
        assert_eq!((r.level, r.gi, r.gj), (1, 7, 2));
    }

    #[test]
    fn speed_threshold_trips_with_owner() {
        let mut w = SerialWorld;
        let mut m = small_model();
        let mut mon = RunMonitor::new(
            "ocean",
            SentinelConfig {
                armed: true,
                max_speed: 0.5,
                max_cfl: 1.0,
            },
        );
        let mut stats = m.step(&mut w);
        m.state.u.set(4, 4, 0, -2.0);
        stats.max_speed = 2.0; // what the driver would report for this state
        assert!(!mon.observe(&mut w, &m, &stats));
        let r = mon.blowup().expect("no blowup report");
        assert_eq!(r.kind, BlowupKind::Speed);
        assert_eq!(r.field, "u");
        assert_eq!((r.level, r.gi, r.gj), (0, 4, 4));
        assert_eq!(r.value, -2.0);
    }

    #[test]
    fn disarmed_sentinel_still_reports_nan() {
        // Thresholds are opt-out; non-finite state is never ignored.
        let mut w = SerialWorld;
        let mut m = small_model();
        let mut mon = RunMonitor::new(
            "ocean",
            SentinelConfig {
                armed: false,
                ..SentinelConfig::default()
            },
        );
        let stats = m.step(&mut w);
        m.state.u.set(0, 0, 0, f64::NAN);
        assert!(!mon.observe(&mut w, &m, &stats));
        assert_eq!(mon.blowup().map(|r| r.field), Some("u"));
    }

    #[test]
    fn loc_packing_roundtrips() {
        let tag = pack_loc(37, 12, 1000, 2047);
        assert_eq!(unpack_loc(tag), (37, 12, 1000, 2047));
        let key = pack_blame(4, 63, 16383, 0, 11);
        assert_eq!(unpack_blame(key), (4, 63, 16383, 0, 11));
        // Keys stay exactly representable as f64.
        let as_f = key as f64;
        assert_eq!(as_f as u64, key);
    }
}

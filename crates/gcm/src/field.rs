//! Tile-local field storage with halo regions.
//!
//! A field covers a tile's interior (`nx × ny` columns) plus a halo of
//! width `h` on all four sides, duplicating data owned by neighboring
//! tiles (Figure 5). Indices are signed: the interior is `0..nx` /
//! `0..ny`, the halo extends to `-h..0` and `nx..nx+h`.
//!
//! Storage is level-major (`k` slowest), so horizontal stencil sweeps walk
//! contiguous memory.

/// A 2-D (single-level) field with halo.
#[derive(Clone, Debug, PartialEq)]
pub struct Field2 {
    nx: usize,
    ny: usize,
    h: usize,
    data: Vec<f64>,
}

/// A 3-D field with halo in the horizontal only (the vertical dimension
/// stays within a node, §3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Field3 {
    nx: usize,
    ny: usize,
    nz: usize,
    h: usize,
    data: Vec<f64>,
}

impl Field2 {
    pub fn new(nx: usize, ny: usize, h: usize) -> Field2 {
        Field2 {
            nx,
            ny,
            h,
            data: vec![0.0; (nx + 2 * h) * (ny + 2 * h)],
        }
    }

    pub fn nx(&self) -> usize {
        self.nx
    }
    pub fn ny(&self) -> usize {
        self.ny
    }
    pub fn halo(&self) -> usize {
        self.h
    }

    #[inline]
    fn idx(&self, i: i64, j: i64) -> usize {
        let h = self.h as i64;
        debug_assert!(
            i >= -h && i < self.nx as i64 + h && j >= -h && j < self.ny as i64 + h,
            "index ({i},{j}) outside field with halo {h}"
        );
        ((j + h) as usize) * (self.nx + 2 * self.h) + (i + h) as usize
    }

    #[inline]
    pub fn at(&self, i: i64, j: i64) -> f64 {
        self.data[self.idx(i, j)]
    }

    #[inline]
    pub fn set(&mut self, i: i64, j: i64, v: f64) {
        let ix = self.idx(i, j);
        self.data[ix] = v;
    }

    #[inline]
    pub fn add(&mut self, i: i64, j: i64, v: f64) {
        let ix = self.idx(i, j);
        self.data[ix] += v;
    }

    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Interior iterator (excludes halo).
    pub fn interior(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let nx = self.nx as i64;
        (0..self.ny as i64).flat_map(move |j| (0..nx).map(move |i| (i, j)))
    }

    /// Raw storage (tests, serialization).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sum over the interior.
    pub fn interior_sum(&self) -> f64 {
        self.interior().map(|(i, j)| self.at(i, j)).sum()
    }

    /// Max |v| over the interior.
    pub fn interior_max_abs(&self) -> f64 {
        self.interior()
            .map(|(i, j)| self.at(i, j).abs())
            .fold(0.0, f64::max)
    }
}

impl Field3 {
    pub fn new(nx: usize, ny: usize, nz: usize, h: usize) -> Field3 {
        Field3 {
            nx,
            ny,
            nz,
            h,
            data: vec![0.0; (nx + 2 * h) * (ny + 2 * h) * nz],
        }
    }

    pub fn nx(&self) -> usize {
        self.nx
    }
    pub fn ny(&self) -> usize {
        self.ny
    }
    pub fn nz(&self) -> usize {
        self.nz
    }
    pub fn halo(&self) -> usize {
        self.h
    }

    #[inline]
    fn idx(&self, i: i64, j: i64, k: usize) -> usize {
        let h = self.h as i64;
        debug_assert!(
            i >= -h && i < self.nx as i64 + h && j >= -h && j < self.ny as i64 + h && k < self.nz,
            "index ({i},{j},{k}) outside field ({}x{}x{} halo {h})",
            self.nx,
            self.ny,
            self.nz
        );
        (k * (self.ny + 2 * self.h) + (j + h) as usize) * (self.nx + 2 * self.h) + (i + h) as usize
    }

    #[inline]
    pub fn at(&self, i: i64, j: i64, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    #[inline]
    pub fn set(&mut self, i: i64, j: i64, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        self.data[ix] = v;
    }

    #[inline]
    pub fn add(&mut self, i: i64, j: i64, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        self.data[ix] += v;
    }

    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// A single horizontal level as an owned `Field2` (diagnostics).
    pub fn level(&self, k: usize) -> Field2 {
        let mut f = Field2::new(self.nx, self.ny, self.h);
        let h = self.h as i64;
        for j in -h..self.ny as i64 + h {
            for i in -h..self.nx as i64 + h {
                f.set(i, j, self.at(i, j, k));
            }
        }
        f
    }

    pub fn interior(&self) -> impl Iterator<Item = (i64, i64, usize)> + '_ {
        let nx = self.nx as i64;
        let ny = self.ny as i64;
        (0..self.nz).flat_map(move |k| (0..ny).flat_map(move |j| (0..nx).map(move |i| (i, j, k))))
    }

    pub fn interior_sum(&self) -> f64 {
        self.interior().map(|(i, j, k)| self.at(i, j, k)).sum()
    }

    pub fn interior_max_abs(&self) -> f64 {
        self.interior()
            .map(|(i, j, k)| self.at(i, j, k).abs())
            .fold(0.0, f64::max)
    }

    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Check every value is finite (stability tripwire).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field2_halo_addressing() {
        let mut f = Field2::new(4, 3, 2);
        f.set(-2, -2, 1.0);
        f.set(5, 4, 2.0);
        f.set(0, 0, 3.0);
        assert_eq!(f.at(-2, -2), 1.0);
        assert_eq!(f.at(5, 4), 2.0);
        assert_eq!(f.at(0, 0), 3.0);
        assert_eq!(f.raw().len(), 8 * 7);
    }

    #[test]
    #[should_panic(expected = "outside field")]
    #[cfg(debug_assertions)]
    fn field2_out_of_bounds_panics() {
        let f = Field2::new(4, 3, 1);
        let _ = f.at(5, 0);
    }

    #[test]
    fn field3_level_extraction() {
        let mut f = Field3::new(3, 2, 4, 1);
        f.set(1, 1, 2, 42.0);
        f.set(-1, 0, 2, 7.0);
        let lvl = f.level(2);
        assert_eq!(lvl.at(1, 1), 42.0);
        assert_eq!(lvl.at(-1, 0), 7.0);
        assert_eq!(f.level(1).at(1, 1), 0.0);
    }

    #[test]
    fn interior_iteration_counts() {
        let f = Field2::new(4, 3, 2);
        assert_eq!(f.interior().count(), 12);
        let f3 = Field3::new(4, 3, 5, 1);
        assert_eq!(f3.interior().count(), 60);
    }

    #[test]
    fn sums_ignore_halo() {
        let mut f = Field2::new(2, 2, 1);
        f.fill(9.0); // fills halo too
        for (i, j) in [(0i64, 0i64), (1, 0), (0, 1), (1, 1)] {
            f.set(i, j, 1.0);
        }
        assert_eq!(f.interior_sum(), 4.0);
        assert_eq!(f.interior_max_abs(), 1.0);
    }

    #[test]
    fn finite_check() {
        let mut f = Field3::new(2, 2, 1, 0);
        assert!(f.all_finite());
        f.set(0, 0, 0, f64::NAN);
        assert!(!f.all_finite());
    }
}

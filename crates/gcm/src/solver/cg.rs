//! Jacobi-preconditioned conjugate gradients for the surface pressure.
//!
//! The communication pattern per iteration is the paper's (§4): one
//! exchange applied to *two* fields over a one-element halo, and *two*
//! global sums. The operator's constant nullspace is handled by removing
//! the mean of the right-hand side over wet cells (the compatibility
//! condition) — the global integral of a flux divergence vanishes, so the
//! subtraction only sheds roundoff.

use crate::config::ModelConfig;
use crate::decomp::Decomp;
use crate::field::Field2;
use crate::flops::{self, Phase};
use crate::grid::GRAVITY;
use crate::halo;
use crate::kernel::TileGeom;
use crate::solver::elliptic::{EllipticCoeffs, APPLY_FLOPS_PER_CELL};
use crate::state::Masks;
use crate::tile::Tile;
use hyades_comms::CommWorld;
use hyades_telemetry as telemetry;

/// Flops per wet column per CG iteration besides the operator: two dot
/// products (4), three axpy-type updates (6), the Jacobi solve (1), and
/// the direction update (2).
pub const CG_FLOPS_PER_CELL: u64 = 13;

/// Outcome of one solve.
#[derive(Clone, Copy, Debug)]
pub struct CgResult {
    pub iterations: usize,
    /// `‖r₀‖` — the absolute residual norm before the first iteration
    /// (warm-started, so this measures how far the previous step's
    /// pressure drifted).
    pub initial_residual: f64,
    /// Final absolute `‖r‖`.
    pub final_residual: f64,
    /// Final `‖r‖ / ‖b‖`.
    pub rel_residual: f64,
    pub converged: bool,
}

/// Reusable solver scratch.
#[derive(Clone, Debug)]
pub struct CgSolver {
    r: Field2,
    z: Field2,
    p: Field2,
    q: Field2,
}

impl CgSolver {
    pub fn new(tile: &Tile) -> CgSolver {
        let f = || Field2::new(tile.nx, tile.ny, tile.halo);
        CgSolver {
            r: f(),
            z: f(),
            p: f(),
            q: f(),
        }
    }

    /// Solve `(−A)·x = −rhs/Δt` for the surface pressure `x` (in-place;
    /// the incoming `x` is used as the initial guess, which across time
    /// steps gives the solver a warm start).
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        world: &mut dyn CommWorld,
        cfg: &ModelConfig,
        decomp: &Decomp,
        tile: &Tile,
        geom: &TileGeom,
        coeffs: &EllipticCoeffs,
        masks: &Masks,
        rhs_vol: &Field2,
        x: &mut Field2,
    ) -> CgResult {
        let (nx, ny) = (tile.nx as i64, tile.ny as i64);
        let wet = |i: i64, j: i64| masks.depth.at(i, j) > 0.0;

        // Free surface: the operator's extra diagonal term pairs with a
        // memory term `area·ps^n/(g·Δt²)` on the right-hand side (the
        // incoming `x` *is* ps^n), and the augmented operator has no
        // nullspace, so no compatibility projection is needed.
        let fs = if cfg.free_surface {
            1.0 / (GRAVITY * cfg.dt * cfg.dt)
        } else {
            0.0
        };
        let fs_rhs: Vec<f64> = if cfg.free_surface {
            (0..ny)
                .flat_map(|j| (0..nx).map(move |i| (i, j)))
                .map(|(i, j)| fs * geom.area_at(j) * x.at(i, j))
                .collect()
        } else {
            Vec::new()
        };

        // b = −rhs/Δt (+ the free-surface memory term); rigid lid: made
        // compatible by removing its wet-cell mean.
        let mean_b = if cfg.free_surface {
            0.0
        } else {
            let mut sums = [0.0f64, 0.0];
            for j in 0..ny {
                for i in 0..nx {
                    if wet(i, j) {
                        sums[0] += -rhs_vol.at(i, j) / cfg.dt;
                        sums[1] += 1.0;
                    }
                }
            }
            world.global_sum_vec(&mut sums);
            if sums[1] > 0.0 {
                sums[0] / sums[1]
            } else {
                0.0
            }
        };

        // r = b − (−A)x  (warm start), z = M⁻¹ r, p = z.
        halo::exchange2(world, decomp, tile, &mut [x], 1);
        coeffs.apply(tile, x, &mut self.q);
        let mut rz = 0.0;
        let mut rr0 = 0.0;
        for j in 0..ny {
            for i in 0..nx {
                if !wet(i, j) {
                    self.r.set(i, j, 0.0);
                    self.z.set(i, j, 0.0);
                    self.p.set(i, j, 0.0);
                    continue;
                }
                let mut b = -rhs_vol.at(i, j) / cfg.dt - mean_b;
                if cfg.free_surface {
                    b += fs_rhs[(j * nx + i) as usize];
                }
                let r = b - self.q.at(i, j);
                self.r.set(i, j, r);
                let d = coeffs.diag.at(i, j);
                let z = if d > 0.0 { r / d } else { 0.0 };
                self.z.set(i, j, z);
                self.p.set(i, j, z);
                rz += r * z;
                rr0 += r * r;
            }
        }
        let mut init = [rz, rr0];
        world.global_sum_vec(&mut init);
        let (mut rz, rr0) = (init[0], init[1]);
        if rr0 == 0.0 {
            return CgResult {
                iterations: 0,
                initial_residual: 0.0,
                final_residual: 0.0,
                rel_residual: 0.0,
                converged: true,
            };
        }
        let target = cfg.cg_rtol * cfg.cg_rtol * rr0;

        let wet_cols = masks.wet_columns();
        let mut iterations = 0;
        let mut rr = rr0;
        while iterations < cfg.cg_max_iters {
            iterations += 1;
            // The paper's per-iteration exchange: two 2-D fields, width 1.
            halo::exchange2(world, decomp, tile, &mut [&mut self.p, &mut self.r], 1);
            coeffs.apply(tile, &self.p, &mut self.q);
            // Global sum #1: p·q.
            let mut pq = 0.0;
            for j in 0..ny {
                for i in 0..nx {
                    pq += self.p.at(i, j) * self.q.at(i, j);
                }
            }
            let pq = world.global_sum(pq);
            if pq <= 0.0 {
                break; // p in the nullspace: converged to roundoff
            }
            let alpha = rz / pq;
            let mut rz_new = 0.0;
            let mut rr_new = 0.0;
            for j in 0..ny {
                for i in 0..nx {
                    if !wet(i, j) {
                        continue;
                    }
                    x.add(i, j, alpha * self.p.at(i, j));
                    let r = self.r.at(i, j) - alpha * self.q.at(i, j);
                    self.r.set(i, j, r);
                    let d = coeffs.diag.at(i, j);
                    let z = if d > 0.0 { r / d } else { 0.0 };
                    self.z.set(i, j, z);
                    rz_new += r * z;
                    rr_new += r * r;
                }
            }
            // Global sum #2: (r·z, r·r) in one reduction.
            let mut pair = [rz_new, rr_new];
            world.global_sum_vec(&mut pair);
            let (rz_new, rr_new) = (pair[0], pair[1]);
            // Per-iteration convergence trace: ‖r‖² reduction rate in
            // permille (e.g. 250 = each iteration leaves a quarter of
            // the squared residual). Saturates at the histogram's u64.
            if rr > 0.0 {
                telemetry::observe_hist(
                    "gcm.cg",
                    "reduction_permille",
                    ((rr_new / rr) * 1000.0) as u64,
                );
            }
            rr = rr_new;
            flops::add(
                Phase::Ds,
                wet_cols * (APPLY_FLOPS_PER_CELL + CG_FLOPS_PER_CELL),
            );
            if rr <= target {
                break;
            }
            let beta = rz_new / rz;
            rz = rz_new;
            for j in 0..ny {
                for i in 0..nx {
                    let p = self.z.at(i, j) + beta * self.p.at(i, j);
                    self.p.set(i, j, p);
                }
            }
        }
        // Publish the halo of the solution for the velocity correction.
        halo::exchange2(world, decomp, tile, &mut [x], 1);
        let rel_residual = (rr / rr0).sqrt();
        telemetry::count("gcm.cg", "solves", 1);
        telemetry::count("gcm.cg", "iterations", iterations as u64);
        telemetry::observe("gcm.cg", "rel_residual", rel_residual);
        telemetry::observe_hist("gcm.cg", "iterations_per_solve", iterations as u64);
        CgResult {
            iterations,
            initial_residual: rr0.sqrt(),
            final_residual: rr.sqrt(),
            rel_residual,
            converged: rr <= target,
        }
    }
}

impl Masks {
    /// Number of wet columns on this tile (DS works on the vertically
    /// integrated 2-D state).
    pub fn wet_columns(&self) -> u64 {
        let mut n = 0;
        for (i, j) in self.kmax.interior() {
            if self.kmax.at(i, j) > 0.0 {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::kernel::TileGeom;
    use crate::topography::Topography;
    use hyades_comms::{SerialWorld, ThreadWorld};

    #[allow(clippy::too_many_arguments)]
    fn residual_of(
        tile: &Tile,
        coeffs: &EllipticCoeffs,
        masks: &Masks,
        cfg: &ModelConfig,
        rhs: &Field2,
        x: &Field2,
        world: &mut dyn CommWorld,
        decomp: &Decomp,
    ) -> f64 {
        let mut xx = x.clone();
        halo::exchange2(world, decomp, tile, &mut [&mut xx], 1);
        let mut ax = Field2::new(tile.nx, tile.ny, tile.halo);
        coeffs.apply(tile, &xx, &mut ax);
        // Compare against the de-meaned b.
        let (mut sb, mut n) = (0.0, 0.0);
        for (i, j) in rhs.interior() {
            if masks.depth.at(i, j) > 0.0 {
                sb += -rhs.at(i, j) / cfg.dt;
                n += 1.0;
            }
        }
        world.global_sum_vec(&mut [sb, n]);
        let mean = sb / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, j) in rhs.interior() {
            if masks.depth.at(i, j) > 0.0 {
                let b = -rhs.at(i, j) / cfg.dt - mean;
                num += (b - ax.at(i, j)).powi(2);
                den += b * b;
            }
        }
        (world.global_sum(num) / world.global_sum(den).max(1e-300)).sqrt()
    }

    fn rhs_pattern(tile: &Tile, masks: &Masks) -> Field2 {
        // A compatible (zero-mean over wet cells) right-hand side.
        let mut rhs = Field2::new(tile.nx, tile.ny, tile.halo);
        let mut wetcells = Vec::new();
        for (i, j) in rhs.clone().interior() {
            if masks.depth.at(i, j) > 0.0 {
                wetcells.push((i, j));
            }
        }
        for (n, &(i, j)) in wetcells.iter().enumerate() {
            let gx = (tile.gx(i) * 13 + tile.gy(j) * 7) % 19;
            rhs.set(
                i,
                j,
                (gx as f64 - 9.0) * 1e4 + if n % 2 == 0 { 5e3 } else { -5e3 },
            );
        }
        rhs
    }

    #[test]
    fn solves_aquaplanet_poisson_serial() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let coeffs = EllipticCoeffs::build(&cfg, &tile, &geom, &masks);
        let rhs = rhs_pattern(&tile, &masks);
        let mut x = Field2::new(16, 8, 3);
        let mut world = SerialWorld;
        let mut solver = CgSolver::new(&tile);
        let res = solver.solve(
            &mut world, &cfg, &d, &tile, &geom, &coeffs, &masks, &rhs, &mut x,
        );
        assert!(res.converged, "CG did not converge: {res:?}");
        let rr = residual_of(&tile, &coeffs, &masks, &cfg, &rhs, &x, &mut world, &d);
        assert!(rr < 1e-6, "true residual {rr}");
    }

    #[test]
    fn solves_with_continents() {
        let d = Decomp::blocks(32, 16, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(32, 16, 4, d);
        cfg.continents = true;
        let tile = d.tile(0);
        let topo = Topography::idealized_continents(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let coeffs = EllipticCoeffs::build(&cfg, &tile, &geom, &masks);
        let rhs = rhs_pattern(&tile, &masks);
        let mut x = Field2::new(32, 16, 3);
        let mut world = SerialWorld;
        let mut solver = CgSolver::new(&tile);
        let res = solver.solve(
            &mut world, &cfg, &d, &tile, &geom, &coeffs, &masks, &rhs, &mut x,
        );
        assert!(res.converged, "CG did not converge: {res:?}");
        // Land cells stay untouched.
        for (i, j) in x.clone().interior() {
            if masks.depth.at(i, j) == 0.0 {
                assert_eq!(x.at(i, j), 0.0);
            }
        }
    }

    #[test]
    fn parallel_solution_matches_serial() {
        let (nx, ny, nz) = (16usize, 8usize, 3usize);
        // Serial reference.
        let ds = Decomp::blocks(nx, ny, 1, 1, 3);
        let cfg_s = ModelConfig::test_ocean(nx, ny, nz, ds);
        let tile_s = ds.tile(0);
        let topo = Topography::aquaplanet(&cfg_s.grid);
        let masks_s = Masks::build(&cfg_s, &tile_s, &topo);
        let geom_s = TileGeom::build(&cfg_s, &tile_s);
        let coeffs_s = EllipticCoeffs::build(&cfg_s, &tile_s, &geom_s, &masks_s);
        let rhs_s = rhs_pattern(&tile_s, &masks_s);
        let mut x_s = Field2::new(nx, ny, 3);
        let mut world = SerialWorld;
        CgSolver::new(&tile_s).solve(
            &mut world, &cfg_s, &ds, &tile_s, &geom_s, &coeffs_s, &masks_s, &rhs_s, &mut x_s,
        );

        // 2×2 parallel run.
        let dp = Decomp::blocks(nx, ny, 2, 2, 3);
        let results = ThreadWorld::run(4, |w| {
            let cfg = ModelConfig::test_ocean(nx, ny, nz, dp);
            let tile = dp.tile(w.rank());
            let topo = Topography::aquaplanet(&cfg.grid);
            let masks = Masks::build(&cfg, &tile, &topo);
            let geom = TileGeom::build(&cfg, &tile);
            let coeffs = EllipticCoeffs::build(&cfg, &tile, &geom, &masks);
            let rhs = rhs_pattern(&tile, &masks);
            let mut x = Field2::new(tile.nx, tile.ny, 3);
            let res = CgSolver::new(&tile)
                .solve(w, &cfg, &dp, &tile, &geom, &coeffs, &masks, &rhs, &mut x);
            assert!(res.converged);
            // Return interior (global index, value) pairs.
            let mut out = Vec::new();
            for (i, j) in x.clone().interior() {
                out.push(((tile.gx(i), tile.gy(j)), x.at(i, j)));
            }
            out
        });
        // Solutions agree up to a constant (the nullspace); compare
        // differences from each solution's own mean.
        // BTreeMap: the mean below sums the values, and float addition
        // over hash-iteration order would not be reproducible
        // (hyades-lint float-reduce-unordered).
        let mut par = std::collections::BTreeMap::new();
        for chunk in results {
            for (g, v) in chunk {
                par.insert(g, v);
            }
        }
        let mean_s: f64 = x_s.interior_sum() / (nx * ny) as f64;
        let mean_p: f64 = par.values().sum::<f64>() / par.len() as f64;
        let mut max_diff = 0.0f64;
        let mut max_mag = 0.0f64;
        for (i, j) in x_s.clone().interior() {
            let a = x_s.at(i, j) - mean_s;
            let b = par[&(i, j)] - mean_p;
            max_diff = max_diff.max((a - b).abs());
            max_mag = max_mag.max(a.abs());
        }
        assert!(
            max_diff < 1e-6 * max_mag.max(1.0),
            "parallel/serial mismatch: {max_diff} vs magnitude {max_mag}"
        );
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 3, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let coeffs = EllipticCoeffs::build(&cfg, &tile, &geom, &masks);
        let rhs = Field2::new(16, 8, 3);
        let mut x = Field2::new(16, 8, 3);
        let mut world = SerialWorld;
        let res = CgSolver::new(&tile).solve(
            &mut world, &cfg, &d, &tile, &geom, &coeffs, &masks, &rhs, &mut x,
        );
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert_eq!(x.interior_max_abs(), 0.0);
    }

    #[test]
    fn iteration_counts_are_tens_not_thousands() {
        // The paper's coupled runs average Ni ≈ 60 iterations; our
        // Jacobi-PCG on a same-order grid should sit in the tens-to-low-
        // hundreds range, not explode.
        let d = Decomp::blocks(32, 16, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(32, 16, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let coeffs = EllipticCoeffs::build(&cfg, &tile, &geom, &masks);
        let rhs = rhs_pattern(&tile, &masks);
        let mut x = Field2::new(32, 16, 3);
        let mut world = SerialWorld;
        let res = CgSolver::new(&tile).solve(
            &mut world, &cfg, &d, &tile, &geom, &coeffs, &masks, &rhs, &mut x,
        );
        assert!(res.converged);
        assert!(
            (5..300).contains(&res.iterations),
            "suspicious iteration count {}",
            res.iterations
        );
    }
}

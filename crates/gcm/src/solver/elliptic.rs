//! The discrete surface-pressure operator.
//!
//! Integrating `∇h·(H ∇h ps)` over a cell and applying Gauss's theorem
//! gives a 5-point stencil with *face transmissibilities*
//! `a_face = H_face · (face length) / (centre distance)`; `H_face` is the
//! shallower of the two adjacent column depths (zero at land faces, which
//! encodes the no-normal-flow boundary condition). The assembled operator
//! is symmetric positive-semidefinite (constant nullspace over each
//! connected wet region), exactly what conjugate gradients wants.

use crate::config::ModelConfig;
use crate::field::Field2;
use crate::grid::GRAVITY;
use crate::kernel::TileGeom;
use crate::state::Masks;
use crate::tile::Tile;
use hyades_telemetry as telemetry;

/// Per-tile operator coefficients (built from globally-known topography,
/// so no exchange is needed; valid on the full halo extent).
#[derive(Clone, Debug)]
pub struct EllipticCoeffs {
    /// West-face transmissibility of cell (i,j).
    pub aw: Field2,
    /// South-face transmissibility of cell (i,j).
    pub a_s: Field2,
    /// Diagonal: sum of the four face transmissibilities.
    pub diag: Field2,
}

/// Flops per wet column for one operator application.
pub const APPLY_FLOPS_PER_CELL: u64 = 9;

impl EllipticCoeffs {
    pub fn build(cfg: &ModelConfig, tile: &Tile, geom: &TileGeom, masks: &Masks) -> EllipticCoeffs {
        let (nx, ny, h) = (tile.nx, tile.ny, tile.halo);
        let mut aw = Field2::new(nx, ny, h);
        let mut a_s = Field2::new(nx, ny, h);
        let mut diag = Field2::new(nx, ny, h);
        let hi = h as i64 - 1; // need neighbours at +1: build to h-1
        for j in -hi..(ny as i64 + hi) {
            for i in -hi..(nx as i64 + hi) {
                let d = masks.depth.at(i, j);
                let dw = masks.depth.at(i - 1, j);
                let ds = masks.depth.at(i, j - 1);
                let hw = d.min(dw);
                let hs = d.min(ds);
                aw.set(i, j, hw * geom.dy / geom.dxc_at(j));
                a_s.set(i, j, hs * geom.dxs_at(j) / geom.dy);
            }
        }
        // Linear implicit free surface (Crank–Nicolson-free variant): the
        // surface elevation η = ps/g evolves as ∂η/∂t = −∇·(H v̄), which
        // adds `area/(g·Δt²)` to the diagonal. The augmented operator is
        // strictly positive-definite — the nullspace of the rigid-lid
        // operator disappears.
        let fs = if cfg.free_surface {
            1.0 / (GRAVITY * cfg.dt * cfg.dt)
        } else {
            0.0
        };
        let di = h as i64 - 2;
        for j in -di..(ny as i64 + di) {
            for i in -di..(nx as i64 + di) {
                let wet = (masks.depth.at(i, j) > 0.0) as u8 as f64;
                diag.set(
                    i,
                    j,
                    aw.at(i, j)
                        + aw.at(i + 1, j)
                        + a_s.at(i, j)
                        + a_s.at(i, j + 1)
                        + wet * fs * geom.area_at(j),
                );
            }
        }
        EllipticCoeffs { aw, a_s, diag }
    }

    /// `out = (−A)·x` on the interior: positive-semidefinite form
    /// `Σ_faces a·(x − x_nbr)`. `x` needs a width-1 halo.
    pub fn apply(&self, tile: &Tile, x: &Field2, out: &mut Field2) {
        let (nx, ny) = (tile.nx as i64, tile.ny as i64);
        telemetry::count("gcm.elliptic", "operator_applies", 1);
        for j in 0..ny {
            for i in 0..nx {
                let xc = x.at(i, j);
                let q = self.diag.at(i, j) * xc
                    - self.aw.at(i, j) * x.at(i - 1, j)
                    - self.aw.at(i + 1, j) * x.at(i + 1, j)
                    - self.a_s.at(i, j) * x.at(i, j - 1)
                    - self.a_s.at(i, j + 1) * x.at(i, j + 1);
                out.set(i, j, q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::state::Masks;
    use crate::topography::Topography;

    fn setup(continents: bool) -> (ModelConfig, Tile, TileGeom, Masks, EllipticCoeffs) {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 4, d);
        let tile = d.tile(0);
        let topo = if continents {
            Topography::idealized_continents(&cfg.grid)
        } else {
            Topography::aquaplanet(&cfg.grid)
        };
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let coeffs = EllipticCoeffs::build(&cfg, &tile, &geom, &masks);
        (cfg, tile, geom, masks, coeffs)
    }

    #[test]
    fn constant_field_is_in_nullspace() {
        let (_cfg, tile, _geom, _masks, coeffs) = setup(false);
        let mut x = Field2::new(16, 8, 3);
        x.fill(5.0);
        let mut out = Field2::new(16, 8, 3);
        coeffs.apply(&tile, &x, &mut out);
        // Interior rows away from walls: exact zero. Wall rows: the
        // missing face has zero transmissibility (depth 0 outside), so
        // also zero.
        assert!(
            out.interior_max_abs() < 1e-6 * coeffs.diag.at(0, 4),
            "{}",
            out.interior_max_abs()
        );
    }

    #[test]
    fn operator_is_symmetric() {
        // <Ax, y> == <x, Ay> for random-ish x, y over the interior with
        // zero halos (halo terms vanish because x,y are zero there).
        let (_cfg, tile, _geom, _masks, coeffs) = setup(true);
        let mut x = Field2::new(16, 8, 3);
        let mut y = Field2::new(16, 8, 3);
        for (n, (i, j)) in x.clone().interior().enumerate() {
            x.set(i, j, ((n * 37 % 17) as f64) - 8.0);
            y.set(i, j, ((n * 53 % 13) as f64) - 6.0);
        }
        let mut ax = Field2::new(16, 8, 3);
        let mut ay = Field2::new(16, 8, 3);
        coeffs.apply(&tile, &x, &mut ax);
        coeffs.apply(&tile, &y, &mut ay);
        let dot = |a: &Field2, b: &Field2| -> f64 {
            a.interior().map(|(i, j)| a.at(i, j) * b.at(i, j)).sum()
        };
        let axy = dot(&ax, &y);
        let xay = dot(&x, &ay);
        assert!(
            (axy - xay).abs() < 1e-9 * axy.abs().max(1.0),
            "asymmetry: {axy} vs {xay}"
        );
    }

    #[test]
    fn operator_is_positive_semidefinite() {
        let (_cfg, tile, _geom, _masks, coeffs) = setup(true);
        let mut x = Field2::new(16, 8, 3);
        for (n, (i, j)) in x.clone().interior().enumerate() {
            x.set(i, j, ((n * 31 % 23) as f64) - 11.0);
        }
        let mut ax = Field2::new(16, 8, 3);
        coeffs.apply(&tile, &x, &mut ax);
        let xax: f64 = x.interior().map(|(i, j)| x.at(i, j) * ax.at(i, j)).sum();
        assert!(xax >= -1e-9, "negative quadratic form: {xax}");
        assert!(xax > 0.0, "nonconstant field must have positive energy");
    }

    #[test]
    fn land_faces_have_zero_transmissibility() {
        let (_cfg, _tile, _geom, masks, coeffs) = setup(true);
        for (i, j) in coeffs.aw.clone().interior() {
            if masks.depth.at(i, j) == 0.0 || masks.depth.at(i - 1, j) == 0.0 {
                assert_eq!(coeffs.aw.at(i, j), 0.0);
            }
        }
    }

    #[test]
    fn diag_positive_on_wet_columns() {
        let (_cfg, _tile, _geom, masks, coeffs) = setup(true);
        for (i, j) in coeffs.diag.clone().interior() {
            if masks.depth.at(i, j) > 0.0 {
                assert!(coeffs.diag.at(i, j) > 0.0, "isolated wet cell at ({i},{j})");
            }
        }
    }
}

//! The non-hydrostatic extension (§3.1).
//!
//! The model "separates the pressure into hydrostatic, surface and
//! non-hydrostatic parts"; climate-scale runs are hydrostatic, but the
//! same kernel serves "non-hydrostatic rotating fluid dynamics" (Marshall
//! et al. 1997a, 1998). In non-hydrostatic mode the vertical velocity
//! becomes prognostic (`G_w = −v·∇w + ν∇²w`; the buoyancy cancels against
//! the hydrostatic pressure by construction) and a *three-dimensional*
//! Poisson equation is solved for `p_nh` so the full 3-D flow is
//! non-divergent:
//!
//! ```text
//! ∇·(1/V · A_face ∇ p_nh) = ∇·v* / Δt,   v^{n+1} = v* − Δt ∇p_nh
//! ```
//!
//! The solver is the same Jacobi-preconditioned CG as the surface solve,
//! over 3-D fields (one width-1 exchange and two global sums per
//! iteration). In the hydrostatic limit (aspect ratio → 0) the correction
//! vanishes — the paper's stated justification for running climate
//! configurations hydrostatically — and a regression test pins that.

use crate::config::ModelConfig;
use crate::decomp::Decomp;
use crate::field::Field3;
use crate::flops::{self, Phase};
use crate::halo;
use crate::kernel::TileGeom;
use crate::state::{Masks, ModelState};
use crate::tile::Tile;
use hyades_comms::CommWorld;

/// Flops per wet cell per CG3 iteration (7-point operator + CG updates).
pub const CG3_FLOPS_PER_CELL: u64 = 27;

/// Face transmissibilities of the 3-D operator.
#[derive(Clone, Debug)]
pub struct NhCoeffs {
    /// West face of cell (i,j,k): `dy·dz/dx` (0 at land).
    aw: Field3,
    /// South face: `dx_s·dz/dy`.
    a_s: Field3,
    /// Top interface between k and k−1: `area/dz_interface`.
    at: Field3,
    diag: Field3,
}

impl NhCoeffs {
    pub fn build(cfg: &ModelConfig, tile: &Tile, geom: &TileGeom, masks: &Masks) -> NhCoeffs {
        let (nx, ny, nz, h) = (tile.nx, tile.ny, cfg.grid.nz, tile.halo);
        let mut aw = Field3::new(nx, ny, nz, h);
        let mut a_s = Field3::new(nx, ny, nz, h);
        let mut at = Field3::new(nx, ny, nz, h);
        let mut diag = Field3::new(nx, ny, nz, h);
        let hi = h as i64 - 1;
        for k in 0..nz {
            let dz = cfg.grid.dz[k];
            for j in -hi..(ny as i64 + hi) {
                for i in -hi..(nx as i64 + hi) {
                    aw.set(
                        i,
                        j,
                        k,
                        masks.hu.at(i, j, k) * geom.dy * dz / geom.dxc_at(j),
                    );
                    a_s.set(
                        i,
                        j,
                        k,
                        masks.hv.at(i, j, k) * geom.dxs_at(j) * dz / geom.dy,
                    );
                    let vert_ok =
                        k > 0 && masks.c.at(i, j, k) != 0.0 && masks.c.at(i, j, k - 1) != 0.0;
                    if vert_ok {
                        let dzi = 0.5 * (cfg.grid.dz[k - 1] + dz);
                        at.set(i, j, k, geom.area_at(j) / dzi);
                    }
                }
            }
        }
        let di = h as i64 - 2;
        for k in 0..nz {
            for j in -di..(ny as i64 + di) {
                for i in -di..(nx as i64 + di) {
                    let below = if k + 1 < nz { at.at(i, j, k + 1) } else { 0.0 };
                    diag.set(
                        i,
                        j,
                        k,
                        aw.at(i, j, k)
                            + aw.at(i + 1, j, k)
                            + a_s.at(i, j, k)
                            + a_s.at(i, j + 1, k)
                            + at.at(i, j, k)
                            + below,
                    );
                }
            }
        }
        NhCoeffs { aw, a_s, at, diag }
    }

    /// `out = (−A3)·x` on the interior (`x` needs a width-1 halo).
    pub fn apply(&self, tile: &Tile, nz: usize, x: &Field3, out: &mut Field3) {
        let (nx, ny) = (tile.nx as i64, tile.ny as i64);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let xc = x.at(i, j, k);
                    let mut q = self.diag.at(i, j, k) * xc
                        - self.aw.at(i, j, k) * x.at(i - 1, j, k)
                        - self.aw.at(i + 1, j, k) * x.at(i + 1, j, k)
                        - self.a_s.at(i, j, k) * x.at(i, j - 1, k)
                        - self.a_s.at(i, j + 1, k) * x.at(i, j + 1, k);
                    if k > 0 {
                        q -= self.at.at(i, j, k) * x.at(i, j, k - 1);
                    }
                    if k + 1 < nz {
                        q -= self.at.at(i, j, k + 1) * x.at(i, j, k + 1);
                    }
                    out.set(i, j, k, q);
                }
            }
        }
    }
}

/// 3-D divergence of the provisional flow (volume flux units, m³/s):
/// `rhs(i,j,k) = hdiv + (w_k − w_{k+1})·area`.
#[allow(clippy::too_many_arguments)]
pub fn divergence3(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    u: &Field3,
    v: &Field3,
    w: &Field3,
    out: &mut Field3,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    for k in 0..nz {
        let dz = cfg.grid.dz[k];
        for j in 0..ny {
            let area = geom.area_at(j);
            for i in 0..nx {
                if masks.c.at(i, j, k) == 0.0 {
                    out.set(i, j, k, 0.0);
                    continue;
                }
                let uin = u.at(i, j, k) * masks.hu.at(i, j, k);
                let uout = u.at(i + 1, j, k) * masks.hu.at(i + 1, j, k);
                let vin = v.at(i, j, k) * masks.hv.at(i, j, k) * geom.dxs_at(j);
                let vout = v.at(i, j + 1, k) * masks.hv.at(i, j + 1, k) * geom.dxs_at(j + 1);
                let w_top = w.at(i, j, k);
                let w_bot = if k + 1 < nz { w.at(i, j, k + 1) } else { 0.0 };
                let div = (uout - uin) * geom.dy * dz + (vout - vin) * dz + (w_top - w_bot) * area;
                out.set(i, j, k, div);
            }
        }
    }
}

/// The non-hydrostatic solver state.
pub struct NonHydroSolver {
    coeffs: NhCoeffs,
    r: Field3,
    z: Field3,
    p: Field3,
    q: Field3,
    /// The non-hydrostatic pressure (kept across steps as a warm start).
    pub pnh: Field3,
}

/// Result of one 3-D solve.
#[derive(Clone, Copy, Debug)]
pub struct Nh3Result {
    pub iterations: usize,
    pub converged: bool,
}

impl NonHydroSolver {
    pub fn new(cfg: &ModelConfig, tile: &Tile, geom: &TileGeom, masks: &Masks) -> NonHydroSolver {
        let f = || Field3::new(tile.nx, tile.ny, cfg.grid.nz, tile.halo);
        NonHydroSolver {
            coeffs: NhCoeffs::build(cfg, tile, geom, masks),
            r: f(),
            z: f(),
            p: f(),
            q: f(),
            pnh: f(),
        }
    }

    /// Solve `(−A3)·pnh = −rhs/Δt` and subtract `Δt·∇pnh` from
    /// `(u, v, w)` so the 3-D flow is discretely non-divergent.
    #[allow(clippy::too_many_arguments)]
    pub fn project(
        &mut self,
        world: &mut dyn CommWorld,
        cfg: &ModelConfig,
        decomp: &Decomp,
        tile: &Tile,
        geom: &TileGeom,
        masks: &Masks,
        state: &mut ModelState,
    ) -> Nh3Result {
        let nz = cfg.grid.nz;
        let (nx, ny) = (tile.nx as i64, tile.ny as i64);
        let mut rhs = self.q.clone();
        divergence3(
            cfg, tile, geom, masks, &state.u, &state.v, &state.w, &mut rhs,
        );

        // Compatibility: remove the wet-cell mean of b = −rhs/Δt.
        let mut sums = [0.0f64, 0.0];
        for (i, j, k) in rhs.interior() {
            if masks.c.at(i, j, k) != 0.0 {
                sums[0] += -rhs.at(i, j, k) / cfg.dt;
                sums[1] += 1.0;
            }
        }
        world.global_sum_vec(&mut sums);
        let mean_b = if sums[1] > 0.0 {
            sums[0] / sums[1]
        } else {
            0.0
        };

        // Warm-started residual.
        halo::exchange3(world, decomp, tile, &mut [&mut self.pnh], 1);
        self.coeffs.apply(tile, nz, &self.pnh, &mut self.q);
        let mut rz = 0.0;
        let mut rr0 = 0.0;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if masks.c.at(i, j, k) == 0.0 {
                        self.r.set(i, j, k, 0.0);
                        self.z.set(i, j, k, 0.0);
                        self.p.set(i, j, k, 0.0);
                        continue;
                    }
                    let b = -rhs.at(i, j, k) / cfg.dt - mean_b;
                    let r = b - self.q.at(i, j, k);
                    self.r.set(i, j, k, r);
                    let d = self.coeffs.diag.at(i, j, k);
                    let z = if d > 0.0 { r / d } else { 0.0 };
                    self.z.set(i, j, k, z);
                    self.p.set(i, j, k, z);
                    rz += r * z;
                    rr0 += r * r;
                }
            }
        }
        let mut init = [rz, rr0];
        world.global_sum_vec(&mut init);
        let (mut rz, rr0) = (init[0], init[1]);
        let mut iterations = 0;
        let mut converged = rr0 == 0.0;
        if !converged {
            let target = cfg.cg_rtol * cfg.cg_rtol * rr0;
            let wet = masks.wet_cells.max(1);
            while iterations < cfg.cg_max_iters {
                iterations += 1;
                halo::exchange3(world, decomp, tile, &mut [&mut self.p], 1);
                self.coeffs.apply(tile, nz, &self.p, &mut self.q);
                let mut pq = 0.0;
                for (i, j, k) in self.p.interior() {
                    pq += self.p.at(i, j, k) * self.q.at(i, j, k);
                }
                let pq = world.global_sum(pq);
                if pq <= 0.0 {
                    converged = true;
                    break;
                }
                let alpha = rz / pq;
                let mut rz_new = 0.0;
                let mut rr_new = 0.0;
                for k in 0..nz {
                    for j in 0..ny {
                        for i in 0..nx {
                            if masks.c.at(i, j, k) == 0.0 {
                                continue;
                            }
                            self.pnh.add(i, j, k, alpha * self.p.at(i, j, k));
                            let r = self.r.at(i, j, k) - alpha * self.q.at(i, j, k);
                            self.r.set(i, j, k, r);
                            let d = self.coeffs.diag.at(i, j, k);
                            let z = if d > 0.0 { r / d } else { 0.0 };
                            self.z.set(i, j, k, z);
                            rz_new += r * z;
                            rr_new += r * r;
                        }
                    }
                }
                let mut pair = [rz_new, rr_new];
                world.global_sum_vec(&mut pair);
                let rr = pair[1];
                flops::add(Phase::Ds, wet * CG3_FLOPS_PER_CELL);
                if rr <= target {
                    converged = true;
                    break;
                }
                let beta = pair[0] / rz;
                rz = pair[0];
                for (i, j, k) in self.z.clone().interior() {
                    let p = self.z.at(i, j, k) + beta * self.p.at(i, j, k);
                    self.p.set(i, j, k, p);
                }
            }
        }

        // Correct the velocities with ∇pnh.
        halo::exchange3(world, decomp, tile, &mut [&mut self.pnh], 1);
        let dt = cfg.dt;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if masks.u.at(i, j, k) != 0.0 {
                        let g = (self.pnh.at(i, j, k) - self.pnh.at(i - 1, j, k)) / geom.dxc_at(j);
                        state.u.add(i, j, k, -dt * g);
                    }
                    if masks.v.at(i, j, k) != 0.0 {
                        let g = (self.pnh.at(i, j, k) - self.pnh.at(i, j - 1, k)) / geom.dy;
                        state.v.add(i, j, k, -dt * g);
                    }
                    // Interface between k and k−1 (w positive toward k−1).
                    if k > 0 && masks.c.at(i, j, k) != 0.0 && masks.c.at(i, j, k - 1) != 0.0 {
                        let dzi = 0.5 * (cfg.grid.dz[k - 1] + cfg.grid.dz[k]);
                        let g = (self.pnh.at(i, j, k - 1) - self.pnh.at(i, j, k)) / dzi;
                        state.w.add(i, j, k, -dt * g);
                    }
                }
            }
        }
        Nh3Result {
            iterations,
            converged,
        }
    }
}

/// Prognostic tendency for `w` in non-hydrostatic mode: advection of `w`
/// plus Laplacian smoothing (the buoyancy term cancels against the
/// hydrostatic pressure by construction). Computed on the interior.
pub fn w_tendency(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    out: &mut Field3,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let w = &state.w;
    for k in 0..nz {
        for j in 0..ny {
            let dy = geom.dy;
            let dx = geom.dxc_at(j);
            for i in 0..nx {
                // w lives on the interface between k and k−1; it is only
                // active where both cells are wet.
                if k == 0 || masks.c.at(i, j, k) == 0.0 || masks.c.at(i, j, k - 1) == 0.0 {
                    out.set(i, j, k, 0.0);
                    continue;
                }
                let wc = w.at(i, j, k);
                // Horizontal advecting velocities averaged to the w-point.
                let ubar = 0.25
                    * (state.u.at(i, j, k)
                        + state.u.at(i + 1, j, k)
                        + state.u.at(i, j, k - 1)
                        + state.u.at(i + 1, j, k - 1));
                let vbar = 0.25
                    * (state.v.at(i, j, k)
                        + state.v.at(i, j + 1, k)
                        + state.v.at(i, j, k - 1)
                        + state.v.at(i, j + 1, k - 1));
                let dwdx = (w.at(i + 1, j, k) - w.at(i - 1, j, k)) / (2.0 * dx);
                let dwdy = (w.at(i, j + 1, k) - w.at(i, j - 1, k)) / (2.0 * dy);
                let mut g = -(ubar * dwdx + vbar * dwdy);
                // Horizontal smoothing for stability.
                let lap = (w.at(i + 1, j, k) - 2.0 * wc + w.at(i - 1, j, k)) / (dx * dx)
                    + (w.at(i, j + 1, k) - 2.0 * wc + w.at(i, j - 1, k)) / (dy * dy);
                g += cfg.visc_h * lap;
                out.set(i, j, k, g);
            }
        }
    }
    flops::add(Phase::Ps, (tile.nx * tile.ny * nz) as u64 * 24);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::topography::Topography;
    use hyades_comms::SerialWorld;

    fn setup() -> (ModelConfig, Tile, TileGeom, Masks, ModelState) {
        let d = Decomp::blocks(8, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(8, 8, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let st = ModelState::initial(&cfg, &tile, &masks);
        (cfg, tile, geom, masks, st)
    }

    #[test]
    fn operator_kills_constants_and_is_spd() {
        let (cfg, tile, geom, masks, _st) = setup();
        let coeffs = NhCoeffs::build(&cfg, &tile, &geom, &masks);
        let mut x = Field3::new(8, 8, 4, 3);
        x.fill(3.0);
        let mut out = Field3::new(8, 8, 4, 3);
        coeffs.apply(&tile, 4, &x, &mut out);
        // Scale the roundoff tolerance by the operator magnitude: the
        // vertical transmissibilities are ~1e8, so exact cancellation
        // leaves ~1e-14 relative noise.
        let scale = coeffs.diag.interior_max_abs() * 3.0;
        assert!(
            out.interior_max_abs() < 1e-12 * scale,
            "{} vs scale {scale}",
            out.interior_max_abs()
        );
        // SPD on a non-constant field.
        for (n, (i, j, k)) in x.clone().interior().enumerate() {
            x.set(i, j, k, ((n * 29 % 13) as f64) - 6.0);
        }
        coeffs.apply(&tile, 4, &x, &mut out);
        let xax: f64 = x
            .interior()
            .map(|(i, j, k)| x.at(i, j, k) * out.at(i, j, k))
            .sum();
        assert!(xax > 0.0);
    }

    #[test]
    fn projection_removes_3d_divergence() {
        let (cfg, tile, geom, masks, mut st) = setup();
        // A messy divergent flow.
        for (i, j, k) in st.u.clone().interior() {
            st.u.set(i, j, k, 0.05 * ((i * 3 + j + k as i64) as f64).sin());
            st.v.set(
                i,
                j,
                k,
                0.04 * ((i - 2 * j) as f64).cos() * masks.v.at(i, j, k),
            );
            if k > 0 {
                st.w.set(i, j, k, 0.01 * ((i + j) as f64 * 0.3).sin());
            }
        }
        let d = Decomp::blocks(8, 8, 1, 1, 3);
        let mut world = SerialWorld;
        halo::exchange3(
            &mut world,
            &d,
            &tile,
            &mut [&mut st.u, &mut st.v, &mut st.w],
            1,
        );
        let mut div = Field3::new(8, 8, 4, 3);
        divergence3(&cfg, &tile, &geom, &masks, &st.u, &st.v, &st.w, &mut div);
        let before = div.interior_max_abs();
        assert!(before > 0.0);

        let mut solver = NonHydroSolver::new(&cfg, &tile, &geom, &masks);
        let res = solver.project(&mut world, &cfg, &d, &tile, &geom, &masks, &mut st);
        assert!(res.converged, "{res:?}");

        halo::exchange3(
            &mut world,
            &d,
            &tile,
            &mut [&mut st.u, &mut st.v, &mut st.w],
            1,
        );
        divergence3(&cfg, &tile, &geom, &masks, &st.u, &st.v, &st.w, &mut div);
        let after = div.interior_max_abs();
        assert!(
            after < 1e-5 * before,
            "divergence only reduced {before} -> {after}"
        );
    }

    #[test]
    fn nondivergent_flow_needs_no_correction() {
        let (cfg, tile, geom, masks, mut st) = setup();
        st.u.fill(0.2); // uniform zonal flow on the periodic channel
        let d = Decomp::blocks(8, 8, 1, 1, 3);
        let mut world = SerialWorld;
        let u_before = st.u.clone();
        let mut solver = NonHydroSolver::new(&cfg, &tile, &geom, &masks);
        let res = solver.project(&mut world, &cfg, &d, &tile, &geom, &masks, &mut st);
        assert!(res.converged);
        assert!(res.iterations <= 2, "iterations {}", res.iterations);
        let mut maxd = 0.0f64;
        for (i, j, k) in st.u.clone().interior() {
            maxd = maxd.max((st.u.at(i, j, k) - u_before.at(i, j, k)).abs());
        }
        assert!(maxd < 1e-12, "uniform flow perturbed by {maxd}");
    }
}

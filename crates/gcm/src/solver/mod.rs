//! The DS-phase solver (Figure 6): the two-dimensional elliptic equation
//! for the surface pressure, `∇h·(H ∇h ps) = rhs`, discretized with
//! symmetric face transmissibilities ([`elliptic`]) and solved with a
//! Jacobi-preconditioned conjugate-gradient method ([`cg`]) whose
//! communication pattern matches the paper exactly: one two-field
//! width-1 halo exchange and two global sums per iteration.

pub mod cg;
pub mod elliptic;
pub mod nonhydro;

pub use cg::{CgResult, CgSolver};
pub use elliptic::EllipticCoeffs;
pub use nonhydro::NonHydroSolver;

//! # hyades-gcm — the MIT general circulation model, in Rust
//!
//! A reimplementation of the numerical model of §3–4 of *"A Personal
//! Supercomputer for Climate Research"* (SC'99): the MIT GCM (Marshall et
//! al. 1997a,b), a finite-volume incompressible Navier–Stokes solver on an
//! Arakawa C-grid that exploits the isomorphism between the equations of
//! motion of the ocean and the (hydrostatic primitive-equation) atmosphere,
//! so both fluids run through the same kernel.
//!
//! The time step follows Figure 6 exactly:
//!
//! * **PS (prognostic step)** — evaluate the tendencies
//!   `G_v = g_v(v, b)` (advection, Coriolis, metric, dissipation, forcing)
//!   from a local 3×3 stencil, extrapolate with Adams–Bashforth-2,
//!   integrate the hydrostatic pressure from the buoyancy, and step the
//!   state forward. One halo exchange (width 3, five model fields) per
//!   step; *overcomputation* in the halo removes all other communication.
//! * **DS (diagnostic step)** — solve the 2-D elliptic equation
//!   `∇h·(H ∇h ps) = rhs` for the surface pressure that renders the
//!   depth-integrated flow non-divergent, with a Jacobi-preconditioned
//!   conjugate-gradient solver: one two-field width-1 exchange and two
//!   global sums per iteration.
//!
//! The domain is horizontally decomposed into tiles with halo regions
//! (Figure 5); tiles run against the [`hyades_comms::CommWorld`] interface
//! (serial or thread-parallel), and every kernel reports its
//! floating-point work to [`flops`] so the per-cell operation counts of
//! Figure 11 (`Nps`, `Nds`) can be measured rather than assumed.
//!
//! Simplifications relative to the full MITgcm, chosen to preserve the
//! paper-relevant structure (stencils, communication pattern, flop
//! balance): full cells instead of shaved cells (topography enters through
//! a wet-level count per column), walls poleward of ±78.75° instead of
//! polar filtering, first-order upwind vertical advection, and an
//! intermediate-complexity physics package (Newtonian cooling, Rayleigh
//! friction, convective adjustment, bulk surface fluxes) after the
//! 5-level model the paper cites.

pub mod checkpoint;
pub mod config;
pub mod coupler;
pub mod decomp;
pub mod diagnostics;
pub mod driver;
pub mod eos;
pub mod field;
pub mod flops;
pub mod grid;
pub mod halo;
pub mod kernel;
pub mod monitor;
pub mod physics;
pub mod resilient;
pub mod solver;
pub mod state;
pub mod tile;
pub mod topography;

pub use config::ModelConfig;
pub use driver::{Model, StepStats};
pub use field::{Field2, Field3};
pub use grid::Grid;
pub use monitor::{BlowupKind, BlowupReport, RunMonitor, SentinelConfig};
pub use resilient::{RecoveryStats, ResilientOutcome, ResilientRunner};

//! Model configuration presets.

use crate::decomp::Decomp;
use crate::eos::{atmos_5level_pressures, Eos, FluidKind, P00};
use crate::grid::{stretched_levels, Grid};

/// Horizontal tracer advection scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvectionScheme {
    /// Second-order centred fluxes (the classic MITgcm default): exactly
    /// conservative, dispersive near sharp gradients (needs diffusion).
    Centered2,
    /// First-order upwind: monotone, strongly diffusive.
    Upwind1,
    /// Second-order TVD with the Superbee limiter: monotone *and* sharp —
    /// the scheme of choice for tracers with fronts.
    Superbee,
}

/// How the ocean surface boundary is forced when running uncoupled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SurfaceForcing {
    /// No forcing (spin-down / conservation tests).
    None,
    /// Analytic zonal wind stress + restoring of θ/s to latitudinal
    /// profiles (ocean), or the built-in radiative package (atmosphere).
    Climatology,
    /// Boundary conditions supplied by the coupler.
    Coupled,
}

/// Complete configuration of one model instance (one isomorph).
#[derive(Clone, Debug)]
pub struct ModelConfig {
    pub grid: Grid,
    pub eos: Eos,
    pub decomp: Decomp,
    /// Time step (s).
    pub dt: f64,
    /// Horizontal Laplacian viscosity (m²/s).
    pub visc_h: f64,
    /// Vertical viscosity (m²/s or Pa²/s in the atmosphere's coordinate).
    pub visc_v: f64,
    /// Horizontal tracer diffusivity (m²/s).
    pub diff_h: f64,
    /// Vertical tracer diffusivity.
    pub diff_v: f64,
    /// Adams–Bashforth stabilizing offset (MITgcm's `abEps`).
    pub ab_eps: f64,
    /// CG solver: relative residual target.
    pub cg_rtol: f64,
    /// CG solver: iteration cap.
    pub cg_max_iters: usize,
    pub forcing: SurfaceForcing,
    /// Whether to use the idealized-continent topography (ocean only).
    pub continents: bool,
    /// Non-hydrostatic mode (§3.1): prognostic `w` plus a 3-D pressure
    /// solve. Climate-scale configurations run hydrostatic (the default);
    /// the flag exists for the fine-scale process studies the model's
    /// versatility claim covers.
    pub nonhydrostatic: bool,
    /// Horizontal tracer advection scheme.
    pub advection: AdvectionScheme,
    /// Linear implicit free surface: the DS operator gains a
    /// `area/(g·Δt²)` diagonal term and `ps/g` becomes a real surface
    /// elevation η. `false` = the paper's rigid-lid-style solve (pure
    /// Neumann operator with a nullspace).
    pub free_surface: bool,
    /// Treat vertical tracer diffusion implicitly (backward Euler,
    /// unconditionally stable — required for large `diff_v`).
    pub implicit_vertical: bool,
    /// Uniform offset applied to the radiative-equilibrium temperature
    /// (K). The knob for the paleo-climate experiments the paper's
    /// configuration "is especially well suited to": 0 is the contemporary
    /// climate; negative values emulate reduced solar forcing / ice-age
    /// boundary conditions.
    pub theta_eq_offset: f64,
    /// Random-seed for the initial perturbation.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's atmosphere at 2.8125°: 128×64, five 200-hPa layers,
    /// Nt = 77760 steps per year ⇒ dt ≈ 405.5 s.
    pub fn atmosphere_2p8125(decomp: Decomp) -> ModelConfig {
        let nz = 5;
        let dp = vec![P00 / nz as f64; nz];
        let grid = Grid::coupled_2p8125(nz, dp);
        assert_eq!(decomp.nx, grid.nx);
        assert_eq!(decomp.ny, grid.ny);
        ModelConfig {
            grid,
            eos: Eos::atmosphere(&atmos_5level_pressures()),
            decomp,
            dt: 365.25 * 86400.0 / 77760.0,
            visc_h: 1.2e5,
            visc_v: 10.0,
            diff_h: 1.2e5,
            diff_v: 10.0,
            ab_eps: 0.01,
            cg_rtol: 1e-7,
            cg_max_iters: 200,
            forcing: SurfaceForcing::Climatology,
            continents: false,
            nonhydrostatic: false,
            advection: AdvectionScheme::Centered2,
            free_surface: false,
            implicit_vertical: false,
            theta_eq_offset: 0.0,
            seed: 1999,
        }
    }

    /// The paper's coupled-run ocean at 2.8125° with 15 stretched levels
    /// over 4000 m.
    pub fn ocean_2p8125(decomp: Decomp) -> ModelConfig {
        let nz = 15;
        let grid = Grid::coupled_2p8125(nz, stretched_levels(nz, 4000.0));
        assert_eq!(decomp.nx, grid.nx);
        assert_eq!(decomp.ny, grid.ny);
        ModelConfig {
            grid,
            eos: Eos::ocean(nz),
            decomp,
            dt: 3600.0,
            visc_h: 2.0e5,
            visc_v: 1.0e-3,
            diff_h: 1.0e3,
            diff_v: 1.0e-4,
            ab_eps: 0.01,
            cg_rtol: 1e-7,
            cg_max_iters: 200,
            forcing: SurfaceForcing::Climatology,
            continents: true,
            nonhydrostatic: false,
            advection: AdvectionScheme::Centered2,
            free_surface: false,
            implicit_vertical: false,
            theta_eq_offset: 0.0,
            seed: 2425,
        }
    }

    /// The 1° ocean of §6's century run: 360×160 columns (walls poleward
    /// of ±80°), 15 stretched levels over 4500 m.
    pub fn ocean_1deg(decomp: Decomp) -> ModelConfig {
        let nz = 15;
        let grid = Grid::global(360, 160, nz, 80.0, stretched_levels(nz, 4500.0));
        assert_eq!(decomp.nx, grid.nx);
        assert_eq!(decomp.ny, grid.ny);
        ModelConfig {
            grid,
            eos: Eos::ocean(nz),
            decomp,
            dt: 3600.0,
            visc_h: 2.0e4,
            visc_v: 1.0e-3,
            diff_h: 5.0e2,
            diff_v: 1.0e-4,
            ab_eps: 0.01,
            // Jacobi-PCG iteration counts scale with the grid diameter;
            // at 360x160 a 1e-7 target needs >1000 iterations from a cold
            // start. 1e-5 keeps the divergence residual dynamically
            // negligible at ~150 iterations once warm-started (the E10
            // throughput analysis' Ni).
            cg_rtol: 1e-5,
            cg_max_iters: 1500,
            forcing: SurfaceForcing::Climatology,
            continents: true,
            nonhydrostatic: false,
            advection: AdvectionScheme::Centered2,
            free_surface: false,
            implicit_vertical: true,
            theta_eq_offset: 0.0,
            seed: 360,
        }
    }

    /// A small, fast configuration for tests: `nx × ny` grid, `nz` levels,
    /// aquaplanet ocean, no forcing.
    pub fn test_ocean(nx: usize, ny: usize, nz: usize, decomp: Decomp) -> ModelConfig {
        let grid = Grid::global(nx, ny, nz, 60.0, stretched_levels(nz, 4000.0));
        ModelConfig {
            grid,
            eos: Eos::ocean(nz),
            decomp,
            dt: 3600.0,
            visc_h: 1.0e5,
            visc_v: 1.0e-3,
            diff_h: 1.0e3,
            diff_v: 1.0e-5,
            ab_eps: 0.01,
            cg_rtol: 1e-8,
            cg_max_iters: 500,
            forcing: SurfaceForcing::None,
            continents: false,
            nonhydrostatic: false,
            advection: AdvectionScheme::Centered2,
            free_surface: false,
            implicit_vertical: false,
            theta_eq_offset: 0.0,
            seed: 7,
        }
    }

    /// Number of tracer fields carried (θ plus the second tracer).
    pub fn n_tracers(&self) -> usize {
        2
    }

    /// Sanity-check time-step stability limits (advisory; returns the most
    /// restrictive CFL-style ratio, which should be < 1).
    pub fn stability_ratio(&self, max_speed: f64) -> f64 {
        let dx = self.grid.min_dx();
        let adv = max_speed * self.dt / dx;
        let visc = 4.0 * self.visc_h * self.dt / (dx * dx);
        let cor = 2.0 * self.grid.omega * self.dt;
        adv.max(visc).max(cor)
    }

    pub fn is_atmosphere(&self) -> bool {
        self.eos.kind == FluidKind::Atmosphere
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_atmosphere_step_count() {
        let d = Decomp::blocks(128, 64, 4, 2, 3);
        let cfg = ModelConfig::atmosphere_2p8125(d);
        // One year in Nt = 77760 steps.
        let steps_per_year = 365.25 * 86400.0 / cfg.dt;
        assert!((steps_per_year - 77760.0).abs() < 1.0);
        assert!(cfg.is_atmosphere());
        assert_eq!(cfg.grid.nz, 5);
    }

    #[test]
    fn ocean_preset_shape() {
        let d = Decomp::blocks(128, 64, 4, 2, 3);
        let cfg = ModelConfig::ocean_2p8125(d);
        assert_eq!(cfg.grid.nz, 15);
        assert!((cfg.grid.full_depth() - 4000.0).abs() < 1e-9);
        assert!(!cfg.is_atmosphere());
    }

    #[test]
    fn stability_margins() {
        let d = Decomp::blocks(128, 64, 4, 2, 3);
        let atm = ModelConfig::atmosphere_2p8125(d);
        // 60 m/s jet at the wall latitude must still satisfy CFL.
        assert!(
            atm.stability_ratio(60.0) < 1.0,
            "{}",
            atm.stability_ratio(60.0)
        );
        let oce = ModelConfig::ocean_2p8125(d);
        assert!(
            oce.stability_ratio(1.5) < 1.0,
            "{}",
            oce.stability_ratio(1.5)
        );
    }
}

#[cfg(test)]
mod one_degree_tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::driver::Model;
    use hyades_comms::SerialWorld;

    #[test]
    fn one_degree_preset_shape() {
        let d = Decomp::blocks(360, 160, 4, 2, 3);
        let cfg = ModelConfig::ocean_1deg(d);
        assert_eq!(cfg.grid.nx * cfg.grid.ny, 57_600);
        // Per-endpoint cells at 8 endpoints: 360*160*15/8 = 108 000 — the
        // E10 throughput analysis' nxyz.
        assert_eq!(cfg.grid.nx * cfg.grid.ny * cfg.grid.nz / 8, 108_000);
        assert!((cfg.grid.dlon.to_degrees() - 1.0).abs() < 1e-12);
        assert!(
            cfg.stability_ratio(1.5) < 1.0,
            "{}",
            cfg.stability_ratio(1.5)
        );
    }

    #[test]
    fn one_degree_model_steps() {
        // One functional step of the full 1° ocean (the century run's
        // workhorse): solver converges, state stays finite.
        let d = Decomp::blocks(360, 160, 1, 1, 3);
        let cfg = ModelConfig::ocean_1deg(d);
        let mut m = Model::new(cfg, 0);
        let mut w = SerialWorld;
        let s = m.step(&mut w);
        assert!(s.cg_converged, "{s:?}");
        assert!(m.state.is_finite());
        assert!(s.cg_iterations > 10, "1° grid should need a real solve");
    }
}

//! Topography: sculpting the model grid to land masses (§3.2).
//!
//! The MITgcm uses shaved/partial cells (Adcroft et al. 1997); we keep the
//! same data flow with full cells: each column carries a wet-level count
//! `kmax(i,j)` (0 = land), from which per-face transmissibilities and the
//! depth field `H` of the surface-pressure equation are derived.

use crate::grid::Grid;

/// Fixed-point denominator for the bottom-cell thickness fraction:
/// `hfrac` stores `round(fraction * HFRAC_ONE)`, so 1.0 and 0.5 are
/// exact and the worst quantization error is 2^-16 of a cell — while
/// keeping the mask at half the footprint of an f64 (the reason the
/// field was f32 before; u16 halves it again and keeps the GCM free of
/// reduced-precision floats).
const HFRAC_ONE: u16 = 1 << 15;

/// Global topography: wet levels per column, with an optional fractional
/// thickness for the bottom cell ("partial/shaved cells", Adcroft, Hill &
/// Marshall 1997 — the paper's §3.2: "the finite volume scheme allows
/// both the face area and the volume of a cell that is open to flow to
/// vary in space, so that the volumes can be made to fit irregular
/// geometries").
#[derive(Clone, Debug)]
pub struct Topography {
    nx: usize,
    ny: usize,
    kmax: Vec<u16>,
    /// Thickness fraction of the deepest wet cell, in fixed-point units
    /// of [`HFRAC_ONE`] (`HFRAC_ONE` = full cell).
    hfrac: Vec<u16>,
}

impl Topography {
    /// All-ocean planet (the atmosphere isomorph always uses this: its
    /// "depth" is the full mass of the air column).
    pub fn aquaplanet(grid: &Grid) -> Topography {
        Topography {
            nx: grid.nx,
            ny: grid.ny,
            kmax: vec![grid.nz as u16; grid.nx * grid.ny],
            hfrac: vec![HFRAC_ONE; grid.nx * grid.ny],
        }
    }

    /// Idealized continents: two meridional land bars (an "Americas" bar
    /// and an "Afro-Eurasia" bar) splitting the ocean into two basins
    /// connected by a circumpolar channel in the south, plus a shelf
    /// (reduced depth) along the land margins. A caricature of Figure 4's
    /// irregular geometry that exercises masked cells, varying `H`, and
    /// basin boundaries.
    pub fn idealized_continents(grid: &Grid) -> Topography {
        let nx = grid.nx;
        let ny = grid.ny;
        let mut kmax = vec![grid.nz as u16; nx * ny];
        let bar = |frac: f64| -> usize { (frac * nx as f64) as usize };
        let bar1 = bar(0.25); // "Americas"
        let bar2 = bar(0.70); // "Afro-Eurasia"
        let bar2_w = bar(0.12).max(2);
        for j in 0..ny {
            let lat = grid.lat_c(j as i64).to_degrees();
            for i in 0..nx {
                let in_bar1 = i >= bar1 && i < bar1 + 2 && lat > -55.0;
                let in_bar2 = i >= bar2 && i < bar2 + bar2_w && lat > -35.0 && lat < 65.0;
                let idx = j * nx + i;
                if in_bar1 || in_bar2 {
                    kmax[idx] = 0;
                } else {
                    // Continental shelf: half depth next to land.
                    let near_bar = (i + 1 >= bar1 && i < bar1 + 3 && lat > -55.0)
                        || (i + 1 >= bar2 && i < bar2 + bar2_w + 1 && lat > -35.0 && lat < 65.0);
                    if near_bar && kmax[idx] > 0 {
                        kmax[idx] = (grid.nz as u16 / 2).max(1);
                    }
                }
            }
        }
        let hfrac = vec![HFRAC_ONE; nx * ny];
        Topography {
            nx,
            ny,
            kmax,
            hfrac,
        }
    }

    /// Build from a continuous depth field using partial bottom cells:
    /// each column's deepest wet cell is shaved to match `depth_of(i, j)`
    /// exactly (down to `hfac_min` of a level; shallower columns become
    /// land). This is the §3.2 mechanism that lets the grid "fit irregular
    /// geometries" without staircase error.
    pub fn from_depths(
        grid: &Grid,
        hfac_min: f64,
        depth_of: impl Fn(usize, usize) -> f64,
    ) -> Topography {
        let (nx, ny) = (grid.nx, grid.ny);
        let mut kmax = vec![0u16; nx * ny];
        let mut hfrac = vec![HFRAC_ONE; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let target = depth_of(i, j).max(0.0);
                let idx = j * nx + i;
                let mut remaining = target;
                let mut k = 0usize;
                while k < grid.nz && remaining >= grid.dz[k] {
                    remaining -= grid.dz[k];
                    k += 1;
                }
                if k < grid.nz && remaining >= hfac_min * grid.dz[k] {
                    // Shave the bottom cell to the leftover depth.
                    kmax[idx] = (k + 1) as u16;
                    hfrac[idx] = ((remaining / grid.dz[k]) * HFRAC_ONE as f64).round() as u16;
                } else {
                    kmax[idx] = k as u16;
                    hfrac[idx] = HFRAC_ONE;
                }
            }
        }
        Topography {
            nx,
            ny,
            kmax,
            hfrac,
        }
    }

    /// An idealized smooth basin: a mid-ocean ridge plus sloping shelves —
    /// continuous bathymetry that exercises the partial cells.
    pub fn smooth_ridge(grid: &Grid) -> Topography {
        let full = grid.full_depth();
        let (nx, ny) = (grid.nx, grid.ny);
        Topography::from_depths(grid, 0.2, |i, j| {
            let x = i as f64 / nx as f64;
            let y = j as f64 / ny as f64;
            // Ridge at x = 0.5, shallowing toward the y walls.
            let ridge = 1.0 - 0.55 * (-((x - 0.5) / 0.08).powi(2)).exp();
            let shelf = (4.0 * y.min(1.0 - y)).min(1.0);
            full * ridge * (0.15 + 0.85 * shelf)
        })
    }

    /// Wet levels at global column `(i, j)`; x wraps periodically, y
    /// outside the domain is land (the polar walls).
    pub fn kmax(&self, i: i64, j: i64) -> u16 {
        if j < 0 || j >= self.ny as i64 {
            return 0;
        }
        let i = i.rem_euclid(self.nx as i64) as usize;
        self.kmax[j as usize * self.nx + i]
    }

    /// Is cell `(i, j, k)` wet?
    pub fn wet(&self, i: i64, j: i64, k: usize) -> bool {
        (k as u16) < self.kmax(i, j)
    }

    /// Thickness fraction of cell `(i, j, k)`: 1 for interior wet cells,
    /// the shaved fraction for the bottom cell, 0 for land.
    pub fn hfac(&self, i: i64, j: i64, k: usize) -> f64 {
        let km = self.kmax(i, j);
        if (k as u16) >= km {
            0.0
        } else if (k as u16) + 1 == km {
            let ii = i.rem_euclid(self.nx as i64) as usize;
            if j < 0 || j >= self.ny as i64 {
                return 0.0;
            }
            self.hfrac[j as usize * self.nx + ii] as f64 / HFRAC_ONE as f64
        } else {
            1.0
        }
    }

    /// Fluid depth of column `(i, j)` (m), including the shaved bottom
    /// cell.
    pub fn depth(&self, grid: &Grid, i: i64, j: i64) -> f64 {
        let km = self.kmax(i, j) as usize;
        if km == 0 {
            return 0.0;
        }
        let full: f64 = grid.dz[..km - 1].iter().sum();
        full + grid.dz[km - 1] * self.hfac(i, j, km - 1)
    }

    /// Fraction of columns that are wet.
    pub fn wet_fraction(&self) -> f64 {
        let wet = self.kmax.iter().filter(|&&k| k > 0).count();
        wet as f64 / self.kmax.len() as f64
    }

    /// Total number of wet cells.
    pub fn wet_cells(&self) -> u64 {
        self.kmax.iter().map(|&k| k as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::uniform_levels;

    fn grid() -> Grid {
        Grid::coupled_2p8125(5, uniform_levels(5, 1e4))
    }

    #[test]
    fn aquaplanet_all_wet() {
        let g = grid();
        let t = Topography::aquaplanet(&g);
        assert_eq!(t.wet_fraction(), 1.0);
        assert_eq!(t.wet_cells(), (128 * 64 * 5) as u64);
        assert!(t.wet(0, 0, 4));
        assert!(!t.wet(0, 0, 5));
    }

    #[test]
    fn polar_walls_are_land() {
        let g = grid();
        let t = Topography::aquaplanet(&g);
        assert_eq!(t.kmax(5, -1), 0);
        assert_eq!(t.kmax(5, 64), 0);
        assert!(t.kmax(5, 0) > 0);
    }

    #[test]
    fn x_wraps_periodically() {
        let g = grid();
        let t = Topography::idealized_continents(&g);
        assert_eq!(t.kmax(-1, 10), t.kmax(127, 10));
        assert_eq!(t.kmax(128, 10), t.kmax(0, 10));
    }

    #[test]
    fn continents_block_flow_but_leave_channel() {
        let g = grid();
        let t = Topography::idealized_continents(&g);
        // Land exists.
        assert!(t.wet_fraction() < 1.0);
        assert!(t.wet_fraction() > 0.6, "mostly ocean");
        // Southern-ocean row is circumpolar (all wet): pick a row near
        // -60° latitude.
        let j_south = (0..64)
            .find(|&j| g.lat_c(j as i64).to_degrees() > -60.0)
            .unwrap() as i64;
        for i in 0..128 {
            assert!(t.kmax(i, j_south) > 0, "channel blocked at i={i}");
        }
        // Mid-latitude row is blocked somewhere.
        let j_mid = (0..64)
            .find(|&j| g.lat_c(j as i64).to_degrees() > 30.0)
            .unwrap() as i64;
        assert!((0..128).any(|i| t.kmax(i, j_mid) == 0), "no land at 30N");
    }

    #[test]
    fn shelf_has_reduced_depth() {
        let g = grid();
        let t = Topography::idealized_continents(&g);
        let full = g.full_depth();
        let depths: Vec<f64> = (0..128).map(|i| t.depth(&g, i, 32)).collect();
        assert!(depths.contains(&0.0), "land depth 0");
        assert!(depths.contains(&full), "open-ocean full depth");
        assert!(
            depths.iter().any(|&d| d > 0.0 && d < full * 0.75),
            "shelf depths present"
        );
    }
}

#[cfg(test)]
mod partial_cell_tests {
    use super::*;
    use crate::grid::{uniform_levels, Grid};

    fn grid() -> Grid {
        Grid::global(32, 16, 8, 60.0, uniform_levels(8, 4000.0))
    }

    #[test]
    fn partial_cells_match_target_depths_exactly() {
        let g = grid();
        let depth_of = |i: usize, j: usize| 800.0 + 37.0 * i as f64 + 11.0 * j as f64;
        let t = Topography::from_depths(&g, 0.2, depth_of);
        for j in 0..16 {
            for i in 0..32 {
                let want = depth_of(i, j).min(g.full_depth());
                let got = t.depth(&g, i as i64, j as i64);
                // Exact unless clipped by hfac_min (at most 0.2 of a level).
                assert!(
                    (got - want).abs() <= 0.2 * 500.0 + 1e-9,
                    "({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn partial_cells_beat_staircase_representation() {
        // The Adcroft-et-al point the paper cites: a sloping bottom is
        // represented far more accurately by shaved cells than by
        // full-cell rounding.
        let g = grid();
        let depth_of = |i: usize, _j: usize| 1000.0 + 2500.0 * (i as f64 / 31.0);
        let shaved = Topography::from_depths(&g, 0.2, depth_of);
        let mut err_shaved = 0.0f64;
        let mut err_stairs = 0.0f64;
        for i in 0..32usize {
            let want = depth_of(i, 0);
            err_shaved += (shaved.depth(&g, i as i64, 0) - want).abs();
            // Staircase: full levels only.
            let km = (want / 500.0).floor() as usize;
            let stairs: f64 = g.dz[..km.min(8)].iter().sum();
            err_stairs += (stairs - want).abs();
        }
        assert!(
            err_shaved < 0.15 * err_stairs,
            "shaved {err_shaved} vs staircase {err_stairs}"
        );
    }

    #[test]
    fn hfac_structure() {
        let g = grid();
        let t = Topography::from_depths(&g, 0.2, |_, _| 1250.0);
        // 1250 m = 2 full 500-m levels + half of the third.
        assert_eq!(t.kmax(3, 3), 3);
        assert_eq!(t.hfac(3, 3, 0), 1.0);
        assert_eq!(t.hfac(3, 3, 1), 1.0);
        assert!((t.hfac(3, 3, 2) - 0.5).abs() < 1e-9);
        assert_eq!(t.hfac(3, 3, 3), 0.0);
        assert!((t.depth(&g, 3, 3) - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn too_shallow_remainder_rounds_down() {
        let g = grid();
        // 1020 m: the 20-m remainder is below 0.2·500 = 100 m → 2 levels.
        let t = Topography::from_depths(&g, 0.2, |_, _| 1020.0);
        assert_eq!(t.kmax(0, 0), 2);
        assert!((t.depth(&g, 0, 0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_ridge_has_partial_cells_and_a_ridge() {
        let g = grid();
        let t = Topography::smooth_ridge(&g);
        // Partial cells exist somewhere.
        let mut partial = 0;
        for j in 0..16i64 {
            for i in 0..32i64 {
                let km = t.kmax(i, j);
                if km > 0 {
                    let f = t.hfac(i, j, km as usize - 1);
                    if f < 0.999 {
                        partial += 1;
                    }
                }
            }
        }
        assert!(partial > 50, "only {partial} shaved columns");
        // The ridge crest is shallower than the flanks.
        let crest = t.depth(&g, 16, 8);
        let flank = t.depth(&g, 4, 8);
        assert!(crest < 0.7 * flank, "crest {crest} vs flank {flank}");
    }
}

//! Checkpoint/rollback resilience for coupled runs.
//!
//! The Hyades fault model (crate `hyades-fault`) schedules rank crashes
//! at specific coupled-model steps. This module gives the coupler a
//! recovery discipline for them: a [`ResilientRunner`] checkpoints the
//! full coupled state every K steps (K a multiple of the coupling
//! interval, so checkpoints always land on a coupling boundary), and
//! when the fault plan declares a rank dead at step N it rolls the
//! *whole* run back to the last checkpoint and replays forward.
//!
//! Rolling every rank back — rather than restarting only the dead one —
//! is what keeps the collective schedule uniform: the [`FaultPlan`] is
//! replicated, so every rank sees the same crash at the same step and
//! takes the same rollback branch, and no rank is ever left stranded in
//! a reduction (`lint::uniform` would flag anything less). Because the
//! model is deterministic, replaying from a coupling-boundary checkpoint
//! reproduces the lost steps bit-for-bit; the run's final state is
//! indistinguishable from one that never crashed (asserted by
//! `crash_recovery_is_bit_identical` below, and by
//! `tests/recovery.rs` at the workspace level).
//!
//! Run-health monitors are rewound along with the state
//! ([`RunMonitor::truncate`]), so the replayed steps re-record their
//! diagnostics rows and the exported series stays byte-identical too.
//! Recovery work is visible, not free: restarts and replayed steps are
//! counted in [`RecoveryStats`], charged to telemetry under
//! `gcm.recovery`, and dropped as flight-recorder crumbs attributed to
//! the crashed rank.

use crate::coupler::CoupledModel;
use crate::monitor::RunMonitor;
use hyades_comms::CommWorld;
use hyades_fault::FaultPlan;
use hyades_telemetry::{self as telemetry, flight};
use std::collections::BTreeSet;

/// What recovery cost: checkpoints taken, rollbacks performed, and
/// steps re-run that an uninterrupted run would have run once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    pub checkpoints: u64,
    pub restarts: u64,
    pub replayed_steps: u64,
}

/// What one [`CoupledModel::step_resilient`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResilientOutcome {
    /// A model step ran; `healthy` is the monitors' verdict.
    Stepped { healthy: bool },
    /// A planned rank crash fired instead: the run rolled back to
    /// `to_step` and will replay from there on subsequent calls.
    RolledBack { to_step: u64, crashed_rank: usize },
}

/// Drives a [`CoupledModel`] through a [`FaultPlan`], checkpointing
/// every `checkpoint_every` steps and rolling back on planned crashes.
#[derive(Debug)]
pub struct ResilientRunner {
    plan: FaultPlan,
    checkpoint_every: u64,
    /// In-memory image of the last checkpoint (a real deployment would
    /// put this on the neighbour's disk; the recovery semantics are the
    /// same).
    checkpoint: Vec<u8>,
    checkpoint_step: u64,
    /// Crash steps already fired: a replay passing the same step again
    /// must not re-crash, or the run would livelock.
    consumed: BTreeSet<u64>,
    stats: RecoveryStats,
}

impl ResilientRunner {
    /// Checkpoint `model`'s current state (normally step 0) and arm the
    /// plan. `checkpoint_every` must be a positive multiple of the
    /// coupling interval so every checkpoint lands on a coupling
    /// boundary, where [`CoupledModel::save_checkpoint`] is exact.
    pub fn new(model: &CoupledModel, plan: FaultPlan, checkpoint_every: u64) -> ResilientRunner {
        assert!(
            checkpoint_every >= 1 && checkpoint_every.is_multiple_of(model.couple_every),
            "checkpoint_every ({checkpoint_every}) must be a positive multiple of couple_every ({})",
            model.couple_every
        );
        let mut checkpoint = Vec::new();
        model
            .save_checkpoint(&mut checkpoint)
            .expect("in-memory checkpoint never fails");
        ResilientRunner {
            plan,
            checkpoint_every,
            checkpoint,
            checkpoint_step: model.steps_taken(),
            consumed: BTreeSet::new(),
            stats: RecoveryStats::default(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Step of the last checkpoint taken (the rollback target).
    pub fn checkpoint_step(&self) -> u64 {
        self.checkpoint_step
    }

    /// Run `model` up to `total_steps` coupled steps, recovering from
    /// every planned crash along the way. Returns `true` if the run
    /// finished healthy, `false` on a sentinel trip (rollback does not
    /// resurrect a physically blown-up run).
    // lint:uniform-trusted(the fault plan is replicated on every rank, so the per-step crash check branches identically everywhere)
    pub fn run(
        &mut self,
        model: &mut CoupledModel,
        world: &mut dyn CommWorld,
        atmos_monitor: &mut RunMonitor,
        ocean_monitor: &mut RunMonitor,
        total_steps: u64,
    ) -> bool {
        while model.steps_taken() < total_steps {
            if let ResilientOutcome::Stepped { healthy: false } =
                model.step_resilient(self, world, atmos_monitor, ocean_monitor)
            {
                return false;
            }
        }
        true
    }
}

impl CoupledModel {
    /// One resilient step: if the runner's fault plan schedules a crash
    /// at the step about to run (and it has not fired yet), roll back to
    /// the last checkpoint instead of stepping — restoring model state,
    /// rewinding both monitors, and charging the recovery to telemetry.
    /// Otherwise take a monitored step and checkpoint on cadence.
    ///
    /// Collective: every rank calls this with the same (replicated)
    /// runner state, so the rollback branch is rank-uniform by
    /// construction.
    // lint:uniform-trusted(every rank holds the same replicated FaultPlan and consumed set, so all ranks take the same rollback-vs-step branch)
    pub fn step_resilient(
        &mut self,
        runner: &mut ResilientRunner,
        world: &mut dyn CommWorld,
        atmos_monitor: &mut RunMonitor,
        ocean_monitor: &mut RunMonitor,
    ) -> ResilientOutcome {
        let next = self.steps_taken() + 1;
        if let Some(crash) = runner.plan.crash_at_step(next) {
            if runner.consumed.insert(next) {
                let to_step = runner.checkpoint_step;
                let replayed = (next - 1) - to_step;
                runner.stats.restarts += 1;
                runner.stats.replayed_steps += replayed;
                self.load_checkpoint(&mut runner.checkpoint.as_slice())
                    .expect("in-memory checkpoint restore never fails");
                atmos_monitor.truncate(to_step);
                ocean_monitor.truncate(to_step);
                telemetry::count("gcm.recovery", "restarts", 1);
                telemetry::count("gcm.recovery", "replayed_steps", replayed);
                flight::crumb(next, crash.rank, "recovery.crash", crash.rank as u64);
                flight::crumb(next, crash.rank, "recovery.rollback", to_step);
                return ResilientOutcome::RolledBack {
                    to_step,
                    crashed_rank: crash.rank,
                };
            }
        }
        let (_, _, healthy) = self.step_monitored_full(world, atmos_monitor, ocean_monitor);
        if healthy && self.steps_taken().is_multiple_of(runner.checkpoint_every) {
            runner.checkpoint.clear();
            self.save_checkpoint(&mut runner.checkpoint)
                .expect("in-memory checkpoint never fails");
            runner.checkpoint_step = self.steps_taken();
            runner.stats.checkpoints += 1;
            telemetry::count("gcm.recovery", "checkpoints", 1);
            flight::crumb(
                self.steps_taken(),
                world.rank(),
                "recovery.checkpoint",
                runner.checkpoint.len() as u64,
            );
        }
        ResilientOutcome::Stepped { healthy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::decomp::Decomp;
    use crate::driver::Model;
    use crate::grid::{stretched_levels, Grid};
    use crate::monitor::SentinelConfig;
    use hyades_comms::SerialWorld;

    fn pair() -> CoupledModel {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut acfg = ModelConfig::atmosphere_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
        acfg.grid = Grid::global(16, 8, 5, 60.0, vec![2.0e4; 5]);
        acfg.decomp = d;
        acfg.dt = 600.0;
        let mut ocfg = ModelConfig::test_ocean(16, 8, 6, d);
        ocfg.grid = Grid::global(16, 8, 6, 60.0, stretched_levels(6, 3000.0));
        ocfg.forcing = crate::config::SurfaceForcing::Coupled;
        CoupledModel::new(Model::new(acfg, 0), Model::new(ocfg, 0), 2)
    }

    fn monitors() -> (RunMonitor, RunMonitor) {
        (
            RunMonitor::new("atmos", SentinelConfig::default()),
            RunMonitor::new("ocean", SentinelConfig::default()),
        )
    }

    #[test]
    fn crash_recovery_is_bit_identical() {
        // Uninterrupted reference: 8 monitored coupled steps.
        let mut w = SerialWorld;
        let mut clean = pair();
        let (mut cma, mut cmo) = monitors();
        for _ in 0..8 {
            let (_, _, ok) = clean.step_monitored_full(&mut w, &mut cma, &mut cmo);
            assert!(ok);
        }

        // Resilient run with rank 0 crashing at step 6 (checkpoint
        // cadence 2, so the rollback target is step 4 and step 5 is
        // replayed).
        let plan = FaultPlan::new(0x5EED).rank_crash(0, 6);
        let mut c = pair();
        let mut r = ResilientRunner::new(&c, plan, 2);
        let (mut ma, mut mo) = monitors();
        assert!(r.run(&mut c, &mut w, &mut ma, &mut mo, 8));

        // Recovery happened and was charged.
        let s = r.stats();
        assert_eq!(s.restarts, 1);
        assert_eq!(s.replayed_steps, 1);
        // Checkpoints at steps 2, 4, then (replayed) 6, 8.
        assert_eq!(s.checkpoints, 4);
        assert_eq!(c.steps_taken(), 8);

        // The recovered run is bit-identical to the uninterrupted one:
        // every prognostic field and the full diagnostics series.
        assert_eq!(clean.atmos.state.theta.raw(), c.atmos.state.theta.raw());
        assert_eq!(clean.atmos.state.u.raw(), c.atmos.state.u.raw());
        assert_eq!(clean.ocean.state.theta.raw(), c.ocean.state.theta.raw());
        assert_eq!(clean.ocean.state.u.raw(), c.ocean.state.u.raw());
        assert_eq!(clean.ocean.state.ps.raw(), c.ocean.state.ps.raw());
        assert_eq!(cma.series(), ma.series());
        assert_eq!(cmo.series(), mo.series());
        assert_eq!(cma.series().render_json(), ma.series().render_json());
    }

    #[test]
    fn multiple_crashes_each_fire_once() {
        let mut w = SerialWorld;
        let plan = FaultPlan::new(1).rank_crash(2, 3).rank_crash(1, 7);
        let mut c = pair();
        let mut r = ResilientRunner::new(&c, plan, 2);
        let (mut ma, mut mo) = monitors();
        assert!(r.run(&mut c, &mut w, &mut ma, &mut mo, 8));
        let s = r.stats();
        assert_eq!(s.restarts, 2);
        // Both crashes land right after a checkpoint (3 after 2, 7
        // after 6), so neither rollback replays any step.
        assert_eq!(s.replayed_steps, 0);
        assert_eq!(c.steps_taken(), 8);

        let mut clean = pair();
        let (mut cma, mut cmo) = monitors();
        for _ in 0..8 {
            clean.step_monitored_full(&mut w, &mut cma, &mut cmo);
        }
        assert_eq!(clean.ocean.state.theta.raw(), c.ocean.state.theta.raw());
    }

    #[test]
    fn empty_plan_is_a_plain_monitored_run() {
        let mut w = SerialWorld;
        let mut c = pair();
        let mut r = ResilientRunner::new(&c, FaultPlan::default(), 4);
        let (mut ma, mut mo) = monitors();
        assert!(r.run(&mut c, &mut w, &mut ma, &mut mo, 8));
        let s = r.stats();
        assert_eq!(s.restarts, 0);
        assert_eq!(s.replayed_steps, 0);
        assert_eq!(s.checkpoints, 2);
        assert_eq!(ma.steps(), 8);
    }

    #[test]
    #[should_panic(expected = "multiple of couple_every")]
    fn checkpoint_cadence_must_hit_coupling_boundaries() {
        let c = pair();
        let _ = ResilientRunner::new(&c, FaultPlan::default(), 3);
    }
}

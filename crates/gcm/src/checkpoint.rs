//! Checkpoint / restart.
//!
//! Climate experiments span "many millions of time-steps" (Figure 6) and
//! the paper's production runs take weeks; a real model must stop and
//! resume bit-exactly. The checkpoint carries the full prognostic state
//! *including the Adams–Bashforth history* (without it the restart step
//! would be forward-Euler and the trajectory would diverge), in a small
//! self-describing little-endian binary format with a checksum.

use crate::driver::Model;
use crate::field::{Field2, Field3};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"HYADES01";

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// FNV-1a over a 64-bit word (checksum of the raw bit patterns).
fn fnv(hash: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn write_f64s(w: &mut impl Write, xs: &[f64], hash: &mut u64) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        fnv(hash, x.to_bits());
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f64s(r: &mut impl Read, expect_len: usize, hash: &mut u64) -> io::Result<Vec<f64>> {
    let n = read_u64(r)? as usize;
    if n != expect_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("field length {n} does not match configuration ({expect_len})"),
        ));
    }
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        let x = f64::from_le_bytes(b);
        fnv(hash, x.to_bits());
        out.push(x);
    }
    Ok(out)
}

/// Write a checkpoint of `model`'s prognostic state.
pub fn save(model: &Model, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u64(w, model.steps_taken)?;
    write_u64(w, model.total_cg_iterations)?;
    write_u64(w, model.total_ps_flops)?;
    write_u64(w, model.total_ds_flops)?;
    write_u64(w, model.state.first_step as u64)?;
    let st = &model.state;
    let f3: [&Field3; 10] = [
        &st.u,
        &st.v,
        &st.w,
        &st.theta,
        &st.s,
        &st.gu_prev,
        &st.gv_prev,
        &st.gt_prev,
        &st.gs_prev,
        &st.gw_prev,
    ];
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for f in f3 {
        write_f64s(w, f.raw(), &mut hash)?;
    }
    write_f64s(w, st.ps.raw(), &mut hash)?;
    // Trailer: FNV-1a over every value's bit pattern.
    write_u64(w, hash)?;
    Ok(())
}

/// Restore a checkpoint into `model` (which must have been built with the
/// same configuration and rank).
pub fn load(model: &mut Model, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a Hyades checkpoint",
        ));
    }
    model.steps_taken = read_u64(r)?;
    model.total_cg_iterations = read_u64(r)?;
    model.total_ps_flops = read_u64(r)?;
    model.total_ds_flops = read_u64(r)?;
    let first_step = read_u64(r)? != 0;
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    {
        let st = &mut model.state;
        st.first_step = first_step;
        let fields: [&mut Field3; 10] = [
            &mut st.u,
            &mut st.v,
            &mut st.w,
            &mut st.theta,
            &mut st.s,
            &mut st.gu_prev,
            &mut st.gv_prev,
            &mut st.gt_prev,
            &mut st.gs_prev,
            &mut st.gw_prev,
        ];
        for f in fields {
            let len = f.raw().len();
            let data = read_f64s(r, len, &mut hash)?;
            f.raw_mut().copy_from_slice(&data);
        }
        let len = st.ps.raw().len();
        let data = read_f64s(r, len, &mut hash)?;
        st.ps.raw_mut().copy_from_slice(&data);
    }
    let expect = read_u64(r)?;
    if expect != hash {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint checksum mismatch",
        ));
    }
    Ok(())
}

/// Convenience: checkpoint to / restore from files.
pub fn save_file(model: &Model, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save(model, &mut f)?;
    f.flush()
}

pub fn load_file(model: &mut Model, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load(model, &mut f)
}

/// A `Field2` helper mirroring `Field3::raw` for checkpoint symmetry is
/// already public; this marker keeps the doc link stable.
#[allow(dead_code)]
fn _doc_anchor(_: &Field2) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, SurfaceForcing};
    use crate::decomp::Decomp;
    use hyades_comms::SerialWorld;

    fn model() -> Model {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 3, d);
        cfg.forcing = SurfaceForcing::Climatology;
        Model::new(cfg, 0)
    }

    #[test]
    fn roundtrip_preserves_state_bitwise() {
        let mut m = model();
        let mut w = SerialWorld;
        m.run(&mut w, 4);
        let mut buf = Vec::new();
        save(&m, &mut buf).unwrap();
        let mut m2 = model();
        load(&mut m2, &mut buf.as_slice()).unwrap();
        assert_eq!(m.steps_taken, m2.steps_taken);
        assert_eq!(m.state.theta.raw(), m2.state.theta.raw());
        assert_eq!(m.state.gu_prev.raw(), m2.state.gu_prev.raw());
        assert_eq!(m.state.ps.raw(), m2.state.ps.raw());
        assert_eq!(m.state.first_step, m2.state.first_step);
    }

    #[test]
    fn restart_continues_bit_exactly() {
        // 3 + 3 steps through a checkpoint must equal 6 straight steps:
        // the AB2 history in the checkpoint is what makes this exact.
        let mut straight = model();
        let mut w = SerialWorld;
        straight.run(&mut w, 6);

        let mut first = model();
        first.run(&mut w, 3);
        let mut buf = Vec::new();
        save(&first, &mut buf).unwrap();
        let mut resumed = model();
        load(&mut resumed, &mut buf.as_slice()).unwrap();
        resumed.run(&mut w, 3);

        assert_eq!(straight.state.theta.raw(), resumed.state.theta.raw());
        assert_eq!(straight.state.u.raw(), resumed.state.u.raw());
        assert_eq!(straight.state.v.raw(), resumed.state.v.raw());
        assert_eq!(straight.state.ps.raw(), resumed.state.ps.raw());
    }

    #[test]
    fn corrupted_checkpoint_is_rejected() {
        let mut m = model();
        let mut w = SerialWorld;
        m.run(&mut w, 2);
        let mut buf = Vec::new();
        save(&m, &mut buf).unwrap();
        // Flip a payload byte (past the header).
        let idx = buf.len() / 2;
        buf[idx] ^= 0x40;
        let mut m2 = model();
        let err = load(&mut m2, &mut buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("checksum") || err.kind() == std::io::ErrorKind::InvalidData,
            "{err}"
        );
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut m2 = model();
        let err = load(&mut m2, &mut b"NOTACKPT........".as_slice()).unwrap_err();
        assert!(err.to_string().contains("not a Hyades checkpoint"));
    }

    #[test]
    fn wrong_grid_rejected() {
        let mut m = model();
        let mut w = SerialWorld;
        m.run(&mut w, 1);
        let mut buf = Vec::new();
        save(&m, &mut buf).unwrap();
        // A model with a different grid cannot load it.
        let d = Decomp::blocks(32, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(32, 8, 3, d);
        let mut other = Model::new(cfg, 0);
        let err = load(&mut other, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hyades_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ckpt");
        let mut m = model();
        let mut w = SerialWorld;
        m.run(&mut w, 2);
        save_file(&m, &path).unwrap();
        let mut m2 = model();
        load_file(&mut m2, &path).unwrap();
        assert_eq!(m.state.theta.raw(), m2.state.theta.raw());
        std::fs::remove_file(&path).ok();
    }
}

//! The atmosphere–ocean coupler (§5.1).
//!
//! In coupled simulations the two isomorphs run concurrently, periodically
//! exchanging boundary conditions: the ocean hands the atmosphere its
//! surface temperature; the atmosphere hands back wind stress and a net
//! surface heat flux. On Hyades each isomorph occupied half the cluster;
//! in this functional implementation the two models share an address
//! space and the coupler copies fields directly (the timing aspects of
//! the split-cluster layout are handled by the performance model).
//!
//! Both models must share the same horizontal grid and decomposition (the
//! paper's coupled run uses 2.8125° for both).

use crate::config::SurfaceForcing;
use crate::driver::{Model, StepStats};
use crate::eos::FluidKind;
use crate::physics::atmos::{CP_AIR, L_VAP};
use hyades_comms::CommWorld;

/// Bulk transfer coefficients for the air–sea fluxes.
pub const CD_MOMENTUM: f64 = 1.3e-3;
pub const CH_HEAT: f64 = 15.0; // W/m²/K effective exchange coefficient
pub const RHO_AIR: f64 = 1.2;

/// A coupled pair on one rank.
pub struct CoupledModel {
    pub atmos: Model,
    pub ocean: Model,
    /// Coupling interval in steps.
    pub couple_every: u64,
    steps: u64,
}

impl CoupledModel {
    pub fn new(mut atmos: Model, mut ocean: Model, couple_every: u64) -> CoupledModel {
        assert_eq!(atmos.cfg.eos.kind, FluidKind::Atmosphere);
        assert_eq!(ocean.cfg.eos.kind, FluidKind::Ocean);
        assert_eq!(atmos.tile.nx, ocean.tile.nx, "grids must match");
        assert_eq!(atmos.tile.ny, ocean.tile.ny, "grids must match");
        assert!(couple_every >= 1);
        atmos.cfg.forcing = SurfaceForcing::Climatology; // radiative package stays on
        ocean.cfg.forcing = SurfaceForcing::Coupled;
        let mut c = CoupledModel {
            atmos,
            ocean,
            couple_every,
            steps: 0,
        };
        c.exchange_boundary_conditions();
        c
    }

    /// Copy SST to the atmosphere and wind stress / heat flux to the
    /// ocean.
    pub fn exchange_boundary_conditions(&mut self) {
        let nx = self.atmos.tile.nx as i64;
        let ny = self.atmos.tile.ny as i64;
        for j in 0..ny {
            for i in 0..nx {
                let ocean_wet = self.ocean.masks.c.at(i, j, 0) > 0.0;
                // Ocean → atmosphere: SST in Kelvin (ocean θ is °C).
                let sst_k = if ocean_wet {
                    self.ocean.state.theta.at(i, j, 0) + 273.15
                } else {
                    0.0 // land: no evaporation
                };
                self.atmos.bc.sst.set(i, j, sst_k);

                // Atmosphere → ocean: bulk wind stress from the lowest
                // layer winds.
                let ua = self.atmos.state.u.at(i, j, 0);
                let va = self.atmos.state.v.at(i, j, 0);
                let speed = (ua * ua + va * va).sqrt();
                self.ocean
                    .bc
                    .taux
                    .set(i, j, RHO_AIR * CD_MOMENTUM * speed * ua);
                self.ocean
                    .bc
                    .tauy
                    .set(i, j, RHO_AIR * CD_MOMENTUM * speed * va);

                // Net surface heat flux into the ocean: relaxation toward
                // the overlying air temperature plus evaporative cooling.
                if ocean_wet {
                    let t_air = self
                        .atmos
                        .cfg
                        .eos
                        .temperature(self.atmos.state.theta.at(i, j, 0), 0);
                    let q_turb = CH_HEAT * (t_air - sst_k);
                    // Evaporative cooling proportional to the atmosphere's
                    // moisture uptake capacity.
                    let qs = crate::physics::atmos::q_sat(sst_k, 0.9 * crate::eos::P00);
                    let deficit = (qs - self.atmos.state.s.at(i, j, 0)).max(0.0);
                    let evap_mass = RHO_AIR * deficit * self.atmos.cfg.grid.dz[0]
                        / (9.81 * crate::physics::atmos::TAU_EVAP);
                    let q_evap = -L_VAP * evap_mass;
                    let _ = CP_AIR;
                    self.ocean.bc.qflux.set(i, j, q_turb + q_evap);
                } else {
                    self.ocean.bc.qflux.set(i, j, 0.0);
                }
            }
        }
    }

    /// Step both isomorphs once, exchanging boundary conditions every
    /// `couple_every` steps. Both models advance by their own `dt`; the
    /// paper's coupled run steps them synchronously.
    pub fn step(
        &mut self,
        atmos_world: &mut dyn CommWorld,
        ocean_world: &mut dyn CommWorld,
    ) -> (StepStats, StepStats) {
        let sa = self.atmos.step(atmos_world);
        let so = self.ocean.step(ocean_world);
        self.steps += 1;
        if self.steps.is_multiple_of(self.couple_every) {
            self.exchange_boundary_conditions();
        }
        (sa, so)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::decomp::Decomp;
    use crate::grid::{stretched_levels, Grid};
    use hyades_comms::SerialWorld;

    fn small_pair() -> CoupledModel {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        // Miniature atmosphere: reuse the standard preset's physics on a
        // small grid.
        let mut acfg = ModelConfig::atmosphere_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
        acfg.grid = Grid::global(16, 8, 5, 60.0, vec![2.0e4; 5]);
        acfg.decomp = d;
        acfg.dt = 600.0;
        let mut ocfg = ModelConfig::test_ocean(16, 8, 6, d);
        ocfg.grid = Grid::global(16, 8, 6, 60.0, stretched_levels(6, 3000.0));
        ocfg.forcing = crate::config::SurfaceForcing::Coupled;
        let atmos = Model::new(acfg, 0);
        let ocean = Model::new(ocfg, 0);
        CoupledModel::new(atmos, ocean, 2)
    }

    #[test]
    fn boundary_conditions_flow_both_ways() {
        let c = small_pair();
        // SST handed to the atmosphere is the ocean's surface θ in K.
        let sst = c.atmos.bc.sst.at(4, 4);
        let expect = c.ocean.state.theta.at(4, 4, 0) + 273.15;
        assert!((sst - expect).abs() < 1e-12);
        // At rest the initial wind stress is zero.
        assert_eq!(c.ocean.bc.taux.at(4, 4), 0.0);
    }

    #[test]
    fn monitored_coupled_steps_stay_healthy() {
        use crate::monitor::{RunMonitor, SentinelConfig};
        let mut c = small_pair();
        let mut w = SerialWorld;
        let mut ma = RunMonitor::new("atmos", SentinelConfig::default());
        let mut mo = RunMonitor::new("ocean", SentinelConfig::default());
        for _ in 0..4 {
            assert!(c.step_monitored(&mut w, &mut ma, &mut mo));
        }
        assert_eq!(ma.steps(), 4);
        assert_eq!(mo.series().len(), 4);
        assert_eq!(ma.trips() + mo.trips(), 0);
    }

    #[test]
    fn coupled_steps_stay_finite() {
        let mut c = small_pair();
        let mut wa = SerialWorld;
        let mut wo = SerialWorld;
        for _ in 0..6 {
            let (sa, so) = c.step(&mut wa, &mut wo);
            assert!(sa.cg_converged && so.cg_converged);
        }
        assert!(c.atmos.state.is_finite());
        assert!(c.ocean.state.is_finite());
    }

    #[test]
    fn atmosphere_drives_ocean_stress_after_spinup() {
        let mut c = small_pair();
        let mut wa = SerialWorld;
        let mut wo = SerialWorld;
        for _ in 0..20 {
            c.step(&mut wa, &mut wo);
        }
        // The radiative forcing spins up winds, which must appear as
        // stress on the ocean.
        let mut max_tau = 0.0f64;
        for (i, j) in c.ocean.bc.taux.clone().interior() {
            max_tau = max_tau.max(c.ocean.bc.taux.at(i, j).abs());
        }
        assert!(max_tau > 0.0, "no momentum flux reached the ocean");
    }

    #[test]
    fn heat_flux_cools_warm_water_under_cold_air() {
        let mut c = small_pair();
        // Make the ocean much warmer than the air.
        for (i, j) in c.ocean.state.ps.clone().interior() {
            c.ocean.state.theta.set(i, j, 0, 30.0);
        }
        c.exchange_boundary_conditions();
        // Mid-latitude air is colder than 30 °C water: flux must cool.
        assert!(c.ocean.bc.qflux.at(8, 4) < 0.0);
    }
}

impl CoupledModel {
    /// Coupled steps taken so far (the resilient stepper keys its fault
    /// plan and checkpoint cadence off this).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Step both isomorphs through a *shared* communicator (each rank
    /// owns the matching tiles of both models): the functional layout for
    /// thread-parallel coupled runs. Collectives interleave identically on
    /// every rank, so the lockstep schedule is deadlock-free.
    pub fn step_shared(&mut self, world: &mut dyn CommWorld) -> (StepStats, StepStats) {
        let sa = self.atmos.step(world);
        let so = self.ocean.step(world);
        self.steps += 1;
        if self.steps.is_multiple_of(self.couple_every) {
            self.exchange_boundary_conditions();
        }
        (sa, so)
    }

    /// [`step_shared`] with run-health monitoring: after stepping, each
    /// isomorph's [`RunMonitor`] observes its model through the same
    /// shared communicator (again in a fixed atmos-then-ocean order, so
    /// the collective schedule stays identical on every rank). Returns
    /// `true` while both isomorphs are healthy; on `false` the caller
    /// stops stepping and reads the blame from the tripped monitor.
    ///
    /// [`step_shared`]: CoupledModel::step_shared
    /// [`RunMonitor`]: crate::monitor::RunMonitor
    pub fn step_monitored(
        &mut self,
        world: &mut dyn CommWorld,
        atmos_monitor: &mut crate::monitor::RunMonitor,
        ocean_monitor: &mut crate::monitor::RunMonitor,
    ) -> bool {
        self.step_monitored_full(world, atmos_monitor, ocean_monitor)
            .2
    }

    /// [`step_monitored`] returning both isomorphs' step statistics
    /// alongside the health flag — the critical-path tour needs the
    /// per-step CG iteration counts to drive the phase model.
    ///
    /// [`step_monitored`]: CoupledModel::step_monitored
    pub fn step_monitored_full(
        &mut self,
        world: &mut dyn CommWorld,
        atmos_monitor: &mut crate::monitor::RunMonitor,
        ocean_monitor: &mut crate::monitor::RunMonitor,
    ) -> (StepStats, StepStats, bool) {
        let (sa, so) = self.step_shared(world);
        let ha = atmos_monitor.observe(world, &self.atmos, &sa);
        let ho = ocean_monitor.observe(world, &self.ocean, &so);
        (sa, so, ha && ho)
    }

    /// Checkpoint both isomorphs into one stream.
    ///
    /// Must be called at a coupling boundary (`steps` a multiple of
    /// `couple_every`): the boundary fields are not stored but re-derived
    /// on load, which is only bit-exact when the last derivation used the
    /// current state.
    pub fn save_checkpoint(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        assert!(
            self.steps.is_multiple_of(self.couple_every),
            "checkpoint coupled runs at coupling boundaries (step {} with couple_every {})",
            self.steps,
            self.couple_every
        );
        crate::checkpoint::save(&self.atmos, w)?;
        crate::checkpoint::save(&self.ocean, w)?;
        w.write_all(&self.steps.to_le_bytes())
    }

    /// Restore both isomorphs (the pair must match the saved
    /// configuration) and re-derive the boundary fields.
    pub fn load_checkpoint(&mut self, r: &mut impl std::io::Read) -> std::io::Result<()> {
        crate::checkpoint::load(&mut self.atmos, r)?;
        crate::checkpoint::load(&mut self.ocean, r)?;
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        self.steps = u64::from_le_bytes(b);
        // Boundary fields are diagnostic: rebuild from the restored state
        // so the next steps see exactly the fluxes the saved run would.
        self.exchange_boundary_conditions();
        Ok(())
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::decomp::Decomp;
    use crate::grid::{stretched_levels, Grid};
    use hyades_comms::SerialWorld;

    fn pair() -> CoupledModel {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut acfg = ModelConfig::atmosphere_2p8125(Decomp::blocks(128, 64, 1, 1, 3));
        acfg.grid = Grid::global(16, 8, 5, 60.0, vec![2.0e4; 5]);
        acfg.decomp = d;
        acfg.dt = 600.0;
        let mut ocfg = ModelConfig::test_ocean(16, 8, 6, d);
        ocfg.grid = Grid::global(16, 8, 6, 60.0, stretched_levels(6, 3000.0));
        ocfg.forcing = crate::config::SurfaceForcing::Coupled;
        CoupledModel::new(Model::new(acfg, 0), Model::new(ocfg, 0), 2)
    }

    #[test]
    fn coupled_restart_is_bit_exact() {
        let mut wa = SerialWorld;
        let mut wo = SerialWorld;
        let mut straight = pair();
        for _ in 0..8 {
            straight.step(&mut wa, &mut wo);
        }

        let mut first = pair();
        for _ in 0..4 {
            first.step(&mut wa, &mut wo);
        }
        let mut buf = Vec::new();
        first.save_checkpoint(&mut buf).unwrap();
        let mut resumed = pair();
        resumed.load_checkpoint(&mut buf.as_slice()).unwrap();
        for _ in 0..4 {
            resumed.step(&mut wa, &mut wo);
        }

        assert_eq!(
            straight.atmos.state.theta.raw(),
            resumed.atmos.state.theta.raw(),
            "atmosphere diverged after coupled restart"
        );
        assert_eq!(
            straight.ocean.state.u.raw(),
            resumed.ocean.state.u.raw(),
            "ocean diverged after coupled restart"
        );
        assert_eq!(straight.steps, resumed.steps);
    }
}

//! Halo exchange: the `exchange` primitive applied to tile fields (§4).
//!
//! Brings halo regions into a consistent state through the
//! [`CommWorld`] interface. The exchange is two-phase — longitude first,
//! then latitude including the freshly-filled x-halo corners — so corner
//! cells end up correct. Longitude is periodic; latitude ends in walls
//! (missing neighbors): wall halos are zeroed and the kernels' wet masks
//! keep them inert.
//!
//! Message layout: `[placement_code, v0, v1, …]` with values in
//! `(field, level, row, column)` order. The placement code tells the
//! receiver which halo the data fills, which disambiguates self-wrap
//! messages on single-tile-wide decompositions.

use crate::decomp::Decomp;
use crate::field::{Field2, Field3};
use crate::tile::Tile;
use hyades_comms::CommWorld;

/// Placement codes carried in the first message element.
const PLACE_EAST: f64 = 0.0;
const PLACE_WEST: f64 = 1.0;
const PLACE_NORTH: f64 = 2.0;
const PLACE_SOUTH: f64 = 3.0;

/// Minimal view over `Field2`/`Field3` so one packing routine serves both.
pub trait HaloField {
    fn levels(&self) -> usize;
    fn get(&self, i: i64, j: i64, k: usize) -> f64;
    fn put(&mut self, i: i64, j: i64, k: usize, v: f64);
    fn halo_width(&self) -> usize;
}

impl HaloField for Field2 {
    fn levels(&self) -> usize {
        1
    }
    fn get(&self, i: i64, j: i64, _k: usize) -> f64 {
        self.at(i, j)
    }
    fn put(&mut self, i: i64, j: i64, _k: usize, v: f64) {
        self.set(i, j, v);
    }
    fn halo_width(&self) -> usize {
        self.halo()
    }
}

impl HaloField for Field3 {
    fn levels(&self) -> usize {
        self.nz()
    }
    fn get(&self, i: i64, j: i64, k: usize) -> f64 {
        self.at(i, j, k)
    }
    fn put(&mut self, i: i64, j: i64, k: usize, v: f64) {
        self.set(i, j, k, v);
    }
    fn halo_width(&self) -> usize {
        self.halo()
    }
}

fn pack(
    fields: &[&mut dyn HaloField],
    code: f64,
    is_range: std::ops::Range<i64>,
    js_range: std::ops::Range<i64>,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(
        1 + fields.len()
            * (is_range.end - is_range.start) as usize
            * (js_range.end - js_range.start) as usize,
    );
    out.push(code);
    for f in fields {
        for k in 0..f.levels() {
            for j in js_range.clone() {
                for i in is_range.clone() {
                    out.push(f.get(i, j, k));
                }
            }
        }
    }
    out
}

fn unpack(
    fields: &mut [&mut dyn HaloField],
    data: &[f64],
    is_range: std::ops::Range<i64>,
    js_range: std::ops::Range<i64>,
) {
    // Validate the payload size once up front; the fill loop below can
    // then consume infallibly.
    let cells = ((is_range.end - is_range.start) * (js_range.end - js_range.start)).max(0) as usize;
    let expected = 1 + fields.iter().map(|f| f.levels() * cells).sum::<usize>();
    assert_eq!(
        data.len(),
        expected,
        "halo message truncated or padded: {} words, expected {expected}",
        data.len()
    );
    let mut it = data.iter().skip(1).copied();
    for f in fields.iter_mut() {
        for k in 0..f.levels() {
            for j in js_range.clone() {
                for i in is_range.clone() {
                    f.put(i, j, k, it.next().unwrap_or(0.0));
                }
            }
        }
    }
}

fn zero_halo(
    fields: &mut [&mut dyn HaloField],
    is_range: std::ops::Range<i64>,
    js_range: std::ops::Range<i64>,
) {
    for f in fields.iter_mut() {
        for k in 0..f.levels() {
            for j in js_range.clone() {
                for i in is_range.clone() {
                    f.put(i, j, k, 0.0);
                }
            }
        }
    }
}

/// Exchange `width` halo rings of every field (all fields must share the
/// tile's halo width ≥ `width`).
pub fn exchange(
    world: &mut dyn CommWorld,
    decomp: &Decomp,
    tile: &Tile,
    fields: &mut [&mut dyn HaloField],
    width: usize,
) {
    assert!(width >= 1);
    for f in fields.iter() {
        assert!(
            f.halo_width() >= width,
            "field halo {} narrower than exchange width {width}",
            f.halo_width()
        );
    }
    let w = width as i64;
    let nx = tile.nx as i64;
    let ny = tile.ny as i64;

    // Phase 1: longitude (periodic, always two neighbors — possibly self).
    let west = decomp.west(tile.rank);
    let east = decomp.east(tile.rank);
    let to_west = pack(fields, PLACE_EAST, 0..w, 0..ny);
    let to_east = pack(fields, PLACE_WEST, nx - w..nx, 0..ny);
    let incoming = world.exchange(vec![(west, to_west), (east, to_east)]);
    for (_nbr, data) in incoming {
        let code = data[0];
        if code == PLACE_EAST {
            unpack(fields, &data, nx..nx + w, 0..ny);
        } else if code == PLACE_WEST {
            unpack(fields, &data, -w..0, 0..ny);
        } else {
            panic!("unexpected placement code {code} in x phase");
        }
    }

    // Phase 2: latitude, including the x halos so corners are filled.
    let mut sends = Vec::new();
    if let Some(south) = decomp.south(tile.rank) {
        sends.push((south, pack(fields, PLACE_NORTH, -w..nx + w, 0..w)));
    } else {
        zero_halo(fields, -w..nx + w, -w..0);
    }
    if let Some(north) = decomp.north(tile.rank) {
        sends.push((north, pack(fields, PLACE_SOUTH, -w..nx + w, ny - w..ny)));
    } else {
        zero_halo(fields, -w..nx + w, ny..ny + w);
    }
    let incoming = world.exchange(sends);
    for (_nbr, data) in incoming {
        let code = data[0];
        if code == PLACE_NORTH {
            unpack(fields, &data, -w..nx + w, ny..ny + w);
        } else if code == PLACE_SOUTH {
            unpack(fields, &data, -w..nx + w, -w..0);
        } else {
            panic!("unexpected placement code {code} in y phase");
        }
    }
}

/// Convenience: exchange a set of 3-D fields.
pub fn exchange3(
    world: &mut dyn CommWorld,
    decomp: &Decomp,
    tile: &Tile,
    fields: &mut [&mut Field3],
    width: usize,
) {
    let mut views: Vec<&mut dyn HaloField> = fields.iter_mut().map(|f| &mut **f as _).collect();
    exchange(world, decomp, tile, &mut views, width);
}

/// Convenience: exchange a set of 2-D fields.
pub fn exchange2(
    world: &mut dyn CommWorld,
    decomp: &Decomp,
    tile: &Tile,
    fields: &mut [&mut Field2],
    width: usize,
) {
    let mut views: Vec<&mut dyn HaloField> = fields.iter_mut().map(|f| &mut **f as _).collect();
    exchange(world, decomp, tile, &mut views, width);
}

/// Bytes one rank moves per exchange of the given fields (both directions,
/// all neighbors) — used by the time-charging executor to cost the
/// primitive.
pub fn exchange_leg_bytes(tile: &Tile, levels: usize, width: usize) -> (u64, u64) {
    // x legs carry (width × ny) columns, y legs (width × (nx + 2w)).
    let x = (width * tile.ny * levels * 8) as u64;
    let y = (width * (tile.nx + 2 * width) * levels * 8) as u64;
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyades_comms::{SerialWorld, ThreadWorld};

    /// Fill a tile field with a globally-defined function so halo
    /// correctness can be verified against the analytic value.
    fn fill_global(f: &mut Field3, tile: &Tile, g: impl Fn(i64, i64, usize) -> f64) {
        for k in 0..f.nz() {
            for j in 0..tile.ny as i64 {
                for i in 0..tile.nx as i64 {
                    f.set(i, j, k, g(tile.gx(i), tile.gy(j), k));
                }
            }
        }
    }

    fn global_fn(nx_global: i64) -> impl Fn(i64, i64, usize) -> f64 {
        move |gi, gj, k| {
            let gi = gi.rem_euclid(nx_global);
            (gi * 1000 + gj * 10 + k as i64) as f64
        }
    }

    #[test]
    fn serial_single_tile_periodic_wrap() {
        let d = Decomp::blocks(16, 8, 1, 1, 2);
        let t = d.tile(0);
        let mut f = Field3::new(16, 8, 3, 2);
        let g = global_fn(16);
        fill_global(&mut f, &t, &g);
        let mut w = SerialWorld;
        exchange3(&mut w, &d, &t, &mut [&mut f], 2);
        // West halo should hold the east edge (periodic x).
        for k in 0..3 {
            for j in 0..8i64 {
                assert_eq!(f.at(-1, j, k), g(15, j, k));
                assert_eq!(f.at(-2, j, k), g(14, j, k));
                assert_eq!(f.at(16, j, k), g(0, j, k));
                assert_eq!(f.at(17, j, k), g(1, j, k));
            }
        }
        // Wall halos zeroed.
        for i in -2..18i64 {
            assert_eq!(f.at(i, -1, 0), 0.0);
            assert_eq!(f.at(i, 8, 0), 0.0);
        }
    }

    #[test]
    fn threaded_block_decomp_fills_halos_and_corners() {
        let d = Decomp::blocks(16, 8, 4, 2, 2);
        let g = global_fn(16);
        let results = ThreadWorld::run(d.n_ranks(), |world| {
            let t = d.tile(world.rank());
            let mut f = Field3::new(t.nx, t.ny, 2, 2);
            fill_global(&mut f, &t, &g);
            exchange3(world, &d, &t, &mut [&mut f], 2);
            // Verify every halo cell that corresponds to a real global
            // cell matches the analytic function; wall halos are zero.
            let mut errs = 0;
            for k in 0..2 {
                for j in -2..(t.ny as i64 + 2) {
                    for i in -2..(t.nx as i64 + 2) {
                        let gj = t.gy(j);
                        let expect = if !(0..8).contains(&gj) {
                            0.0
                        } else {
                            g(t.gx(i), gj, k)
                        };
                        if (f.at(i, j, k) - expect).abs() > 0.0 {
                            errs += 1;
                        }
                    }
                }
            }
            errs
        });
        assert!(
            results.iter().all(|&e| e == 0),
            "halo mismatches: {results:?}"
        );
    }

    #[test]
    fn multi_field_exchange_keeps_fields_separate() {
        let d = Decomp::blocks(8, 4, 2, 1, 1);
        let results = ThreadWorld::run(2, |world| {
            let t = d.tile(world.rank());
            let mut a = Field3::new(t.nx, t.ny, 1, 1);
            let mut b = Field3::new(t.nx, t.ny, 1, 1);
            for j in 0..t.ny as i64 {
                for i in 0..t.nx as i64 {
                    a.set(i, j, 0, t.gx(i) as f64);
                    b.set(i, j, 0, 100.0 + t.gx(i) as f64);
                }
            }
            exchange3(world, &d, &t, &mut [&mut a, &mut b], 1);
            // East halo of tile 0 = west edge of tile 1 (gx=4).
            (a.at(4, 0, 0), b.at(4, 0, 0))
        });
        let other_gx = [4.0, 0.0];
        for (r, &(ea, eb)) in results.iter().enumerate() {
            assert_eq!(ea, other_gx[r]);
            assert_eq!(eb, 100.0 + other_gx[r]);
        }
    }

    #[test]
    fn width_one_exchange_on_wide_halo() {
        // DS exchanges a width-1 ring of fields that carry a width-3 halo.
        let d = Decomp::blocks(8, 8, 2, 2, 3);
        let results = ThreadWorld::run(4, |world| {
            let t = d.tile(world.rank());
            let mut f = Field2::new(t.nx, t.ny, 3);
            for j in 0..t.ny as i64 {
                for i in 0..t.nx as i64 {
                    f.set(i, j, (t.gx(i) * 100 + t.gy(j)) as f64);
                }
            }
            exchange2(world, &d, &t, &mut [&mut f], 1);
            // Only the innermost ring needs to be correct.
            f.at(t.nx as i64, 0) == ((t.gx(t.nx as i64).rem_euclid(8)) * 100 + t.gy(0)) as f64
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn leg_byte_accounting() {
        let t = Tile {
            rank: 0,
            tx: 0,
            ty: 0,
            gx0: 0,
            gy0: 0,
            nx: 32,
            ny: 32,
            halo: 3,
        };
        let (x, y) = exchange_leg_bytes(&t, 1, 1);
        assert_eq!(x, 32 * 8);
        assert_eq!(y, 34 * 8);
        let (x3, _) = exchange_leg_bytes(&t, 5, 3);
        assert_eq!(x3, 3 * 32 * 5 * 8);
    }
}

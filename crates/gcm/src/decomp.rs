//! Flexible tiled domain decomposition (Figure 5).
//!
//! Tile sizes and distributions can be defined to produce long strips
//! (vector-memory friendly) or small compact blocks (deep memory-hierarchy
//! friendly). Tiles map one-to-one onto CommWorld ranks.

use crate::tile::Tile;

/// A horizontal decomposition of an `nx × ny` global domain into a
/// `px × py` process grid. Longitude (x) is periodic; latitude (y) is
/// bounded by walls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decomp {
    pub nx: usize,
    pub ny: usize,
    pub px: usize,
    pub py: usize,
    pub halo: usize,
}

impl Decomp {
    /// Compact-block decomposition (lower panel of Figure 5).
    pub fn blocks(nx: usize, ny: usize, px: usize, py: usize, halo: usize) -> Decomp {
        assert!(px >= 1 && py >= 1);
        assert_eq!(nx % px, 0, "nx={nx} not divisible by px={px}");
        assert_eq!(ny % py, 0, "ny={ny} not divisible by py={py}");
        assert!(nx / px >= halo, "tile narrower than its halo");
        assert!(ny / py >= halo, "tile shorter than its halo");
        Decomp {
            nx,
            ny,
            px,
            py,
            halo,
        }
    }

    /// Long-strip decomposition (upper panel of Figure 5): each tile spans
    /// the full longitude circle.
    pub fn strips(nx: usize, ny: usize, p: usize, halo: usize) -> Decomp {
        Decomp::blocks(nx, ny, 1, p, halo)
    }

    pub fn n_ranks(&self) -> usize {
        self.px * self.py
    }

    pub fn tile_nx(&self) -> usize {
        self.nx / self.px
    }

    pub fn tile_ny(&self) -> usize {
        self.ny / self.py
    }

    /// The tile owned by `rank` (row-major process grid).
    pub fn tile(&self, rank: usize) -> Tile {
        assert!(rank < self.n_ranks());
        let tx = rank % self.px;
        let ty = rank / self.px;
        Tile {
            rank,
            tx,
            ty,
            gx0: tx * self.tile_nx(),
            gy0: ty * self.tile_ny(),
            nx: self.tile_nx(),
            ny: self.tile_ny(),
            halo: self.halo,
        }
    }

    /// Rank of the tile at process coordinates `(tx, ty)`.
    pub fn rank_of(&self, tx: usize, ty: usize) -> usize {
        ty * self.px + tx
    }

    /// West neighbor (periodic).
    pub fn west(&self, rank: usize) -> usize {
        let t = self.tile(rank);
        self.rank_of((t.tx + self.px - 1) % self.px, t.ty)
    }

    /// East neighbor (periodic).
    pub fn east(&self, rank: usize) -> usize {
        let t = self.tile(rank);
        self.rank_of((t.tx + 1) % self.px, t.ty)
    }

    /// South neighbor, if any (walls at the domain edge).
    pub fn south(&self, rank: usize) -> Option<usize> {
        let t = self.tile(rank);
        (t.ty > 0).then(|| self.rank_of(t.tx, t.ty - 1))
    }

    /// North neighbor, if any.
    pub fn north(&self, rank: usize) -> Option<usize> {
        let t = self.tile(rank);
        (t.ty + 1 < self.py).then(|| self.rank_of(t.tx, t.ty + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_way_block_decomp() {
        // The coupled run: 128×64 over 8 endpoints as 4×2 blocks of 32×32.
        let d = Decomp::blocks(128, 64, 4, 2, 3);
        assert_eq!(d.n_ranks(), 8);
        assert_eq!(d.tile_nx(), 32);
        assert_eq!(d.tile_ny(), 32);
        let t5 = d.tile(5); // tx=1, ty=1
        assert_eq!((t5.tx, t5.ty), (1, 1));
        assert_eq!((t5.gx0, t5.gy0), (32, 32));
    }

    #[test]
    fn periodic_x_neighbors() {
        let d = Decomp::blocks(128, 64, 4, 2, 3);
        assert_eq!(d.west(0), 3);
        assert_eq!(d.east(3), 0);
        assert_eq!(d.east(0), 1);
        assert_eq!(d.west(5), 4);
    }

    #[test]
    fn wall_y_neighbors() {
        let d = Decomp::blocks(128, 64, 4, 2, 3);
        assert_eq!(d.south(0), None);
        assert_eq!(d.north(0), Some(4));
        assert_eq!(d.south(4), Some(0));
        assert_eq!(d.north(4), None);
    }

    #[test]
    fn strips_decomposition() {
        let d = Decomp::strips(128, 64, 8, 3);
        assert_eq!(d.tile_nx(), 128);
        assert_eq!(d.tile_ny(), 8);
        // A strip's west/east neighbor is itself (periodic wrap).
        assert_eq!(d.west(2), 2);
        assert_eq!(d.east(2), 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uneven_split_rejected() {
        Decomp::blocks(100, 64, 3, 2, 3);
    }

    #[test]
    fn tiles_cover_domain_disjointly() {
        let d = Decomp::blocks(64, 32, 4, 4, 2);
        let mut covered = vec![false; 64 * 32];
        for r in 0..d.n_ranks() {
            let t = d.tile(r);
            for j in 0..t.ny {
                for i in 0..t.nx {
                    let g = (t.gy0 + j) * 64 + (t.gx0 + i);
                    assert!(!covered[g], "cell covered twice");
                    covered[g] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }
}

//! Equations of state: buoyancy for the two isomorphs (§3).
//!
//! The model exploits the isomorphism between an incompressible fluid in a
//! height coordinate (the ocean) and a compressible fluid in a pressure
//! coordinate (the atmosphere): the same kernel steps both, with the
//! fluid-specific pieces confined to
//!
//! * the **buoyancy** `b(θ, s, k)` — linear seawater EOS for the ocean;
//!   linearized ideal-gas `α' = (R/p)(p/p00)^κ · θ'` for the atmosphere —
//! * the **hydrostatic sign** (pressure grows downward in the ocean,
//!   geopotential grows upward in the atmosphere's `ζ = ps − p`
//!   coordinate), and
//! * the direction in which a column is statically unstable.

use crate::grid::GRAVITY;
use serde::{Deserialize, Serialize};

/// Reference surface pressure for the atmosphere isomorph (Pa).
pub const P00: f64 = 1.0e5;
/// Gas constant of dry air (J/kg/K).
pub const R_DRY: f64 = 287.0;
/// `R/cp` for dry air.
pub const KAPPA: f64 = 2.0 / 7.0;

/// Which fluid this model instance is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FluidKind {
    Ocean,
    Atmosphere,
}

/// Equation-of-state parameters for one isomorph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Eos {
    pub kind: FluidKind,
    /// Reference potential temperature (K or °C offset).
    pub theta_ref: f64,
    /// Reference second tracer (salinity psu / specific humidity).
    pub s_ref: f64,
    /// Ocean: thermal expansion coefficient (1/K).
    pub alpha_t: f64,
    /// Ocean: haline contraction coefficient (1/psu).
    pub beta_s: f64,
    /// Per-level buoyancy coefficient (atmosphere: `(R/p_k)(p_k/p00)^κ`;
    /// ocean: unused).
    pub cb: Vec<f64>,
    /// Sign of the hydrostatic integration: `-1` for the ocean (pressure
    /// accumulates downward from the surface), `+1` for the atmosphere
    /// (geopotential accumulates upward from the surface).
    pub hydro_sign: f64,
}

impl Eos {
    /// Linear seawater EOS: `b = g·(α·(θ−θ0) − β·(s−s0))`.
    pub fn ocean(nz: usize) -> Eos {
        Eos {
            kind: FluidKind::Ocean,
            theta_ref: 10.0,
            s_ref: 35.0,
            alpha_t: 2.0e-4,
            beta_s: 7.4e-4,
            cb: vec![0.0; nz],
            hydro_sign: -1.0,
        }
    }

    /// Atmosphere isomorph on layers whose centres sit at pressures
    /// `p_centers` (Pa): `b = (R/p_k)(p_k/p00)^κ · (θ − θ0)` is the
    /// linearized specific-volume anomaly.
    pub fn atmosphere(p_centers: &[f64]) -> Eos {
        Eos {
            kind: FluidKind::Atmosphere,
            theta_ref: 300.0,
            s_ref: 0.0,
            alpha_t: 0.0,
            beta_s: 0.0,
            cb: p_centers
                .iter()
                .map(|&p| (R_DRY / p) * (p / P00).powf(KAPPA))
                .collect(),
            hydro_sign: 1.0,
        }
    }

    /// Number of flops of one `buoyancy` evaluation (for the Nps census).
    pub const FLOPS: u64 = 5;

    /// Buoyancy of a cell at level `k` with potential temperature `theta`
    /// and second tracer `s`.
    #[inline]
    pub fn buoyancy(&self, theta: f64, s: f64, k: usize) -> f64 {
        match self.kind {
            FluidKind::Ocean => {
                GRAVITY * (self.alpha_t * (theta - self.theta_ref) - self.beta_s * (s - self.s_ref))
            }
            FluidKind::Atmosphere => self.cb[k] * (theta - self.theta_ref),
        }
    }

    /// True if the buoyancy pair `(b_near, b_far)` — `near` closer to the
    /// coupling interface (smaller `k`) — is statically unstable and the
    /// cells should convectively mix.
    ///
    /// Ocean (`k` grows downward): unstable when buoyancy *increases* with
    /// depth. Atmosphere (`k` grows upward): unstable when buoyancy
    /// *decreases* with height.
    #[inline]
    pub fn unstable(&self, b_near: f64, b_far: f64) -> bool {
        match self.kind {
            FluidKind::Ocean => b_far > b_near + 1e-12,
            FluidKind::Atmosphere => b_far < b_near - 1e-12,
        }
    }

    /// Absolute temperature from potential temperature at level `k`
    /// (`T = θ·(p/p00)^κ` for the atmosphere; the ocean returns θ
    /// unchanged).
    pub fn temperature(&self, theta: f64, k: usize) -> f64 {
        theta * self.exner(k)
    }

    /// Exner function `(p_k/p00)^κ` at level `k` (atmosphere; 1 for the
    /// ocean).
    pub fn exner(&self, k: usize) -> f64 {
        match self.kind {
            FluidKind::Ocean => 1.0,
            FluidKind::Atmosphere => {
                // cb = (R/p)(p/p00)^κ ⇒ (p/p00)^κ = cb·p/R; recover p from
                // cb numerically: p = p00·(cb·p00/R)^{1/(κ−1)}.
                let ratio = self.cb[k] * P00 / R_DRY; // (p/p00)^(κ-1)
                ratio.powf(KAPPA / (KAPPA - 1.0))
            }
        }
    }
}

/// Standard 5-level atmosphere layer-centre pressures (Pa): uniform 200-hPa
/// layers from the surface up (the intermediate-complexity 5-level package
/// the paper uses).
pub fn atmos_5level_pressures() -> Vec<f64> {
    vec![9.0e4, 7.0e4, 5.0e4, 3.0e4, 1.0e4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ocean_buoyancy_signs() {
        let eos = Eos::ocean(5);
        // Warm water is buoyant.
        assert!(eos.buoyancy(20.0, 35.0, 0) > 0.0);
        // Salty water is dense.
        assert!(eos.buoyancy(10.0, 36.0, 0) < 0.0);
        // Reference state is neutral.
        assert_eq!(eos.buoyancy(10.0, 35.0, 2), 0.0);
        // Magnitude: 10 K warming ≈ 2e-3 g ≈ 0.0196 m/s².
        let b = eos.buoyancy(20.0, 35.0, 0);
        assert!((b - GRAVITY * 2.0e-3).abs() < 1e-12);
    }

    #[test]
    fn atmos_buoyancy_scales_with_height() {
        let eos = Eos::atmosphere(&atmos_5level_pressures());
        let b0 = eos.buoyancy(310.0, 0.0, 0);
        let b4 = eos.buoyancy(310.0, 0.0, 4);
        assert!(b0 > 0.0);
        // R/p grows with height faster than the Exner factor decays.
        assert!(b4 > b0);
    }

    #[test]
    fn stability_conventions() {
        let ocean = Eos::ocean(3);
        // Ocean: buoyant (light) water *below* dense water is unstable.
        assert!(ocean.unstable(-0.01, 0.01));
        assert!(!ocean.unstable(0.01, -0.01));
        let atmos = Eos::atmosphere(&atmos_5level_pressures());
        // Atmosphere: buoyancy decreasing upward is unstable.
        assert!(atmos.unstable(0.01, -0.01));
        assert!(!atmos.unstable(-0.01, 0.01));
    }

    #[test]
    fn exner_recovers_pressure_ratio() {
        let ps = atmos_5level_pressures();
        let eos = Eos::atmosphere(&ps);
        for (k, &p) in ps.iter().enumerate() {
            let expect = (p / P00).powf(KAPPA);
            assert!(
                (eos.exner(k) - expect).abs() < 1e-10,
                "level {k}: {} vs {expect}",
                eos.exner(k)
            );
        }
        // Ocean Exner is unity.
        assert_eq!(Eos::ocean(2).exner(1), 1.0);
    }

    #[test]
    fn temperature_from_theta() {
        let ps = atmos_5level_pressures();
        let eos = Eos::atmosphere(&ps);
        // At 500 hPa, θ=300 K is T ≈ 246 K.
        let t = eos.temperature(300.0, 2);
        assert!((t - 300.0 * (0.5f64).powf(KAPPA)).abs() < 1e-9);
        assert!((t - 246.0).abs() < 1.0);
        // Ocean: identity.
        assert_eq!(Eos::ocean(2).temperature(12.5, 0), 12.5);
    }

    #[test]
    fn hydro_signs() {
        assert_eq!(Eos::ocean(1).hydro_sign, -1.0);
        assert_eq!(Eos::atmosphere(&[5.0e4]).hydro_sign, 1.0);
    }
}

//! Tile descriptors: the unit of computation and parallelism (§4).

/// A tile of the horizontally-decomposed domain, extending over the full
/// depth of the model (Figure 4: "the vertical dimension stays within a
/// single node").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// This tile's rank (its owner in the CommWorld).
    pub rank: usize,
    /// Tile coordinates in the process grid.
    pub tx: usize,
    pub ty: usize,
    /// Global index of this tile's first interior column.
    pub gx0: usize,
    pub gy0: usize,
    /// Interior size.
    pub nx: usize,
    pub ny: usize,
    /// Halo width.
    pub halo: usize,
}

impl Tile {
    /// Global x index of local column `i` (wrapping handled by caller for
    /// halo indices).
    pub fn gx(&self, i: i64) -> i64 {
        self.gx0 as i64 + i
    }

    /// Global y index of local row `j`.
    pub fn gy(&self, j: i64) -> i64 {
        self.gy0 as i64 + j
    }

    /// Number of interior columns.
    pub fn columns(&self) -> usize {
        self.nx * self.ny
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_indexing() {
        let t = Tile {
            rank: 3,
            tx: 1,
            ty: 1,
            gx0: 32,
            gy0: 16,
            nx: 32,
            ny: 16,
            halo: 3,
        };
        assert_eq!(t.gx(0), 32);
        assert_eq!(t.gx(-3), 29);
        assert_eq!(t.gy(15), 31);
        assert_eq!(t.columns(), 512);
    }
}

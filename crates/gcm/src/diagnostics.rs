//! Diagnostics: conservation checks, CFL monitoring, and field output
//! (the CSV/ASCII equivalents of Figure 9's current and wind maps).

use crate::driver::Model;
use hyades_comms::CommWorld;
use std::fmt::Write as _;

/// Globally-reduced diagnostics of one model instance.
#[derive(Clone, Copy, Debug)]
pub struct GlobalDiagnostics {
    /// Volume-integrated kinetic energy (m⁵/s² scaled by ρ0 elsewhere).
    pub kinetic_energy: f64,
    /// Volume-integrated potential temperature (heat content proxy).
    pub heat_content: f64,
    /// Volume-integrated second tracer.
    pub tracer_content: f64,
    /// Global maximum horizontal speed (m/s).
    pub max_speed: f64,
    /// Advective CFL number at the smallest grid spacing.
    pub cfl: f64,
}

/// Compute globally-reduced diagnostics (collective: every rank calls).
pub fn global_diagnostics(model: &Model, world: &mut dyn CommWorld) -> GlobalDiagnostics {
    let st = &model.state;
    let mut sums = [0.0f64; 3];
    for (i, j, k) in st.theta.interior() {
        let vol = model.geom.area_at(j) * model.cfg.grid.dz[k] * model.masks.c.at(i, j, k);
        let u = st.u.at(i, j, k);
        let v = st.v.at(i, j, k);
        sums[0] += 0.5 * (u * u + v * v) * vol;
        sums[1] += st.theta.at(i, j, k) * vol;
        sums[2] += st.s.at(i, j, k) * vol;
    }
    world.global_sum_vec(&mut sums);
    let local_max = st.u.interior_max_abs().max(st.v.interior_max_abs());
    let max_speed = world.global_max(local_max);
    GlobalDiagnostics {
        kinetic_energy: sums[0],
        heat_content: sums[1],
        tracer_content: sums[2],
        max_speed,
        cfl: max_speed * model.cfg.dt / model.cfg.grid.min_dx(),
    }
}

/// A single level of a field gathered to dense global form (serial /
/// single-tile harnesses only: reads this rank's tile).
pub fn tile_level_csv(model: &Model, level: usize) -> String {
    let mut out = String::new();
    let t = &model.tile;
    let _ = writeln!(out, "# gi,gj,lat_deg,u,v,theta,s,ps");
    for j in 0..t.ny as i64 {
        let lat = model.cfg.grid.lat_c(t.gy(j)).to_degrees();
        for i in 0..t.nx as i64 {
            let _ = writeln!(
                out,
                "{},{},{:.3},{:.6},{:.6},{:.4},{:.5},{:.5}",
                t.gx(i),
                t.gy(j),
                lat,
                model.state.u.at(i, j, level),
                model.state.v.at(i, j, level),
                model.state.theta.at(i, j, level),
                model.state.s.at(i, j, level),
                model.state.ps.at(i, j),
            );
        }
    }
    out
}

/// Render a tile field level as a coarse ASCII map (rows north to south),
/// for terminal-friendly Figure 9 style output.
pub fn ascii_map(model: &Model, level: usize, width: usize) -> String {
    let t = &model.tile;
    let glyphs: &[u8] = b" .:-=+*#%@";
    let mut vals = Vec::new();
    for j in 0..t.ny as i64 {
        for i in 0..t.nx as i64 {
            if model.masks.c.at(i, j, level) > 0.0 {
                vals.push(model.state.theta.at(i, j, level));
            }
        }
    }
    if vals.is_empty() {
        return String::from("(all land)\n");
    }
    let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let step_i = (t.nx / width.min(t.nx)).max(1);
    let mut out = String::new();
    for j in (0..t.ny as i64).rev() {
        for i in (0..t.nx as i64).step_by(step_i) {
            if model.masks.c.at(i, j, level) == 0.0 {
                out.push('#');
            } else {
                let v = model.state.theta.at(i, j, level);
                let g = ((v - min) / span * (glyphs.len() - 1) as f64) as usize;
                out.push(glyphs[g.min(glyphs.len() - 1)] as char);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::decomp::Decomp;
    use hyades_comms::SerialWorld;

    fn model() -> Model {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        Model::new(ModelConfig::test_ocean(16, 8, 3, d), 0)
    }

    #[test]
    fn diagnostics_of_resting_state() {
        let m = model();
        let mut w = SerialWorld;
        let d = global_diagnostics(&m, &mut w);
        assert_eq!(d.kinetic_energy, 0.0);
        assert!(d.heat_content > 0.0);
        assert_eq!(d.max_speed, 0.0);
        assert_eq!(d.cfl, 0.0);
    }

    #[test]
    fn csv_has_all_cells() {
        let m = model();
        let csv = tile_level_csv(&m, 0);
        // Header + 16×8 rows.
        assert_eq!(csv.lines().count(), 1 + 16 * 8);
        assert!(csv.starts_with("# gi,gj"));
    }

    #[test]
    fn ascii_map_dimensions() {
        let m = model();
        let map = ascii_map(&m, 0, 16);
        assert_eq!(map.lines().count(), 8);
        assert!(map.lines().all(|l| l.len() == 16));
    }
}

// ---------------------------------------------------------------------------
// Climate diagnostics (single-tile / gathered analyses)
// ---------------------------------------------------------------------------

/// Zonal-mean of a 3-D field at one level: `(latitude_deg, mean)` per row
/// of this rank's tile (masked cells excluded).
pub fn zonal_mean(model: &Model, field: &crate::field::Field3, level: usize) -> Vec<(f64, f64)> {
    let t = &model.tile;
    let mut out = Vec::with_capacity(t.ny);
    for j in 0..t.ny as i64 {
        let lat = model.cfg.grid.lat_c(t.gy(j)).to_degrees();
        let mut sum = 0.0;
        let mut n = 0.0;
        for i in 0..t.nx as i64 {
            if model.masks.c.at(i, j, level) > 0.0 {
                sum += field.at(i, j, level);
                n += 1.0;
            }
        }
        out.push((lat, if n > 0.0 { sum / n } else { 0.0 }));
    }
    out
}

/// Meridional overturning streamfunction ψ(j, k) in Sverdrups
/// (10⁶ m³/s): the northward transport above interface `k` at latitude
/// row `j`, accumulated from the surface:
/// `ψ(j,k) = Σ_{k' < k} Σ_i v(i,j,k')·dx_s(j)·dz(k')`.
/// Rows are the tile's v-point latitudes; `k` ranges over `0..=nz`.
pub fn overturning_streamfunction(model: &Model) -> Vec<Vec<f64>> {
    let t = &model.tile;
    let nz = model.cfg.grid.nz;
    let mut psi = vec![vec![0.0f64; nz + 1]; t.ny];
    for (j, row) in psi.iter_mut().enumerate() {
        let jj = j as i64;
        let dx = model.geom.dxs_at(jj);
        let mut acc = 0.0;
        for k in 0..nz {
            let dz = model.cfg.grid.dz[k];
            let mut vsum = 0.0;
            for i in 0..t.nx as i64 {
                vsum += model.state.v.at(i, jj, k) * model.masks.v.at(i, jj, k);
            }
            acc += vsum * dx * dz;
            row[k + 1] = acc / 1e6; // Sverdrups
        }
    }
    psi
}

/// Poleward heat transport (PW) across each v-point latitude:
/// `ρ0·cp · Σ_{i,k} v·θ·dx·dz · 1e-15`.
pub fn poleward_heat_transport(model: &Model) -> Vec<(f64, f64)> {
    let t = &model.tile;
    let nz = model.cfg.grid.nz;
    let (rho_cp, to_kelvin) = match model.cfg.eos.kind {
        crate::eos::FluidKind::Ocean => (
            crate::physics::ocean::RHO0 * crate::physics::ocean::CP_SEA,
            273.15,
        ),
        // Atmosphere isomorph: "dz" is Δp, mass per area = Δp/g, so the
        // factor is cp/g.
        crate::eos::FluidKind::Atmosphere => {
            (crate::physics::atmos::CP_AIR / crate::grid::GRAVITY, 0.0)
        }
    };
    let mut out = Vec::with_capacity(t.ny);
    for j in 0..t.ny as i64 {
        let lat = model.cfg.grid.lat_s(t.gy(j)).to_degrees();
        let dx = model.geom.dxs_at(j);
        let mut flux = 0.0;
        for k in 0..nz {
            let dz = model.cfg.grid.dz[k];
            for i in 0..t.nx as i64 {
                if model.masks.v.at(i, j, k) > 0.0 {
                    // θ interpolated to the v-point, in Kelvin.
                    let th = 0.5
                        * (model.state.theta.at(i, j - 1, k) + model.state.theta.at(i, j, k))
                        + to_kelvin;
                    flux += model.state.v.at(i, j, k) * th * dx * dz;
                }
            }
        }
        out.push((lat, rho_cp * flux / 1e15));
    }
    out
}

/// Gather one level of θ (plus u, v) from every rank to rank 0 and render
/// the *global* field as CSV; other ranks return `None`. Collective.
pub fn gathered_level_csv(
    model: &Model,
    world: &mut dyn CommWorld,
    level: usize,
) -> Option<String> {
    let t = &model.tile;
    // Payload per rank: [gx0, gy0, nx, ny, then row-major u,v,theta].
    let mut data = vec![t.gx0 as f64, t.gy0 as f64, t.nx as f64, t.ny as f64];
    for j in 0..t.ny as i64 {
        for i in 0..t.nx as i64 {
            data.push(model.state.u.at(i, j, level));
            data.push(model.state.v.at(i, j, level));
            data.push(model.state.theta.at(i, j, level));
        }
    }
    let gathered = world.gather(data)?;
    let (gnx, gny) = (model.cfg.grid.nx, model.cfg.grid.ny);
    let mut grid = vec![[f64::NAN; 3]; gnx * gny];
    for chunk in &gathered {
        let (gx0, gy0) = (chunk[0] as usize, chunk[1] as usize);
        let (nx, ny) = (chunk[2] as usize, chunk[3] as usize);
        let mut it = chunk[4..].iter();
        for j in 0..ny {
            for i in 0..nx {
                let g = (gy0 + j) * gnx + (gx0 + i);
                // A short chunk (malformed gather) leaves NaN holes
                // rather than panicking mid-diagnostic.
                grid[g] = [
                    it.next().copied().unwrap_or(f64::NAN),
                    it.next().copied().unwrap_or(f64::NAN),
                    it.next().copied().unwrap_or(f64::NAN),
                ];
            }
        }
    }
    let mut out = String::from("# gi,gj,u,v,theta\n");
    for (g, cell) in grid.iter().enumerate() {
        let (gi, gj) = (g % gnx, g / gnx);
        let _ = writeln!(
            out,
            "{gi},{gj},{:.6},{:.6},{:.4}",
            cell[0], cell[1], cell[2]
        );
    }
    Some(out)
}

#[cfg(test)]
mod climate_tests {
    use super::*;
    use crate::config::{ModelConfig, SurfaceForcing};
    use crate::decomp::Decomp;
    use hyades_comms::SerialWorld;

    fn spun_up(steps: usize) -> Model {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 4, d);
        cfg.forcing = SurfaceForcing::Climatology;
        let mut m = Model::new(cfg, 0);
        let mut w = SerialWorld;
        m.run(&mut w, steps);
        m
    }

    #[test]
    fn streamfunction_vanishes_at_rest_and_at_boundaries() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let m = Model::new(ModelConfig::test_ocean(16, 8, 4, d), 0);
        let psi = overturning_streamfunction(&m);
        assert_eq!(psi.len(), 8);
        assert_eq!(psi[0].len(), 5);
        for row in &psi {
            for &v in row {
                assert_eq!(v, 0.0, "rest state has no overturning");
            }
        }
    }

    #[test]
    fn streamfunction_closes_at_depth_after_spinup() {
        let m = spun_up(30);
        let psi = overturning_streamfunction(&m);
        // Surface boundary: ψ(j, 0) = 0 by construction. Bottom: the
        // projected flow has no net depth-integrated meridional transport
        // through a full latitude circle except roundoff + wall effects,
        // so ψ(j, nz) must be small relative to the interior extrema.
        let interior_max = psi
            .iter()
            .flat_map(|r| r.iter().cloned())
            .fold(0.0f64, |a, b| a.max(b.abs()));
        if interior_max > 0.0 {
            for row in &psi {
                assert_eq!(row[0], 0.0);
                assert!(
                    row[4].abs() <= 0.2 * interior_max + 1e-12,
                    "bottom psi {} vs interior {interior_max}",
                    row[4]
                );
            }
        }
    }

    #[test]
    fn heat_transport_finite_and_zero_at_walls() {
        let m = spun_up(30);
        let ht = poleward_heat_transport(&m);
        assert_eq!(ht.len(), 8);
        // Southernmost v-row is the wall: mask kills the flux.
        assert_eq!(ht[0].1, 0.0);
        // Magnitude check against a physical scale for THIS grid (the toy
        // 16x8 domain has ~2300 km cells, so transient transports far
        // exceed Earth's ~2 PW): bound by rho*cp * max|v| * section area
        // * temperature range.
        let vmax = m.state.v.interior_max_abs();
        let section = m.geom.dxs_at(4) * 16.0 * m.cfg.grid.full_depth();
        let scale =
            crate::physics::ocean::RHO0 * crate::physics::ocean::CP_SEA * vmax * section * 300.0
                / 1e15;
        for &(lat, pw) in &ht {
            assert!(pw.is_finite(), "lat {lat}");
            assert!(pw.abs() <= scale, "transport {pw} PW vs scale {scale}");
        }
    }

    #[test]
    fn zonal_mean_shape() {
        let m = spun_up(5);
        let zm = zonal_mean(&m, &m.state.theta, 0);
        assert_eq!(zm.len(), 8);
        // Warm at the equator-most rows, colder at the walls.
        let eq = zm[4].1;
        let pole = zm[0].1;
        assert!(eq > pole, "equator {eq} vs pole {pole}");
    }
}

#[cfg(test)]
mod gather_tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::decomp::Decomp;
    use hyades_comms::{SerialWorld, ThreadWorld};

    #[test]
    fn gathered_csv_covers_the_global_grid() {
        let d = Decomp::blocks(16, 8, 4, 2, 3);
        let csvs = ThreadWorld::run(8, |w| {
            let m = Model::new(ModelConfig::test_ocean(16, 8, 3, d), w.rank());
            gathered_level_csv(&m, w, 0)
        });
        // Only rank 0 produced output.
        assert!(csvs[1..].iter().all(|c| c.is_none()));
        let csv = csvs[0].as_ref().unwrap();
        assert_eq!(csv.lines().count(), 1 + 16 * 8);
        assert!(!csv.contains("NaN"), "grid has holes");
        // Spot-check a cell against a fresh single-tile model: initial
        // conditions are decomposition-independent.
        let serial = Model::new(
            ModelConfig::test_ocean(16, 8, 3, Decomp::blocks(16, 8, 1, 1, 3)),
            0,
        );
        let line = csv.lines().nth(1 + 5 * 16 + 9).unwrap(); // gi=9, gj=5
        let theta: f64 = line.split(',').nth(4).unwrap().parse().unwrap();
        assert!((theta - serial.state.theta.at(9, 5, 0)).abs() < 1e-4);
    }

    #[test]
    fn serial_gathered_matches_tile_csv_cells() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let m = Model::new(ModelConfig::test_ocean(16, 8, 3, d), 0);
        let mut w = SerialWorld;
        let csv = gathered_level_csv(&m, &mut w, 0).unwrap();
        assert_eq!(csv.lines().count(), 1 + 16 * 8);
    }
}

//! Buoyancy, hydrostatic pressure, and diagnostic vertical velocity.
//!
//! In the hydrostatic limit, vertical variations of pressure are computed
//! from the buoyancy (§3.1): `p_hy(k)` accumulates `hydro_sign · b` down
//! (ocean) or up (atmosphere isomorph) the column. The vertical velocity
//! is diagnosed from continuity, integrating from the far boundary where
//! the normal flow vanishes.

use crate::config::ModelConfig;
use crate::field::Field3;
use crate::flops::{self, Phase};
use crate::kernel::TileGeom;
use crate::state::{Masks, ModelState};
use crate::tile::Tile;

/// Flops per wet cell: buoyancy (5) + hydrostatic accumulation (4).
pub const FLOPS_PER_CELL: u64 = 9;

/// Evaluate buoyancy and hydrostatic pressure on the interior extended by
/// `ext` halo rings.
pub fn buoyancy_and_phy(
    cfg: &ModelConfig,
    tile: &Tile,
    masks: &Masks,
    state: &mut ModelState,
    ext: i64,
) {
    let nz = cfg.grid.nz;
    let sign = cfg.eos.hydro_sign;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let mut cells = 0u64;
    for j in -ext..ny + ext {
        for i in -ext..nx + ext {
            let mut p = 0.0;
            let mut b_above = 0.0;
            for k in 0..nz {
                if masks.c.at(i, j, k) == 0.0 {
                    state.b.set(i, j, k, 0.0);
                    state.phy.set(i, j, k, p);
                    continue;
                }
                let b = cfg
                    .eos
                    .buoyancy(state.theta.at(i, j, k), state.s.at(i, j, k), k);
                state.b.set(i, j, k, b);
                // Midpoint rule: contribution of the half-levels flanking
                // interface k.
                let dz_half = if k == 0 {
                    0.5 * cfg.grid.dz[0]
                } else {
                    0.5 * (cfg.grid.dz[k - 1] + cfg.grid.dz[k])
                };
                let b_mid = if k == 0 { b } else { 0.5 * (b_above + b) };
                p += sign * b_mid * dz_half;
                state.phy.set(i, j, k, p);
                b_above = b;
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * FLOPS_PER_CELL);
}

/// Flops per wet cell for the continuity integration.
pub const W_FLOPS_PER_CELL: u64 = 9;

/// Diagnose `w` (the velocity across the interface between cell `k` and
/// cell `k-1`, positive toward `k-1`) from the divergence of `(u, v)`,
/// integrating from the far boundary (`w = 0` below the deepest wet cell).
/// Computed on the interior extended by `ext` rings (requires `u`, `v`
/// valid on `ext+1`).
#[allow(clippy::too_many_arguments)]
pub fn diagnose_w(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    u: &Field3,
    v: &Field3,
    w: &mut Field3,
    ext: i64,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let mut cells = 0u64;
    for j in -ext..ny + ext {
        let dy = geom.dy;
        let area = geom.area_at(j);
        for i in -ext..nx + ext {
            let kmax = masks.kmax.at(i, j) as usize;
            // Below the bottom: no flow.
            for k in kmax..nz {
                w.set(i, j, k, 0.0);
            }
            if kmax == 0 {
                continue;
            }
            let mut w_below = 0.0; // interface kmax: solid boundary
            for k in (0..kmax).rev() {
                let dz = cfg.grid.dz[k];
                // Open face areas include the partial-cell fractions.
                let uin = u.at(i, j, k) * masks.hu.at(i, j, k);
                let uout = u.at(i + 1, j, k) * masks.hu.at(i + 1, j, k);
                let vin = v.at(i, j, k) * masks.hv.at(i, j, k) * geom.dxs_at(j);
                let vout = v.at(i, j + 1, k) * masks.hv.at(i, j + 1, k) * geom.dxs_at(j + 1);
                let hdiv = (uout - uin) * dy * dz + (vout - vin) * dz;
                let w_here = w_below - hdiv / area;
                w.set(i, j, k, w_here);
                w_below = w_here;
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * W_FLOPS_PER_CELL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::state::ModelState;
    use crate::topography::Topography;

    fn setup() -> (ModelConfig, Tile, TileGeom, Masks, ModelState) {
        let d = Decomp::blocks(8, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(8, 8, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let st = ModelState::initial(&cfg, &tile, &masks);
        (cfg, tile, geom, masks, st)
    }

    #[test]
    fn phy_increases_downward_for_stratified_ocean() {
        let (cfg, tile, _geom, masks, mut st) = setup();
        buoyancy_and_phy(&cfg, &tile, &masks, &mut st, 0);
        // Warm (buoyant) surface water: b > 0 near the top; with
        // hydro_sign = -1 the perturbation pressure *decreases* downward
        // relative to the reference... it must at least be monotone and
        // finite, and zero buoyancy would give zero phy.
        for k in 0..4 {
            assert!(st.phy.at(2, 3, k).is_finite());
            assert!(st.b.at(2, 3, k).is_finite());
        }
        // Uniform reference state gives identically zero phy.
        st.theta.fill(cfg.eos.theta_ref);
        st.s.fill(cfg.eos.s_ref);
        buoyancy_and_phy(&cfg, &tile, &masks, &mut st, 0);
        for k in 0..4 {
            assert_eq!(st.phy.at(2, 3, k), 0.0);
        }
    }

    #[test]
    fn cold_column_has_higher_pressure_at_depth() {
        let (cfg, tile, _geom, masks, mut st) = setup();
        st.s.fill(cfg.eos.s_ref);
        st.theta.fill(cfg.eos.theta_ref);
        // Make column (1,1) colder (denser) than reference.
        for k in 0..4 {
            st.theta.set(1, 1, k, cfg.eos.theta_ref - 5.0);
        }
        buoyancy_and_phy(&cfg, &tile, &masks, &mut st, 0);
        // Cold column: b < 0, phy = -∫b dz > 0 and growing with depth.
        assert!(st.phy.at(1, 1, 0) > 0.0);
        assert!(st.phy.at(1, 1, 3) > st.phy.at(1, 1, 0));
        // Reference column unchanged at zero.
        assert_eq!(st.phy.at(3, 3, 3), 0.0);
    }

    #[test]
    fn w_zero_for_divergence_free_zonal_flow() {
        let (cfg, tile, geom, masks, mut st) = setup();
        // Uniform zonal flow on the periodic channel is non-divergent.
        st.u.fill(0.1);
        st.v.fill(0.0);
        diagnose_w(&cfg, &tile, &geom, &masks, &st.u, &st.v, &mut st.w, 0);
        assert!(
            st.w.interior_max_abs() < 1e-12,
            "{}",
            st.w.interior_max_abs()
        );
    }

    #[test]
    fn w_balances_convergence() {
        let (cfg, tile, geom, masks, mut st) = setup();
        // Convergent flow in one cell column: u steps from 0.1 to 0 at
        // i = 3 in level 0 only.
        for j in 0..8 {
            for i in 0..=3i64 {
                st.u.set(i, j, 0, 0.1);
            }
        }
        diagnose_w(&cfg, &tile, &geom, &masks, &st.u, &st.v, &mut st.w, 0);
        // Column (3, j): inflow at level 0 must go up through interface 0
        // (rigid lid ⇒ w(0) computed nonzero = residual divergence that
        // the surface-pressure solve would remove). Here we just verify
        // the continuity arithmetic: w at the top interface equals minus
        // the column-integrated divergence / area.
        let j = 4i64;
        let dz0 = cfg.grid.dz[0];
        let inflow = 0.1 * geom.dy * dz0;
        let expect = inflow / geom.area_at(j);
        assert!(
            (st.w.at(3, j, 0) - expect).abs() < 1e-12,
            "{} vs {expect}",
            st.w.at(3, j, 0)
        );
        // Neighbouring columns without convergence: w = 0.
        assert_eq!(st.w.at(1, j, 0), 0.0);
    }

    #[test]
    fn flops_are_counted() {
        let (cfg, tile, _geom, masks, mut st) = setup();
        crate::flops::reset();
        buoyancy_and_phy(&cfg, &tile, &masks, &mut st, 0);
        let (ps, ds) = crate::flops::read();
        assert_eq!(ps, 8 * 8 * 4 * FLOPS_PER_CELL);
        assert_eq!(ds, 0);
        crate::flops::reset();
    }
}

//! The PS-phase numerical kernel (Figure 6): tendency evaluation,
//! hydrostatic pressure, and Adams–Bashforth time stepping.
//!
//! All kernels are formulated "to compute on a single tile at a time"
//! (§4) and accept an *extension* parameter: with halo width 3 and
//! 3×3-point stencils, tendencies can be **overcomputed** on a ring of
//! halo cells so that a single exchange per time step suffices — the
//! paper's key PS-phase communication optimization.

pub mod gterms;
pub mod hydrostatic;
pub mod timestep;
pub mod vertical;

use crate::config::ModelConfig;
use crate::field::{Field2, Field3};
use crate::tile::Tile;

/// Per-tile geometry cache: row-indexed metric factors (the grid is
/// zonally symmetric, so geometry depends on the latitude row only).
/// Rows are indexed by *local* j including the halo.
#[derive(Clone, Debug)]
pub struct TileGeom {
    h: i64,
    /// dx at cell centres / u-points (m).
    pub dxc: Vec<f64>,
    /// dx at south faces / v-points (m).
    pub dxs: Vec<f64>,
    /// dy (m), uniform.
    pub dy: f64,
    /// Coriolis parameter at centres (u latitudes).
    pub f_c: Vec<f64>,
    /// Coriolis parameter at south faces (v latitudes).
    pub f_s: Vec<f64>,
    /// tan(lat)/R at centres.
    pub tanr_c: Vec<f64>,
    /// tan(lat)/R at south faces.
    pub tanr_s: Vec<f64>,
    /// Horizontal cell area (m²).
    pub area: Vec<f64>,
    /// Level thicknesses.
    pub dz: Vec<f64>,
}

impl TileGeom {
    pub fn build(cfg: &ModelConfig, tile: &Tile) -> TileGeom {
        let h = tile.halo as i64;
        let ny = tile.ny as i64;
        let grid = &cfg.grid;
        let clampj = |j: i64| tile.gy(j).clamp(-1, grid.ny as i64);
        let rows: Vec<i64> = (-h..ny + h).collect();
        TileGeom {
            h,
            dxc: rows.iter().map(|&j| grid.dx_c(clampj(j))).collect(),
            dxs: rows.iter().map(|&j| grid.dx_s(clampj(j))).collect(),
            dy: grid.dy(),
            f_c: rows.iter().map(|&j| grid.coriolis_c(clampj(j))).collect(),
            f_s: rows.iter().map(|&j| grid.coriolis_s(clampj(j))).collect(),
            tanr_c: rows
                .iter()
                .map(|&j| grid.metric_tan_over_r(clampj(j)))
                .collect(),
            tanr_s: rows
                .iter()
                .map(|&j| {
                    let gj = clampj(j);
                    grid.lat_s(gj).tan() / grid.radius
                })
                .collect(),
            area: rows.iter().map(|&j| grid.cell_area(clampj(j))).collect(),
            dz: grid.dz.clone(),
        }
    }

    #[inline]
    fn row(&self, j: i64) -> usize {
        (j + self.h) as usize
    }

    #[inline]
    pub fn dxc_at(&self, j: i64) -> f64 {
        self.dxc[self.row(j)]
    }
    #[inline]
    pub fn dxs_at(&self, j: i64) -> f64 {
        self.dxs[self.row(j)]
    }
    #[inline]
    pub fn f_c_at(&self, j: i64) -> f64 {
        self.f_c[self.row(j)]
    }
    #[inline]
    pub fn f_s_at(&self, j: i64) -> f64 {
        self.f_s[self.row(j)]
    }
    #[inline]
    pub fn tanr_c_at(&self, j: i64) -> f64 {
        self.tanr_c[self.row(j)]
    }
    #[inline]
    pub fn tanr_s_at(&self, j: i64) -> f64 {
        self.tanr_s[self.row(j)]
    }
    #[inline]
    pub fn area_at(&self, j: i64) -> f64 {
        self.area[self.row(j)]
    }
}

/// Scratch fields reused across steps.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// Current tendencies.
    pub gu: Field3,
    pub gv: Field3,
    pub gt: Field3,
    pub gs: Field3,
    /// Provisional (pre-projection) velocities.
    pub ustar: Field3,
    pub vstar: Field3,
    /// Depth-integrated divergence of the provisional flow (m³/s).
    pub rhs: Field2,
}

impl Workspace {
    pub fn new(cfg: &ModelConfig, tile: &Tile) -> Workspace {
        let (nx, ny, nz, h) = (tile.nx, tile.ny, cfg.grid.nz, tile.halo);
        Workspace {
            gu: Field3::new(nx, ny, nz, h),
            gv: Field3::new(nx, ny, nz, h),
            gt: Field3::new(nx, ny, nz, h),
            gs: Field3::new(nx, ny, nz, h),
            ustar: Field3::new(nx, ny, nz, h),
            vstar: Field3::new(nx, ny, nz, h),
            rhs: Field2::new(nx, ny, h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;

    #[test]
    fn geometry_rows_cover_halo() {
        let d = Decomp::blocks(16, 8, 2, 2, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 3, d);
        let t = d.tile(3); // north-east tile
        let g = TileGeom::build(&cfg, &t);
        // Halo rows index cleanly and are finite.
        assert!(g.dxc_at(-3) > 0.0);
        assert!(g.dxc_at(t.ny as i64 + 2) > 0.0);
        assert!(g.f_c_at(0).is_finite());
        // Northern tile has larger |f| than at its south edge.
        assert!(g.f_c_at(t.ny as i64 - 1).abs() > g.f_c_at(0).abs());
    }

    #[test]
    fn geometry_matches_global_grid() {
        let d = Decomp::blocks(16, 8, 2, 2, 2);
        let cfg = ModelConfig::test_ocean(16, 8, 3, d);
        let t = d.tile(2); // ty = 1
        let g = TileGeom::build(&cfg, &t);
        for j in 0..t.ny as i64 {
            assert_eq!(g.dxc_at(j), cfg.grid.dx_c(t.gy(j)));
            assert_eq!(g.f_s_at(j), cfg.grid.coriolis_s(t.gy(j)));
            assert_eq!(g.area_at(j), cfg.grid.cell_area(t.gy(j)));
        }
    }
}

//! Adams–Bashforth-2 extrapolation and the state update (eq. 1).
//!
//! `v^{n+1} = v^n + Δt (G^{n+1/2} − ∇p^{n+1/2})` with
//! `G^{n+1/2} = (3/2 + ε)G^n − (1/2 + ε)G^{n−1}` (the MITgcm's slightly
//! stabilized AB2). The pressure-gradient force is applied without
//! extrapolation: the hydrostatic part here, the surface part after the
//! DS solve.

use crate::config::ModelConfig;
use crate::field::{Field2, Field3};
use crate::flops::{self, Phase};
use crate::kernel::{TileGeom, Workspace};
use crate::state::{Masks, ModelState};
use crate::tile::Tile;

pub const AB2_FLOPS_PER_CELL: u64 = 4;
pub const UPDATE_FLOPS_PER_CELL: u64 = 14;
pub const CORRECT_FLOPS_PER_CELL: u64 = 8;

/// Extrapolate `g` with AB2 against `g_prev`, storing the extrapolated
/// value in `g` and the *pre-extrapolation* tendency in `g_prev` for the
/// next step. On the first step the tendency is used as-is
/// (forward Euler).
pub fn ab2_extrapolate(
    g: &mut Field3,
    g_prev: &mut Field3,
    ab_eps: f64,
    first_step: bool,
    ext: i64,
) {
    let (nx, ny) = (g.nx() as i64, g.ny() as i64);
    let (a, b) = if first_step {
        (1.0, 0.0)
    } else {
        (1.5 + ab_eps, 0.5 + ab_eps)
    };
    let mut cells = 0u64;
    for k in 0..g.nz() {
        for j in -ext..ny + ext {
            for i in -ext..nx + ext {
                let gn = g.at(i, j, k);
                let gm = g_prev.at(i, j, k);
                g.set(i, j, k, a * gn - b * gm);
                g_prev.set(i, j, k, gn);
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * AB2_FLOPS_PER_CELL);
}

/// Provisional velocities: `v* = v^n + Δt (Ĝ − ∇p_hy)` on the interior
/// extended by `ext` (needs `phy` on `ext+1`... the x-gradient at a
/// u-point uses `phy(i-1)` and `phy(i)`).
pub fn velocity_star(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    ws: &mut Workspace,
    ext: i64,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let dt = cfg.dt;
    let mut cells = 0u64;
    for k in 0..nz {
        for j in -ext..ny + ext {
            for i in -ext..nx + ext {
                let mu = masks.u.at(i, j, k);
                let dpdx = (state.phy.at(i, j, k) - state.phy.at(i - 1, j, k)) / geom.dxc_at(j);
                ws.ustar.set(
                    i,
                    j,
                    k,
                    mu * (state.u.at(i, j, k) + dt * (ws.gu.at(i, j, k) - dpdx)),
                );
                let mv = masks.v.at(i, j, k);
                let dpdy = (state.phy.at(i, j, k) - state.phy.at(i, j - 1, k)) / geom.dy;
                ws.vstar.set(
                    i,
                    j,
                    k,
                    mv * (state.v.at(i, j, k) + dt * (ws.gv.at(i, j, k) - dpdy)),
                );
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * UPDATE_FLOPS_PER_CELL);
}

/// Step the tracers forward on the interior: `θ^{n+1} = θ^n + Δt·Ĝθ`.
pub fn update_tracers(cfg: &ModelConfig, masks: &Masks, state: &mut ModelState, ws: &Workspace) {
    let mut cells = 0u64;
    for (i, j, k) in ws.gt.interior() {
        if masks.c.at(i, j, k) == 0.0 {
            continue;
        }
        state.theta.add(i, j, k, cfg.dt * ws.gt.at(i, j, k));
        state.s.add(i, j, k, cfg.dt * ws.gs.at(i, j, k));
        cells += 1;
    }
    flops::add(Phase::Ps, cells * 4);
}

/// Depth-integrated divergence of the provisional flow (the elliptic
/// right-hand side, m³/s), on the interior.
pub fn divergence_rhs(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    ws: &mut Workspace,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let mut cells = 0u64;
    for j in 0..ny {
        let dy = geom.dy;
        for i in 0..nx {
            let mut div = 0.0;
            for k in 0..nz {
                let dz = cfg.grid.dz[k];
                // Face thicknesses carry the partial-cell fractions
                // (§3.2): the open area of each face is dz·hu (or dz·hv).
                let uin = ws.ustar.at(i, j, k) * masks.hu.at(i, j, k);
                let uout = ws.ustar.at(i + 1, j, k) * masks.hu.at(i + 1, j, k);
                let vin = ws.vstar.at(i, j, k) * masks.hv.at(i, j, k) * geom.dxs_at(j);
                let vout = ws.vstar.at(i, j + 1, k) * masks.hv.at(i, j + 1, k) * geom.dxs_at(j + 1);
                div += (uout - uin) * dy * dz + (vout - vin) * dz;
                cells += 1;
            }
            ws.rhs.set(i, j, div);
        }
    }
    flops::add(Phase::Ps, cells * 9);
}

/// Final update: subtract the surface-pressure gradient from the
/// provisional velocities (interior only; the next step's exchange
/// refreshes the halo). `ps` must hold a width-1 halo.
pub fn correct_velocities(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    ps: &Field2,
    state: &mut ModelState,
    ws: &Workspace,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let dt = cfg.dt;
    let mut cells = 0u64;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let mu = masks.u.at(i, j, k);
                let dpdx = (ps.at(i, j) - ps.at(i - 1, j)) / geom.dxc_at(j);
                state
                    .u
                    .set(i, j, k, mu * (ws.ustar.at(i, j, k) - dt * dpdx));
                let mv = masks.v.at(i, j, k);
                let dpdy = (ps.at(i, j) - ps.at(i, j - 1)) / geom.dy;
                state
                    .v
                    .set(i, j, k, mv * (ws.vstar.at(i, j, k) - dt * dpdy));
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * CORRECT_FLOPS_PER_CELL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::state::ModelState;
    use crate::topography::Topography;

    fn setup() -> (ModelConfig, Tile, TileGeom, Masks, ModelState, Workspace) {
        let d = Decomp::blocks(8, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(8, 8, 3, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let st = ModelState::initial(&cfg, &tile, &masks);
        let ws = Workspace::new(&cfg, &tile);
        (cfg, tile, geom, masks, st, ws)
    }

    #[test]
    fn ab2_first_step_is_euler() {
        let (_, _, _, _, _, mut ws) = setup();
        ws.gu.fill(2.0);
        let mut prev = ws.gu.clone();
        prev.fill(99.0);
        ab2_extrapolate(&mut ws.gu, &mut prev, 0.01, true, 0);
        assert_eq!(ws.gu.at(1, 1, 0), 2.0);
        assert_eq!(prev.at(1, 1, 0), 2.0, "history must store the raw G");
    }

    #[test]
    fn ab2_extrapolates_linear_growth() {
        let (_, _, _, _, _, mut ws) = setup();
        // G^n = 3, G^{n-1} = 1: AB2 with ε=0 extrapolates to 4.
        ws.gu.fill(3.0);
        let mut prev = ws.gu.clone();
        prev.fill(1.0);
        ab2_extrapolate(&mut ws.gu, &mut prev, 0.0, false, 0);
        assert!((ws.gu.at(2, 2, 1) - 4.0).abs() < 1e-14);
        assert_eq!(prev.at(2, 2, 1), 3.0);
    }

    #[test]
    fn pressure_gradient_accelerates_from_high_to_low() {
        let (cfg, tile, geom, masks, mut st, mut ws) = setup();
        // phy high at i<4, low at i>=4 (level 0 only): u* should point
        // from high to low pressure across the i=4 face.
        for j in -3..11i64 {
            for i in -3..11i64 {
                st.phy.set(i, j, 0, if i < 4 { 1.0 } else { 0.0 });
            }
        }
        velocity_star(&cfg, &tile, &geom, &masks, &st, &mut ws, 0);
        assert!(ws.ustar.at(4, 4, 0) > 0.0, "flow toward low pressure");
        assert!(ws.ustar.at(2, 4, 0) == 0.0, "no gradient, no flow");
    }

    #[test]
    fn correction_removes_divergence_source() {
        let (cfg, tile, geom, masks, mut st, mut ws) = setup();
        // ps bump at one cell: the correction pushes flow out of it.
        let mut ps = crate::field::Field2::new(8, 8, 3);
        ps.set(4, 4, 10.0);
        ws.ustar.fill(0.0);
        ws.vstar.fill(0.0);
        correct_velocities(&cfg, &tile, &geom, &masks, &ps, &mut st, &ws);
        // West face of (4,4): dp/dx > 0 so u < 0 (out of the bump
        // westward); east face (5,4): u > 0.
        assert!(st.u.at(4, 4, 0) < 0.0);
        assert!(st.u.at(5, 4, 0) > 0.0);
        assert!(st.v.at(4, 4, 0) < 0.0);
        assert!(st.v.at(4, 5, 0) > 0.0);
    }

    #[test]
    fn rhs_zero_for_nondivergent_flow() {
        let (cfg, tile, geom, masks, _st, mut ws) = setup();
        ws.ustar.fill(0.25);
        ws.vstar.fill(0.0);
        divergence_rhs(&cfg, &tile, &geom, &masks, &mut ws);
        assert!(ws.rhs.interior_max_abs() < 1e-9);
    }

    #[test]
    fn rhs_measures_divergence() {
        let (cfg, tile, geom, masks, _st, mut ws) = setup();
        // Outflow from cell (3,3) at level 0 only.
        ws.ustar.set(4, 3, 0, 0.5);
        divergence_rhs(&cfg, &tile, &geom, &masks, &mut ws);
        let expect = 0.5 * geom.dy * cfg.grid.dz[0];
        assert!((ws.rhs.at(3, 3) - expect).abs() < 1e-9);
        assert!((ws.rhs.at(4, 3) + expect).abs() < 1e-9);
    }
}

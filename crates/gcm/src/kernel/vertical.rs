//! Implicit vertical mixing.
//!
//! Explicit vertical diffusion limits the time step by `κ_v·Δt/Δz² < ½`,
//! which bites hard in the ocean's thin surface layers (the MITgcm treats
//! vertical mixing implicitly for exactly this reason, and convective
//! schemes often raise `κ_v` by orders of magnitude). The backward-Euler
//! tridiagonal solve here is unconditionally stable and exactly
//! conservative: solve `(I − Δt·D) x^{n+1} = x^n` column by column, where
//! `D` is the flux-form vertical diffusion operator with no-flux
//! boundaries.

use crate::config::ModelConfig;
use crate::field::Field3;
use crate::flops::{self, Phase};
use crate::state::Masks;
use crate::tile::Tile;

/// Flops per wet cell of one implicit column solve (Thomas algorithm).
pub const FLOPS_PER_CELL: u64 = 14;

/// Scratch for the Thomas algorithm (reused across columns).
#[derive(Clone, Debug, Default)]
pub struct Tridiag {
    a: Vec<f64>, // sub-diagonal
    b: Vec<f64>, // diagonal
    c: Vec<f64>, // super-diagonal
    d: Vec<f64>, // rhs / solution
    cp: Vec<f64>,
}

impl Tridiag {
    pub fn new(nz: usize) -> Tridiag {
        Tridiag {
            a: vec![0.0; nz],
            b: vec![0.0; nz],
            c: vec![0.0; nz],
            d: vec![0.0; nz],
            cp: vec![0.0; nz],
        }
    }

    /// Solve the system in place; the solution lands in `d[..n]`.
    /// Standard Thomas forward sweep + back substitution.
    pub fn solve(&mut self, n: usize) {
        assert!(n >= 1);
        self.cp[0] = self.c[0] / self.b[0];
        self.d[0] /= self.b[0];
        for k in 1..n {
            let m = self.b[k] - self.a[k] * self.cp[k - 1];
            self.cp[k] = self.c[k] / m;
            self.d[k] = (self.d[k] - self.a[k] * self.d[k - 1]) / m;
        }
        for k in (0..n.saturating_sub(1)).rev() {
            self.d[k] -= self.cp[k] * self.d[k + 1];
        }
    }
}

/// Apply one backward-Euler implicit vertical diffusion step with
/// diffusivity `kappa` to `field`, column by column over the interior.
pub fn implicit_vertical_diffusion(
    cfg: &ModelConfig,
    tile: &Tile,
    masks: &Masks,
    field: &mut Field3,
    kappa: f64,
    scratch: &mut Tridiag,
) {
    if kappa <= 0.0 {
        return;
    }
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let dt = cfg.dt;
    let dz = &cfg.grid.dz;
    let mut cells = 0u64;
    for j in 0..ny {
        for i in 0..nx {
            let kmax = masks.kmax.at(i, j) as usize;
            if kmax < 2 {
                continue;
            }
            // Flux-form coefficients: flux between k-1 and k is
            // κ·(x_{k-1} − x_k)/dz_interface; cell k's budget divides by
            // dz_k. No-flux at the two ends.
            for k in 0..kmax {
                let up = if k > 0 {
                    kappa * dt / (0.5 * (dz[k - 1] + dz[k]) * dz[k])
                } else {
                    0.0
                };
                let dn = if k + 1 < kmax {
                    kappa * dt / (0.5 * (dz[k] + dz[k + 1]) * dz[k])
                } else {
                    0.0
                };
                scratch.a[k] = -up;
                scratch.c[k] = -dn;
                scratch.b[k] = 1.0 + up + dn;
                scratch.d[k] = field.at(i, j, k);
                cells += 1;
            }
            scratch.solve(kmax);
            for k in 0..kmax {
                field.set(i, j, k, scratch.d[k]);
            }
        }
    }
    flops::add(Phase::Ps, cells * FLOPS_PER_CELL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::topography::Topography;

    fn setup(nz: usize) -> (ModelConfig, Tile, Masks) {
        let d = Decomp::blocks(4, 4, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(4, 4, nz, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        (cfg, tile, masks)
    }

    #[test]
    fn thomas_solves_known_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] → x = [1; 2; 3].
        let mut t = Tridiag::new(3);
        t.a.copy_from_slice(&[0.0, 1.0, 1.0]);
        t.b.copy_from_slice(&[2.0, 2.0, 2.0]);
        t.c.copy_from_slice(&[1.0, 1.0, 0.0]);
        t.d.copy_from_slice(&[4.0, 8.0, 8.0]);
        t.solve(3);
        for (got, want) in t.d.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn conserves_column_content_exactly() {
        let (cfg, tile, masks) = setup(6);
        let mut f = Field3::new(4, 4, 6, 3);
        for k in 0..6 {
            f.set(1, 1, k, (k * k) as f64 - 3.0);
        }
        let before: f64 = (0..6).map(|k| f.at(1, 1, k) * cfg.grid.dz[k]).sum();
        let mut scratch = Tridiag::new(6);
        implicit_vertical_diffusion(&cfg, &tile, &masks, &mut f, 1e-2, &mut scratch);
        let after: f64 = (0..6).map(|k| f.at(1, 1, k) * cfg.grid.dz[k]).sum();
        assert!(
            (before - after).abs() < 1e-10 * before.abs().max(1.0),
            "{before} -> {after}"
        );
    }

    #[test]
    fn smooths_towards_column_mean() {
        let (cfg, tile, masks) = setup(4);
        let mut f = Field3::new(4, 4, 4, 3);
        f.set(2, 2, 0, 10.0);
        let mut scratch = Tridiag::new(4);
        // A huge diffusivity (unconditionally stable!) homogenizes the
        // 4-km column: the diffusive length sqrt(2*kappa*t) with kappa =
        // 1000 m2/s over 50 hour-long steps is ~19 km >> 4 km.
        for _ in 0..50 {
            implicit_vertical_diffusion(&cfg, &tile, &masks, &mut f, 1000.0, &mut scratch);
        }
        let total_dz: f64 = cfg.grid.dz.iter().sum();
        let mean = 10.0 * cfg.grid.dz[0] / total_dz;
        for k in 0..4 {
            assert!(
                (f.at(2, 2, k) - mean).abs() < 0.05 * mean,
                "level {k}: {} vs mean {mean}",
                f.at(2, 2, k)
            );
        }
    }

    #[test]
    fn stable_where_explicit_would_blow_up() {
        let (cfg, tile, masks) = setup(6);
        // Explicit limit: κ·dt/dz² < 0.5. With dt=3600 s and the thinnest
        // dz ≈ 127 m, κ = 100 m²/s gives a ratio of ~22 — explosively
        // unstable explicitly; the implicit solve must stay bounded and
        // monotone.
        let mut f = Field3::new(4, 4, 6, 3);
        for k in 0..6 {
            f.set(0, 0, k, if k == 2 { 1.0 } else { 0.0 });
        }
        let mut scratch = Tridiag::new(6);
        implicit_vertical_diffusion(&cfg, &tile, &masks, &mut f, 100.0, &mut scratch);
        for k in 0..6 {
            let v = f.at(0, 0, k);
            assert!((0.0..=1.0).contains(&v), "level {k} out of bounds: {v}");
        }
    }

    #[test]
    fn land_columns_untouched() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 4, d);
        cfg.continents = true;
        let tile = d.tile(0);
        let topo = Topography::idealized_continents(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let mut f = Field3::new(16, 8, 4, 3);
        f.fill(5.0);
        let before = f.clone();
        let mut scratch = Tridiag::new(4);
        implicit_vertical_diffusion(&cfg, &tile, &masks, &mut f, 1.0, &mut scratch);
        for (i, j, k) in f.clone().interior() {
            if masks.kmax.at(i, j) < 2.0 {
                assert_eq!(f.at(i, j, k), before.at(i, j, k));
            }
        }
    }
}

//! Tendency evaluation: `G_v = g_v(v, b)` and the tracer counterparts
//! (§3.1, Figure 6).
//!
//! * **Momentum** (advective form, centred horizontal / upwind vertical):
//!   advection, Coriolis, spherical metric terms, horizontal Laplacian and
//!   vertical viscosity. The pressure-gradient force is *not* part of `G`
//!   — it is applied un-extrapolated in the update (eq. 1).
//! * **Tracers** (flux form, centred horizontal / upwind vertical):
//!   advection plus diffusion; flux form makes tracer content exactly
//!   conservative under the discretely non-divergent projected flow.
//!
//! Every term uses only a 3×3 (×3 vertical) stencil, which is what makes
//! halo overcomputation possible (§4).

use crate::config::{AdvectionScheme, ModelConfig};
use crate::field::Field3;
use crate::flops::{self, Phase};
use crate::kernel::{TileGeom, Workspace};
use crate::state::{Masks, ModelState};
use crate::tile::Tile;

/// Approximate flops per wet cell for the two momentum tendencies
/// (counted from the arithmetic below: ~60 each including masks and
/// upwind selection).
pub const MOMENTUM_FLOPS_PER_CELL: u64 = 124;
/// Approximate flops per wet cell per tracer.
pub const TRACER_FLOPS_PER_CELL: u64 = 70;

/// Evaluate `G_u`, `G_v` on the interior extended by `ext` rings
/// (requires state valid on `ext+1`).
#[allow(clippy::too_many_arguments)]
pub fn momentum_tendencies(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    ws: &mut Workspace,
    ext: i64,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let (u, v, w) = (&state.u, &state.v, &state.w);
    let mut cells = 0u64;
    for k in 0..nz {
        let dz = cfg.grid.dz[k];
        for j in -ext..ny + ext {
            let dy = geom.dy;
            for i in -ext..nx + ext {
                // ---- G_u at the u-point (west face of cell i,j) ----
                if masks.u.at(i, j, k) != 0.0 {
                    let dxc = geom.dxc_at(j);
                    let uc = u.at(i, j, k);
                    // v averaged to the u-point (4 surrounding v-points).
                    let vbar = 0.25
                        * (v.at(i - 1, j, k) * masks.v.at(i - 1, j, k)
                            + v.at(i, j, k) * masks.v.at(i, j, k)
                            + v.at(i - 1, j + 1, k) * masks.v.at(i - 1, j + 1, k)
                            + v.at(i, j + 1, k) * masks.v.at(i, j + 1, k));
                    // Horizontal advection (centred, masked one-sided at
                    // walls via the face masks).
                    let dudx = (u.at(i + 1, j, k) * masks.u.at(i + 1, j, k)
                        - u.at(i - 1, j, k) * masks.u.at(i - 1, j, k))
                        / (2.0 * dxc);
                    let dudy = (u.at(i, j + 1, k) * masks.u.at(i, j + 1, k)
                        - u.at(i, j - 1, k) * masks.u.at(i, j - 1, k))
                        / (2.0 * dy);
                    let mut g = -(uc * dudx + vbar * dudy);
                    // Vertical advection, first-order upwind on the two
                    // interfaces (w > 0 flows toward smaller k).
                    let w_top = 0.5 * (w.at(i - 1, j, k) + w.at(i, j, k));
                    let w_bot = if k + 1 < nz {
                        0.5 * (w.at(i - 1, j, k + 1) + w.at(i, j, k + 1))
                    } else {
                        0.0
                    };
                    let u_top = if k > 0 { u.at(i, j, k - 1) } else { uc };
                    let u_bot = if k + 1 < nz { u.at(i, j, k + 1) } else { uc };
                    let flux_top = if w_top > 0.0 {
                        w_top * uc
                    } else {
                        w_top * u_top
                    };
                    let flux_bot = if w_bot > 0.0 {
                        w_bot * u_bot
                    } else {
                        w_bot * uc
                    };
                    g += (flux_bot - flux_top - uc * (w_bot - w_top)) / dz;
                    // Coriolis + metric.
                    g += (geom.f_c_at(j) + uc * geom.tanr_c_at(j)) * vbar;
                    // Horizontal Laplacian viscosity (free-slip at walls:
                    // dry-neighbour contributions vanish).
                    let lap = masks.u.at(i + 1, j, k) * (u.at(i + 1, j, k) - uc) / (dxc * dxc)
                        + masks.u.at(i - 1, j, k) * (u.at(i - 1, j, k) - uc) / (dxc * dxc)
                        + masks.u.at(i, j + 1, k) * (u.at(i, j + 1, k) - uc) / (dy * dy)
                        + masks.u.at(i, j - 1, k) * (u.at(i, j - 1, k) - uc) / (dy * dy);
                    g += cfg.visc_h * lap;
                    // Vertical viscosity (zero-flux at top/bottom).
                    let mut vv = 0.0;
                    if k > 0 && masks.u.at(i, j, k - 1) != 0.0 {
                        vv += (u.at(i, j, k - 1) - uc) / (0.5 * (cfg.grid.dz[k - 1] + dz));
                    }
                    if k + 1 < nz && masks.u.at(i, j, k + 1) != 0.0 {
                        vv += (u.at(i, j, k + 1) - uc) / (0.5 * (cfg.grid.dz[k + 1] + dz));
                    }
                    g += cfg.visc_v * vv / dz;
                    ws.gu.set(i, j, k, g);
                } else {
                    ws.gu.set(i, j, k, 0.0);
                }

                // ---- G_v at the v-point (south face of cell i,j) ----
                if masks.v.at(i, j, k) != 0.0 {
                    let dxs = geom.dxs_at(j);
                    let vc = v.at(i, j, k);
                    let ubar = 0.25
                        * (u.at(i, j - 1, k) * masks.u.at(i, j - 1, k)
                            + u.at(i + 1, j - 1, k) * masks.u.at(i + 1, j - 1, k)
                            + u.at(i, j, k) * masks.u.at(i, j, k)
                            + u.at(i + 1, j, k) * masks.u.at(i + 1, j, k));
                    let dvdx = (v.at(i + 1, j, k) * masks.v.at(i + 1, j, k)
                        - v.at(i - 1, j, k) * masks.v.at(i - 1, j, k))
                        / (2.0 * dxs);
                    let dvdy = (v.at(i, j + 1, k) * masks.v.at(i, j + 1, k)
                        - v.at(i, j - 1, k) * masks.v.at(i, j - 1, k))
                        / (2.0 * geom.dy);
                    let mut g = -(ubar * dvdx + vc * dvdy);
                    let w_top = 0.5 * (w.at(i, j - 1, k) + w.at(i, j, k));
                    let w_bot = if k + 1 < nz {
                        0.5 * (w.at(i, j - 1, k + 1) + w.at(i, j, k + 1))
                    } else {
                        0.0
                    };
                    let v_top = if k > 0 { v.at(i, j, k - 1) } else { vc };
                    let v_bot = if k + 1 < nz { v.at(i, j, k + 1) } else { vc };
                    let flux_top = if w_top > 0.0 {
                        w_top * vc
                    } else {
                        w_top * v_top
                    };
                    let flux_bot = if w_bot > 0.0 {
                        w_bot * v_bot
                    } else {
                        w_bot * vc
                    };
                    g += (flux_bot - flux_top - vc * (w_bot - w_top)) / dz;
                    // Coriolis + metric (note the sign).
                    g -= (geom.f_s_at(j) + ubar * geom.tanr_s_at(j)) * ubar;
                    let lap = masks.v.at(i + 1, j, k) * (v.at(i + 1, j, k) - vc) / (dxs * dxs)
                        + masks.v.at(i - 1, j, k) * (v.at(i - 1, j, k) - vc) / (dxs * dxs)
                        + masks.v.at(i, j + 1, k) * (v.at(i, j + 1, k) - vc) / (geom.dy * geom.dy)
                        + masks.v.at(i, j - 1, k) * (v.at(i, j - 1, k) - vc) / (geom.dy * geom.dy);
                    g += cfg.visc_h * lap;
                    let mut vv = 0.0;
                    if k > 0 && masks.v.at(i, j, k - 1) != 0.0 {
                        vv += (v.at(i, j, k - 1) - vc) / (0.5 * (cfg.grid.dz[k - 1] + dz));
                    }
                    if k + 1 < nz && masks.v.at(i, j, k + 1) != 0.0 {
                        vv += (v.at(i, j, k + 1) - vc) / (0.5 * (cfg.grid.dz[k + 1] + dz));
                    }
                    g += cfg.visc_v * vv / dz;
                    ws.gv.set(i, j, k, g);
                } else {
                    ws.gv.set(i, j, k, 0.0);
                }
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * MOMENTUM_FLOPS_PER_CELL);
}

/// Advected face value for the flux through a cell face, given the
/// normal velocity `vel` and the four tracer values straddling the face
/// (`t_mm, t_m | face | t_p, t_pp` in the flow direction's coordinate).
///
/// * `Centered2`: arithmetic mean of the two adjacent cells.
/// * `Upwind1`: the donor cell.
/// * `Superbee`: donor plus a Superbee-limited correction — second-order
///   where smooth, monotone at fronts (TVD).
#[inline]
pub fn face_value(
    scheme: AdvectionScheme,
    vel: f64,
    t_mm: f64,
    t_m: f64,
    t_p: f64,
    t_pp: f64,
) -> f64 {
    match scheme {
        AdvectionScheme::Centered2 => 0.5 * (t_m + t_p),
        AdvectionScheme::Upwind1 => {
            if vel >= 0.0 {
                t_m
            } else {
                t_p
            }
        }
        AdvectionScheme::Superbee => {
            // Upstream-biased slope ratio r and the Superbee limiter
            // ψ(r) = max(0, min(1, 2r), min(2, r)).
            let (up, dn, up2) = if vel >= 0.0 {
                (t_m, t_p, t_mm)
            } else {
                (t_p, t_m, t_pp)
            };
            let denom = dn - up;
            let psi = if denom.abs() < 1e-300 {
                0.0
            } else {
                let r = (up - up2) / denom;
                (2.0 * r).min(1.0).max(r.min(2.0)).max(0.0)
            };
            up + 0.5 * psi * (dn - up)
        }
    }
}

/// Flux-form tendency for one tracer on the interior extended by `ext`.
#[allow(clippy::too_many_arguments)]
pub fn tracer_tendency(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    tracer: &Field3,
    out: &mut Field3,
    diff_h: f64,
    diff_v: f64,
    ext: i64,
) {
    tracer_tendency_scheme(
        cfg,
        tile,
        geom,
        masks,
        state,
        tracer,
        out,
        diff_h,
        diff_v,
        ext,
        cfg.advection,
    )
}

/// As [`tracer_tendency`] with an explicit advection scheme (the config's
/// scheme is the default; benches sweep all of them).
#[allow(clippy::too_many_arguments)]
pub fn tracer_tendency_scheme(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    tracer: &Field3,
    out: &mut Field3,
    diff_h: f64,
    diff_v: f64,
    ext: i64,
    scheme: AdvectionScheme,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let (u, v, w) = (&state.u, &state.v, &state.w);
    let t = tracer;
    let mut cells = 0u64;
    for k in 0..nz {
        let dz = cfg.grid.dz[k];
        for j in -ext..ny + ext {
            let dy = geom.dy;
            let area = geom.area_at(j);
            let dxc = geom.dxc_at(j);
            for i in -ext..nx + ext {
                let vol = area * dz * masks.hc.at(i, j, k).max(1e-12);
                if masks.c.at(i, j, k) == 0.0 {
                    out.set(i, j, k, 0.0);
                    continue;
                }
                // Horizontal advective + diffusive fluxes through the four
                // faces (centred advection, down-gradient diffusion;
                // masked faces carry no flux; partial cells shrink the
                // open face area and the cell volume by the same §3.2
                // fractions, so fluxes stay exactly conservative).
                let mu_w = masks.hu.at(i, j, k);
                let mu_e = masks.hu.at(i + 1, j, k);
                let mv_s = masks.hv.at(i, j, k);
                let mv_n = masks.hv.at(i, j + 1, k);
                let uw = u.at(i, j, k);
                let ue = u.at(i + 1, j, k);
                let vs = v.at(i, j, k);
                let vn = v.at(i, j + 1, k);
                let fx_w = mu_w
                    * dy
                    * dz
                    * (uw
                        * face_value(
                            scheme,
                            uw,
                            t.at(i - 2, j, k),
                            t.at(i - 1, j, k),
                            t.at(i, j, k),
                            t.at(i + 1, j, k),
                        )
                        - diff_h * (t.at(i, j, k) - t.at(i - 1, j, k)) / dxc);
                let fx_e = mu_e
                    * dy
                    * dz
                    * (ue
                        * face_value(
                            scheme,
                            ue,
                            t.at(i - 1, j, k),
                            t.at(i, j, k),
                            t.at(i + 1, j, k),
                            t.at(i + 2, j, k),
                        )
                        - diff_h * (t.at(i + 1, j, k) - t.at(i, j, k)) / dxc);
                let fy_s = mv_s
                    * geom.dxs_at(j)
                    * dz
                    * (vs
                        * face_value(
                            scheme,
                            vs,
                            t.at(i, j - 2, k),
                            t.at(i, j - 1, k),
                            t.at(i, j, k),
                            t.at(i, j + 1, k),
                        )
                        - diff_h * (t.at(i, j, k) - t.at(i, j - 1, k)) / dy);
                let fy_n = mv_n
                    * geom.dxs_at(j + 1)
                    * dz
                    * (vn
                        * face_value(
                            scheme,
                            vn,
                            t.at(i, j - 1, k),
                            t.at(i, j, k),
                            t.at(i, j + 1, k),
                            t.at(i, j + 2, k),
                        )
                        - diff_h * (t.at(i, j + 1, k) - t.at(i, j, k)) / dy);
                let mut g = -(fx_e - fx_w + fy_n - fy_s) / vol;
                // Vertical: upwind advection + diffusion across wet
                // interfaces (w > 0 moves fluid toward smaller k). The
                // budget divides by the cell's *effective* thickness
                // dz·hc, so the shared interface flux cancels exactly
                // between a full cell and a shaved §3.2 partial cell.
                let dz_eff = dz * masks.hc.at(i, j, k).max(1e-12);
                let tc = t.at(i, j, k);
                if k > 0 && masks.c.at(i, j, k - 1) != 0.0 {
                    let wtop = w.at(i, j, k);
                    let donor = if wtop > 0.0 { tc } else { t.at(i, j, k - 1) };
                    let dzi = 0.5 * (cfg.grid.dz[k - 1] + dz);
                    g += (-wtop * donor + diff_v * (t.at(i, j, k - 1) - tc) / dzi) / dz_eff;
                }
                if k + 1 < nz && masks.c.at(i, j, k + 1) != 0.0 {
                    let wbot = w.at(i, j, k + 1);
                    let donor = if wbot > 0.0 { t.at(i, j, k + 1) } else { tc };
                    let dzi = 0.5 * (cfg.grid.dz[k + 1] + dz);
                    g += (wbot * donor + diff_v * (t.at(i, j, k + 1) - tc) / dzi) / dz_eff;
                }
                out.set(i, j, k, g);
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * TRACER_FLOPS_PER_CELL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::kernel::hydrostatic::diagnose_w;
    use crate::state::ModelState;
    use crate::topography::Topography;

    fn setup(nz: usize) -> (ModelConfig, Tile, TileGeom, Masks, ModelState, Workspace) {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, nz, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let st = ModelState::initial(&cfg, &tile, &masks);
        let ws = Workspace::new(&cfg, &tile);
        (cfg, tile, geom, masks, st, ws)
    }

    #[test]
    fn rest_state_has_zero_momentum_tendency() {
        let (cfg, tile, geom, masks, mut st, mut ws) = setup(3);
        st.theta.fill(cfg.eos.theta_ref);
        st.s.fill(cfg.eos.s_ref);
        momentum_tendencies(&cfg, &tile, &geom, &masks, &st, &mut ws, 0);
        assert_eq!(ws.gu.interior_max_abs(), 0.0);
        assert_eq!(ws.gv.interior_max_abs(), 0.0);
    }

    #[test]
    fn coriolis_turns_zonal_flow() {
        let (cfg, tile, geom, masks, mut st, mut ws) = setup(3);
        st.theta.fill(cfg.eos.theta_ref);
        st.s.fill(cfg.eos.s_ref);
        st.u.fill(0.1);
        momentum_tendencies(&cfg, &tile, &geom, &masks, &st, &mut ws, 0);
        // Northern-hemisphere (f > 0) zonal flow: Gv = -f·u < 0
        // (deflection to the right). Row 6 of an 8-row grid spanning ±60°
        // is well north.
        let j = 6i64;
        assert!(geom.f_s_at(j) > 0.0);
        assert!(ws.gv.at(4, j, 1) < 0.0);
        // Southern hemisphere: deflection to the left.
        let js = 2i64;
        assert!(geom.f_s_at(js) < 0.0);
        assert!(ws.gv.at(4, js, 1) > 0.0);
        // No zonal tendency from a uniform zonal flow (zonal symmetry,
        // v = 0 so no Coriolis on u).
        assert!(ws.gu.interior_max_abs() < 1e-15);
    }

    #[test]
    fn viscosity_damps_shear() {
        let (cfg, tile, geom, masks, mut st, mut ws) = setup(3);
        st.theta.fill(cfg.eos.theta_ref);
        st.s.fill(cfg.eos.s_ref);
        // A single u spike: Laplacian should pull it down and its
        // neighbours up.
        st.u.set(8, 4, 1, 1.0);
        momentum_tendencies(&cfg, &tile, &geom, &masks, &st, &mut ws, 0);
        assert!(ws.gu.at(8, 4, 1) < 0.0, "spike must decay");
        assert!(ws.gu.at(7, 4, 1) > 0.0, "neighbour must be dragged along");
        assert!(ws.gu.at(9, 4, 1) > 0.0);
    }

    #[test]
    fn tracer_flux_form_conserves_content() {
        let (cfg, tile, geom, masks, mut st, mut ws) = setup(3);
        // An arbitrary (masked) velocity field and tracer distribution:
        // the volume-integrated tendency must vanish up to roundoff
        // because fluxes telescope (periodic x, walls in y, w from
        // continuity).
        for (i, j, k) in st.u.clone().interior() {
            st.u.set(i, j, k, 0.03 * ((i + 2 * j) as f64 * 0.7 + k as f64).sin());
            st.v.set(
                i,
                j,
                k,
                0.02 * ((2 * i - j) as f64 * 0.9).cos() * masks.v.at(i, j, k),
            );
            st.theta
                .set(i, j, k, 10.0 + ((i * j) as f64 * 0.3).sin() + k as f64);
        }
        // Halos must be consistent for the flux computation: single tile,
        // so exchange = periodic wrap; emulate with the halo module.
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut world = hyades_comms::SerialWorld;
        crate::halo::exchange3(
            &mut world,
            &d,
            &tile,
            &mut [&mut st.u, &mut st.v, &mut st.theta],
            3,
        );
        diagnose_w(&cfg, &tile, &geom, &masks, &st.u, &st.v, &mut st.w, 1);
        // Zero diffusivity: advection alone must conserve.
        tracer_tendency(
            &cfg,
            &tile,
            &geom,
            &masks,
            &st,
            &st.theta.clone(),
            &mut ws.gt,
            0.0,
            0.0,
            0,
        );
        // Volume-weighted integral of the tendency.
        let mut total = 0.0;
        let mut scale = 0.0;
        for (i, j, k) in ws.gt.interior() {
            let vol = geom.area_at(j) * cfg.grid.dz[k];
            total += ws.gt.at(i, j, k) * vol;
            scale += ws.gt.at(i, j, k).abs() * vol;
        }
        assert!(
            total.abs() < 1e-9 * scale.max(1.0),
            "tracer not conserved: {total} (scale {scale})"
        );
    }

    #[test]
    fn diffusion_smooths_extrema() {
        let (cfg, tile, geom, masks, mut st, mut ws) = setup(3);
        st.theta.fill(10.0);
        st.theta.set(8, 4, 1, 11.0);
        tracer_tendency(
            &cfg,
            &tile,
            &geom,
            &masks,
            &st,
            &st.theta.clone(),
            &mut ws.gt,
            cfg.diff_h,
            0.0,
            0,
        );
        assert!(ws.gt.at(8, 4, 1) < 0.0);
        assert!(ws.gt.at(7, 4, 1) > 0.0);
        assert!(ws.gt.at(8, 5, 1) > 0.0);
    }

    #[test]
    fn land_points_have_zero_tendency() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 3, d);
        cfg.continents = true;
        let tile = d.tile(0);
        let topo = Topography::idealized_continents(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let mut st = ModelState::initial(&cfg, &tile, &masks);
        st.u.fill(0.1);
        st.v.fill(0.05);
        let mut ws = Workspace::new(&cfg, &tile);
        momentum_tendencies(&cfg, &tile, &geom, &masks, &st, &mut ws, 0);
        for (i, j, k) in ws.gu.interior() {
            if masks.u.at(i, j, k) == 0.0 {
                assert_eq!(ws.gu.at(i, j, k), 0.0);
            }
            if masks.v.at(i, j, k) == 0.0 {
                assert_eq!(ws.gv.at(i, j, k), 0.0);
            }
        }
    }
}

#[cfg(test)]
mod advection_scheme_tests {
    use super::*;
    use crate::config::AdvectionScheme;
    use crate::decomp::Decomp;
    use crate::kernel::Workspace;
    use crate::state::ModelState;
    use crate::topography::Topography;

    #[test]
    fn face_value_schemes() {
        use AdvectionScheme::*;
        // Smooth linear data: centred and Superbee agree at second order.
        let fv = |s| face_value(s, 1.0, 1.0, 2.0, 3.0, 4.0);
        assert_eq!(fv(Centered2), 2.5);
        assert_eq!(fv(Upwind1), 2.0);
        assert!((fv(Superbee) - 2.5).abs() < 1e-12, "{}", fv(Superbee));
        // Reversed flow: upwind picks the other donor.
        assert_eq!(face_value(Upwind1, -1.0, 1.0, 2.0, 3.0, 4.0), 3.0);
        // At an extremum the limiter falls back to the donor (monotone).
        let at_step = face_value(Superbee, 1.0, 0.0, 0.0, 1.0, 1.0);
        assert_eq!(at_step, 0.0, "no overshoot at a step");
    }

    /// Advect a top-hat around the periodic channel and compare schemes:
    /// Superbee must create no new extrema; centred (without diffusion)
    /// oscillates; upwind smears hardest.
    #[test]
    fn superbee_is_monotone_where_centered_oscillates() {
        let d = Decomp::blocks(32, 4, 1, 1, 3);
        let mut cfg = crate::config::ModelConfig::test_ocean(32, 4, 1, d);
        cfg.dt = 2000.0;
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = crate::state::Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let mut world = hyades_comms::SerialWorld;

        let mut run = |scheme: AdvectionScheme| -> (f64, f64, f64) {
            let mut st = ModelState::initial(&cfg, &tile, &masks);
            st.u.fill(1.0); // uniform zonal flow, non-divergent
            st.v.fill(0.0);
            st.w.fill(0.0);
            // Top-hat tracer.
            for (i, j, k) in st.theta.clone().interior() {
                st.theta
                    .set(i, j, k, if (8..16).contains(&i) { 1.0 } else { 0.0 });
            }
            let mut ws = Workspace::new(&cfg, &tile);
            for _ in 0..40 {
                crate::halo::exchange3(
                    &mut world,
                    &d,
                    &tile,
                    &mut [&mut st.u, &mut st.v, &mut st.theta],
                    3,
                );
                tracer_tendency_scheme(
                    &cfg,
                    &tile,
                    &geom,
                    &masks,
                    &st,
                    &st.theta.clone(),
                    &mut ws.gt,
                    0.0,
                    0.0,
                    0,
                    scheme,
                );
                for (i, j, k) in ws.gt.interior() {
                    st.theta.add(i, j, k, cfg.dt * ws.gt.at(i, j, k));
                }
            }
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for (i, j, k) in st.theta.interior() {
                let v = st.theta.at(i, j, k);
                min = min.min(v);
                max = max.max(v);
                sum += v;
            }
            (min, max, sum)
        };

        let (min_sb, max_sb, sum_sb) = run(AdvectionScheme::Superbee);
        let (min_c2, max_c2, sum_c2) = run(AdvectionScheme::Centered2);
        let (min_u1, max_u1, sum_u1) = run(AdvectionScheme::Upwind1);

        // All schemes conserve the tracer integral (flux form).
        assert!((sum_sb - 32.0).abs() < 1e-9, "superbee sum {sum_sb}");
        assert!((sum_c2 - 32.0).abs() < 1e-9, "centered sum {sum_c2}");
        assert!((sum_u1 - 32.0).abs() < 1e-9, "upwind sum {sum_u1}");
        // TVD: no new extrema for Superbee and Upwind.
        assert!(
            min_sb >= -1e-9 && max_sb <= 1.0 + 1e-9,
            "superbee [{min_sb}, {max_sb}]"
        );
        assert!(
            min_u1 >= -1e-9 && max_u1 <= 1.0 + 1e-9,
            "upwind [{min_u1}, {max_u1}]"
        );
        // Centred without diffusion overshoots visibly.
        assert!(
            min_c2 < -0.01 || max_c2 > 1.01,
            "centered unexpectedly monotone [{min_c2}, {max_c2}]"
        );
        // Superbee keeps the front sharper than upwind: its peak stays
        // closer to 1.
        assert!(max_sb > max_u1, "superbee {max_sb} vs upwind {max_u1}");
    }
}

//! Physics packages: the intermediate-complexity forcing of the two
//! isomorphs (§5: "an intermediate complexity atmospheric physics package
//! … designed for exploratory climate simulations", after Molteni's
//! 5-level scheme) plus the ocean surface forcing.
//!
//! Forcing terms are added to the `G` tendencies (and thus ride through
//! the Adams–Bashforth extrapolation like every other term); adjustment
//! processes (convection, large-scale condensation) act on the updated
//! state at the end of the step.

pub mod atmos;
pub mod ocean;

use crate::config::{ModelConfig, SurfaceForcing};
use crate::eos::FluidKind;
use crate::field::Field2;
use crate::flops::{self, Phase};
use crate::kernel::{TileGeom, Workspace};
use crate::state::{Masks, ModelState};
use crate::tile::Tile;

/// Boundary fields supplied by the coupler (or filled from climatology).
#[derive(Clone, Debug)]
pub struct BoundaryFields {
    /// Sea-surface temperature seen by the atmosphere (K).
    pub sst: Field2,
    /// Surface wind stress seen by the ocean (N/m²).
    pub taux: Field2,
    pub tauy: Field2,
    /// Net downward surface heat flux into the ocean (W/m²).
    pub qflux: Field2,
}

impl BoundaryFields {
    pub fn new(tile: &Tile) -> BoundaryFields {
        let f = || Field2::new(tile.nx, tile.ny, tile.halo);
        BoundaryFields {
            sst: f(),
            taux: f(),
            tauy: f(),
            qflux: f(),
        }
    }
}

/// Add the fluid-appropriate forcing to the tendencies in `ws`.
#[allow(clippy::too_many_arguments)]
pub fn apply_forcing(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    bc: &BoundaryFields,
    ws: &mut Workspace,
    ext: i64,
) {
    if cfg.forcing == SurfaceForcing::None {
        return;
    }
    match cfg.eos.kind {
        FluidKind::Atmosphere => atmos::forcing(cfg, tile, geom, masks, state, bc, ws, ext),
        FluidKind::Ocean => ocean::forcing(cfg, tile, geom, masks, state, bc, ws, ext),
    }
}

/// End-of-step adjustments on the updated state (interior only).
pub fn post_adjust(cfg: &ModelConfig, tile: &Tile, masks: &Masks, state: &mut ModelState) {
    convective_adjustment(cfg, tile, masks, state);
    if cfg.eos.kind == FluidKind::Atmosphere && cfg.forcing != SurfaceForcing::None {
        atmos::condensation(cfg, tile, masks, state);
    }
}

/// Flops per wet cell of one adjustment sweep.
pub const CONVECT_FLOPS_PER_CELL: u64 = 12;

/// Enforce static stability column by column: statically unstable
/// neighbouring cells are mixed to their thickness-weighted mean
/// (potential temperature and the second tracer together). A few sweeps
/// per step suffice — convection is re-triggered next step if needed.
pub fn convective_adjustment(
    cfg: &ModelConfig,
    tile: &Tile,
    masks: &Masks,
    state: &mut ModelState,
) {
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let mut cells = 0u64;
    // Complete adjustment via group merging: walk away from the coupling
    // interface keeping a stack of fully-mixed layer groups; whenever the
    // newest group is unstably stratified against the one above it on the
    // stack, merge them (thickness-weighted) and re-check. One pass
    // stabilizes any column exactly.
    struct Group {
        k_first: usize,
        k_last: usize,
        t_sum: f64, // Σ θ·dz
        s_sum: f64,
        w: f64, // Σ dz
    }
    let mut stack: Vec<Group> = Vec::new();
    for j in 0..ny {
        for i in 0..nx {
            let kmax = masks.kmax.at(i, j) as usize;
            if kmax < 2 {
                continue;
            }
            stack.clear();
            for k in 0..kmax {
                let dz = cfg.grid.dz[k];
                stack.push(Group {
                    k_first: k,
                    k_last: k,
                    t_sum: state.theta.at(i, j, k) * dz,
                    s_sum: state.s.at(i, j, k) * dz,
                    w: dz,
                });
                cells += 1;
                // Merge while the top two stack entries are unstable at
                // their shared interface.
                while stack.len() >= 2 {
                    let lower = &stack[stack.len() - 1];
                    let upper = &stack[stack.len() - 2];
                    let (tu, su) = (upper.t_sum / upper.w, upper.s_sum / upper.w);
                    let (tl, sl) = (lower.t_sum / lower.w, lower.s_sum / lower.w);
                    let b_near = cfg.eos.buoyancy(tu, su, upper.k_last);
                    let b_far = cfg.eos.buoyancy(tl, sl, lower.k_first);
                    if cfg.eos.unstable(b_near, b_far) {
                        // Both always present under the `len() >= 2` guard.
                        let Some(lower) = stack.pop() else { break };
                        let Some(upper) = stack.last_mut() else { break };
                        upper.k_last = lower.k_last;
                        upper.t_sum += lower.t_sum;
                        upper.s_sum += lower.s_sum;
                        upper.w += lower.w;
                    } else {
                        break;
                    }
                }
            }
            // Write the mixed values back.
            for g in &stack {
                if g.k_first == g.k_last {
                    continue;
                }
                let t = g.t_sum / g.w;
                let s = g.s_sum / g.w;
                for k in g.k_first..=g.k_last {
                    state.theta.set(i, j, k, t);
                    state.s.set(i, j, k, s);
                }
            }
        }
    }
    flops::add(Phase::Ps, cells * CONVECT_FLOPS_PER_CELL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::state::ModelState;
    use crate::topography::Topography;

    #[test]
    fn convective_adjustment_stabilizes_ocean_column() {
        let d = Decomp::blocks(8, 4, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(8, 4, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let mut st = ModelState::initial(&cfg, &tile, &masks);
        // Make one column violently unstable: cold on top of warm.
        st.s.fill(cfg.eos.s_ref);
        for k in 0..4 {
            st.theta.set(2, 2, k, 5.0 + 3.0 * k as f64); // warm below
        }
        convective_adjustment(&cfg, &tile, &masks, &mut st);
        // After adjustment the column must be (weakly) stable.
        for k in 0..3usize {
            let b0 = cfg.eos.buoyancy(st.theta.at(2, 2, k), st.s.at(2, 2, k), k);
            let b1 = cfg
                .eos
                .buoyancy(st.theta.at(2, 2, k + 1), st.s.at(2, 2, k + 1), k + 1);
            assert!(
                !cfg.eos.unstable(b0, b1),
                "still unstable at k={k}: {b0} vs {b1}"
            );
        }
    }

    #[test]
    fn adjustment_conserves_heat_content() {
        let d = Decomp::blocks(8, 4, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(8, 4, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let mut st = ModelState::initial(&cfg, &tile, &masks);
        for k in 0..4 {
            st.theta.set(1, 1, k, 20.0 - 4.0 * k as f64);
            st.theta.set(2, 2, k, 5.0 + 3.0 * k as f64);
        }
        let heat = |st: &ModelState| -> f64 {
            let mut h = 0.0;
            for (i, j, k) in st.theta.interior() {
                h += st.theta.at(i, j, k) * cfg.grid.dz[k];
            }
            h
        };
        let before = heat(&st);
        convective_adjustment(&cfg, &tile, &masks, &mut st);
        let after = heat(&st);
        assert!(
            (before - after).abs() < 1e-9 * before.abs(),
            "heat not conserved: {before} -> {after}"
        );
    }

    #[test]
    fn stable_column_untouched() {
        let d = Decomp::blocks(8, 4, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(8, 4, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let mut st = ModelState::initial(&cfg, &tile, &masks);
        let before = st.theta.clone();
        convective_adjustment(&cfg, &tile, &masks, &mut st);
        // The initial profile is stable, so nothing changes.
        for (i, j, k) in before.interior() {
            assert_eq!(st.theta.at(i, j, k), before.at(i, j, k));
        }
    }
}

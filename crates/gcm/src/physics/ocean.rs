//! Ocean surface forcing: wind stress, heat, and freshwater (as salinity
//! restoring). Standalone runs use analytic climatological profiles; in
//! coupled runs the stress and heat flux arrive from the atmosphere
//! through the coupler.

use crate::config::{ModelConfig, SurfaceForcing};
use crate::flops::{self, Phase};
use crate::kernel::{TileGeom, Workspace};
use crate::physics::BoundaryFields;
use crate::state::{Masks, ModelState};
use crate::tile::Tile;

/// Reference seawater density (kg/m³).
pub const RHO0: f64 = 1035.0;
/// Seawater heat capacity (J/kg/K).
pub const CP_SEA: f64 = 3994.0;
/// Surface tracer restoring time scale (s).
pub const TAU_RESTORE: f64 = 30.0 * 86400.0;

/// Flops per wet surface cell of the forcing pass.
pub const FLOPS_PER_CELL: u64 = 18;

/// Climatological zonal wind stress (N/m²): easterly trades near the
/// equator, westerlies in mid-latitudes.
pub fn tau_x_climatology(lat: f64, lat_max: f64) -> f64 {
    let phi = lat / lat_max; // −1..1
    0.1 * (-(3.0 * std::f64::consts::FRAC_PI_2 * phi).cos())
        * (std::f64::consts::FRAC_PI_2 * phi).cos()
}

/// Climatological SST (°C) and sea-surface salinity (psu).
pub fn surface_climatology(lat: f64) -> (f64, f64) {
    let c2 = lat.cos().powi(2);
    (2.0 + 25.0 * c2, 34.0 + 2.5 * c2)
}

/// Add wind stress, heat, and salinity forcing to the tendencies.
#[allow(clippy::too_many_arguments)]
pub fn forcing(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    bc: &BoundaryFields,
    ws: &mut Workspace,
    ext: i64,
) {
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let dz0 = cfg.grid.dz[0];
    let lat_max = -cfg.grid.lat0;
    let coupled = cfg.forcing == SurfaceForcing::Coupled;
    let mut cells = 0u64;
    let _ = geom;
    for j in -ext..ny + ext {
        let gj = tile.gy(j).clamp(0, cfg.grid.ny as i64 - 1);
        let lat = cfg.grid.lat_c(gj);
        let lat_s = cfg.grid.lat_s(gj);
        for i in -ext..nx + ext {
            let k = 0usize;
            // Momentum: wind stress on the surface level.
            if masks.u.at(i, j, k) != 0.0 {
                let tx = if coupled {
                    bc.taux.at(i, j)
                } else {
                    tau_x_climatology(lat, lat_max)
                };
                ws.gu.add(i, j, k, tx / (RHO0 * dz0));
            }
            if masks.v.at(i, j, k) != 0.0 && coupled {
                ws.gv.add(i, j, k, bc.tauy.at(i, j) / (RHO0 * dz0));
            }
            let _ = lat_s;
            // Tracers: restoring (climatology) or flux (coupled).
            if masks.c.at(i, j, k) != 0.0 {
                if coupled {
                    ws.gt
                        .add(i, j, k, bc.qflux.at(i, j) / (RHO0 * CP_SEA * dz0));
                } else {
                    let (t_star, s_star) = surface_climatology(lat);
                    ws.gt
                        .add(i, j, k, (t_star - state.theta.at(i, j, k)) / TAU_RESTORE);
                    ws.gs
                        .add(i, j, k, (s_star - state.s.at(i, j, k)) / TAU_RESTORE);
                }
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * FLOPS_PER_CELL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::state::ModelState;
    use crate::topography::Topography;

    fn oce() -> (
        ModelConfig,
        Tile,
        TileGeom,
        Masks,
        ModelState,
        Workspace,
        BoundaryFields,
    ) {
        let d = Decomp::blocks(128, 64, 1, 1, 3);
        let mut cfg = ModelConfig::ocean_2p8125(d);
        cfg.continents = false;
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let st = ModelState::initial(&cfg, &tile, &masks);
        let ws = Workspace::new(&cfg, &tile);
        let bc = BoundaryFields::new(&tile);
        (cfg, tile, geom, masks, st, ws, bc)
    }

    #[test]
    fn wind_stress_pattern() {
        let lat_max = (78.75f64).to_radians();
        // Easterlies at the equator…
        assert!(tau_x_climatology(0.0, lat_max) < 0.0);
        // …westerlies in mid-latitudes.
        assert!(tau_x_climatology((45f64).to_radians(), lat_max) > 0.0);
        // Symmetric about the equator.
        let a = tau_x_climatology((30f64).to_radians(), lat_max);
        let b = tau_x_climatology((-30f64).to_radians(), lat_max);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn climatology_forcing_pushes_surface_tracers() {
        let (cfg, tile, geom, masks, mut st, mut ws, bc) = oce();
        // Uniform cold, fresh surface: restoring must warm and salt the
        // tropics.
        for (i, j) in st.ps.clone().interior() {
            st.theta.set(i, j, 0, 0.0);
            st.s.set(i, j, 0, 30.0);
        }
        forcing(&cfg, &tile, &geom, &masks, &st, &bc, &mut ws, 0);
        assert!(ws.gt.at(64, 32, 0) > 0.0);
        assert!(ws.gs.at(64, 32, 0) > 0.0);
        assert_eq!(ws.gt.at(64, 32, 5), 0.0, "forcing is surface-only");
    }

    #[test]
    fn coupled_mode_uses_boundary_fields() {
        let (mut cfg, tile, geom, masks, st, mut ws, mut bc) = oce();
        cfg.forcing = SurfaceForcing::Coupled;
        bc.qflux.fill(100.0); // 100 W/m² warming
        bc.taux.fill(0.1);
        forcing(&cfg, &tile, &geom, &masks, &st, &bc, &mut ws, 0);
        let dz0 = cfg.grid.dz[0];
        let expect = 100.0 / (RHO0 * CP_SEA * dz0);
        assert!((ws.gt.at(10, 32, 0) - expect).abs() < 1e-15);
        assert!(ws.gu.at(10, 32, 0) > 0.0);
    }
}

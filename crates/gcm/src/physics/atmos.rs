//! The 5-level intermediate-complexity atmospheric package.
//!
//! Modeled on the simplified parameterization suite the paper cites
//! (Molteni's 5-level primitive-equation physics): Newtonian relaxation
//! toward a Held–Suarez-style radiative-equilibrium temperature, Rayleigh
//! friction in the boundary layer, bulk surface evaporation over the
//! ocean, large-scale condensation with latent heating, and (shared with
//! the ocean) dry convective adjustment.

use crate::config::ModelConfig;
use crate::flops::{self, Phase};
use crate::kernel::{TileGeom, Workspace};
use crate::physics::BoundaryFields;
use crate::state::{Masks, ModelState};
use crate::tile::Tile;

/// Latent heat of vaporization (J/kg).
pub const L_VAP: f64 = 2.5e6;
/// Heat capacity of dry air (J/kg/K).
pub const CP_AIR: f64 = 1004.0;
/// Relaxation time toward radiative equilibrium, interior (s).
pub const TAU_RAD: f64 = 40.0 * 86400.0;
/// Relaxation time in the boundary layer (s).
pub const TAU_RAD_SURF: f64 = 4.0 * 86400.0;
/// Rayleigh friction time in the boundary layer (s).
pub const TAU_FRICTION: f64 = 1.0 * 86400.0;
/// Evaporation bulk time scale (s).
pub const TAU_EVAP: f64 = 10.0 * 86400.0;

/// Flops per wet cell of the forcing pass.
pub const FLOPS_PER_CELL: u64 = 24;

/// Held–Suarez-style radiative-equilibrium potential temperature at
/// latitude `lat` (radians) and level `k`.
pub fn theta_eq(cfg: &ModelConfig, lat: f64, k: usize) -> f64 {
    let exner = cfg.eos.exner(k);
    let sin2 = lat.sin().powi(2);
    let cos2 = 1.0 - sin2;
    // In temperature: T_eq = max(200, [315 − 60 sin²φ − 10 log(p/p0) cos²φ]·(p/p0)^κ)
    let t_strat = 200.0;
    let lnp = exner.powf(1.0 / crate::eos::KAPPA).ln(); // ln(p/p00)
    let t_eq = (315.0 + cfg.theta_eq_offset - 60.0 * sin2 - 10.0 * lnp * cos2) * exner;
    t_eq.max(t_strat) / exner
}

/// Saturation specific humidity at temperature `t` (K) and pressure `p`
/// (Pa), via Tetens' formula.
pub fn q_sat(t: f64, p: f64) -> f64 {
    let es = 611.2 * (17.67 * (t - 273.15) / (t - 29.65)).exp();
    (0.622 * es / (p - 0.378 * es)).clamp(0.0, 0.1)
}

/// Add radiative relaxation, boundary-layer friction, and surface
/// evaporation to the tendencies.
#[allow(clippy::too_many_arguments)]
pub fn forcing(
    cfg: &ModelConfig,
    tile: &Tile,
    geom: &TileGeom,
    masks: &Masks,
    state: &ModelState,
    bc: &BoundaryFields,
    ws: &mut Workspace,
    ext: i64,
) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let mut cells = 0u64;
    let _ = geom;
    for j in -ext..ny + ext {
        let gj = tile.gy(j).clamp(0, cfg.grid.ny as i64 - 1);
        let lat = cfg.grid.lat_c(gj);
        for i in -ext..nx + ext {
            for k in 0..nz {
                if masks.c.at(i, j, k) == 0.0 {
                    continue;
                }
                let tau = if k == 0 { TAU_RAD_SURF } else { TAU_RAD };
                let teq = theta_eq(cfg, lat, k);
                ws.gt.add(i, j, k, (teq - state.theta.at(i, j, k)) / tau);
                if k == 0 {
                    // Rayleigh friction on the boundary-layer winds.
                    ws.gu.add(i, j, k, -state.u.at(i, j, k) / TAU_FRICTION);
                    ws.gv.add(i, j, k, -state.v.at(i, j, k) / TAU_FRICTION);
                    // Bulk evaporation toward saturation at the SST.
                    let sst = bc.sst.at(i, j);
                    if sst > 0.0 {
                        let p0 = crate::eos::P00 * 0.9;
                        let qs = q_sat(sst, p0);
                        let deficit = qs - state.s.at(i, j, k);
                        if deficit > 0.0 {
                            ws.gs.add(i, j, k, deficit / TAU_EVAP);
                        }
                    }
                }
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * FLOPS_PER_CELL);
}

/// Flops per wet cell of the condensation pass.
pub const CONDENSE_FLOPS_PER_CELL: u64 = 14;

/// Large-scale condensation: humidity above saturation rains out within a
/// step, heating the layer by `L/cp · Δq` (converted to potential
/// temperature through the Exner function).
pub fn condensation(cfg: &ModelConfig, tile: &Tile, masks: &Masks, state: &mut ModelState) {
    let nz = cfg.grid.nz;
    let (nx, ny) = (tile.nx as i64, tile.ny as i64);
    let mut cells = 0u64;
    for j in 0..ny {
        for i in 0..nx {
            for k in 0..nz {
                if masks.c.at(i, j, k) == 0.0 {
                    continue;
                }
                let exner = cfg.eos.exner(k);
                let t = state.theta.at(i, j, k) * exner;
                // Layer-centre pressure from the Exner function.
                let p = crate::eos::P00 * exner.powf(1.0 / crate::eos::KAPPA);
                let qs = q_sat(t, p);
                let q = state.s.at(i, j, k);
                if q > qs {
                    let dq = q - qs;
                    state.s.set(i, j, k, qs);
                    state.theta.add(i, j, k, L_VAP / CP_AIR * dq / exner);
                }
                cells += 1;
            }
        }
    }
    flops::add(Phase::Ps, cells * CONDENSE_FLOPS_PER_CELL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::state::ModelState;
    use crate::topography::Topography;

    fn atm() -> (
        ModelConfig,
        Tile,
        TileGeom,
        Masks,
        ModelState,
        Workspace,
        BoundaryFields,
    ) {
        let d = Decomp::blocks(128, 64, 1, 1, 3);
        let cfg = ModelConfig::atmosphere_2p8125(d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let geom = TileGeom::build(&cfg, &tile);
        let st = ModelState::initial(&cfg, &tile, &masks);
        let ws = Workspace::new(&cfg, &tile);
        let bc = BoundaryFields::new(&tile);
        (cfg, tile, geom, masks, st, ws, bc)
    }

    #[test]
    fn equilibrium_profile_is_warm_equator_cold_pole() {
        let (cfg, ..) = atm();
        let eq = theta_eq(&cfg, 0.0, 0);
        let pole = theta_eq(&cfg, 1.2, 0);
        assert!(eq > pole + 30.0, "eq {eq} pole {pole}");
        // Stratospheric floor: very high levels relax toward 200 K in
        // temperature, which is a large θ.
        let top = theta_eq(&cfg, 0.0, 4);
        assert!(top * cfg.eos.exner(4) >= 199.9);
    }

    #[test]
    fn q_sat_grows_with_temperature() {
        let q0 = q_sat(280.0, 9.0e4);
        let q1 = q_sat(300.0, 9.0e4);
        assert!(q1 > 2.0 * q0);
        assert!((0.001..0.05).contains(&q1), "qsat(300K) = {q1}");
    }

    #[test]
    fn relaxation_pulls_toward_equilibrium() {
        let (cfg, tile, geom, masks, mut st, mut ws, bc) = atm();
        // Uniform 350 K is warmer than every θ_eq at level 0 except the
        // stratospheric floor; the tendency must cool.
        for (i, j, _k) in st.theta.clone().interior() {
            st.theta.set(i, j, 0, 350.0);
        }
        forcing(&cfg, &tile, &geom, &masks, &st, &bc, &mut ws, 0);
        assert!(ws.gt.at(64, 32, 0) < 0.0);
    }

    #[test]
    fn friction_damps_surface_wind_only() {
        let (cfg, tile, geom, masks, mut st, mut ws, bc) = atm();
        st.u.fill(10.0);
        forcing(&cfg, &tile, &geom, &masks, &st, &bc, &mut ws, 0);
        assert!(ws.gu.at(10, 32, 0) < 0.0);
        assert_eq!(ws.gu.at(10, 32, 3), 0.0, "no friction aloft");
    }

    #[test]
    fn evaporation_requires_warm_sst_and_dry_air() {
        let (cfg, tile, geom, masks, st, mut ws, mut bc) = atm();
        bc.sst.fill(300.0);
        forcing(&cfg, &tile, &geom, &masks, &st, &bc, &mut ws, 0);
        assert!(ws.gs.at(64, 32, 0) > 0.0, "warm sea evaporates");
        assert_eq!(ws.gs.at(64, 32, 2), 0.0, "no surface flux aloft");
    }

    #[test]
    fn condensation_rains_out_supersaturation() {
        let (cfg, tile, _geom, masks, mut st, _ws, _bc) = atm();
        let before_theta = st.theta.at(64, 32, 0);
        st.s.set(64, 32, 0, 0.05); // grossly supersaturated
        condensation(&cfg, &tile, &masks, &mut st);
        let t = cfg.eos.temperature(st.theta.at(64, 32, 0), 0);
        let p = crate::eos::P00 * cfg.eos.exner(0).powf(1.0 / crate::eos::KAPPA);
        assert!(st.s.at(64, 32, 0) <= q_sat(t, p) + 1e-12);
        assert!(
            st.theta.at(64, 32, 0) > before_theta,
            "latent heat must warm the layer"
        );
    }
}

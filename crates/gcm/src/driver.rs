//! The model driver: Figure 6 as executable code.
//!
//! ```text
//! INITIALIZE: define topography, initial flow and tracer distributions
//! FOR each time step n DO
//!   PS:  step forward state  v^n = v^{n-1} + Δt(G^{n-1/2} − ∇p^{n-1/2})
//!        calculate time derivatives  G^{n+1/2} = g_v(v, b)
//!        calculate hydrostatic p     p_hy = hy(b)
//!   DS:  solve for pressure  ∇h·(H ∇h ps) = …
//! END FOR
//! ```
//!
//! Communication per step: one width-3 exchange of the five model fields
//! (u, v, w, θ, s) at the top of PS — overcomputation covers the rest —
//! and, inside DS, one width-1 two-field exchange plus two global sums
//! per solver iteration.

use crate::config::ModelConfig;
use crate::flops;
use crate::halo;
use crate::kernel::vertical::{implicit_vertical_diffusion, Tridiag};
use crate::kernel::{gterms, hydrostatic, timestep, TileGeom, Workspace};
use crate::physics::{self, BoundaryFields};
use crate::solver::nonhydro::{w_tendency, NonHydroSolver};
use crate::solver::{CgSolver, EllipticCoeffs};
use crate::state::{Masks, ModelState};
use crate::tile::Tile;
use crate::topography::Topography;
use hyades_comms::CommWorld;
use hyades_telemetry as telemetry;
use std::sync::Arc;

/// Per-step statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Solver iterations this step (the paper's `Ni`).
    pub cg_iterations: usize,
    /// 3-D solver iterations (non-hydrostatic mode; 0 otherwise).
    pub nh_iterations: usize,
    pub cg_residual: f64,
    /// Absolute `‖r₀‖` of the surface-pressure solve (warm-start drift).
    pub cg_initial_residual: f64,
    /// Absolute final `‖r‖`.
    pub cg_final_residual: f64,
    pub cg_converged: bool,
    /// Flops this rank spent in each phase this step.
    pub ps_flops: u64,
    pub ds_flops: u64,
    /// Local maximum horizontal speed (m/s) — CFL tripwire.
    pub max_speed: f64,
}

/// One isomorph instance on one rank.
pub struct Model {
    pub cfg: ModelConfig,
    pub tile: Tile,
    pub geom: TileGeom,
    pub masks: Masks,
    pub topo: Arc<Topography>,
    pub state: ModelState,
    pub bc: BoundaryFields,
    ws: Workspace,
    coeffs: EllipticCoeffs,
    solver: CgSolver,
    nh: Option<NonHydroSolver>,
    tridiag: Tridiag,
    pub steps_taken: u64,
    /// Cumulative solver iterations (for the mean `Ni`).
    pub total_cg_iterations: u64,
    /// Cumulative flops.
    pub total_ps_flops: u64,
    pub total_ds_flops: u64,
}

impl Model {
    /// Build the model for `rank` of the configured decomposition.
    pub fn new(cfg: ModelConfig, rank: usize) -> Model {
        let topo = Arc::new(if cfg.continents {
            Topography::idealized_continents(&cfg.grid)
        } else {
            Topography::aquaplanet(&cfg.grid)
        });
        Model::with_topography(cfg, rank, topo)
    }

    /// Build with an explicit (shared) topography.
    pub fn with_topography(cfg: ModelConfig, rank: usize, topo: Arc<Topography>) -> Model {
        assert!(
            cfg.decomp.halo >= 3,
            "PS overcomputation needs a width-3 halo"
        );
        let tile = cfg.decomp.tile(rank);
        let geom = TileGeom::build(&cfg, &tile);
        let masks = Masks::build(&cfg, &tile, &topo);
        let state = ModelState::initial(&cfg, &tile, &masks);
        let ws = Workspace::new(&cfg, &tile);
        let coeffs = EllipticCoeffs::build(&cfg, &tile, &geom, &masks);
        let solver = CgSolver::new(&tile);
        let nh = cfg
            .nonhydrostatic
            .then(|| NonHydroSolver::new(&cfg, &tile, &geom, &masks));
        let tridiag = Tridiag::new(cfg.grid.nz);
        let bc = BoundaryFields::new(&tile);
        Model {
            cfg,
            tile,
            geom,
            masks,
            topo,
            state,
            bc,
            ws,
            coeffs,
            solver,
            nh,
            tridiag,
            steps_taken: 0,
            total_cg_iterations: 0,
            total_ps_flops: 0,
            total_ds_flops: 0,
        }
    }

    /// Advance one time step (Figure 6). `world` supplies exchange and
    /// global sum.
    pub fn step(&mut self, world: &mut dyn CommWorld) -> StepStats {
        let decomp = self.cfg.decomp;
        let flops_before = flops::read();
        telemetry::set_phase(telemetry::Phase::Ps);

        // --- PS ---------------------------------------------------------
        // One exchange of the five model fields, width 3 (§4: "an
        // exchange must be performed for each of the model
        // three-dimensional state variables over a halo width of at least
        // three points").
        {
            let st = &mut self.state;
            halo::exchange3(
                world,
                &decomp,
                &self.tile,
                &mut [&mut st.u, &mut st.v, &mut st.w, &mut st.theta, &mut st.s],
                3,
            );
        }

        // Buoyancy and hydrostatic pressure, overcomputed on +2.
        hydrostatic::buoyancy_and_phy(&self.cfg, &self.tile, &self.masks, &mut self.state, 2);

        // Tendencies: momentum on +1 (feeds v* on +1), tracers on the
        // interior.
        gterms::momentum_tendencies(
            &self.cfg,
            &self.tile,
            &self.geom,
            &self.masks,
            &self.state,
            &mut self.ws,
            1,
        );
        gterms::tracer_tendency(
            &self.cfg,
            &self.tile,
            &self.geom,
            &self.masks,
            &self.state,
            &self.state.theta.clone(),
            &mut self.ws.gt,
            self.cfg.diff_h,
            if self.cfg.implicit_vertical {
                0.0
            } else {
                self.cfg.diff_v
            },
            0,
        );
        gterms::tracer_tendency(
            &self.cfg,
            &self.tile,
            &self.geom,
            &self.masks,
            &self.state,
            &self.state.s.clone(),
            &mut self.ws.gs,
            self.cfg.diff_h,
            if self.cfg.implicit_vertical {
                0.0
            } else {
                self.cfg.diff_v
            },
            0,
        );
        physics::apply_forcing(
            &self.cfg,
            &self.tile,
            &self.geom,
            &self.masks,
            &self.state,
            &self.bc,
            &mut self.ws,
            1,
        );

        // Adams–Bashforth extrapolation (momentum on +1, tracers interior).
        let first = self.state.first_step;
        timestep::ab2_extrapolate(
            &mut self.ws.gu,
            &mut self.state.gu_prev,
            self.cfg.ab_eps,
            first,
            1,
        );
        timestep::ab2_extrapolate(
            &mut self.ws.gv,
            &mut self.state.gv_prev,
            self.cfg.ab_eps,
            first,
            1,
        );
        timestep::ab2_extrapolate(
            &mut self.ws.gt,
            &mut self.state.gt_prev,
            self.cfg.ab_eps,
            first,
            0,
        );
        timestep::ab2_extrapolate(
            &mut self.ws.gs,
            &mut self.state.gs_prev,
            self.cfg.ab_eps,
            first,
            0,
        );
        self.state.first_step = false;

        // Provisional velocities and tracer update.
        timestep::velocity_star(
            &self.cfg,
            &self.tile,
            &self.geom,
            &self.masks,
            &self.state,
            &mut self.ws,
            1,
        );
        timestep::update_tracers(&self.cfg, &self.masks, &mut self.state, &self.ws);

        // Elliptic right-hand side.
        timestep::divergence_rhs(&self.cfg, &self.tile, &self.geom, &self.masks, &mut self.ws);

        // --- DS ---------------------------------------------------------
        telemetry::set_phase(telemetry::Phase::Ds);
        let cg = self.solver.solve(
            world,
            &self.cfg,
            &decomp,
            &self.tile,
            &self.geom,
            &self.coeffs,
            &self.masks,
            &self.ws.rhs,
            &mut self.state.ps,
        );
        // Post-solve work (velocity correction, adjustments, mixing)
        // belongs to PS in the paper's two-phase accounting.
        telemetry::set_phase(telemetry::Phase::Ps);

        // Final update.
        timestep::correct_velocities(
            &self.cfg,
            &self.tile,
            &self.geom,
            &self.masks,
            &self.state.ps.clone(),
            &mut self.state,
            &self.ws,
        );
        let mut nh_iterations = 0;
        if let Some(nh) = self.nh.as_mut() {
            // Non-hydrostatic mode: w is prognostic (advected + AB2), and
            // a 3-D pressure solve projects the full flow to
            // non-divergence (§3.1's p_nh part).
            let mut gw = self.state.gw_prev.clone();
            w_tendency(
                &self.cfg,
                &self.tile,
                &self.geom,
                &self.masks,
                &self.state,
                &mut gw,
            );
            timestep::ab2_extrapolate(&mut gw, &mut self.state.gw_prev, self.cfg.ab_eps, first, 0);
            for (i, j, k) in gw.interior() {
                self.state.w.add(i, j, k, self.cfg.dt * gw.at(i, j, k));
            }
            // The projection exchanges (u, v, w) itself before taking the
            // 3-D divergence.
            {
                let st = &mut self.state;
                halo::exchange3(
                    world,
                    &decomp,
                    &self.tile,
                    &mut [&mut st.u, &mut st.v, &mut st.w],
                    1,
                );
            }
            let res = nh.project(
                world,
                &self.cfg,
                &decomp,
                &self.tile,
                &self.geom,
                &self.masks,
                &mut self.state,
            );
            debug_assert!(res.converged, "non-hydrostatic solve diverged");
            nh_iterations = res.iterations;
        } else {
            // Hydrostatic mode: w is diagnosed from continuity.
            hydrostatic::diagnose_w(
                &self.cfg,
                &self.tile,
                &self.geom,
                &self.masks,
                &self.state.u,
                &self.state.v,
                &mut self.state.w,
                0,
            );
        }

        // Adjustments (convection, condensation).
        physics::post_adjust(&self.cfg, &self.tile, &self.masks, &mut self.state);

        // Implicit vertical tracer mixing (backward Euler), if configured.
        if self.cfg.implicit_vertical {
            implicit_vertical_diffusion(
                &self.cfg,
                &self.tile,
                &self.masks,
                &mut self.state.theta,
                self.cfg.diff_v,
                &mut self.tridiag,
            );
            implicit_vertical_diffusion(
                &self.cfg,
                &self.tile,
                &self.masks,
                &mut self.state.s,
                self.cfg.diff_v,
                &mut self.tridiag,
            );
        }

        // --- bookkeeping --------------------------------------------------
        let flops_after = flops::read();
        let ps_flops = flops_after.0 - flops_before.0;
        let ds_flops = flops_after.1 - flops_before.1;
        telemetry::charge_flops(telemetry::Phase::Ps, ps_flops);
        telemetry::charge_flops(telemetry::Phase::Ds, ds_flops);
        telemetry::count("gcm.driver", "steps", 1);
        telemetry::set_phase(telemetry::Phase::Outside);
        self.steps_taken += 1;
        self.total_cg_iterations += cg.iterations as u64;
        self.total_ps_flops += ps_flops;
        self.total_ds_flops += ds_flops;

        let max_speed = self
            .state
            .u
            .interior_max_abs()
            .max(self.state.v.interior_max_abs());
        StepStats {
            cg_iterations: cg.iterations,
            nh_iterations,
            cg_residual: cg.rel_residual,
            cg_initial_residual: cg.initial_residual,
            cg_final_residual: cg.final_residual,
            cg_converged: cg.converged,
            ps_flops,
            ds_flops,
            max_speed,
        }
    }

    /// Max |∇·(H u*)| over the tile interior after the most recent step
    /// — the divergence that fed the elliptic right-hand side. A healthy
    /// run keeps this bounded; growth is an early blowup signal.
    pub fn divergence_norm(&self) -> f64 {
        self.ws.rhs.interior_max_abs()
    }

    /// Run `n` steps, returning the last step's stats.
    pub fn run(&mut self, world: &mut dyn CommWorld, n: usize) -> StepStats {
        let mut last = StepStats::default();
        for _ in 0..n {
            last = self.step(world);
        }
        last
    }

    /// Mean solver iterations per step so far (the paper's `Ni`).
    pub fn mean_cg_iterations(&self) -> f64 {
        if self.steps_taken == 0 {
            0.0
        } else {
            self.total_cg_iterations as f64 / self.steps_taken as f64
        }
    }

    /// Measured per-cell flop counts `(Nps, Nds)` in the sense of
    /// Figure 11: PS flops per wet cell per step, and DS flops per wet
    /// column per solver iteration.
    pub fn measured_n_coefficients(&self) -> (f64, f64) {
        if self.steps_taken == 0 || self.masks.wet_cells == 0 {
            return (0.0, 0.0);
        }
        let nps =
            self.total_ps_flops as f64 / (self.steps_taken as f64 * self.masks.wet_cells as f64);
        let cols = self.masks.wet_columns() as f64;
        let nds = if self.total_cg_iterations == 0 {
            0.0
        } else {
            self.total_ds_flops as f64 / (self.total_cg_iterations as f64 * cols)
        };
        (nps, nds)
    }

    /// The tile's surface level of a field as (global_i, global_j, value)
    /// triples — diagnostics/coupling helper.
    pub fn surface_theta(&self) -> Vec<(i64, i64, f64)> {
        let mut out = Vec::new();
        for j in 0..self.tile.ny as i64 {
            for i in 0..self.tile.nx as i64 {
                out.push((
                    self.tile.gx(i),
                    self.tile.gy(j),
                    self.state.theta.at(i, j, 0),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SurfaceForcing;
    use crate::decomp::Decomp;
    use hyades_comms::{SerialWorld, ThreadWorld};

    fn small_cfg(px: usize, py: usize) -> ModelConfig {
        let d = Decomp::blocks(16, 8, px, py, 3);
        ModelConfig::test_ocean(16, 8, 4, d)
    }

    #[test]
    fn steps_run_and_stay_finite() {
        let mut m = Model::new(small_cfg(1, 1), 0);
        let mut w = SerialWorld;
        for _ in 0..10 {
            let s = m.step(&mut w);
            assert!(s.cg_converged, "solver failed: {s:?}");
        }
        assert!(m.state.is_finite());
        assert_eq!(m.steps_taken, 10);
    }

    #[test]
    fn unforced_run_conserves_tracer_content() {
        let mut m = Model::new(small_cfg(1, 1), 0);
        let mut w = SerialWorld;
        let heat = |m: &Model| -> f64 {
            let mut h = 0.0;
            for (i, j, k) in m.state.theta.interior() {
                h += m.state.theta.at(i, j, k) * m.geom.area_at(j) * m.cfg.grid.dz[k];
            }
            h
        };
        let before = heat(&m);
        m.run(&mut w, 20);
        let after = heat(&m);
        let rel = ((after - before) / before).abs();
        assert!(rel < 1e-9, "heat drifted by {rel}");
    }

    #[test]
    fn projection_keeps_flow_nondivergent() {
        let mut m = Model::new(small_cfg(1, 1), 0);
        let mut w = SerialWorld;
        m.run(&mut w, 5);
        // Recompute the depth-integrated divergence of the *final*
        // velocities: it should be at solver-tolerance level.
        let mut ws = Workspace::new(&m.cfg, &m.tile);
        ws.ustar = m.state.u.clone();
        ws.vstar = m.state.v.clone();
        // Refresh halos for the divergence stencil.
        halo::exchange3(
            &mut w,
            &m.cfg.decomp,
            &m.tile,
            &mut [&mut ws.ustar, &mut ws.vstar],
            1,
        );
        timestep::divergence_rhs(&m.cfg, &m.tile, &m.geom, &m.masks, &mut ws);
        // Scale: typical column transport.
        let scale: f64 = m.geom.area_at(4) * 1e-6;
        assert!(
            ws.rhs.interior_max_abs() < scale,
            "divergence {} vs scale {scale}",
            ws.rhs.interior_max_abs()
        );
    }

    #[test]
    fn parallel_run_matches_serial_bitwise_stats() {
        // 4-rank and serial runs of the same configuration must agree on
        // the global diagnostics to near-roundoff (deterministic
        // reductions; the physics is decomposition-independent).
        let steps = 5;
        let serial_heat = {
            let mut m = Model::new(small_cfg(1, 1), 0);
            let mut w = SerialWorld;
            m.run(&mut w, steps);
            let mut h = 0.0;
            for (i, j, k) in m.state.theta.interior() {
                h += m.state.theta.at(i, j, k) * m.geom.area_at(j) * m.cfg.grid.dz[k];
            }
            h
        };
        let par_heats = ThreadWorld::run(4, |w| {
            let mut m = Model::new(small_cfg(2, 2), w.rank());
            m.run(w, steps);
            let mut h = 0.0;
            for (i, j, k) in m.state.theta.interior() {
                h += m.state.theta.at(i, j, k) * m.geom.area_at(j) * m.cfg.grid.dz[k];
            }
            h
        });
        let par_heat: f64 = par_heats.iter().sum();
        let rel = ((par_heat - serial_heat) / serial_heat).abs();
        assert!(rel < 1e-9, "serial {serial_heat} vs parallel {par_heat}");
    }

    #[test]
    fn forced_ocean_spins_up_circulation() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 4, d);
        cfg.forcing = SurfaceForcing::Climatology;
        let mut m = Model::new(cfg, 0);
        let mut w = SerialWorld;
        let s = m.run(&mut w, 30);
        assert!(s.max_speed > 1e-6, "wind stress should drive a current");
        assert!(
            s.max_speed < 3.0,
            "speeds should stay oceanic: {}",
            s.max_speed
        );
        assert!(m.state.is_finite());
    }

    #[test]
    fn measured_flop_coefficients_are_sane() {
        let mut m = Model::new(small_cfg(1, 1), 0);
        let mut w = SerialWorld;
        m.run(&mut w, 5);
        let (nps, nds) = m.measured_n_coefficients();
        // Figure 11 quotes Nps ≈ 751–781 and Nds = 36; our leaner kernels
        // must land within the same order of magnitude.
        assert!((100.0..2000.0).contains(&nps), "Nps = {nps}");
        assert!((10.0..100.0).contains(&nds), "Nds = {nds}");
    }
}

#[cfg(test)]
mod nonhydro_tests {
    use super::*;
    use crate::config::SurfaceForcing;
    use crate::decomp::Decomp;
    use crate::solver::nonhydro::divergence3;
    use hyades_comms::SerialWorld;

    fn cfg(nonhydro: bool) -> ModelConfig {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 4, d);
        cfg.forcing = SurfaceForcing::Climatology;
        cfg.nonhydrostatic = nonhydro;
        cfg
    }

    #[test]
    fn nonhydrostatic_run_stays_finite_and_3d_nondivergent() {
        let mut m = Model::new(cfg(true), 0);
        let mut w = SerialWorld;
        let mut last = StepStats::default();
        for _ in 0..8 {
            last = m.step(&mut w);
            assert!(last.cg_converged);
        }
        assert!(m.state.is_finite());
        assert!(last.nh_iterations > 0, "3-D solver must have run");
        // The full 3-D divergence must be at solver tolerance.
        let mut div = m.state.w.clone();
        {
            let st = &mut m.state;
            crate::halo::exchange3(
                &mut w,
                &m.cfg.decomp,
                &m.tile,
                &mut [&mut st.u, &mut st.v, &mut st.w],
                1,
            );
        }
        divergence3(
            &m.cfg, &m.tile, &m.geom, &m.masks, &m.state.u, &m.state.v, &m.state.w, &mut div,
        );
        let scale = m.geom.area_at(4) * 1e-6;
        assert!(
            div.interior_max_abs() < scale,
            "3-D divergence {} vs scale {scale}",
            div.interior_max_abs()
        );
    }

    #[test]
    fn hydrostatic_limit_agreement() {
        // The paper runs climate scales hydrostatic because "in the
        // hydrostatic limit the non-hydrostatic pressure component is
        // negligible" (§3.1). At 300-km grid spacing over 4-km depth
        // (aspect ratio ~1e-2), the two modes must track each other
        // closely over a short run.
        let steps = 6;
        let mut hydro = Model::new(cfg(false), 0);
        let mut nonhydro = Model::new(cfg(true), 0);
        let mut w = SerialWorld;
        hydro.run(&mut w, steps);
        nonhydro.run(&mut w, steps);
        let mut max_dt = 0.0f64;
        let mut max_du = 0.0f64;
        for (i, j, k) in hydro.state.theta.interior() {
            max_dt = max_dt
                .max((hydro.state.theta.at(i, j, k) - nonhydro.state.theta.at(i, j, k)).abs());
            max_du = max_du.max((hydro.state.u.at(i, j, k) - nonhydro.state.u.at(i, j, k)).abs());
        }
        // Velocities are mm/s-scale at this point; agreement must be far
        // below the signal.
        let u_scale = hydro.state.u.interior_max_abs().max(1e-9);
        assert!(
            max_du < 0.05 * u_scale,
            "u differs by {max_du} (scale {u_scale})"
        );
        // Tracer drift: a few mK against a ~25 K signal — four orders of
        // magnitude below the stratification (w is prognostic vs
        // diagnosed, so small vertical-advection differences accrue).
        assert!(max_dt < 5e-3, "theta differs by {max_dt} K");
    }

    #[test]
    fn nonhydrostatic_checkpoint_roundtrip() {
        let mut m = Model::new(cfg(true), 0);
        let mut w = SerialWorld;
        m.run(&mut w, 3);
        let mut buf = Vec::new();
        crate::checkpoint::save(&m, &mut buf).unwrap();
        let mut straight = Model::new(cfg(true), 0);
        straight.run(&mut w, 5);
        let mut resumed = Model::new(cfg(true), 0);
        crate::checkpoint::load(&mut resumed, &mut buf.as_slice()).unwrap();
        resumed.run(&mut w, 2);
        // gw_prev in the checkpoint makes the NH restart bit-exact too…
        // up to the warm-started pnh, which is *not* checkpointed (it is
        // a diagnostic whose initial guess only affects iteration counts,
        // not converged values beyond tolerance).
        let mut max_d = 0.0f64;
        for (i, j, k) in straight.state.u.clone().interior() {
            max_d = max_d.max((straight.state.u.at(i, j, k) - resumed.state.u.at(i, j, k)).abs());
        }
        let scale = straight.state.u.interior_max_abs().max(1e-12);
        assert!(max_d < 1e-5 * scale.max(1e-6), "restart drift {max_d}");
    }
}

#[cfg(test)]
mod free_surface_tests {
    use super::*;
    use crate::config::SurfaceForcing;
    use crate::decomp::Decomp;
    use hyades_comms::SerialWorld;

    fn cfg(free_surface: bool) -> ModelConfig {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 4, d);
        cfg.forcing = SurfaceForcing::Climatology;
        cfg.free_surface = free_surface;
        cfg
    }

    #[test]
    fn free_surface_run_stays_finite_with_bounded_eta() {
        let mut m = Model::new(cfg(true), 0);
        let mut w = SerialWorld;
        for _ in 0..30 {
            let s = m.step(&mut w);
            assert!(s.cg_converged);
        }
        assert!(m.state.is_finite());
        // η = ps/g must stay at oceanic magnitudes (metres, not km).
        let eta_max = m.state.ps.interior_max_abs() / crate::grid::GRAVITY;
        assert!(eta_max < 5.0, "eta {eta_max} m");
        assert!(eta_max > 1e-9, "surface never moved");
    }

    #[test]
    fn free_surface_and_rigid_lid_agree_on_slow_dynamics() {
        // The free surface admits (implicitly damped) external gravity
        // waves the rigid lid filters, so velocities differ by a bounded
        // barotropic sloshing transient during spin-up; the slow fields
        // (tracers) must track closely.
        let steps = 20;
        let mut rl = Model::new(cfg(false), 0);
        let mut fs = Model::new(cfg(true), 0);
        let mut w = SerialWorld;
        rl.run(&mut w, steps);
        fs.run(&mut w, steps);
        let scale = rl.state.u.interior_max_abs().max(1e-12);
        let mut max_du = 0.0f64;
        let mut max_dt = 0.0f64;
        for (i, j, k) in rl.state.u.clone().interior() {
            max_du = max_du.max((rl.state.u.at(i, j, k) - fs.state.u.at(i, j, k)).abs());
            max_dt = max_dt.max((rl.state.theta.at(i, j, k) - fs.state.theta.at(i, j, k)).abs());
        }
        assert!(
            max_du < 0.5 * scale,
            "u differs by {max_du} (scale {scale}) — more than sloshing"
        );
        assert!(max_dt < 0.05, "theta differs by {max_dt} K");
    }

    #[test]
    fn free_surface_solver_converges_faster() {
        // The augmented diagonal improves the operator's conditioning:
        // the free-surface solve should need no more iterations than the
        // rigid lid, typically fewer.
        let mut rl = Model::new(cfg(false), 0);
        let mut fs = Model::new(cfg(true), 0);
        let mut w = SerialWorld;
        let mut rl_iters = 0usize;
        let mut fs_iters = 0usize;
        for _ in 0..10 {
            rl_iters += rl.step(&mut w).cg_iterations;
            fs_iters += fs.step(&mut w).cg_iterations;
        }
        assert!(
            fs_iters <= rl_iters + 5,
            "free surface {fs_iters} vs rigid lid {rl_iters}"
        );
    }
}

#[cfg(test)]
mod construction_tests {
    use super::*;
    use crate::decomp::Decomp;

    #[test]
    #[should_panic(expected = "width-3 halo")]
    fn narrow_halo_rejected() {
        let d = Decomp::blocks(16, 8, 1, 1, 2);
        let cfg = ModelConfig::test_ocean(16, 8, 3, d);
        let _ = Model::new(cfg, 0);
    }

    #[test]
    #[should_panic]
    fn rank_out_of_range_rejected() {
        let d = Decomp::blocks(16, 8, 2, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 3, d);
        let _ = Model::new(cfg, 2);
    }
}

#[cfg(test)]
mod partial_cell_model_tests {
    use super::*;
    use crate::config::SurfaceForcing;
    use crate::decomp::Decomp;
    use crate::topography::Topography;
    use hyades_comms::SerialWorld;
    use std::sync::Arc;

    fn shaved_model() -> Model {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let mut cfg = ModelConfig::test_ocean(16, 8, 6, d);
        cfg.forcing = SurfaceForcing::Climatology;
        let topo = Arc::new(Topography::smooth_ridge(&cfg.grid));
        Model::with_topography(cfg, 0, topo)
    }

    #[test]
    fn shaved_cell_run_conserves_tracers_without_forcing() {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 6, d); // forcing: None
        let topo = Arc::new(Topography::smooth_ridge(&cfg.grid));
        let mut m = Model::with_topography(cfg, 0, topo);
        let mut w = SerialWorld;
        let heat = |m: &Model| -> f64 {
            let mut h = 0.0;
            for (i, j, k) in m.state.theta.interior() {
                let vol = m.geom.area_at(j) * m.cfg.grid.dz[k] * m.masks.hc.at(i, j, k);
                h += m.state.theta.at(i, j, k) * vol;
            }
            h
        };
        let before = heat(&m);
        m.run(&mut w, 15);
        let after = heat(&m);
        let rel = ((after - before) / before).abs();
        assert!(rel < 1e-9, "heat drifted by {rel} over shaved cells");
        assert!(m.state.is_finite());
    }

    #[test]
    fn shaved_cell_projection_is_divergence_free_in_partial_volumes() {
        let mut m = shaved_model();
        let mut w = SerialWorld;
        m.run(&mut w, 10);
        // Recompute the depth-integrated divergence with the partial-cell
        // face factors: must sit at solver tolerance.
        let mut ws = crate::kernel::Workspace::new(&m.cfg, &m.tile);
        ws.ustar = m.state.u.clone();
        ws.vstar = m.state.v.clone();
        crate::halo::exchange3(
            &mut w,
            &m.cfg.decomp,
            &m.tile,
            &mut [&mut ws.ustar, &mut ws.vstar],
            1,
        );
        timestep::divergence_rhs(&m.cfg, &m.tile, &m.geom, &m.masks, &mut ws);
        let scale = m.geom.area_at(4) * 1e-6;
        assert!(
            ws.rhs.interior_max_abs() < scale,
            "divergence {} over shaved cells",
            ws.rhs.interior_max_abs()
        );
    }

    #[test]
    fn flow_feels_the_ridge() {
        let mut m = shaved_model();
        let mut w = SerialWorld;
        m.run(&mut w, 40);
        assert!(m.state.is_finite());
        // Bottom-intensified blocking: speeds in the deepest level above
        // the ridge crest region stay bounded and the run is stable.
        let s = m
            .state
            .u
            .interior_max_abs()
            .max(m.state.v.interior_max_abs());
        assert!(s > 1e-6 && s < 3.0, "speed {s}");
    }
}

//! Spherical lat–lon Arakawa C-grid geometry.
//!
//! The global domain spans all longitudes and latitudes `±lat_max`
//! (poleward rows are land: walls replace the polar singularity). On the
//! C-grid, tracers/pressure live at cell centres, `u` at west faces, `v`
//! at south faces, and `w` at the interfaces between vertical levels.

use serde::{Deserialize, Serialize};

/// Earth radius (m).
pub const EARTH_RADIUS: f64 = 6.371e6;
/// Rotation rate (rad/s).
pub const OMEGA: f64 = 7.292e-5;
/// Gravitational acceleration (m/s²).
pub const GRAVITY: f64 = 9.81;

/// Global grid description (identical on every tile; tiles index into it
/// with their global offsets).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Grid {
    /// Number of cells in longitude (periodic).
    pub nx: usize,
    /// Number of cells in latitude.
    pub ny: usize,
    /// Number of vertical levels.
    pub nz: usize,
    /// Southernmost cell edge latitude (radians).
    pub lat0: f64,
    /// Cell size in longitude (radians).
    pub dlon: f64,
    /// Cell size in latitude (radians).
    pub dlat: f64,
    /// Level thicknesses (m for the ocean; the atmosphere isomorph uses a
    /// mass-equivalent depth coordinate).
    pub dz: Vec<f64>,
    /// Planet radius (m).
    pub radius: f64,
    /// Rotation rate (rad/s).
    pub omega: f64,
}

impl Grid {
    /// Global lat–lon grid of `nx × ny × nz` cells spanning latitudes
    /// `±lat_max_deg`.
    pub fn global(nx: usize, ny: usize, nz: usize, lat_max_deg: f64, dz: Vec<f64>) -> Grid {
        assert_eq!(dz.len(), nz);
        assert!(nx >= 2 && ny >= 2 && nz >= 1);
        let lat_max = lat_max_deg.to_radians();
        Grid {
            nx,
            ny,
            nz,
            lat0: -lat_max,
            dlon: std::f64::consts::TAU / nx as f64,
            dlat: 2.0 * lat_max / ny as f64,
            dz,
            radius: EARTH_RADIUS,
            omega: OMEGA,
        }
    }

    /// The paper's coupled resolution: 2.8125° (128 × 64).
    pub fn coupled_2p8125(nz: usize, dz: Vec<f64>) -> Grid {
        Grid::global(128, 64, nz, 78.75, dz)
    }

    /// Latitude of cell-centre row `j` (radians), `j ∈ [0, ny)`.
    pub fn lat_c(&self, j: i64) -> f64 {
        self.lat0 + (j as f64 + 0.5) * self.dlat
    }

    /// Latitude of the south face of row `j`.
    pub fn lat_s(&self, j: i64) -> f64 {
        self.lat0 + j as f64 * self.dlat
    }

    /// Grid spacing in x at cell-centre row `j` (m). Clamped away from the
    /// pole (rows outside the domain are land anyway).
    pub fn dx_c(&self, j: i64) -> f64 {
        self.radius * self.lat_c(j).cos().max(1e-3) * self.dlon
    }

    /// Grid spacing in x at the south face of row `j` (m) — where `v`
    /// lives.
    pub fn dx_s(&self, j: i64) -> f64 {
        self.radius * self.lat_s(j).cos().max(1e-3) * self.dlon
    }

    /// Grid spacing in y (m); uniform.
    pub fn dy(&self) -> f64 {
        self.radius * self.dlat
    }

    /// Horizontal cell area at row `j` (m²).
    pub fn cell_area(&self, j: i64) -> f64 {
        self.dx_c(j) * self.dy()
    }

    /// Coriolis parameter at cell-centre row `j`.
    pub fn coriolis_c(&self, j: i64) -> f64 {
        2.0 * self.omega * self.lat_c(j).sin()
    }

    /// Coriolis parameter at the south face of row `j` (for `v` points).
    pub fn coriolis_s(&self, j: i64) -> f64 {
        2.0 * self.omega * self.lat_s(j).sin()
    }

    /// `tan(lat)/R` metric factor at row `j` (spherical momentum metric
    /// terms).
    pub fn metric_tan_over_r(&self, j: i64) -> f64 {
        self.lat_c(j).tan() / self.radius
    }

    /// Total fluid depth if every level is wet (m).
    pub fn full_depth(&self) -> f64 {
        self.dz.iter().sum()
    }

    /// Depth of the centre of level `k` below the surface.
    pub fn z_center(&self, k: usize) -> f64 {
        let above: f64 = self.dz[..k].iter().sum();
        above + 0.5 * self.dz[k]
    }

    /// Smallest horizontal spacing on the grid (CFL limits).
    pub fn min_dx(&self) -> f64 {
        (0..self.ny as i64)
            .map(|j| self.dx_c(j))
            .fold(f64::INFINITY, f64::min)
            .min(self.dy())
    }
}

/// Uniform level thicknesses summing to `total`.
pub fn uniform_levels(nz: usize, total: f64) -> Vec<f64> {
    vec![total / nz as f64; nz]
}

/// Ocean-style stretched levels: thin near the surface, thick at depth,
/// summing to `total`.
pub fn stretched_levels(nz: usize, total: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..nz)
        .map(|k| 1.0 + 2.0 * k as f64 / (nz as f64 - 1.0).max(1.0))
        .collect();
    let sum: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / sum * total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::coupled_2p8125(5, uniform_levels(5, 1.0e4))
    }

    #[test]
    fn shape_and_spacing() {
        let g = grid();
        assert_eq!(g.nx, 128);
        assert_eq!(g.ny, 64);
        assert!((g.dlon.to_degrees() - 2.8125).abs() < 1e-9);
        assert!((g.dlat.to_degrees() - 2.4609375).abs() < 1e-9);
        // dy uniform, ~273 km.
        assert!((g.dy() / 1e3 - 273.7).abs() < 1.0);
    }

    #[test]
    fn equator_dx_is_312_km() {
        let g = grid();
        // At the equator dx = R·dlon ≈ 312.7 km; rows 31/32 straddle it.
        let dx = g.dx_s(32);
        assert!((dx / 1e3 - 312.7).abs() < 1.0, "dx {dx}");
    }

    #[test]
    fn coriolis_antisymmetric() {
        let g = grid();
        for j in 0..32 {
            let south = g.coriolis_c(j);
            let north = g.coriolis_c(63 - j);
            assert!((south + north).abs() < 1e-18, "row {j}");
        }
        // Mid-latitude magnitude ~1e-4.
        let f45 = 2.0 * g.omega * (45f64).to_radians().sin();
        assert!((f45 - 1.03e-4).abs() < 1e-6);
    }

    #[test]
    fn areas_positive_and_latitude_dependent() {
        let g = grid();
        let eq = g.cell_area(32);
        let polar = g.cell_area(0);
        assert!(eq > polar, "equatorial cells are larger");
        assert!(polar > 0.0);
    }

    #[test]
    fn level_helpers() {
        let g = grid();
        assert!((g.full_depth() - 1.0e4).abs() < 1e-9);
        assert!((g.z_center(0) - 1.0e3).abs() < 1e-9);
        assert!((g.z_center(4) - 9.0e3).abs() < 1e-9);
    }

    #[test]
    fn stretched_levels_sum_and_grow() {
        let dz = stretched_levels(15, 4000.0);
        assert_eq!(dz.len(), 15);
        assert!((dz.iter().sum::<f64>() - 4000.0).abs() < 1e-9);
        assert!(dz[14] > dz[0] * 2.5);
    }

    #[test]
    fn min_dx_at_wall_row() {
        let g = grid();
        // Smallest dx at the highest latitude row.
        let expect = g.dx_c(0).min(g.dx_c(63));
        assert!((g.min_dx() - expect.min(g.dy())).abs() < 1e-9);
    }
}

//! Per-tile model state, masks, and initial conditions.

use crate::config::ModelConfig;
use crate::eos::FluidKind;
use crate::field::{Field2, Field3};
use crate::tile::Tile;
use crate::topography::Topography;

/// Land/wet masks and column geometry on a tile (including halo, built
/// directly from the global topography so no exchange is needed).
#[derive(Clone, Debug)]
pub struct Masks {
    /// Cell-centre wet mask (1.0 wet / 0.0 land).
    pub c: Field3,
    /// West-face (u-point) mask.
    pub u: Field3,
    /// South-face (v-point) mask.
    pub v: Field3,
    /// Cell thickness factors (1 interior, shaved fraction at the bottom,
    /// 0 on land) — the §3.2 partial cells.
    pub hc: Field3,
    /// Face thickness factors: the open fraction of each u/v face (the
    /// minimum of the two adjacent cells).
    pub hu: Field3,
    pub hv: Field3,
    /// Wet levels per column.
    pub kmax: Field2,
    /// Fluid depth per column (m, or Pa for the atmosphere isomorph).
    pub depth: Field2,
    /// Number of wet interior cells on this tile.
    pub wet_cells: u64,
}

impl Masks {
    pub fn build(cfg: &ModelConfig, tile: &Tile, topo: &Topography) -> Masks {
        let (nx, ny, nz, h) = (tile.nx, tile.ny, cfg.grid.nz, tile.halo);
        let mut c = Field3::new(nx, ny, nz, h);
        let mut u = Field3::new(nx, ny, nz, h);
        let mut v = Field3::new(nx, ny, nz, h);
        let mut hc = Field3::new(nx, ny, nz, h);
        let mut hu = Field3::new(nx, ny, nz, h);
        let mut hv = Field3::new(nx, ny, nz, h);
        let mut kmax = Field2::new(nx, ny, h);
        let mut depth = Field2::new(nx, ny, h);
        let hi = h as i64;
        for j in -hi..(ny as i64 + hi) {
            for i in -hi..(nx as i64 + hi) {
                let (gi, gj) = (tile.gx(i), tile.gy(j));
                kmax.set(i, j, topo.kmax(gi, gj) as f64);
                depth.set(i, j, topo.depth(&cfg.grid, gi, gj));
                for k in 0..nz {
                    let wc = topo.wet(gi, gj, k);
                    c.set(i, j, k, wc as u8 as f64);
                    let wu = wc && topo.wet(gi - 1, gj, k);
                    u.set(i, j, k, wu as u8 as f64);
                    let wv = wc && topo.wet(gi, gj - 1, k);
                    v.set(i, j, k, wv as u8 as f64);
                    // Partial-cell factors (1.0 on full cells).
                    let fc = topo.hfac(gi, gj, k);
                    hc.set(i, j, k, fc);
                    hu.set(i, j, k, fc.min(topo.hfac(gi - 1, gj, k)));
                    hv.set(i, j, k, fc.min(topo.hfac(gi, gj - 1, k)));
                }
            }
        }
        let mut wet_cells = 0;
        for (i, j, k) in c.interior() {
            if c.at(i, j, k) > 0.0 {
                wet_cells += 1;
            }
        }
        Masks {
            c,
            u,
            v,
            hc,
            hu,
            hv,
            kmax,
            depth,
            wet_cells,
        }
    }
}

/// Prognostic and diagnostic fields of one tile.
#[derive(Clone, Debug)]
pub struct ModelState {
    /// Zonal velocity at west faces (m/s).
    pub u: Field3,
    /// Meridional velocity at south faces (m/s).
    pub v: Field3,
    /// Vertical velocity at the top interface of each cell (m/s, or Pa/s
    /// for the atmosphere).
    pub w: Field3,
    /// Potential temperature (K / °C).
    pub theta: Field3,
    /// Second tracer: salinity (psu) or specific humidity (kg/kg).
    pub s: Field3,
    /// Adams–Bashforth history: tendencies from the previous step.
    pub gu_prev: Field3,
    pub gv_prev: Field3,
    pub gt_prev: Field3,
    pub gs_prev: Field3,
    /// AB2 history for prognostic `w` (non-hydrostatic mode only).
    pub gw_prev: Field3,
    /// Surface pressure / surface geopotential (m²/s², i.e. p/ρ0).
    pub ps: Field2,
    /// Hydrostatic pressure / geopotential anomaly at cell centres.
    pub phy: Field3,
    /// Buoyancy.
    pub b: Field3,
    /// True until the first step has run (the AB2 history is empty and the
    /// step runs forward-Euler).
    pub first_step: bool,
}

/// Deterministic, decomposition-independent perturbation in `[-1, 1]`
/// keyed by global cell index.
pub fn perturbation(seed: u64, gi: i64, gj: i64, k: usize) -> f64 {
    let mut z = seed
        ^ (gi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (gj as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (k as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

impl ModelState {
    /// State at rest with a stably-stratified temperature field, a uniform
    /// second tracer, and a small deterministic perturbation to break
    /// zonal symmetry.
    pub fn initial(cfg: &ModelConfig, tile: &Tile, masks: &Masks) -> ModelState {
        let (nx, ny, nz, h) = (tile.nx, tile.ny, cfg.grid.nz, tile.halo);
        let f3 = || Field3::new(nx, ny, nz, h);
        let mut st = ModelState {
            u: f3(),
            v: f3(),
            w: f3(),
            theta: f3(),
            s: f3(),
            gu_prev: f3(),
            gv_prev: f3(),
            gt_prev: f3(),
            gs_prev: f3(),
            gw_prev: f3(),
            ps: Field2::new(nx, ny, h),
            phy: f3(),
            b: f3(),
            first_step: true,
        };
        let hi = h as i64;
        for j in -hi..(ny as i64 + hi) {
            for i in -hi..(nx as i64 + hi) {
                let (gi, gj) = (tile.gx(i), tile.gy(j));
                let lat = cfg.grid.lat_c(tile.gy(j).clamp(0, cfg.grid.ny as i64 - 1));
                for k in 0..nz {
                    if masks.c.at(i, j, k) == 0.0 {
                        continue;
                    }
                    let pert = 0.05 * perturbation(cfg.seed, gi, gj, k);
                    let (theta, s) = match cfg.eos.kind {
                        FluidKind::Ocean => {
                            // Warm surface, cold abyss; meridional gradient
                            // confined to the upper levels.
                            let z = cfg.grid.z_center(k);
                            let surface = 2.0 + 25.0 * lat.cos().powi(2);
                            let t = 2.0 + (surface - 2.0) * (-z / 1000.0).exp();
                            (t + pert, 35.0 + 0.5 * (-z / 500.0).exp())
                        }
                        FluidKind::Atmosphere => {
                            // θ increasing with height (stable), warm
                            // equator.
                            let frac = (k as f64 + 0.5) / nz as f64;
                            let t = 270.0 + 45.0 * frac + 25.0 * lat.cos().powi(2) * (1.0 - frac);
                            (t + pert, 0.010 * lat.cos().powi(2) * (1.0 - frac).max(0.0))
                        }
                    };
                    st.theta.set(i, j, k, theta);
                    st.s.set(i, j, k, s);
                }
            }
        }
        st
    }

    /// All prognostic fields finite?
    pub fn is_finite(&self) -> bool {
        self.u.all_finite()
            && self.v.all_finite()
            && self.w.all_finite()
            && self.theta.all_finite()
            && self.s.all_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomp;
    use crate::topography::Topography;

    fn setup() -> (ModelConfig, Tile, Masks) {
        let d = Decomp::blocks(16, 8, 1, 1, 3);
        let cfg = ModelConfig::test_ocean(16, 8, 4, d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        (cfg, tile, masks)
    }

    #[test]
    fn masks_on_aquaplanet() {
        let (cfg, tile, masks) = setup();
        assert_eq!(masks.wet_cells, (16 * 8 * 4) as u64);
        // Interior cells wet; u faces wet (periodic).
        assert_eq!(masks.c.at(0, 0, 0), 1.0);
        assert_eq!(masks.u.at(0, 0, 0), 1.0);
        // v face at the southern wall is land-masked (j-1 outside).
        assert_eq!(masks.v.at(3, 0, 0), 0.0);
        assert_eq!(masks.v.at(3, 1, 0), 1.0);
        // Halo rows beyond the wall are land.
        assert_eq!(masks.c.at(3, -1, 0), 0.0);
        let _ = (cfg, tile);
    }

    #[test]
    fn initial_state_is_stably_stratified() {
        let (cfg, tile, masks) = setup();
        let st = ModelState::initial(&cfg, &tile, &masks);
        // Ocean: buoyancy must decrease with depth almost everywhere (the
        // 0.05 K perturbation cannot overturn a ~1 K/level gradient).
        let mut violations = 0;
        for j in 0..8i64 {
            for i in 0..16i64 {
                for k in 0..3usize {
                    let b0 = cfg.eos.buoyancy(st.theta.at(i, j, k), st.s.at(i, j, k), k);
                    let b1 =
                        cfg.eos
                            .buoyancy(st.theta.at(i, j, k + 1), st.s.at(i, j, k + 1), k + 1);
                    if cfg.eos.unstable(b0, b1) {
                        violations += 1;
                    }
                }
            }
        }
        assert_eq!(violations, 0);
        assert!(st.is_finite());
        assert!(st.first_step);
    }

    #[test]
    fn initial_state_at_rest() {
        let (cfg, tile, masks) = setup();
        let st = ModelState::initial(&cfg, &tile, &masks);
        assert_eq!(st.u.interior_max_abs(), 0.0);
        assert_eq!(st.v.interior_max_abs(), 0.0);
        assert_eq!(st.ps.interior_max_abs(), 0.0);
    }

    #[test]
    fn perturbation_is_deterministic_and_bounded() {
        for gi in [-3i64, 0, 7, 127] {
            for gj in [0i64, 5] {
                let a = perturbation(42, gi, gj, 2);
                let b = perturbation(42, gi, gj, 2);
                assert_eq!(a, b);
                assert!((-1.0..=1.0).contains(&a));
                assert_ne!(a, perturbation(43, gi, gj, 2));
            }
        }
    }

    #[test]
    fn atmosphere_initial_profile() {
        let d = Decomp::blocks(128, 64, 1, 1, 3);
        let cfg = ModelConfig::atmosphere_2p8125(d);
        let tile = d.tile(0);
        let topo = Topography::aquaplanet(&cfg.grid);
        let masks = Masks::build(&cfg, &tile, &topo);
        let st = ModelState::initial(&cfg, &tile, &masks);
        // θ increases with height (stable) and is warmer at the equator
        // near the surface.
        let eq = 32i64;
        let pole = 2i64;
        assert!(st.theta.at(0, eq, 4) > st.theta.at(0, eq, 0));
        assert!(st.theta.at(0, eq, 0) > st.theta.at(0, pole, 0));
        // Humidity is confined to the warm lower levels.
        assert!(st.s.at(0, eq, 0) > st.s.at(0, eq, 4));
    }
}

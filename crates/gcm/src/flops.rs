//! Floating-point operation accounting.
//!
//! The performance model of §5.2 is parameterized by `Nps` and `Nds`, the
//! number of floating-point operations per grid cell in the PS and DS
//! phases, "determined by inspecting the model code" (Figure 11: 781 for
//! the atmosphere, 751 for the ocean, 36 per column per solver iteration).
//! We do the same inspection mechanically: every kernel declares the flop
//! count of its inner loop body next to the loop and reports
//! `cells × flops_per_cell` to a thread-local counter, scoped by phase.
//! Figure 11 can then show the paper's counts alongside the counts
//! *measured from this implementation*.

use std::cell::Cell;

thread_local! {
    static PS_FLOPS: Cell<u64> = const { Cell::new(0) };
    static DS_FLOPS: Cell<u64> = const { Cell::new(0) };
}

/// Which phase the work belongs to (Figure 6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Prognostic step: tendencies, hydrostatic pressure, state update.
    Ps,
    /// Diagnostic step: the surface-pressure solver.
    Ds,
}

/// Record `n` floating-point operations in `phase`.
#[inline]
pub fn add(phase: Phase, n: u64) {
    match phase {
        Phase::Ps => PS_FLOPS.with(|c| c.set(c.get() + n)),
        Phase::Ds => DS_FLOPS.with(|c| c.set(c.get() + n)),
    }
}

/// Record work over `cells` cells at `per_cell` flops each.
#[inline]
pub fn add_cells(phase: Phase, cells: u64, per_cell: u64) {
    add(phase, cells * per_cell);
}

/// Read the current counters (ps, ds).
pub fn read() -> (u64, u64) {
    (PS_FLOPS.with(Cell::get), DS_FLOPS.with(Cell::get))
}

/// Reset both counters, returning their previous values.
pub fn reset() -> (u64, u64) {
    let out = read();
    PS_FLOPS.with(|c| c.set(0));
    DS_FLOPS.with(|c| c.set(0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_phase() {
        reset();
        add(Phase::Ps, 100);
        add(Phase::Ds, 7);
        add_cells(Phase::Ps, 10, 5);
        assert_eq!(read(), (150, 7));
        assert_eq!(reset(), (150, 7));
        assert_eq!(read(), (0, 0));
    }

    #[test]
    fn thread_local_isolation() {
        reset();
        add(Phase::Ps, 42);
        let other = std::thread::spawn(|| {
            add(Phase::Ps, 1);
            read().0
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        assert_eq!(read().0, 42);
        reset();
    }
}

//! A packet-level Ethernet-switch baseline with the same observability
//! hooks as the Arctic fabric.
//!
//! The [`ethernet`](crate::ethernet) module carries the paper's
//! *analytical* Ethernet comparators (primitive costs measured on real
//! hardware). This module adds a small *simulated* comparator: one
//! store-and-forward switch with per-output-port FIFO queues, so the
//! Arctic-vs-Ethernet contrast the paper asserts (§6) becomes observable
//! — the identical `telemetry::sampler` ticks that profile Arctic's
//! links profile the Ethernet switch ports, and the same congestion that
//! Arctic's fat-tree spreads across path diversity piles up visibly in a
//! single switch queue.
//!
//! Model choices (deliberately simple; this is a contrast baseline, not
//! a switch model):
//!
//! * **Store-and-forward**: a frame is queued for its output port only
//!   after it has fully arrived; output serialization restarts per hop
//!   (unlike Arctic's cut-through, which pays serialization once).
//! * **Single switch**, one output port per endpoint, each at the link
//!   rate (Fast Ethernet 12.5 MByte/s, Gigabit 125 MByte/s).
//! * **Ethernet framing**: 64-byte minimum frame, plus 38 bytes of
//!   preamble / header / FCS / inter-frame gap overhead per frame — the
//!   reason fine-grain traffic collapses on Ethernet (§6's tgsum gap).

use hyades_des::event::Payload;
use hyades_des::{Actor, ActorId, Ctx, SimDuration, SimTime, Simulator};
use hyades_telemetry::prom::PromText;
use hyades_telemetry::sampler::{self, SampleSet, SampleTick, SamplerActor};
use std::collections::VecDeque;

/// Minimum Ethernet frame payload-bearing size (bytes on the wire before
/// overhead).
pub const MIN_FRAME_BYTES: u64 = 64;
/// Per-frame overhead: preamble+SFD (8) + MAC header (14) + FCS (4) +
/// inter-frame gap (12).
pub const FRAME_OVERHEAD_BYTES: u64 = 38;

/// Link rates of the paper's comparator Ethernets, in MByte/s.
pub const FAST_ETHERNET_MBYTE_PER_SEC: f64 = 12.5;
pub const GIGABIT_ETHERNET_MBYTE_PER_SEC: f64 = 125.0;

/// A frame in flight.
#[derive(Clone, Debug)]
pub struct EtherFrame {
    pub src: u16,
    pub dst: u16,
    /// User bytes carried.
    pub payload_bytes: u64,
    pub injected_at: SimTime,
}

impl EtherFrame {
    /// Bytes the frame occupies on a link, with minimum-size padding and
    /// framing overhead.
    pub fn wire_bytes(&self) -> u64 {
        self.payload_bytes.max(MIN_FRAME_BYTES) + FRAME_OVERHEAD_BYTES
    }
}

/// Delivery event to an endpoint actor.
pub struct EtherDelivered {
    pub frame: EtherFrame,
}

/// Injection event: switch a frame towards its destination.
pub struct EtherInject(pub EtherFrame);

enum SwitchEv {
    /// A frame has fully arrived at the switch (store-and-forward).
    Recv(EtherFrame),
    /// Output port `port` may have become free.
    TryTx { port: usize },
}

struct OutPort {
    endpoint: ActorId,
    free_at: SimTime,
    queue: VecDeque<(SimTime, EtherFrame)>,
    packets: u64,
    bytes: u64,
    max_queue: usize,
    busy_ps: u64,
    sampled_busy_ps: u64,
    stall_ps: u64,
    stalls: u64,
}

/// One store-and-forward switch: the whole "fabric" of the baseline.
pub struct SwitchActor {
    rate_mbyte_per_sec: f64,
    /// Switching latency applied to each frame before it is eligible for
    /// its output port.
    pub forward_latency: SimDuration,
    ports: Vec<OutPort>,
}

impl SwitchActor {
    fn port_for(&self, dst: u16) -> usize {
        dst as usize
    }

    fn recv(&mut self, frame: EtherFrame, ctx: &mut Ctx<'_>) {
        let port = self.port_for(frame.dst);
        let ready = ctx.now() + self.forward_latency;
        let q = &mut self.ports[port];
        q.queue.push_back((ready, frame));
        q.max_queue = q.max_queue.max(q.queue.len());
        let at = ready.max(q.free_at);
        ctx.send_after(at - ctx.now(), ctx.self_id(), SwitchEv::TryTx { port });
    }

    fn try_tx(&mut self, port: usize, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let q = &mut self.ports[port];
        if now < q.free_at || q.queue.is_empty() {
            return;
        }
        let Some((ready, frame)) = q.queue.pop_front() else {
            return;
        };
        let waited = now.as_ps().saturating_sub(ready.as_ps());
        if waited > 0 {
            q.stalls += 1;
            q.stall_ps += waited;
        }
        let ser = SimDuration::for_bytes_at(frame.wire_bytes(), self.rate_mbyte_per_sec);
        q.free_at = now + ser;
        q.packets += 1;
        q.bytes += frame.wire_bytes();
        q.busy_ps += ser.as_ps();
        // Store-and-forward: the endpoint sees the frame once it has
        // fully serialized out of the switch.
        ctx.send_after(ser, q.endpoint, EtherDelivered { frame });
        if !self.ports[port].queue.is_empty() {
            let free = self.ports[port].free_at;
            ctx.send_after(free - now, ctx.self_id(), SwitchEv::TryTx { port });
        }
    }

    /// Answer a [`SampleTick`] with the same metrics the Arctic routers
    /// report, under the `ether.link` component.
    fn sample(&mut self, ctx: &mut Ctx<'_>) {
        if !sampler::installed() {
            return;
        }
        let now = ctx.now();
        for (i, q) in self.ports.iter_mut().enumerate() {
            let entity = format!("p{i}");
            sampler::record("ether.link", &entity, "occ", now, q.queue.len() as f64);
            let busy = q.busy_ps - q.sampled_busy_ps;
            q.sampled_busy_ps = q.busy_ps;
            sampler::record("ether.link", &entity, "busy_us", now, busy as f64 / 1e6);
        }
    }
}

impl Actor for SwitchActor {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        match ev.downcast::<SwitchEv>() {
            Ok(ev) => match *ev {
                SwitchEv::Recv(f) => self.recv(f, ctx),
                SwitchEv::TryTx { port } => self.try_tx(port, ctx),
            },
            Err(other) => match other.downcast::<SampleTick>() {
                Ok(_) => self.sample(ctx),
                Err(_) => panic!("switch received unexpected event"),
            },
        }
    }
}

/// The assembled baseline: endpoints' injection NICs feeding one switch.
pub struct EthernetSim {
    switch: ActorId,
    rate_mbyte_per_sec: f64,
    n: u16,
}

impl EthernetSim {
    /// Build the switch for `endpoint_actors.len()` endpoints;
    /// `endpoint_actors[i]` receives [`EtherDelivered`] events addressed
    /// to endpoint `i`.
    pub fn build(
        sim: &mut Simulator,
        endpoint_actors: &[ActorId],
        rate_mbyte_per_sec: f64,
    ) -> Self {
        let ports = endpoint_actors
            .iter()
            .map(|&ep| OutPort {
                endpoint: ep,
                free_at: SimTime::ZERO,
                queue: VecDeque::new(),
                packets: 0,
                bytes: 0,
                max_queue: 0,
                busy_ps: 0,
                sampled_busy_ps: 0,
                stall_ps: 0,
                stalls: 0,
            })
            .collect();
        let switch = sim.add_actor(SwitchActor {
            rate_mbyte_per_sec,
            // A contemporary store-and-forward switch forwarding decision.
            forward_latency: SimDuration::from_us_f64(5.0),
            ports,
        });
        EthernetSim {
            switch,
            rate_mbyte_per_sec,
            n: endpoint_actors.len() as u16,
        }
    }

    pub fn n_endpoints(&self) -> u16 {
        self.n
    }

    pub fn switch_actor(&self) -> ActorId {
        self.switch
    }

    /// Inject a frame from outside the simulation: it reaches the switch
    /// after its own injection-link serialization (store-and-forward).
    pub fn inject_at(&self, sim: &mut Simulator, at: SimTime, mut frame: EtherFrame) {
        assert!(frame.dst < self.n, "dst out of range");
        frame.injected_at = at;
        let arrival = SimDuration::for_bytes_at(frame.wire_bytes(), self.rate_mbyte_per_sec);
        sim.schedule(at + arrival, self.switch, SwitchEv::Recv(frame));
    }

    /// Start the sampler over the switch (install first with
    /// [`sampler::install`], or use [`EthernetSim::observe`]).
    pub fn observe(&self, sim: &mut Simulator, interval: SimDuration, until: SimTime) -> ActorId {
        sampler::install(interval);
        SamplerActor::start(sim, vec![self.switch], interval, until)
    }

    /// Per-port summary after a run: (packets, bytes, max queue depth,
    /// stalls, stall picoseconds), indexed by destination endpoint.
    pub fn port_stats(&self, sim: &Simulator, port: usize) -> (u64, u64, usize, u64, u64) {
        let s = sim.actor::<SwitchActor>(self.switch);
        let p = &s.ports[port];
        (p.packets, p.bytes, p.max_queue, p.stalls, p.stall_ps)
    }

    /// Render the sampled switch series as a Prometheus exposition with
    /// the same shape as the Arctic exporter (deterministic byte-wise).
    pub fn prometheus(samples: &SampleSet) -> String {
        let mut p = PromText::new();
        p.type_line("hyades_ether_occ_mean", "gauge");
        for (k, s) in samples.iter() {
            if k.component == "ether.link" && k.metric == "occ" {
                p.sample("hyades_ether_occ_mean", &[("port", &k.entity)], s.mean());
            }
        }
        p.type_line("hyades_ether_occ_p99", "gauge");
        for (k, s) in samples.iter() {
            if k.component == "ether.link" && k.metric == "occ" {
                p.sample("hyades_ether_occ_p99", &[("port", &k.entity)], s.p99());
            }
        }
        p.type_line("hyades_ether_busy_us_total", "counter");
        for (k, s) in samples.iter() {
            if k.component == "ether.link" && k.metric == "busy_us" {
                let total: f64 = s.points.iter().map(|&(_, v)| v).sum();
                p.sample("hyades_ether_busy_us_total", &[("port", &k.entity)], total);
            }
        }
        p.finish()
    }
}

/// A sink endpoint recording deliveries (mirror of the Arctic one).
#[derive(Default)]
pub struct EtherSink {
    pub deliveries: Vec<(SimTime, EtherFrame)>,
}

impl Actor for EtherSink {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        if let Ok(d) = ev.downcast::<EtherDelivered>() {
            self.deliveries.push((ctx.now(), d.frame));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: u16, rate: f64) -> (Simulator, EthernetSim, Vec<ActorId>) {
        let mut sim = Simulator::new();
        let eps: Vec<ActorId> = (0..n)
            .map(|_| sim.add_actor(EtherSink::default()))
            .collect();
        let net = EthernetSim::build(&mut sim, &eps, rate);
        (sim, net, eps)
    }

    #[test]
    fn single_frame_latency_is_two_serializations_plus_forwarding() {
        let (mut sim, net, eps) = build(4, FAST_ETHERNET_MBYTE_PER_SEC);
        let frame = EtherFrame {
            src: 0,
            dst: 3,
            payload_bytes: 1000,
            injected_at: SimTime::ZERO,
        };
        let wire = frame.wire_bytes();
        net.inject_at(&mut sim, SimTime::ZERO, frame);
        sim.run();
        let sink = sim.actor::<EtherSink>(eps[3]);
        assert_eq!(sink.deliveries.len(), 1);
        let ser = SimDuration::for_bytes_at(wire, FAST_ETHERNET_MBYTE_PER_SEC);
        let expected = ser + SimDuration::from_us_f64(5.0) + ser;
        assert_eq!(sink.deliveries[0].0.since(SimTime::ZERO), expected);
        // Store-and-forward at 12.5 MB/s: ~171 us for a 1000-byte frame —
        // two orders beyond Arctic's ~1.3 us small-packet latency.
        assert!(expected.as_us_f64() > 150.0);
    }

    #[test]
    fn min_frame_padding_and_overhead_apply() {
        let f = EtherFrame {
            src: 0,
            dst: 1,
            payload_bytes: 8,
            injected_at: SimTime::ZERO,
        };
        assert_eq!(f.wire_bytes(), MIN_FRAME_BYTES + FRAME_OVERHEAD_BYTES);
    }

    #[test]
    fn hotspot_queue_is_visible_to_the_sampler() {
        let (mut sim, net, _) = build(8, FAST_ETHERNET_MBYTE_PER_SEC);
        let sampler_id = net.observe(
            &mut sim,
            SimDuration::from_us(50),
            SimTime::from_us_f64(5000.0),
        );
        // 7 sources hammer endpoint 0 — on a single switch there is no
        // path diversity to hide behind.
        for s in 1..8u16 {
            for i in 0..10 {
                net.inject_at(
                    &mut sim,
                    SimTime::from_us_f64(i as f64),
                    EtherFrame {
                        src: s,
                        dst: 0,
                        payload_bytes: 1000,
                        injected_at: SimTime::ZERO,
                    },
                );
            }
        }
        sim.run();
        let ticks = sim.actor::<SamplerActor>(sampler_id).ticks;
        assert!(ticks > 0);
        let samples = sampler::take().expect("observed run");
        let s = samples.get("ether.link", "p0", "occ").expect("sampled");
        assert!(
            s.p99() > 4.0,
            "70 frames into one 12.5 MB/s port must queue: p99 {}",
            s.p99()
        );
        let (packets, _, max_q, stalls, _) = net.port_stats(&sim, 0);
        assert_eq!(packets, 70);
        assert!(max_q > 4);
        assert!(stalls > 0);
        let prom = EthernetSim::prometheus(&samples);
        assert!(prom.contains("hyades_ether_occ_p99{port=\"p0\"}"));
    }

    #[test]
    fn deterministic_double_run_is_byte_identical() {
        let run = || {
            let (mut sim, net, _) = build(4, GIGABIT_ETHERNET_MBYTE_PER_SEC);
            net.observe(
                &mut sim,
                SimDuration::from_us(20),
                SimTime::from_us_f64(500.0),
            );
            for s in 1..4u16 {
                for i in 0..5 {
                    net.inject_at(
                        &mut sim,
                        SimTime::from_us_f64(i as f64 * 7.0),
                        EtherFrame {
                            src: s,
                            dst: 0,
                            payload_bytes: 500,
                            injected_at: SimTime::ZERO,
                        },
                    );
                }
            }
            sim.run();
            EthernetSim::prometheus(&sampler::take().expect("observed"))
        };
        assert_eq!(run(), run());
    }
}

//! Comparator machines of Figure 10.
//!
//! Figure 10 compares the sustained performance of the coarse-resolution
//! ocean isomorph across contemporary vector supercomputers and Hyades.
//! The vector machines are comparator data: we model each as a peak rate ×
//! a vector efficiency on the GCM kernel, with the sustained values pinned
//! to the paper's measurements. The Hyades rows, by contrast, are
//! *computed* by this reproduction from the performance model
//! (`hyades-perf`), not copied.

/// A vector supercomputer entry.
#[derive(Clone, Debug)]
pub struct VectorMachine {
    pub name: &'static str,
    pub processors: u32,
    /// Architectural peak per processor, MFlop/s.
    pub peak_mflops_per_proc: f64,
    /// Sustained MFlop/s on the GCM ocean isomorph (paper's Figure 10).
    pub sustained_mflops: f64,
}

impl VectorMachine {
    /// Fraction of peak the GCM kernel sustains.
    pub fn efficiency(&self) -> f64 {
        self.sustained_mflops / (self.peak_mflops_per_proc * self.processors as f64)
    }
}

/// The vector-machine rows of Figure 10.
///
/// Peak rates: Cray Y-MP 333 MFlop/s per CPU, Cray C90 ~1 GFlop/s per CPU,
/// NEC SX-4 2 GFlop/s per CPU. Note the paper's Y-MP single-processor
/// figure (0.4 GFlop/s) nominally exceeds the Y-MP peak — we preserve the
/// published value and surface the anomaly via `efficiency() > 1`.
pub fn figure10_vector_rows() -> Vec<VectorMachine> {
    vec![
        VectorMachine {
            name: "Cray Y-MP",
            processors: 1,
            peak_mflops_per_proc: 333.0,
            sustained_mflops: 400.0,
        },
        VectorMachine {
            name: "Cray Y-MP",
            processors: 4,
            peak_mflops_per_proc: 333.0,
            sustained_mflops: 1_500.0,
        },
        VectorMachine {
            name: "Cray C90",
            processors: 1,
            peak_mflops_per_proc: 1_000.0,
            sustained_mflops: 600.0,
        },
        VectorMachine {
            name: "Cray C90",
            processors: 4,
            peak_mflops_per_proc: 1_000.0,
            sustained_mflops: 2_200.0,
        },
        VectorMachine {
            name: "NEC SX-4",
            processors: 1,
            peak_mflops_per_proc: 2_000.0,
            sustained_mflops: 700.0,
        },
        VectorMachine {
            name: "NEC SX-4",
            processors: 4,
            peak_mflops_per_proc: 2_000.0,
            sustained_mflops: 2_700.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contents() {
        let rows = figure10_vector_rows();
        assert_eq!(rows.len(), 6);
        let c90_4 = rows
            .iter()
            .find(|r| r.name == "Cray C90" && r.processors == 4)
            .unwrap();
        assert_eq!(c90_4.sustained_mflops, 2_200.0);
    }

    #[test]
    fn multi_processor_scaling_is_sublinear() {
        let rows = figure10_vector_rows();
        for name in ["Cray Y-MP", "Cray C90", "NEC SX-4"] {
            let one = rows
                .iter()
                .find(|r| r.name == name && r.processors == 1)
                .unwrap();
            let four = rows
                .iter()
                .find(|r| r.name == name && r.processors == 4)
                .unwrap();
            let speedup = four.sustained_mflops / one.sustained_mflops;
            assert!(
                speedup > 3.0 && speedup <= 4.0,
                "{name}: 4-proc speedup {speedup}"
            );
        }
    }

    #[test]
    fn efficiencies_reasonable_except_ymp_anomaly() {
        for r in figure10_vector_rows() {
            if r.name == "Cray Y-MP" {
                // Published sustained exceeds nominal peak; documented.
                assert!(r.efficiency() > 1.0);
            } else {
                assert!(
                    (0.2..0.8).contains(&r.efficiency()),
                    "{}: {}",
                    r.name,
                    r.efficiency()
                );
            }
        }
    }
}

//! # hyades-cluster — the Hyades cluster and its comparators
//!
//! Models the machines of the SC'99 paper's evaluation:
//!
//! * [`node`] — the dual-processor SMP nodes (400-MHz Pentium II, shared
//!   memory semaphores, per-phase sustained floating-point rates measured by
//!   the paper's stand-alone kernels: 50 MFlop/s in PS, 60 MFlop/s in DS).
//! * [`hyades`] — the sixteen-SMP cluster assembly: nodes + StarT-X NIUs +
//!   the Arctic fabric, with the cost/configuration facts of §2.
//! * [`interconnect`] — the analytic primitive-cost interface the
//!   performance model consumes: the cost of a global sum, a halo exchange,
//!   a barrier, and a point-to-point leg on a given interconnect.
//! * [`ethernet`] — Fast Ethernet, Gigabit Ethernet (MPI) and HPVM/Myrinet
//!   baseline interconnect models, calibrated to the paper's stand-alone
//!   benchmark measurements (Figure 12 and §6). These are comparator
//!   models: the paper measured them on real hardware we cannot obtain, so
//!   the primitive costs are taken from the paper's own table and the
//!   derived quantities (Pfpp, crossovers) are recomputed from them.
//! * [`ethernet_sim`] — a packet-level store-and-forward Ethernet switch
//!   carrying the same `telemetry::sampler` hooks as the Arctic fabric,
//!   so the Arctic-vs-Ethernet contrast is observable per-port rather
//!   than only asserted from the paper's tables.
//! * [`machines`] — the vector supercomputers of Figure 10 (Cray Y-MP,
//!   Cray C90, NEC SX-4) as sustained-rate comparator models.

pub mod ethernet;
pub mod ethernet_sim;
pub mod hyades;
pub mod interconnect;
pub mod machines;
pub mod node;

pub use hyades::HyadesCluster;
pub use interconnect::{ExchangeShape, Interconnect};
pub use node::{CpuPerf, SmpNode};

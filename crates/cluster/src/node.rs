//! The SMP processing node (§2.1) and its intra-node communication costs
//! (§4.1–4.2).

use hyades_des::SimDuration;

/// Sustained per-processor floating-point rates of a 400-MHz Pentium II on
/// the GCM kernels, as measured by the paper's stand-alone single-processor
/// benchmarks (Figure 11).
#[derive(Clone, Copy, Debug)]
pub struct CpuPerf {
    /// Sustained rate on the PS (prognostic step) kernel, MFlop/s.
    pub fps_mflops: f64,
    /// Sustained rate on the DS (diagnostic step / CG solver) kernel,
    /// MFlop/s.
    pub fds_mflops: f64,
}

impl Default for CpuPerf {
    fn default() -> Self {
        CpuPerf {
            fps_mflops: 50.0,
            fds_mflops: 60.0,
        }
    }
}

impl CpuPerf {
    /// Time to execute `flops` floating-point operations in the PS phase.
    pub fn ps_time(&self, flops: u64) -> SimDuration {
        SimDuration::from_secs_f64(flops as f64 / (self.fps_mflops * 1e6))
    }

    /// Time to execute `flops` floating-point operations in the DS phase.
    pub fn ds_time(&self, flops: u64) -> SimDuration {
        SimDuration::from_secs_f64(flops as f64 / (self.fds_mflops * 1e6))
    }
}

/// A two-way SMP node.
#[derive(Clone, Copy, Debug)]
pub struct SmpNode {
    pub cpus: u32,
    pub memory_mbytes: u32,
    pub cpu: CpuPerf,
    /// Extra latency the intra-SMP shared-memory combine adds to a global
    /// sum (§4.2: "about 1 µs").
    pub smp_gsum_local: SimDuration,
    /// Fractional bandwidth loss for slave-to-slave exchanges relative to
    /// master-to-master (§4.1: "about 30 % lower").
    pub slave_exchange_penalty: f64,
}

impl Default for SmpNode {
    fn default() -> Self {
        SmpNode {
            cpus: 2,
            memory_mbytes: 512,
            cpu: CpuPerf::default(),
            smp_gsum_local: SimDuration::from_us(1),
            slave_exchange_penalty: 0.30,
        }
    }
}

impl SmpNode {
    /// Effective exchange bandwidth for a slave processor, given the
    /// master-to-master bandwidth.
    pub fn slave_bandwidth(&self, master_mbyte_per_sec: f64) -> f64 {
        master_mbyte_per_sec * (1.0 - self.slave_exchange_penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_rates() {
        let cpu = CpuPerf::default();
        // 50 MFlop at 50 MFlop/s is one second.
        assert_eq!(cpu.ps_time(50_000_000), SimDuration::from_secs_f64(1.0));
        assert_eq!(cpu.ds_time(60_000_000), SimDuration::from_secs_f64(1.0));
        // DS kernel runs faster per flop than PS.
        assert!(cpu.ds_time(1000) < cpu.ps_time(1000));
    }

    #[test]
    fn node_defaults_match_paper() {
        let n = SmpNode::default();
        assert_eq!(n.cpus, 2);
        assert_eq!(n.memory_mbytes, 512);
        assert_eq!(n.smp_gsum_local, SimDuration::from_us(1));
        // §4.1: slave-to-slave bandwidth ~30% below master-to-master.
        let bw = n.slave_bandwidth(110.0);
        assert!((bw - 77.0).abs() < 1e-9);
    }
}

//! Baseline interconnect models: Fast Ethernet, Gigabit Ethernet, HPVM.
//!
//! The paper compares Arctic against MPI over switched Fast Ethernet and
//! Gigabit Ethernet (Figure 12) and against the HPVM/Myrinet communication
//! suite (§6). That hardware and its 1999-era protocol stacks cannot be
//! rebuilt from first principles, so these models are **calibrated to the
//! paper's own stand-alone benchmark measurements**:
//!
//! * Fast Ethernet:  tgsum = 942 µs (8 endpoints), texch_xy = 10 008 µs,
//!   texch_xyz = 100 000 µs;
//! * Gigabit Ethernet: tgsum = 1 193 µs, texch_xy = 1 789 µs,
//!   texch_xyz = 5 742 µs;
//! * HPVM/Myrinet: 16-way barrier > 50 µs, 1-KB transfer ≈ 42 MByte/s.
//!
//! The exchange cost is an affine function of total bytes fitted through
//! the paper's two measured shapes (the 2-D DS exchange, 8×256 B, and the
//! 3-D PS exchange, 8×3840 B); the global sum is the per-round cost implied
//! by the measured total over log2 N rounds. Everything *derived* from
//! these — the Pfpp columns, the 306 µs DS threshold, "GE is ~10× away" —
//! is recomputed by this reproduction, not copied.

use crate::interconnect::PrimitiveModel;

/// Bytes per leg of the calibration shapes (32×32 tiles at 2.8125°, 8
/// endpoints): DS = halo 1 × 1 level, PS = halo 3 × 5 levels, 8 legs each.
pub const CAL_DS_LEG_BYTES: f64 = 256.0;
pub const CAL_PS_LEG_BYTES: f64 = 3840.0;
const CAL_LEGS: f64 = 8.0;

/// Fit (leg_overhead, per-byte cost) through the two measured exchange
/// points `(total_ds_us, total_ps_us)`.
fn fit_exchange(total_ds_us: f64, total_ps_us: f64) -> (f64, f64) {
    let b_ds = CAL_LEGS * CAL_DS_LEG_BYTES;
    let b_ps = CAL_LEGS * CAL_PS_LEG_BYTES;
    let byte_us = (total_ps_us - total_ds_us) / (b_ps - b_ds);
    let leg_overhead_us = (total_ds_us - b_ds * byte_us) / CAL_LEGS;
    (leg_overhead_us, byte_us)
}

/// MPI over switched 100 Mbit/s Fast Ethernet.
pub fn fast_ethernet() -> PrimitiveModel {
    let (leg, byte) = fit_exchange(10_008.0, 100_000.0);
    PrimitiveModel {
        name: "Fast Ethernet".to_string(),
        leg_overhead_us: leg,
        exch_byte_us: byte,
        // Raw MPI/TCP stream: ~11 MByte/s on 100 Mbit/s links.
        ptp_byte_us: 1.0 / 11.0,
        gsum_round_us: 942.0 / 3.0,
        gsum_base_us: 0.0,
        smp_local_us: 1.0,
        barrier_round_us: 942.0 / 3.0,
    }
}

/// MPI over Gigabit Ethernet (1999-era NICs: higher bandwidth than Fast
/// Ethernet but *worse* small-message latency, as the paper's measurements
/// show).
pub fn gigabit_ethernet() -> PrimitiveModel {
    let (leg, byte) = fit_exchange(1_789.0, 5_742.0);
    PrimitiveModel {
        name: "Gigabit Ethernet".to_string(),
        leg_overhead_us: leg,
        exch_byte_us: byte,
        // Raw stream: ~60 MByte/s through the 1999 TCP stack.
        ptp_byte_us: 1.0 / 60.0,
        gsum_round_us: 1_193.0 / 3.0,
        gsum_base_us: 0.0,
        smp_local_us: 1.0,
        barrier_round_us: 1_193.0 / 3.0,
    }
}

/// The HPVM (High Performance Virtual Machine) suite on Myrinet (§6): a
/// general-purpose cluster API. Calibrated so a 16-way barrier exceeds
/// 50 µs and a 1-KB transfer runs at ≈ 42 MByte/s against a ~101 MByte/s
/// stream peak.
pub fn hpvm_myrinet() -> PrimitiveModel {
    let stream_byte_us = 1.0 / 101.0;
    // 1 KB at 42 MB/s = 24.38 us total → fixed ≈ 14.2 us.
    let leg = 1024.0 / 42.0 - 1024.0 * stream_byte_us;
    PrimitiveModel {
        name: "HPVM/Myrinet".to_string(),
        leg_overhead_us: leg,
        exch_byte_us: stream_byte_us,
        ptp_byte_us: stream_byte_us,
        gsum_round_us: 12.8,
        gsum_base_us: 0.0,
        smp_local_us: 1.0,
        barrier_round_us: 12.8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::{ExchangeShape, Interconnect};

    fn ds_shape() -> ExchangeShape {
        ExchangeShape::square_tile(32, 1, 1, 8)
    }
    fn ps_shape() -> ExchangeShape {
        ExchangeShape::square_tile(32, 3, 5, 8)
    }

    #[test]
    fn fe_reproduces_calibration_points() {
        let fe = fast_ethernet();
        assert!((fe.exchange_time(&ds_shape()).as_us_f64() - 10_008.0).abs() < 1.0);
        assert!((fe.exchange_time(&ps_shape()).as_us_f64() - 100_000.0).abs() < 1.0);
        assert!((fe.gsum_time(8).as_us_f64() - 942.0).abs() < 1.0);
    }

    #[test]
    fn ge_reproduces_calibration_points() {
        let ge = gigabit_ethernet();
        assert!((ge.exchange_time(&ds_shape()).as_us_f64() - 1_789.0).abs() < 1.0);
        assert!((ge.exchange_time(&ps_shape()).as_us_f64() - 5_742.0).abs() < 1.0);
        assert!((ge.gsum_time(8).as_us_f64() - 1_193.0).abs() < 1.0);
    }

    #[test]
    fn hpvm_matches_section_6_claims() {
        let h = hpvm_myrinet();
        // 16-way barrier > 50 µs …
        assert!(h.barrier_time(16).as_us_f64() > 50.0);
        // … which is more than 2.5× Hyades's context-specific primitive.
        let arctic = crate::interconnect::arctic_paper();
        assert!(h.barrier_time(16).as_us_f64() > 2.5 * arctic.barrier_time(16).as_us_f64());
        // 1-KB transfers at ~42 MB/s, ~25 % slower than Hyades's exchange
        // legs (§6).
        let bw = 1024.0 / h.ptp_time(1024).as_secs_f64() / 1e6;
        assert!((40.0..44.0).contains(&bw), "HPVM 1 KB bandwidth {bw}");
        let arctic_bw = 1024.0 / arctic.ptp_time(1024).as_secs_f64() / 1e6;
        assert!(
            bw < 0.8 * arctic_bw,
            "HPVM ({bw}) should trail Arctic ({arctic_bw}) at 1 KB"
        );
    }

    #[test]
    fn ge_latency_worse_than_fe_but_bandwidth_better() {
        // The paper's measured oddity: GE's global sum is *slower* than
        // FE's (1193 vs 942 µs) while its exchange bandwidth is ~20× higher.
        let fe = fast_ethernet();
        let ge = gigabit_ethernet();
        assert!(ge.gsum_time(8) > fe.gsum_time(8));
        assert!(ge.exchange_time(&ps_shape()) < fe.exchange_time(&ps_shape()) / 10);
    }

    #[test]
    fn fit_recovers_affine_coefficients() {
        let (leg, byte) = fit_exchange(10_008.0, 100_000.0);
        assert!(leg > 0.0 && byte > 0.0);
        // Reconstruct both points.
        let ds = 8.0 * (leg + 256.0 * byte);
        let ps = 8.0 * (leg + 3840.0 * byte);
        assert!((ds - 10_008.0).abs() < 1e-6);
        assert!((ps - 100_000.0).abs() < 1e-6);
    }
}

//! The primitive-cost interface of an interconnect.
//!
//! The paper's performance model consumes exactly three communication
//! quantities (§5.2): the global-sum time `tgsum`, and the exchange times
//! `texch` for the 2-D (DS) and 3-D (PS) field shapes. This module defines
//! the interface those costs come from, plus a data-driven implementation
//! used for every interconnect:
//!
//! * for **Arctic**, the parameters are *measured* from the packet-level
//!   simulation (`hyades-comms` fits them and constructs the model);
//! * for **Fast/Gigabit Ethernet** and **HPVM**, the parameters are
//!   calibrated to the paper's stand-alone benchmark values (Figure 12 and
//!   §6), since that hardware/software stack cannot be rebuilt from first
//!   principles.

use hyades_des::SimDuration;

/// The communication footprint of one application of the exchange
/// primitive to one model field: the sequence of point-to-point transfer
/// legs a node performs, in order (§4.1: the two directions of each
/// neighbor exchange run sequentially because a single transfer saturates
/// the PCI bus; separate neighbors are likewise serialized on the one NIU).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExchangeShape {
    /// Bytes moved in each sequential transfer leg.
    pub legs: Vec<u64>,
}

impl ExchangeShape {
    /// Exchange for a square `edge × edge` tile with 4 neighbors: two legs
    /// (send + receive turn) per neighbor, each `edge × halo × levels ×
    /// elem_bytes`.
    pub fn square_tile(edge: u32, halo: u32, levels: u32, elem_bytes: u32) -> Self {
        let bytes = (edge * halo * levels * elem_bytes) as u64;
        ExchangeShape {
            legs: vec![bytes; 8],
        }
    }

    /// Exchange for a strip decomposition (tiles span the full x extent):
    /// 2 neighbors, two legs each of `nx × halo × levels × elem_bytes`.
    pub fn strip_tile(nx: u32, halo: u32, levels: u32, elem_bytes: u32) -> Self {
        let bytes = (nx * halo * levels * elem_bytes) as u64;
        ExchangeShape {
            legs: vec![bytes; 4],
        }
    }

    /// Arbitrary leg sizes (e.g. non-square tiles).
    pub fn from_legs(legs: Vec<u64>) -> Self {
        ExchangeShape { legs }
    }

    /// Total bytes a node moves per exchange of one field.
    pub fn total_bytes(&self) -> u64 {
        self.legs.iter().sum()
    }
}

/// Cost model of an interconnect's communication primitives.
pub trait Interconnect {
    fn name(&self) -> &str;

    /// `N`-way global sum across network endpoints (power of two).
    fn gsum_time(&self, n_endpoints: u32) -> SimDuration;

    /// `2×N`-way global sum: both processors of each SMP participate; the
    /// local combination adds the shared-memory semaphore step (§4.2).
    fn smp_gsum_time(&self, n_endpoints: u32) -> SimDuration;

    /// One application of the exchange primitive to one field.
    fn exchange_time(&self, shape: &ExchangeShape) -> SimDuration;

    /// `N`-way barrier.
    fn barrier_time(&self, n_endpoints: u32) -> SimDuration;

    /// A single bulk point-to-point transfer of `bytes` (used for the HPVM
    /// bandwidth comparison).
    fn ptp_time(&self, bytes: u64) -> SimDuration;
}

/// Data-driven interconnect model: affine costs per primitive.
#[derive(Clone, Debug)]
pub struct PrimitiveModel {
    pub name: String,
    /// Fixed overhead per bulk transfer leg (µs).
    pub leg_overhead_us: f64,
    /// Per-byte cost within an exchange leg (µs/byte).
    pub exch_byte_us: f64,
    /// Per-byte cost of a clean point-to-point stream (µs/byte). On Arctic
    /// these coincide; on Ethernet/MPI the exchange path is far slower than
    /// the raw stream (strided halo packing, rendezvous).
    pub ptp_byte_us: f64,
    /// Per-round cost of the butterfly global sum (µs); total is
    /// `gsum_round_us · log2 N + gsum_base_us`.
    pub gsum_round_us: f64,
    pub gsum_base_us: f64,
    /// Extra cost of the intra-SMP combine + broadcast (µs; §4.2: "about
    /// 1 µs" on Hyades).
    pub smp_local_us: f64,
    /// Per-round cost of a barrier (µs).
    pub barrier_round_us: f64,
}

impl PrimitiveModel {
    fn dur(us: f64) -> SimDuration {
        SimDuration::from_us_f64(us.max(0.0))
    }
}

impl Interconnect for PrimitiveModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn gsum_time(&self, n: u32) -> SimDuration {
        assert!(n.is_power_of_two() && n >= 2);
        let rounds = n.trailing_zeros() as f64;
        Self::dur(self.gsum_round_us * rounds + self.gsum_base_us)
    }

    fn smp_gsum_time(&self, n: u32) -> SimDuration {
        self.gsum_time(n) + Self::dur(self.smp_local_us)
    }

    fn exchange_time(&self, shape: &ExchangeShape) -> SimDuration {
        let us: f64 = shape
            .legs
            .iter()
            .map(|&b| self.leg_overhead_us + b as f64 * self.exch_byte_us)
            .sum();
        Self::dur(us)
    }

    fn barrier_time(&self, n: u32) -> SimDuration {
        assert!(n.is_power_of_two() && n >= 2);
        Self::dur(self.barrier_round_us * n.trailing_zeros() as f64)
    }

    fn ptp_time(&self, bytes: u64) -> SimDuration {
        Self::dur(self.leg_overhead_us + bytes as f64 * self.ptp_byte_us)
    }
}

/// The Arctic/StarT-X primitive model with the paper's measured constants
/// (§4.1–4.2): 8.6 µs per-transfer overhead, 110 MByte/s streaming, global
/// sum fit `4.67·log2 N − 0.95` µs, ~1 µs SMP combine.
///
/// `hyades-comms` constructs the same model *from simulation measurements*;
/// this constructor exists for closed-form analysis and for tests that
/// check the simulation against the paper.
pub fn arctic_paper() -> PrimitiveModel {
    PrimitiveModel {
        name: "Arctic".to_string(),
        leg_overhead_us: 8.6,
        exch_byte_us: 1.0 / 110.0,
        ptp_byte_us: 1.0 / 110.0,
        gsum_round_us: 4.67,
        gsum_base_us: -0.95,
        smp_local_us: 1.0,
        // A barrier is a global sum without the add; §6 compares a 16-way
        // barrier (12.8 µs class) against HPVM's >50 µs.
        barrier_round_us: 4.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_shapes() {
        // DS shape at 2.8125°, 8 endpoints: 32×32 tiles, halo 1, 1 level.
        let ds = ExchangeShape::square_tile(32, 1, 1, 8);
        assert_eq!(ds.legs.len(), 8);
        assert_eq!(ds.total_bytes(), 8 * 256);
        // PS atmosphere shape: halo 3, 5 levels.
        let ps = ExchangeShape::square_tile(32, 3, 5, 8);
        assert_eq!(ps.total_bytes(), 8 * 3840);
        let strip = ExchangeShape::strip_tile(128, 3, 5, 8);
        assert_eq!(strip.legs.len(), 4);
        assert_eq!(strip.total_bytes(), 4 * 15360);
    }

    #[test]
    fn arctic_gsum_matches_measured_fit() {
        let m = arctic_paper();
        // §4.2 measured: 4.0 / 8.3 / 12.8 / 18.2 µs for 2/4/8/16-way.
        for (n, paper) in [(2u32, 4.0), (4, 8.3), (8, 12.8), (16, 18.2)] {
            let t = m.gsum_time(n).as_us_f64();
            assert!((t - paper).abs() < 0.6, "{n}-way gsum {t} vs paper {paper}");
        }
        // SMP variants: 4.8 / 9.1 / 13.5 / 19.5 µs.
        for (n, paper) in [(2u32, 4.8), (4, 9.1), (8, 13.5), (16, 19.5)] {
            let t = m.smp_gsum_time(n).as_us_f64();
            assert!(
                (t - paper).abs() < 1.0,
                "2x{n}-way gsum {t} vs paper {paper}"
            );
        }
    }

    #[test]
    fn arctic_exchange_magnitudes() {
        let m = arctic_paper();
        // DS 2-D field exchange on 32×32 tiles: 8 legs of 256 B.
        let ds = m.exchange_time(&ExchangeShape::square_tile(32, 1, 1, 8));
        // 8 × (8.6 + 256/110) ≈ 87 µs: same order as the paper's measured
        // 115 µs (which includes mixed-mode SMP overhead).
        assert!((70.0..130.0).contains(&ds.as_us_f64()), "DS exchange {ds}");
        // 1 KB point-to-point leg: 8.6 + 9.3 ≈ 18 µs → ~57 MB/s perceived.
        let t1k = m.ptp_time(1024);
        let bw = 1024.0 / t1k.as_secs_f64() / 1e6;
        assert!((50.0..62.0).contains(&bw), "1 KB leg bandwidth {bw}");
    }

    #[test]
    fn barrier_beats_hpvm_claim() {
        let m = arctic_paper();
        // §6: a 16-way barrier on HPVM takes > 50 µs, "more than 2.5×"
        // Hyades's primitive — so ours must be below 20 µs.
        assert!(m.barrier_time(16).as_us_f64() < 20.0);
    }

    #[test]
    #[should_panic]
    fn gsum_requires_power_of_two() {
        arctic_paper().gsum_time(12);
    }
}

//! The Hyades cluster assembly (§2).
//!
//! Sixteen two-way SMPs, each attached to the Arctic Switch Fabric through
//! one StarT-X PCI NIU. Total hardware cost under $100,000, "about evenly
//! divided between the processing nodes and the interconnect".

use crate::node::SmpNode;
use hyades_startx::HostParams;

/// Static description of the cluster.
#[derive(Clone, Debug)]
pub struct HyadesCluster {
    pub n_smps: u32,
    pub node: SmpNode,
    pub host: HostParams,
    /// Total hardware cost in 1999 USD (§2).
    pub hardware_cost_usd: u32,
}

impl Default for HyadesCluster {
    fn default() -> Self {
        HyadesCluster {
            n_smps: 16,
            node: SmpNode::default(),
            host: HostParams::default(),
            hardware_cost_usd: 100_000,
        }
    }
}

impl HyadesCluster {
    /// Total processor count.
    pub fn total_processors(&self) -> u32 {
        self.n_smps * self.node.cpus
    }

    /// Network endpoints (one StarT-X NIU per SMP).
    pub fn n_endpoints(&self) -> u32 {
        self.n_smps
    }

    /// The sub-cluster one isomorph occupies during a coupled run (§5.1:
    /// "each isomorph occupies half of the cluster, sixteen processors on
    /// eight SMPs").
    pub fn isomorph_partition(&self) -> HyadesCluster {
        HyadesCluster {
            n_smps: self.n_smps / 2,
            ..self.clone()
        }
    }

    /// Aggregate PS-phase peak across all processors, MFlop/s.
    pub fn aggregate_ps_mflops(&self) -> f64 {
        self.total_processors() as f64 * self.node.cpu.fps_mflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_shape() {
        let c = HyadesCluster::default();
        assert_eq!(c.n_smps, 16);
        assert_eq!(c.total_processors(), 32);
        assert_eq!(c.n_endpoints(), 16);
        assert!(c.hardware_cost_usd <= 100_000);
    }

    #[test]
    fn isomorph_partition_is_half() {
        let c = HyadesCluster::default();
        let half = c.isomorph_partition();
        assert_eq!(half.n_smps, 8);
        assert_eq!(half.total_processors(), 16);
    }

    #[test]
    fn aggregate_rate() {
        let c = HyadesCluster::default();
        // 32 processors × 50 MFlop/s.
        assert_eq!(c.aggregate_ps_mflops(), 1600.0);
    }
}

//! Thread-local span recorder with a zero-cost disabled path.
//!
//! Mirrors the `gcm::flops` idiom: one `thread_local` [`Cell<bool>`] gate
//! that every entry point checks first (`#[inline]`, single predictable
//! branch when telemetry is off), backed by a `RefCell<Option<Recorder>>`
//! holding the actual state while enabled.
//!
//! Two timelines coexist:
//!
//! * **Event timeline** ([`record_span`], pid [`DES_PID`]) — spans stamped
//!   with explicit simulator time by DES actors (Arctic routers, StarT-X
//!   NIU state machines, exchange/gsum protocol nodes). The track id is
//!   the actor id.
//! * **Charged timeline** ([`charge_comm`] / [`charge_flops`], pid
//!   [`GCM_PID`]) — a per-rank clock advanced by analytically-charged
//!   costs while the *functional* GCM runs (the same time-charging
//!   methodology as §5 of the paper: compute time = flops / F, comm time
//!   from the interconnect model). The track id is the rank.
//!
//! Charged costs are attributed to the current PS/DS [`Phase`] so the
//! end-of-run [`PhaseTotals`] decompose exactly like eqs. (4)–(13).

use crate::registry::Registry;
use hyades_des::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};

/// Chrome-trace process id for the charged per-rank GCM timeline.
pub const GCM_PID: u32 = 0;
/// Chrome-trace process id for the event-level DES timeline.
pub const DES_PID: u32 = 1;

/// Which side of the Figure 6 step decomposition we are in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Prognostic step: G-terms, AB2 extrapolation, tendency updates.
    Ps,
    /// Diagnostic step: the elliptic pressure solve (CG iterations).
    Ds,
    /// Outside any model step (setup, diagnostics, microbenchmarks).
    Outside,
}

/// One completed span on either timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub pid: u32,
    pub tid: u64,
    pub cat: &'static str,
    pub name: &'static str,
    pub start: SimTime,
    pub dur: SimDuration,
}

/// Simulated time charged to each phase, split compute vs communication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    pub ps_compute: SimDuration,
    pub ps_comm: SimDuration,
    pub ds_compute: SimDuration,
    pub ds_comm: SimDuration,
    /// Communication charged outside any PS/DS phase.
    pub outside_comm: SimDuration,
}

impl PhaseTotals {
    pub fn merge(&mut self, other: &PhaseTotals) {
        self.ps_compute += other.ps_compute;
        self.ps_comm += other.ps_comm;
        self.ds_compute += other.ds_compute;
        self.ds_comm += other.ds_comm;
        self.outside_comm += other.outside_comm;
    }

    /// Everything charged, all phases, compute + comm.
    pub fn total(&self) -> SimDuration {
        self.ps_compute + self.ps_comm + self.ds_compute + self.ds_comm + self.outside_comm
    }
}

/// Everything one rank recorded, returned by [`disable`].
#[derive(Debug)]
pub struct RankTelemetry {
    pub rank: usize,
    pub spans: Vec<SpanRecord>,
    pub registry: Registry,
    pub phases: PhaseTotals,
    /// Final value of the charged clock.
    pub clock: SimTime,
}

struct Recorder {
    rank: usize,
    spans: Vec<SpanRecord>,
    registry: Registry,
    phases: PhaseTotals,
    clock: SimTime,
    phase: Phase,
    /// Sustained PS flop rate used to convert flops → charged time (MFlop/s).
    fps_mflops: f64,
    /// Sustained DS flop rate (MFlop/s).
    fds_mflops: f64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Is telemetry recording on this thread? The disabled fast path of every
/// entry point is exactly this load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Start recording on this thread with the paper's sustained flop rates
/// (Fps = 50, Fds = 60 MFlop/s, Figure 11). Replaces any prior recorder.
pub fn enable(rank: usize) {
    enable_with_rates(rank, 50.0, 60.0);
}

/// Start recording with explicit sustained per-phase flop rates.
pub fn enable_with_rates(rank: usize, fps_mflops: f64, fds_mflops: f64) {
    assert!(
        fps_mflops > 0.0 && fds_mflops > 0.0,
        "flop rates must be positive"
    );
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            rank,
            spans: Vec::new(),
            registry: Registry::new(),
            phases: PhaseTotals::default(),
            clock: SimTime::ZERO,
            phase: Phase::Outside,
            fps_mflops,
            fds_mflops,
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// Stop recording and hand back everything this thread collected.
/// Returns `None` if telemetry was not enabled.
pub fn disable() -> Option<RankTelemetry> {
    ENABLED.with(|e| e.set(false));
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(|rec| RankTelemetry {
            rank: rec.rank,
            spans: rec.spans,
            registry: rec.registry,
            phases: rec.phases,
            clock: rec.clock,
        })
}

#[inline]
fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Mark the PS/DS phase boundary; subsequent charged costs are attributed
/// to `phase`.
#[inline]
pub fn set_phase(phase: Phase) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| rec.phase = phase);
}

/// The phase charged costs are currently attributed to
/// ([`Phase::Outside`] when disabled).
#[inline]
pub fn current_phase() -> Phase {
    if !enabled() {
        return Phase::Outside;
    }
    let mut p = Phase::Outside;
    with_recorder(|rec| p = rec.phase);
    p
}

/// Record a completed span on the event timeline (pid [`DES_PID`]).
/// `track` is typically the DES actor id; `start` is simulator time.
#[inline]
pub fn record_span(
    track: u64,
    cat: &'static str,
    name: &'static str,
    start: SimTime,
    dur: SimDuration,
) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| {
        rec.spans.push(SpanRecord {
            pid: DES_PID,
            tid: track,
            cat,
            name,
            start,
            dur,
        });
        rec.registry.observe_duration_us(cat, name, dur);
    });
}

/// Charge a communication cost to the rank's timeline, attributed to the
/// current phase. Appends a span at the charged clock and advances it.
#[inline]
pub fn charge_comm(name: &'static str, dur: SimDuration) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| {
        let tid = rec.rank as u64;
        rec.spans.push(SpanRecord {
            pid: GCM_PID,
            tid,
            cat: "comm",
            name,
            start: rec.clock,
            dur,
        });
        rec.clock += dur;
        match rec.phase {
            Phase::Ps => rec.phases.ps_comm += dur,
            Phase::Ds => rec.phases.ds_comm += dur,
            Phase::Outside => rec.phases.outside_comm += dur,
        }
        rec.registry.observe_duration_us("comm", name, dur);
    });
}

/// Charge `flops` floating-point operations of `phase` compute to the
/// rank's timeline, converted through the configured sustained rate
/// (compute time = flops / F, eq. (5)/(8) methodology).
#[inline]
pub fn charge_flops(phase: Phase, flops: u64) {
    if !enabled() || flops == 0 {
        return;
    }
    with_recorder(|rec| {
        let (rate_mflops, name) = match phase {
            Phase::Ps => (rec.fps_mflops, "ps.compute"),
            Phase::Ds => (rec.fds_mflops, "ds.compute"),
            Phase::Outside => (rec.fps_mflops, "compute"),
        };
        let dur = SimDuration::from_secs_f64(flops as f64 / (rate_mflops * 1e6));
        let tid = rec.rank as u64;
        rec.spans.push(SpanRecord {
            pid: GCM_PID,
            tid,
            cat: "compute",
            name,
            start: rec.clock,
            dur,
        });
        rec.clock += dur;
        match phase {
            Phase::Ps => rec.phases.ps_compute += dur,
            Phase::Ds => rec.phases.ds_compute += dur,
            Phase::Outside => {}
        }
        rec.registry.add_count("compute", name, flops);
    });
}

/// Current value of the charged per-rank clock in integer picoseconds
/// (0 when disabled). The commlog stamps communication events with this
/// clock: it is simulated time, so stamped logs replay byte-identically
/// across double runs — the property the critical-path profiler's
/// determinism rests on.
#[inline]
pub fn charged_clock_ps() -> u64 {
    if !enabled() {
        return 0;
    }
    let mut ps = 0u64;
    with_recorder(|rec| ps = rec.clock.since(SimTime::ZERO).as_ps());
    ps
}

/// Snapshot of the per-phase charged totals so far (all zero when
/// disabled). The run-health monitor differences consecutive snapshots
/// to attribute charged time to individual timesteps.
#[inline]
pub fn phase_totals() -> PhaseTotals {
    if !enabled() {
        return PhaseTotals::default();
    }
    let mut totals = PhaseTotals::default();
    with_recorder(|rec| totals = rec.phases);
    totals
}

/// Bump a registry counter.
#[inline]
pub fn count(component: &'static str, metric: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| rec.registry.add_count(component, metric, delta));
}

/// Record a registry statistics sample.
#[inline]
pub fn observe(component: &'static str, metric: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| rec.registry.observe(component, metric, value));
}

/// Record a duration sample (stored in microseconds).
#[inline]
pub fn observe_duration_us(component: &'static str, metric: &'static str, d: SimDuration) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| rec.registry.observe_duration_us(component, metric, d));
}

/// Record a registry histogram sample.
#[inline]
pub fn observe_hist(component: &'static str, metric: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| rec.registry.observe_hist(component, metric, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_records_nothing() {
        assert!(!enabled());
        record_span(0, "c", "n", SimTime::ZERO, SimDuration::from_us(1));
        charge_comm("exchange", SimDuration::from_us(1));
        charge_flops(Phase::Ps, 1000);
        count("c", "n", 1);
        observe("c", "n", 1.0);
        observe_hist("c", "n", 1);
        assert!(disable().is_none());
    }

    #[test]
    fn charged_clock_advances_and_phases_split() {
        enable_with_rates(3, 50.0, 60.0);
        assert!(enabled());
        set_phase(Phase::Ps);
        assert_eq!(current_phase(), Phase::Ps);
        charge_flops(Phase::Ps, 50_000_000); // 1 s at 50 MFlop/s
        charge_comm("exchange", SimDuration::from_us(10));
        set_phase(Phase::Ds);
        charge_flops(Phase::Ds, 60_000_000); // 1 s at 60 MFlop/s
        charge_comm("gsum", SimDuration::from_us(4));
        let clock_ps = charged_clock_ps();
        let t = disable().unwrap();
        assert_eq!(clock_ps, t.clock.since(SimTime::ZERO).as_ps());
        assert_eq!(charged_clock_ps(), 0, "disabled clock reads zero");
        assert!(!enabled());
        assert_eq!(t.rank, 3);
        assert_eq!(t.phases.ps_compute, SimDuration::from_secs_f64(1.0));
        assert_eq!(t.phases.ds_compute, SimDuration::from_secs_f64(1.0));
        assert_eq!(t.phases.ps_comm, SimDuration::from_us(10));
        assert_eq!(t.phases.ds_comm, SimDuration::from_us(4));
        assert_eq!(t.clock, SimTime::ZERO + t.phases.total());
        assert_eq!(t.spans.len(), 4);
        // Spans tile the charged timeline with no gaps.
        let mut clock = SimTime::ZERO;
        for s in &t.spans {
            assert_eq!(s.pid, GCM_PID);
            assert_eq!(s.tid, 3);
            assert_eq!(s.start, clock);
            clock += s.dur;
        }
    }

    #[test]
    fn event_spans_carry_explicit_time() {
        enable(0);
        let start = SimTime::from_us_f64(7.5);
        record_span(42, "arctic", "router.tx", start, SimDuration::from_ns(500));
        let t = disable().unwrap();
        assert_eq!(t.spans.len(), 1);
        let s = &t.spans[0];
        assert_eq!(s.pid, DES_PID);
        assert_eq!(s.tid, 42);
        assert_eq!(s.start, start);
        // Event spans do not advance the charged clock.
        assert_eq!(t.clock, SimTime::ZERO);
        // But they do feed the registry.
        assert_eq!(t.registry.stat("arctic", "router.tx").unwrap().count(), 1);
    }

    #[test]
    fn registry_metrics_roundtrip() {
        enable(1);
        count("arctic.router", "packets", 5);
        observe("comms.gsum", "latency_us", 4.0);
        observe_duration_us("comms.gsum", "span", SimDuration::from_us(2));
        observe_hist("startx.vi", "bytes", 4096);
        let t = disable().unwrap();
        assert_eq!(t.registry.counter("arctic.router", "packets"), 5);
        assert_eq!(
            t.registry.stat("comms.gsum", "latency_us").unwrap().count(),
            1
        );
        assert_eq!(t.registry.hist("startx.vi", "bytes").unwrap().total(), 1);
    }

    #[test]
    fn outside_comm_is_tracked_separately() {
        enable(0);
        charge_comm("barrier", SimDuration::from_us(3));
        let t = disable().unwrap();
        assert_eq!(t.phases.outside_comm, SimDuration::from_us(3));
        assert_eq!(t.phases.ps_comm, SimDuration::ZERO);
    }
}

//! Vector-clock replay matcher over recorded per-rank comm logs.
//!
//! The deterministic replay that used to live inside `hyades-lint`'s
//! happens-before checker, extracted so the critical-path profiler
//! ([`crate::critpath`]) and the Chrome flow-event exporter can reuse
//! the exact same matching semantics: ranks replayed in index order,
//! sends non-blocking, receives blocking on their keyed `(src, dst)`
//! FIFO channel, reductions as all-ranks joins keyed by generation. A
//! vector clock per rank tracks causality; each matched pair records
//! whether the send's clock strictly precedes the receive's (the
//! happens-before property `lint::hb` asserts).
//!
//! The replay order is fixed, so every output — match indices, ordinals,
//! round memberships — is byte-stable across same-input runs.

use crate::commlog::CommEvent;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

type Clock = Vec<u64>;

fn join(into: &mut Clock, other: &Clock) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// `a` strictly happens-before `b`: component-wise ≤ and not equal.
fn strictly_before(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a != b
}

/// One matched send/recv pair. `send_idx`/`recv_idx` index into the
/// source/destination rank's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchedMessage {
    pub src: usize,
    pub dst: usize,
    pub send_idx: usize,
    pub recv_idx: usize,
    /// Message ordinal on the `(src, dst)` channel (FIFO position).
    pub ordinal: usize,
    pub words: usize,
    /// Did the send's vector clock strictly precede the receive's?
    pub ordered: bool,
}

/// One all-ranks reduction round. `at[r]` is the event index of rank
/// `r`'s `Reduce` record for this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceRound {
    pub generation: u64,
    pub at: Vec<usize>,
}

/// Everything the replay matched, in replay order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchedRun {
    pub ranks: usize,
    /// Total events across all logs.
    pub events: usize,
    pub messages: Vec<MatchedMessage>,
    pub reductions: Vec<ReduceRound>,
}

/// Why the replay failed: each variant is a real ordering bug in the
/// run that produced the logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// No rank can make progress; per-rank state at the stall.
    Stuck { state: Vec<String> },
    /// A channel still held messages when every rank finished.
    Leftover {
        src: usize,
        dst: usize,
        pending: usize,
    },
    /// A receive consumed a message of the wrong size.
    PayloadMismatch {
        src: usize,
        dst: usize,
        sent: usize,
        got: usize,
    },
    /// Ranks disagree on the reduction sequence.
    ReduceMismatch { detail: String },
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::Stuck { state } => {
                write!(f, "replay stuck (deadlock): {}", state.join("; "))
            }
            MatchError::Leftover { src, dst, pending } => write!(
                f,
                "{pending} message(s) left undelivered on channel {src}->{dst}"
            ),
            MatchError::PayloadMismatch {
                src,
                dst,
                sent,
                got,
            } => write!(
                f,
                "payload mismatch on {src}->{dst}: sent {sent} words, receive expected {got}"
            ),
            MatchError::ReduceMismatch { detail } => write!(f, "reduction mismatch: {detail}"),
        }
    }
}

/// Replay per-rank event logs, matching every send to its receive and
/// every reduction to its round. See the module docs for semantics.
pub fn replay(progs: &[Vec<CommEvent>]) -> Result<MatchedRun, MatchError> {
    let n = progs.len();
    let mut cursor = vec![0usize; n];
    let mut vc: Vec<Clock> = vec![vec![0; n]; n];
    // (src, dst) -> FIFO of (send clock, words, message ordinal on the
    // channel, send event index).
    #[allow(clippy::type_complexity)]
    let mut channels: BTreeMap<(usize, usize), VecDeque<(Clock, usize, usize, usize)>> =
        BTreeMap::new();
    let mut sent_on: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut messages = Vec::new();
    let mut reductions = Vec::new();

    loop {
        let mut progressed = false;
        for r in 0..n {
            while let Some(ev) = progs[r].get(cursor[r]) {
                match *ev {
                    CommEvent::Send { to, words } => {
                        assert!(to < n && to != r, "rank {r} sends to {to}");
                        vc[r][r] += 1;
                        let ordinal = sent_on.entry((r, to)).or_insert(0);
                        channels.entry((r, to)).or_default().push_back((
                            vc[r].clone(),
                            words,
                            *ordinal,
                            cursor[r],
                        ));
                        *ordinal += 1;
                    }
                    CommEvent::Recv { from, words } => {
                        let Some((send_clock, sent, ordinal, send_idx)) =
                            channels.get_mut(&(from, r)).and_then(|q| q.pop_front())
                        else {
                            break; // blocked: nothing posted yet
                        };
                        if sent != words {
                            return Err(MatchError::PayloadMismatch {
                                src: from,
                                dst: r,
                                sent,
                                got: words,
                            });
                        }
                        join(&mut vc[r], &send_clock);
                        vc[r][r] += 1;
                        messages.push(MatchedMessage {
                            src: from,
                            dst: r,
                            send_idx,
                            recv_idx: cursor[r],
                            ordinal,
                            words,
                            ordered: strictly_before(&send_clock, &vc[r]),
                        });
                    }
                    CommEvent::Reduce { .. } => break, // needs everyone
                }
                cursor[r] += 1;
                progressed = true;
            }
        }

        // All-ranks reduction join: enabled only when every rank's next
        // event is a Reduce with the same generation.
        let at_reduce: Vec<Option<u64>> = (0..n)
            .map(|r| match progs[r].get(cursor[r]) {
                Some(CommEvent::Reduce { generation }) => Some(*generation),
                _ => None,
            })
            .collect();
        let gens: Vec<u64> = at_reduce.iter().filter_map(|g| *g).collect();
        if gens.len() == n {
            if gens.iter().any(|&g| g != gens[0]) {
                return Err(MatchError::ReduceMismatch {
                    detail: format!("ranks joined different generations {gens:?}"),
                });
            }
            reductions.push(ReduceRound {
                generation: gens[0],
                at: cursor.clone(),
            });
            let merged = {
                let mut m = vec![0u64; n];
                for clock in &vc {
                    join(&mut m, clock);
                }
                m
            };
            for (r, clock) in vc.iter_mut().enumerate() {
                *clock = merged.clone();
                clock[r] += 1;
                cursor[r] += 1;
            }
            progressed = true;
        } else if at_reduce.iter().any(|g| g.is_some())
            && (0..n).all(|r| cursor[r] >= progs[r].len() || at_reduce[r].is_some())
        {
            // Some ranks wait at a reduction the rest will never join.
            return Err(MatchError::ReduceMismatch {
                detail: format!("ranks at a reduction while others finished: {at_reduce:?}"),
            });
        }

        if !progressed {
            break;
        }
    }

    if (0..n).any(|r| cursor[r] < progs[r].len()) {
        let state: Vec<String> = (0..n)
            .map(|r| match progs[r].get(cursor[r]) {
                Some(ev) => format!("rank{r}@{}: waiting on {ev:?}", cursor[r]),
                None => format!("rank{r}: done"),
            })
            .collect();
        return Err(MatchError::Stuck { state });
    }
    for ((src, dst), q) in &channels {
        if !q.is_empty() {
            return Err(MatchError::Leftover {
                src: *src,
                dst: *dst,
                pending: q.len(),
            });
        }
    }

    Ok(MatchedRun {
        ranks: n,
        events: progs.iter().map(Vec::len).sum(),
        messages,
        reductions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use CommEvent::{Recv, Reduce, Send};

    #[test]
    fn butterfly_pair_matches_with_indices() {
        let progs = vec![
            vec![Send { to: 1, words: 4 }, Recv { from: 1, words: 4 }],
            vec![Send { to: 0, words: 4 }, Recv { from: 0, words: 4 }],
        ];
        let run = replay(&progs).expect("clean butterfly");
        assert_eq!(run.ranks, 2);
        assert_eq!(run.events, 4);
        assert_eq!(run.messages.len(), 2);
        assert!(run.messages.iter().all(|m| m.ordered));
        // Rank 0's recv consumed rank 1's send at event index 0.
        let m = run.messages.iter().find(|m| m.dst == 0).unwrap();
        assert_eq!((m.src, m.send_idx, m.recv_idx, m.ordinal), (1, 0, 1, 0));
    }

    #[test]
    fn reduce_rounds_carry_per_rank_event_indices() {
        let progs = vec![
            vec![Send { to: 1, words: 1 }, Reduce { generation: 0 }],
            vec![Recv { from: 0, words: 1 }, Reduce { generation: 0 }],
        ];
        let run = replay(&progs).expect("message then reduce");
        assert_eq!(run.reductions.len(), 1);
        assert_eq!(run.reductions[0].generation, 0);
        assert_eq!(run.reductions[0].at, vec![1, 1]);
    }

    #[test]
    fn recv_without_send_is_stuck() {
        let progs = vec![
            vec![Recv { from: 1, words: 1 }],
            vec![Recv { from: 0, words: 1 }],
        ];
        assert!(matches!(replay(&progs), Err(MatchError::Stuck { .. })));
    }

    #[test]
    fn leftover_and_payload_mismatch_are_errors() {
        let progs = vec![vec![Send { to: 1, words: 2 }], vec![]];
        assert!(matches!(
            replay(&progs),
            Err(MatchError::Leftover {
                src: 0,
                dst: 1,
                pending: 1
            })
        ));
        let progs = vec![
            vec![Send { to: 1, words: 3 }],
            vec![Recv { from: 0, words: 4 }],
        ];
        assert!(matches!(
            replay(&progs),
            Err(MatchError::PayloadMismatch {
                sent: 3,
                got: 4,
                ..
            })
        ));
    }

    #[test]
    fn mismatched_generations_rejected() {
        let progs = vec![
            vec![Reduce { generation: 0 }],
            vec![Reduce { generation: 1 }],
        ];
        assert!(matches!(
            replay(&progs),
            Err(MatchError::ReduceMismatch { .. })
        ));
    }

    #[test]
    fn clock_comparison_is_strict() {
        assert!(strictly_before(&vec![1, 0], &vec![1, 1]));
        assert!(!strictly_before(&vec![1, 1], &vec![1, 1]));
        assert!(!strictly_before(&vec![2, 0], &vec![1, 1]), "concurrent");
    }
}

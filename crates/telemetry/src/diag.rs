//! Deterministic per-timestep diagnostics series.
//!
//! The GCM run-health monitor (`gcm::monitor`) records one [`DiagRow`]
//! per model timestep — conserved-quantity budgets, CFL numbers,
//! min/max extrema, CG convergence statistics — and hands the
//! accumulated [`DiagSeries`] to one of three exporters here:
//!
//! * [`DiagSeries::render_text`] — an aligned, human-readable table in
//!   the spirit of MITgcm's `monitor` package output;
//! * [`DiagSeries::render_json`] — a machine-readable series (consumed
//!   by the bench differ);
//! * [`DiagSeries::render_prom`] — the final row as Prometheus gauges
//!   alongside the fabric metrics.
//!
//! All three render from `BTreeMap`-ordered columns with the fixed
//! six-decimal formatting of [`crate::prom::fixed`], so two same-seed
//! runs produce byte-identical documents (asserted by
//! `tests/determinism.rs`). Non-finite values — which the blowup
//! sentinel exists to catch — render as `NaN`/`+Inf`/`-Inf` in text and
//! prom, and as quoted strings in JSON (bare `NaN` is not valid JSON).

use crate::prom::{fixed, PromText};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One timestep's worth of named diagnostics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiagRow {
    pub step: u64,
    values: BTreeMap<&'static str, f64>,
}

impl DiagRow {
    pub fn new(step: u64) -> DiagRow {
        DiagRow {
            step,
            values: BTreeMap::new(),
        }
    }

    /// Set one named value (last write wins).
    pub fn set(&mut self, key: &'static str, value: f64) -> &mut DiagRow {
        self.values.insert(key, value);
        self
    }

    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Key-sorted iteration over the row's values.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }
}

/// An append-only series of per-step diagnostic rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiagSeries {
    name: String,
    rows: Vec<DiagRow>,
}

impl DiagSeries {
    pub fn new(name: &str) -> DiagSeries {
        DiagSeries {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn push(&mut self, row: DiagRow) {
        self.rows.push(row);
    }

    pub fn rows(&self) -> &[DiagRow] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drop every row past the first `len` (used by the resilient
    /// stepper to rewind diagnostics to the last checkpoint on a
    /// rank-crash rollback, so the replay re-records them and the final
    /// series stays byte-identical to an uninterrupted run).
    pub fn truncate(&mut self, len: usize) {
        self.rows.truncate(len);
    }

    /// Last recorded value of `key`, if any row carries it.
    pub fn last(&self, key: &str) -> Option<f64> {
        self.rows.iter().rev().find_map(|r| r.get(key))
    }

    /// Maximum of `key` over the series (`total_cmp` order, so NaN sorts
    /// above +Inf and is never silently lost).
    pub fn max(&self, key: &str) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.get(key))
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Sorted union of every row's column names.
    fn columns(&self) -> Vec<&'static str> {
        let mut cols: BTreeMap<&'static str, ()> = BTreeMap::new();
        for r in &self.rows {
            for (k, _) in r.iter() {
                cols.insert(k, ());
            }
        }
        cols.into_keys().collect()
    }

    /// Aligned text table: one line per step, one column per metric,
    /// right-justified fixed-decimal values, `-` where a row lacks a
    /// column.
    pub fn render_text(&self) -> String {
        let cols = self.columns();
        // Pre-render every cell so column widths fit the data exactly.
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                cols.iter()
                    .map(|c| r.get(c).map_or_else(|| "-".to_string(), fixed))
                    .collect()
            })
            .collect();
        let mut widths: Vec<usize> = cols.iter().map(|c| c.len()).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let step_w = self
            .rows
            .iter()
            .map(|r| r.step.to_string().len())
            .chain(["step".len()])
            .max()
            .unwrap_or(4);

        let mut out = String::new();
        let _ = writeln!(out, "# diag series: {}", self.name);
        let _ = write!(out, "{:>step_w$}", "step");
        for (c, w) in cols.iter().zip(&widths) {
            let _ = write!(out, "  {c:>w$}");
        }
        out.push('\n');
        for (r, row) in self.rows.iter().zip(&rendered) {
            let _ = write!(out, "{:>step_w$}", r.step);
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, "  {cell:>w$}");
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON: `{"series": ..., "rows": [{"step": n,
    /// "metric": value, ...}, ...]}` with key-sorted members. Non-finite
    /// values are encoded as the strings `"NaN"` / `"+Inf"` / `"-Inf"`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"series\":\"{}\",\"rows\":[",
            json_escape(&self.name)
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"step\":{}", r.step);
            for (k, v) in r.iter() {
                if v.is_finite() {
                    let _ = write!(out, ",\"{}\":{}", json_escape(k), fixed(v));
                } else {
                    let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), fixed(v));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Prometheus gauges for the *final* row (gauges carry latest
    /// values), plus a `<prefix>_diag_steps` gauge with the number of
    /// monitored steps.
    pub fn render_prom(&self, prefix: &str) -> String {
        let mut p = PromText::new();
        let steps_name = format!("{prefix}_diag_steps");
        p.type_line(&steps_name, "gauge");
        p.sample(
            &steps_name,
            &[("series", &self.name)],
            self.rows.len() as f64,
        );
        if let Some(last) = self.rows.last() {
            let name = format!("{prefix}_diag");
            p.type_line(&name, "gauge");
            for (k, v) in last.iter() {
                p.sample(&name, &[("series", &self.name), ("metric", k)], v);
            }
        }
        p.finish()
    }
}

/// Minimal JSON string escaping (quote, backslash, control chars) for
/// series/metric names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> DiagSeries {
        let mut s = DiagSeries::new("ocean");
        let mut r0 = DiagRow::new(0);
        r0.set("cfl_adv", 0.125).set("ke_u", 3.5);
        s.push(r0);
        let mut r1 = DiagRow::new(1);
        r1.set("cfl_adv", 0.25)
            .set("ke_u", 4.0)
            .set("div_max", 1e-3);
        s.push(r1);
        s
    }

    #[test]
    fn text_table_is_aligned_and_handles_missing_columns() {
        let t = sample_series().render_text();
        assert!(t.starts_with("# diag series: ocean\n"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header carries the sorted column union; row 0 lacks div_max.
        assert_eq!(
            lines[1].split_whitespace().collect::<Vec<_>>(),
            ["step", "cfl_adv", "div_max", "ke_u"]
        );
        assert!(lines[2].split_whitespace().any(|c| c == "-"));
        // Every data line is exactly as wide as the header line.
        assert_eq!(lines[2].len(), lines[1].len());
        assert_eq!(lines[3].len(), lines[1].len());
    }

    #[test]
    fn json_sorts_keys_and_quotes_non_finite() {
        let mut s = DiagSeries::new("x");
        let mut r = DiagRow::new(3);
        r.set("b", f64::NAN).set("a", 1.0).set("c", f64::INFINITY);
        s.push(r);
        assert_eq!(
            s.render_json(),
            "{\"series\":\"x\",\"rows\":[{\"step\":3,\"a\":1.000000,\"b\":\"NaN\",\"c\":\"+Inf\"}]}"
        );
    }

    #[test]
    fn prom_renders_last_row_as_gauges() {
        let p = sample_series().render_prom("hyades");
        assert!(p.contains("hyades_diag_steps{series=\"ocean\"} 2.000000"));
        assert!(p.contains("hyades_diag{series=\"ocean\",metric=\"div_max\"} 0.001000"));
        assert!(p.contains("metric=\"cfl_adv\"} 0.250000"));
        // Row-0-only values are not in the final-row gauges.
        assert!(!p.contains("3.500000"));
    }

    #[test]
    fn exports_are_deterministic() {
        let s = sample_series();
        assert_eq!(s.render_text(), sample_series().render_text());
        assert_eq!(s.render_json(), sample_series().render_json());
        assert_eq!(s.render_prom("h"), sample_series().render_prom("h"));
    }

    #[test]
    fn series_queries() {
        let s = sample_series();
        assert_eq!(s.len(), 2);
        assert_eq!(s.last("ke_u"), Some(4.0));
        assert_eq!(s.last("div_max"), Some(1e-3));
        assert_eq!(s.max("cfl_adv"), Some(0.25));
        assert_eq!(s.max("absent"), None);
    }
}

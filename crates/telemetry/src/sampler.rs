//! Fixed-interval time-series sampling for simulated fabrics.
//!
//! The span recorder ([`crate::recorder`]) captures *events*; this module
//! captures *state over time*: queue occupancy, link utilization, and any
//! other quantity a simulated component can read off itself at an instant.
//! A [`SamplerActor`] placed in the DES broadcasts a [`SampleTick`] to its
//! subscribed actors at a fixed simulated interval; each subscriber
//! answers by calling [`record`] with its current readings, which land in
//! a thread-local [`SampleSet`] keyed by `(component, entity, metric)`.
//!
//! Design rules match the rest of the crate:
//!
//! * **Zero cost when disabled.** [`record`] starts with a single
//!   thread-local [`Cell`] load; components also use [`installed`] to gate
//!   any label formatting or per-flow accounting they keep solely for the
//!   observatory.
//! * **Deterministic.** Ticks are ordinary DES events (fixed interval,
//!   deterministic tie-breaking), keys are `BTreeMap`-ordered, and every
//!   quantile is computed by total-order sort — two same-seed runs export
//!   byte-identical artifacts.
//!
//! [`Cell`]: std::cell::Cell

use hyades_des::event::Payload;
use hyades_des::{Actor, ActorId, Ctx, SimDuration, SimTime, Simulator};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Broadcast to every subscribed actor once per sampling interval.
/// Subscribers respond by calling [`record`] with their current state.
pub struct SampleTick;

/// Internal self-event driving the tick loop.
struct Tick;

/// Identifies one time series: a component namespace (`"arctic.link"`),
/// an entity within it (`"l0.w3.p2"`), and the sampled metric (`"occ"`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    pub component: &'static str,
    pub entity: String,
    pub metric: &'static str,
}

/// One sampled time series.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// `(tick time, value)` in tick order.
    pub points: Vec<(SimTime, f64)>,
}

impl Series {
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Arithmetic mean of the sampled values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Largest sampled value (0 when empty).
    pub fn max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
            .max(f64::NEG_INFINITY)
    }

    /// Exact value quantile (`q` in 0..=1) by total-order sort;
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut vals: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        vals.sort_by(f64::total_cmp);
        let n = vals.len();
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
        vals[rank.max(1) - 1]
    }

    /// 99th-percentile sampled value.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Everything recorded between [`install`] and [`take`].
#[derive(Clone, Debug)]
pub struct SampleSet {
    /// The configured sampling interval.
    pub interval: SimDuration,
    series: BTreeMap<SeriesKey, Series>,
}

impl SampleSet {
    fn new(interval: SimDuration) -> SampleSet {
        SampleSet {
            interval,
            series: BTreeMap::new(),
        }
    }

    fn record(
        &mut self,
        component: &'static str,
        entity: &str,
        metric: &'static str,
        at: SimTime,
        value: f64,
    ) {
        self.series
            .entry(SeriesKey {
                component,
                entity: entity.to_string(),
                metric,
            })
            .or_default()
            .points
            .push((at, value));
    }

    /// Series in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&SeriesKey, &Series)> + '_ {
        self.series.iter()
    }

    /// Look up one series.
    pub fn get(&self, component: &str, entity: &str, metric: &str) -> Option<&Series> {
        self.series
            .iter()
            .find(|(k, _)| k.component == component && k.entity == entity && k.metric == metric)
            .map(|(_, s)| s)
    }

    /// Number of distinct series.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }
}

thread_local! {
    static INSTALLED: Cell<bool> = const { Cell::new(false) };
    static STORE: RefCell<Option<SampleSet>> = const { RefCell::new(None) };
}

/// Begin collecting samples on this thread. Replaces any prior set.
pub fn install(interval: SimDuration) {
    STORE.with(|s| *s.borrow_mut() = Some(SampleSet::new(interval)));
    INSTALLED.with(|i| i.set(true));
}

/// Is a sample store installed on this thread? Components use this to
/// gate observatory-only bookkeeping (label formatting, per-flow counts).
#[inline]
pub fn installed() -> bool {
    INSTALLED.with(|i| i.get())
}

/// Record one sample; a no-op unless [`install`]ed.
#[inline]
pub fn record(
    component: &'static str,
    entity: &str,
    metric: &'static str,
    at: SimTime,
    value: f64,
) {
    if !installed() {
        return;
    }
    STORE.with(|s| {
        if let Some(set) = s.borrow_mut().as_mut() {
            set.record(component, entity, metric, at, value);
        }
    });
}

/// Stop collecting and hand the samples back.
pub fn take() -> Option<SampleSet> {
    INSTALLED.with(|i| i.set(false));
    STORE.with(|s| s.borrow_mut().take())
}

/// The fixed-interval sampling actor: broadcasts [`SampleTick`] to its
/// subscribers every `interval` of simulated time until `until`
/// (inclusive). Being an ordinary actor keeps sampling inside the
/// deterministic event order, and letting it expire keeps `sim.run()`
/// able to drain.
pub struct SamplerActor {
    targets: Vec<ActorId>,
    interval: SimDuration,
    until: SimTime,
    /// Ticks broadcast so far.
    pub ticks: u64,
}

impl SamplerActor {
    /// Register the sampler and schedule its first tick one interval in.
    pub fn start(
        sim: &mut Simulator,
        targets: Vec<ActorId>,
        interval: SimDuration,
        until: SimTime,
    ) -> ActorId {
        assert!(
            interval > SimDuration::ZERO,
            "sampling interval must be positive"
        );
        let id = sim.add_actor(SamplerActor {
            targets,
            interval,
            until,
            ticks: 0,
        });
        sim.schedule(SimTime::ZERO + interval, id, Tick);
        id
    }
}

impl Actor for SamplerActor {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        if ev.downcast::<Tick>().is_err() {
            return;
        }
        self.ticks += 1;
        for &t in &self.targets {
            ctx.send_now(t, SampleTick);
        }
        if ctx.now() + self.interval <= self.until {
            ctx.wake_after(self.interval, Tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_noop_without_install() {
        assert!(!installed());
        record("c", "e", "m", SimTime::ZERO, 1.0);
        assert!(take().is_none());
    }

    #[test]
    fn installed_store_collects_ordered_series() {
        install(SimDuration::from_us(5));
        record(
            "arctic.link",
            "l0.w1.p2",
            "occ",
            SimTime::from_us_f64(5.0),
            3.0,
        );
        record(
            "arctic.link",
            "l0.w0.p2",
            "occ",
            SimTime::from_us_f64(5.0),
            1.0,
        );
        record(
            "arctic.link",
            "l0.w1.p2",
            "occ",
            SimTime::from_us_f64(10.0),
            5.0,
        );
        let set = take().expect("installed");
        assert!(!installed());
        assert_eq!(set.n_series(), 2);
        let keys: Vec<&str> = set.iter().map(|(k, _)| k.entity.as_str()).collect();
        assert_eq!(keys, ["l0.w0.p2", "l0.w1.p2"], "BTreeMap key order");
        let s = set.get("arctic.link", "l0.w1.p2", "occ").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn series_quantiles_are_exact() {
        let mut s = Series::default();
        for v in 1..=100 {
            s.points.push((SimTime::ZERO, v as f64));
        }
        assert_eq!(s.quantile(0.5), 50.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(Series::default().p99(), 0.0);
    }

    /// A target that records its tick count as a sample.
    struct Probe {
        seen: u64,
    }
    impl Actor for Probe {
        fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
            if ev.downcast::<SampleTick>().is_ok() {
                self.seen += 1;
                record("test", "probe", "seen", ctx.now(), self.seen as f64);
            }
        }
    }

    #[test]
    fn sampler_actor_ticks_at_fixed_interval_and_expires() {
        install(SimDuration::from_us(10));
        let mut sim = Simulator::new();
        let p = sim.add_actor(Probe { seen: 0 });
        let id = SamplerActor::start(
            &mut sim,
            vec![p],
            SimDuration::from_us(10),
            SimTime::from_us_f64(55.0),
        );
        sim.run();
        // Ticks at 10, 20, 30, 40, 50 us; the queue then drains.
        assert_eq!(sim.actor::<SamplerActor>(id).ticks, 5);
        assert_eq!(sim.actor::<Probe>(p).seen, 5);
        let set = take().expect("installed");
        let s = set.get("test", "probe", "seen").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.points[0].0, SimTime::from_us_f64(10.0));
        assert_eq!(s.points[4].0, SimTime::from_us_f64(50.0));
    }
}

//! End-of-run aggregation and exporters.
//!
//! [`RunTelemetry`] pools per-rank recordings (merged in rank order, so
//! the result is deterministic) and renders them two ways:
//!
//! * [`chrome_trace_json`](RunTelemetry::chrome_trace_json) — Chrome
//!   trace-event JSON ("X" complete events), loadable in
//!   `chrome://tracing` or Perfetto. Hand-rolled: the vendored `serde`
//!   is a marker-trait stub, and the format is four fields per event.
//!   Timestamps are microseconds derived *exactly* from the integer
//!   picosecond clock (`ps / 10^6` with six fixed decimals), so the
//!   bytes are reproducible.
//! * [`text_summary`](RunTelemetry::text_summary) — a deterministic text
//!   report: phase totals, span series, counters, statistics, histogram
//!   quantiles.
//!
//! Both outputs are byte-identical across double runs with the same seed
//! (asserted by `tests/determinism.rs`).

use crate::commlog::Stamped;
use crate::matcher;
use crate::recorder::{PhaseTotals, RankTelemetry, DES_PID, GCM_PID};
use crate::registry::Registry;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One matched send→recv pair rendered as a Chrome flow (`ph:"s"` start
/// on the sender's track, `ph:"f"` finish on the receiver's), so the
/// cross-rank dependency arrows are visible in a trace viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEvent {
    pub src: usize,
    pub dst: usize,
    /// Sender-side timestamp (op start on the sender's charged clock).
    pub send_ps: u64,
    /// Receiver-side timestamp (op end on the receiver's charged clock).
    pub recv_ps: u64,
    pub words: usize,
}

/// Build flow events from stamped per-rank comm logs by matching sends
/// to receives with the vector-clock replay. Unmatchable logs (a real
/// ordering bug) yield no flows rather than a poisoned trace.
pub fn flows_from_stamped(logs: &[Vec<Stamped>]) -> Vec<FlowEvent> {
    let bare: Vec<Vec<_>> = logs
        .iter()
        .map(|l| l.iter().map(|s| s.ev).collect())
        .collect();
    let Ok(run) = matcher::replay(&bare) else {
        return Vec::new();
    };
    run.messages
        .iter()
        .map(|m| {
            let send = &logs[m.src][m.send_idx];
            let recv = &logs[m.dst][m.recv_idx];
            FlowEvent {
                src: m.src,
                dst: m.dst,
                // The send is posted at the op's start (the charged span
                // covers the whole primitive); the message lands when
                // the receiver's op completes.
                send_ps: send.at_ps.saturating_sub(send.cost_ps),
                recv_ps: recv.at_ps,
                words: m.words,
            }
        })
        .collect()
}

/// A whole run's telemetry: one [`RankTelemetry`] per rank, in rank
/// order, plus optional cross-rank flow events.
#[derive(Debug, Default)]
pub struct RunTelemetry {
    pub ranks: Vec<RankTelemetry>,
    pub flows: Vec<FlowEvent>,
}

impl RunTelemetry {
    pub fn from_ranks(ranks: Vec<RankTelemetry>) -> RunTelemetry {
        RunTelemetry {
            ranks,
            flows: Vec::new(),
        }
    }

    pub fn single(rank: RankTelemetry) -> RunTelemetry {
        RunTelemetry {
            ranks: vec![rank],
            flows: Vec::new(),
        }
    }

    /// Attach cross-rank flow events (see [`flows_from_stamped`]).
    pub fn set_flows(&mut self, flows: Vec<FlowEvent>) {
        self.flows = flows;
    }

    /// All rank registries pooled (counters summed, stats/histograms
    /// merged).
    pub fn merged_registry(&self) -> Registry {
        let mut out = Registry::new();
        for r in &self.ranks {
            out.merge(&r.registry);
        }
        out
    }

    /// Phase totals summed across ranks.
    pub fn phase_totals(&self) -> PhaseTotals {
        let mut out = PhaseTotals::default();
        for r in &self.ranks {
            out.merge(&r.phases);
        }
        out
    }

    /// Total number of spans across ranks.
    pub fn span_count(&self) -> usize {
        self.ranks.iter().map(|r| r.spans.len()).sum()
    }

    /// Chrome trace-event JSON (see module docs).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;

        // Metadata: name the two processes and every track that appears.
        let mut tracks: BTreeSet<(u32, u64)> = BTreeSet::new();
        for r in &self.ranks {
            for s in &r.spans {
                tracks.insert((s.pid, s.tid));
            }
        }
        let pids: BTreeSet<u32> = tracks.iter().map(|&(p, _)| p).collect();
        for pid in pids {
            let pname = match pid {
                GCM_PID => "gcm charged timeline",
                DES_PID => "des event timeline",
                _ => "telemetry",
            };
            comma(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(pname)
            );
        }
        for &(pid, tid) in &tracks {
            let tname = if pid == GCM_PID {
                format!("rank {tid}")
            } else {
                format!("actor {tid}")
            };
            comma(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&tname)
            );
        }

        // Complete ("X") events, in rank order then recording order.
        for r in &self.ranks {
            for s in &r.spans {
                comma(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":{},\"tid\":{}}}",
                    escape(s.name),
                    escape(s.cat),
                    us(s.start.as_ps()),
                    us(s.dur.as_ps()),
                    s.pid,
                    s.tid
                );
            }
        }

        // Flow events: one "s" (start, sender track) / "f" (finish,
        // receiver track) pair per matched message, on the GCM charged
        // timeline. `bp:"e"` binds the finish to the enclosing slice.
        for (id, fl) in self.flows.iter().enumerate() {
            comma(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"msg {} words\",\"cat\":\"comm\",\"ph\":\"s\",\"id\":{},\
                 \"ts\":{},\"pid\":{},\"tid\":{}}}",
                fl.words,
                id,
                us(fl.send_ps),
                GCM_PID,
                fl.src
            );
            comma(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"msg {} words\",\"cat\":\"comm\",\"ph\":\"f\",\"bp\":\"e\",\
                 \"id\":{},\"ts\":{},\"pid\":{},\"tid\":{}}}",
                fl.words,
                id,
                us(fl.recv_ps),
                GCM_PID,
                fl.dst
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Deterministic text report (see module docs).
    pub fn text_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "hyades telemetry summary");
        let _ = writeln!(out, "========================");
        let _ = writeln!(
            out,
            "ranks: {}  spans: {}",
            self.ranks.len(),
            self.span_count()
        );

        let p = self.phase_totals();
        let _ = writeln!(out, "\n[phase totals, summed over ranks]");
        for (name, d) in [
            ("ps.compute", p.ps_compute),
            ("ps.comm", p.ps_comm),
            ("ds.compute", p.ds_compute),
            ("ds.comm", p.ds_comm),
            ("outside.comm", p.outside_comm),
        ] {
            let _ = writeln!(out, "  {name:<14} {:>16.3} us", d.as_us_f64());
        }

        // Span series pooled over ranks, keyed (cat, name).
        let mut series: std::collections::BTreeMap<(&str, &str), (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for r in &self.ranks {
            for s in &r.spans {
                let e = series.entry((s.cat, s.name)).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += s.dur.as_ps();
                e.2 = e.2.max(s.dur.as_ps());
            }
        }
        let _ = writeln!(out, "\n[span series]");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>14} {:>12} {:>12}",
            "cat/name", "count", "total_us", "mean_us", "max_us"
        );
        for ((cat, name), (count, total_ps, max_ps)) in &series {
            let label = format!("{cat}/{name}");
            let total_us = *total_ps as f64 / 1e6;
            let _ = writeln!(
                out,
                "  {label:<28} {count:>8} {total_us:>14.3} {:>12.3} {:>12.3}",
                total_us / *count as f64,
                *max_ps as f64 / 1e6,
            );
        }

        let reg = self.merged_registry();
        let _ = writeln!(out, "\n[counters]");
        for ((component, metric), v) in reg.iter_counters() {
            let _ = writeln!(out, "  {:<36} {v:>16}", format!("{component}.{metric}"));
        }
        let _ = writeln!(out, "\n[stats]");
        for ((component, metric), s) in reg.iter_stats() {
            let _ = writeln!(
                out,
                "  {:<36} n={:<8} mean={:<14.3} min={:<14.3} max={:<14.3}",
                format!("{component}.{metric}"),
                s.count(),
                s.mean(),
                s.min(),
                s.max()
            );
        }
        let _ = writeln!(out, "\n[histograms]");
        for ((component, metric), h) in reg.iter_hists() {
            let _ = writeln!(
                out,
                "  {:<36} n={:<8} p50<={:<12} p90<={:<12} p99<={}",
                format!("{component}.{metric}"),
                h.total(),
                h.p50(),
                h.p90(),
                h.p99()
            );
        }
        out
    }
}

fn comma(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Integer picoseconds rendered as a microsecond JSON number, exactly.
fn us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Minimal JSON string escaping (the strings are static labels, but be
/// safe about quotes, backslashes, and control characters). Uses the
/// same shorthand escapes as `prom.rs`'s label escaping (`\n`, `\r`,
/// `\t`) so the two exporters render identical labels; other control
/// characters fall back to `\u00xx`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{self, Phase};
    use hyades_des::{SimDuration, SimTime};

    fn sample_run() -> RunTelemetry {
        recorder::enable_with_rates(0, 50.0, 60.0);
        recorder::set_phase(Phase::Ps);
        recorder::charge_flops(Phase::Ps, 5_000_000);
        recorder::charge_comm("exchange", SimDuration::from_us(10));
        recorder::set_phase(Phase::Ds);
        recorder::charge_comm("gsum", SimDuration::from_us_f64(4.5));
        recorder::record_span(
            7,
            "arctic",
            "router.tx",
            SimTime::from_us_f64(1.25),
            SimDuration::from_ns(600),
        );
        recorder::count("arctic.router", "packets", 3);
        recorder::observe_hist("startx.vi", "bytes", 1024);
        RunTelemetry::single(recorder::disable().unwrap())
    }

    #[test]
    fn chrome_json_is_wellformed_and_exact() {
        let run = sample_run();
        let json = run.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
        // Balanced braces/brackets (no string content interferes: labels
        // are identifiers).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Exact decimal microseconds from integer picoseconds.
        assert!(json.contains("\"ts\":1.250000"), "{json}");
        assert!(json.contains("\"dur\":0.600000"), "{json}");
        // Both process timelines and the named tracks are present.
        assert!(json.contains("gcm charged timeline"));
        assert!(json.contains("des event timeline"));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"actor 7\""));
        assert!(json.contains("\"name\":\"exchange\""));
    }

    #[test]
    fn text_summary_sections_render() {
        let run = sample_run();
        let s = run.text_summary();
        assert!(s.contains("[phase totals"));
        assert!(s.contains("ps.compute"));
        assert!(s.contains("[span series]"));
        assert!(s.contains("comm/exchange"));
        assert!(s.contains("arctic.router.packets"));
        assert!(s.contains("startx.vi.bytes"));
        assert!(s.contains("p99<="));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_run();
        let b = sample_run();
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        assert_eq!(a.text_summary(), b.text_summary());
    }

    #[test]
    fn merged_registry_pools_ranks() {
        let mut ranks = Vec::new();
        for rank in 0..2 {
            recorder::enable(rank);
            recorder::count("c", "n", 2);
            ranks.push(recorder::disable().unwrap());
        }
        let run = RunTelemetry::from_ranks(ranks);
        assert_eq!(run.merged_registry().counter("c", "n"), 4);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        // Shorthand escapes, matching prom.rs's label escaping.
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("x\r\ty"), "x\\r\\ty");
        assert_eq!(escape("x\u{1}y"), "x\\u0001y");
    }

    #[test]
    fn flow_events_render_as_s_f_pairs() {
        use crate::commlog::{CommEvent, Stamped};
        use crate::recorder::Phase;
        let stamp = |ev, at_ps, cost_ps| Stamped {
            ev,
            at_ps,
            cost_ps,
            op: 1,
            step: 1,
            phase: Phase::Ps,
        };
        let logs = vec![
            vec![
                stamp(CommEvent::Send { to: 1, words: 16 }, 500, 200),
                stamp(CommEvent::Recv { from: 1, words: 16 }, 500, 200),
            ],
            vec![
                stamp(CommEvent::Send { to: 0, words: 16 }, 700, 250),
                stamp(CommEvent::Recv { from: 0, words: 16 }, 700, 250),
            ],
        ];
        let flows = flows_from_stamped(&logs);
        assert_eq!(flows.len(), 2);
        // Rank 0's send leaves at its op start (500-200=300) and lands
        // at rank 1's op end (700).
        let f01 = flows.iter().find(|f| f.src == 0).unwrap();
        assert_eq!((f01.send_ps, f01.recv_ps, f01.words), (300, 700, 16));

        let mut run = sample_run();
        run.set_flows(flows);
        let json = run.chrome_trace_json();
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""), "{json}");
        assert!(json.contains("\"name\":\"msg 16 words\""), "{json}");
        // Each flow id appears exactly twice (one s, one f).
        assert_eq!(json.matches("\"id\":0,").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn unmatchable_logs_yield_no_flows() {
        use crate::commlog::{CommEvent, Stamped};
        use crate::recorder::Phase;
        let logs = vec![vec![Stamped {
            ev: CommEvent::Recv { from: 1, words: 1 },
            at_ps: 10,
            cost_ps: 5,
            op: 1,
            step: 1,
            phase: Phase::Ps,
        }]];
        assert!(flows_from_stamped(&logs).is_empty());
    }

    #[test]
    fn us_renders_exact_picoseconds() {
        assert_eq!(us(0), "0.000000");
        assert_eq!(us(1_250_000), "1.250000");
        assert_eq!(us(600), "0.000600");
        assert_eq!(us(12_345_678_901), "12345.678901");
    }
}

//! Cross-rank critical-path reconstruction: who actually sets the step
//! time.
//!
//! The paper's phase model (eqs. 4–13) predicts the *aggregate* step
//! time of a coupled run but cannot say which rank, phase, or link is on
//! the chain that sets it. This module answers that question from the
//! recordings the flight recorder already makes: each rank's stamped
//! comm log ([`crate::commlog::Stamped`]) carries the charged simulated
//! clock, the charged cost per primitive op, and the PS/DS phase; the
//! vector-clock matcher ([`crate::matcher`]) pairs every send with its
//! receive and every reduction with its round.
//!
//! From those two inputs [`analyze`] rebuilds the global event DAG:
//!
//! * **two nodes per primitive op** (start, end) on every rank, with the
//!   charged op cost on the serial start→end edge;
//! * **compute edges** between consecutive ops on a rank, weighted by
//!   the charged compute time between them (clock delta minus op costs);
//! * **wire edges** from a matched send's op start to its receive's op
//!   end, weighted by the interconnect's point-to-point cost for the
//!   message payload (the `wire` closure — callers pass the same cost
//!   model `TimedWorld` charged against);
//! * **reduce-round joins**: every participant's end waits for the
//!   last-entering participant's start plus its own charged cost.
//!
//! A forward pass computes earliest times and the critical predecessor
//! of every node; a backward pass computes latest times, hence per-rank
//! **slack** — how much that rank could slow before the path moves.
//! Everything is integer-picosecond arithmetic on charged simulated
//! time, so the report is byte-identical across same-seed double runs.
//!
//! Known limit: compute *after* a rank's last comm op is invisible (the
//! log ends at the last recorded event), so perturbations should land
//! before a step's communication if they are to be attributed.

use crate::commlog::Stamped;
use crate::matcher::{self, MatchError};
use crate::recorder::Phase;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Why the analysis could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CritPathError {
    /// No ranks or no events.
    Empty,
    /// The logs carry no `begin_op` stamps (an untimed run — nothing to
    /// weigh the DAG with).
    Untimed,
    /// The vector-clock replay failed: a real ordering bug in the run.
    Match(MatchError),
}

impl fmt::Display for CritPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CritPathError::Empty => write!(f, "no events to analyze"),
            CritPathError::Untimed => {
                write!(f, "logs carry no op stamps (record under a TimedWorld)")
            }
            CritPathError::Match(e) => write!(f, "event matching failed: {e}"),
        }
    }
}

/// What a primitive op was, from its event mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    /// Sends and receives (halo exchange, or the root side of a gather).
    Exchange,
    /// An all-ranks reduction round.
    Reduce,
    /// Sends only (the leaf side of a gather).
    SendOnly,
}

/// The critical predecessor of an op's end node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pred {
    /// The op's own start (local cost edge bound).
    Local,
    /// A wire edge from `src`'s op start.
    Msg {
        src: usize,
        src_op: usize,
        msg: usize,
    },
    /// A reduce-round join: the last-entering participant's start.
    Round { src: usize, src_op: usize },
}

/// One reconstructed primitive op on one rank.
#[derive(Debug, Clone)]
struct Op {
    kind: OpKind,
    phase: Phase,
    step: u32,
    cost_ps: u64,
    /// Charged compute between the previous op's local end and this
    /// op's local start.
    compute_in_ps: u64,
    /// Earliest global start/end (forward pass).
    start_ps: u64,
    end_ps: u64,
    /// Latest start/end (backward pass).
    latest_start_ps: u64,
    latest_end_ps: u64,
    pred: Pred,
    /// Generation for `Reduce` ops.
    generation: u64,
}

/// One hop of the rendered critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    pub rank: usize,
    pub phase: Phase,
    pub step: u32,
    /// `"compute"`, `"comm"`, `"reduce"`, `"send"`, or `"wire"`.
    pub kind: &'static str,
    pub dur_ps: u64,
}

/// One wire-bound receive anywhere in the DAG — an op whose end was set
/// by an incoming message rather than its own charged cost — decomposed
/// wait-vs-wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossEdge {
    pub step: u32,
    pub src: usize,
    pub dst: usize,
    pub words: usize,
    /// Point-to-point wire cost of the payload (interconnect model).
    pub wire_ps: u64,
    /// Stall the edge imposed on the receiver beyond its own charged op
    /// cost (`end − start − cost` at the destination).
    pub wait_ps: u64,
}

/// Per-step share of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRow {
    pub step: u32,
    pub path_ps: u64,
    pub dominant_rank: usize,
    pub dominant_phase: Phase,
    pub dominant_ps: u64,
}

/// Per-rank slack and path participation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankRow {
    pub rank: usize,
    /// Minimum over the rank's nodes of `latest − earliest`: how much
    /// the rank could uniformly slow before the critical path moves.
    pub slack_ps: u64,
    pub on_path_ps: u64,
    pub on_path_hops: usize,
}

/// One row of the straggler attribution table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionRow {
    pub rank: usize,
    pub phase: Phase,
    pub kind: &'static str,
    pub path_ps: u64,
    pub hops: usize,
}

/// The full analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritPath {
    pub ranks: usize,
    pub ops: usize,
    pub messages: usize,
    pub reductions: usize,
    pub steps: usize,
    /// Earliest completion of the whole run (= sum of the path's hops).
    pub total_path_ps: u64,
    pub hops: Vec<Hop>,
    pub step_rows: Vec<StepRow>,
    pub rank_rows: Vec<RankRow>,
    pub attribution: Vec<AttributionRow>,
    pub cross_edges: Vec<CrossEdge>,
}

/// Phase label used across the report and JSON.
pub fn phase_label(p: Phase) -> &'static str {
    match p {
        Phase::Ps => "ps",
        Phase::Ds => "ds",
        Phase::Outside => "outside",
    }
}

fn phase_order(p: Phase) -> u8 {
    match p {
        Phase::Ps => 0,
        Phase::Ds => 1,
        Phase::Outside => 2,
    }
}

/// Integer picoseconds rendered as exact microseconds.
fn us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Reconstruct the event DAG from stamped per-rank logs and compute the
/// critical path. `wire(words)` is the interconnect's point-to-point
/// cost in picoseconds for a `words`-value message — pass the same cost
/// model the run was charged against.
pub fn analyze(
    logs: &[Vec<Stamped>],
    wire: &dyn Fn(usize) -> u64,
) -> Result<CritPath, CritPathError> {
    let n = logs.len();
    if n == 0 || logs.iter().all(Vec::is_empty) {
        return Err(CritPathError::Empty);
    }
    if logs
        .iter()
        .flat_map(|l| l.iter())
        .all(|s| s.op == 0 && s.cost_ps == 0)
    {
        return Err(CritPathError::Untimed);
    }

    // Match sends to receives and reductions to rounds on the bare
    // event stream (identical semantics to lint::hb).
    let bare: Vec<Vec<_>> = logs
        .iter()
        .map(|l| l.iter().map(|s| s.ev).collect())
        .collect();
    let run = matcher::replay(&bare).map_err(CritPathError::Match)?;

    // Group each rank's events into ops; map event index -> op index.
    let mut ops: Vec<Vec<Op>> = Vec::with_capacity(n);
    let mut ev2op: Vec<Vec<usize>> = Vec::with_capacity(n);
    for log in logs {
        let mut rank_ops: Vec<Op> = Vec::new();
        let mut map = Vec::with_capacity(log.len());
        let mut cur_op_id: Option<u32> = None;
        let mut prev_local_end = 0u64;
        for s in log {
            if cur_op_id != Some(s.op) {
                cur_op_id = Some(s.op);
                let local_start = s.at_ps.saturating_sub(s.cost_ps);
                rank_ops.push(Op {
                    kind: OpKind::SendOnly, // refined below from the events
                    phase: s.phase,
                    step: s.step,
                    cost_ps: s.cost_ps,
                    compute_in_ps: local_start.saturating_sub(prev_local_end),
                    start_ps: 0,
                    end_ps: 0,
                    latest_start_ps: u64::MAX,
                    latest_end_ps: u64::MAX,
                    pred: Pred::Local,
                    generation: 0,
                });
                prev_local_end = s.at_ps;
            }
            let op = rank_ops
                .last_mut()
                .unwrap_or_else(|| panic!("op opened above for event {}", s.op));
            match s.ev {
                crate::commlog::CommEvent::Recv { .. } => op.kind = OpKind::Exchange,
                crate::commlog::CommEvent::Reduce { generation } => {
                    op.kind = OpKind::Reduce;
                    op.generation = generation;
                }
                crate::commlog::CommEvent::Send { .. } => {}
            }
            map.push(rank_ops.len() - 1);
        }
        ops.push(rank_ops);
        ev2op.push(map);
    }

    // Cross-edge tables: incoming/outgoing messages per op, and the
    // per-rank op index of every reduce round.
    #[allow(clippy::type_complexity)]
    let mut in_msgs: Vec<Vec<Vec<(usize, usize, u64, usize)>>> =
        ops.iter().map(|r| vec![Vec::new(); r.len()]).collect();
    #[allow(clippy::type_complexity)]
    let mut out_msgs: Vec<Vec<Vec<(usize, usize, u64)>>> =
        ops.iter().map(|r| vec![Vec::new(); r.len()]).collect();
    for (mi, m) in run.messages.iter().enumerate() {
        let sop = ev2op[m.src][m.send_idx];
        let dop = ev2op[m.dst][m.recv_idx];
        let w = wire(m.words);
        in_msgs[m.dst][dop].push((m.src, sop, w, mi));
        out_msgs[m.src][sop].push((m.dst, dop, w));
    }
    let rounds: Vec<Vec<usize>> = run
        .reductions
        .iter()
        .map(|round| (0..n).map(|r| ev2op[r][round.at[r]]).collect())
        .collect();
    // Op -> round id, for the backward pass.
    let mut round_of: Vec<Vec<Option<usize>>> = ops.iter().map(|r| vec![None; r.len()]).collect();
    for (ri, members) in rounds.iter().enumerate() {
        for (r, &oi) in members.iter().enumerate() {
            round_of[r][oi] = Some(ri);
        }
    }

    // Forward pass: earliest start/end per op, in a replay-style
    // round-robin (the matcher already proved the schedule completes).
    // `cursor[r]` is the first unresolved op; starts are known for ops
    // 0..=cursor[r].
    #[derive(Clone, Copy)]
    enum Node {
        Start(usize, usize),
        End(usize, usize),
    }
    let mut cursor = vec![0usize; n];
    let mut topo: Vec<Node> = Vec::new();
    for (r, rank_ops) in ops.iter_mut().enumerate() {
        if let Some(first) = rank_ops.first_mut() {
            first.start_ps = first.compute_in_ps;
            topo.push(Node::Start(r, 0));
        }
    }
    let resolve = |ops: &mut Vec<Vec<Op>>,
                   cursor: &mut Vec<usize>,
                   topo: &mut Vec<Node>,
                   r: usize,
                   end: u64,
                   pred: Pred| {
        let i = cursor[r];
        ops[r][i].end_ps = end;
        ops[r][i].pred = pred;
        topo.push(Node::End(r, i));
        cursor[r] += 1;
        if cursor[r] < ops[r].len() {
            let next_in = ops[r][cursor[r]].compute_in_ps;
            ops[r][cursor[r]].start_ps = end + next_in;
            topo.push(Node::Start(r, cursor[r]));
        }
    };
    loop {
        let mut progressed = false;
        for r in 0..n {
            while cursor[r] < ops[r].len() {
                let i = cursor[r];
                let (kind, start, cost) = (ops[r][i].kind, ops[r][i].start_ps, ops[r][i].cost_ps);
                match kind {
                    OpKind::SendOnly => {
                        resolve(
                            &mut ops,
                            &mut cursor,
                            &mut topo,
                            r,
                            start + cost,
                            Pred::Local,
                        );
                        progressed = true;
                    }
                    OpKind::Exchange => {
                        if in_msgs[r][i].iter().any(|&(q, p, _, _)| p > cursor[q]) {
                            break; // a sender has not posted its start yet
                        }
                        let mut end = start + cost;
                        let mut pred = Pred::Local;
                        for &(q, p, w, mi) in &in_msgs[r][i] {
                            let cand = ops[q][p].start_ps + w;
                            if cand > end {
                                end = cand;
                                pred = Pred::Msg {
                                    src: q,
                                    src_op: p,
                                    msg: mi,
                                };
                            }
                        }
                        resolve(&mut ops, &mut cursor, &mut topo, r, end, pred);
                        progressed = true;
                    }
                    OpKind::Reduce => break, // joins at the barrier below
                }
            }
        }

        // Reduce-round join: every rank's current op must be the round's
        // member (the matcher guarantees a consistent global sequence).
        let at_reduce =
            (0..n).all(|r| cursor[r] < ops[r].len() && ops[r][cursor[r]].kind == OpKind::Reduce);
        if at_reduce {
            // Last-entering participant sets the join; smallest rank on
            // ties, so the blame is deterministic.
            let mut t_join = 0u64;
            let mut who = 0usize;
            for r in 0..n {
                let s = ops[r][cursor[r]].start_ps;
                if s > t_join {
                    t_join = s;
                    who = r;
                }
            }
            let who_op = cursor[who];
            for r in 0..n {
                let cost = ops[r][cursor[r]].cost_ps;
                let pred = if r == who {
                    Pred::Local
                } else {
                    Pred::Round {
                        src: who,
                        src_op: who_op,
                    }
                };
                resolve(&mut ops, &mut cursor, &mut topo, r, t_join + cost, pred);
            }
            progressed = true;
        }

        if !progressed {
            break;
        }
    }
    assert!(
        (0..n).all(|r| cursor[r] == ops[r].len()),
        "forward pass stalled on a schedule the matcher replayed"
    );

    // Makespan: latest earliest-end over every rank's last op.
    let total_path_ps = (0..n)
        .filter_map(|r| ops[r].last().map(|o| o.end_ps))
        .max()
        .unwrap_or(0);

    // Backward pass over the reversed topological node order.
    for node in topo.iter().rev() {
        match *node {
            Node::End(r, i) => {
                let le = if i + 1 < ops[r].len() {
                    ops[r][i + 1]
                        .latest_start_ps
                        .saturating_sub(ops[r][i + 1].compute_in_ps)
                } else {
                    total_path_ps
                };
                ops[r][i].latest_end_ps = le;
            }
            Node::Start(r, i) => {
                let mut ls = ops[r][i].latest_end_ps.saturating_sub(ops[r][i].cost_ps);
                for &(d, j, w) in &out_msgs[r][i] {
                    ls = ls.min(ops[d][j].latest_end_ps.saturating_sub(w));
                }
                if let Some(ri) = round_of[r][i] {
                    for (q, &oq) in rounds[ri].iter().enumerate() {
                        ls = ls.min(ops[q][oq].latest_end_ps.saturating_sub(ops[q][oq].cost_ps));
                    }
                }
                ops[r][i].latest_start_ps = ls;
            }
        }
    }

    // Walk the critical path back from the sink (max earliest end;
    // smallest rank on ties).
    let sink = (0..n)
        .filter(|&r| !ops[r].is_empty())
        .max_by_key(|&r| (ops[r].last().map(|o| o.end_ps).unwrap_or(0), usize::MAX - r))
        .unwrap_or_else(|| panic!("nonempty run has a sink rank"));
    let mut hops_rev: Vec<Hop> = Vec::new();
    let mut cur = Some((sink, ops[sink].len() - 1));
    while let Some((r, i)) = cur {
        let op = &ops[r][i];
        let op_kind = match op.kind {
            OpKind::Exchange => "comm",
            OpKind::Reduce => "reduce",
            OpKind::SendOnly => "send",
        };
        // How the path enters this op's end node.
        let (enter_rank, enter_op) = match op.pred {
            Pred::Local => {
                hops_rev.push(Hop {
                    rank: r,
                    phase: op.phase,
                    step: op.step,
                    kind: op_kind,
                    dur_ps: op.end_ps - op.start_ps,
                });
                (r, i)
            }
            Pred::Msg {
                src,
                src_op,
                msg: _,
            } => {
                let wire_ps = op.end_ps - ops[src][src_op].start_ps;
                hops_rev.push(Hop {
                    rank: r,
                    phase: op.phase,
                    step: op.step,
                    kind: "wire",
                    dur_ps: wire_ps,
                });
                (src, src_op)
            }
            Pred::Round { src, src_op } => {
                hops_rev.push(Hop {
                    rank: r,
                    phase: op.phase,
                    step: op.step,
                    kind: "reduce",
                    dur_ps: op.end_ps - ops[src][src_op].start_ps,
                });
                (src, src_op)
            }
        };
        // The compute edge into the entering op's start.
        let eop = &ops[enter_rank][enter_op];
        if eop.compute_in_ps > 0 {
            hops_rev.push(Hop {
                rank: enter_rank,
                phase: eop.phase,
                step: eop.step,
                kind: "compute",
                dur_ps: eop.compute_in_ps,
            });
        }
        cur = if enter_op > 0 {
            Some((enter_rank, enter_op - 1))
        } else {
            None
        };
    }
    let hops: Vec<Hop> = hops_rev.into_iter().rev().collect();

    // Every wire-bound receive in the DAG (on the path or off it): the
    // ops whose end an incoming message set. `wait` is the stall beyond
    // the op's own charged cost; `wire` is the interconnect model's
    // point-to-point time for the binding payload.
    let mut cross_edges: Vec<CrossEdge> = Vec::new();
    for (r, rank_ops) in ops.iter().enumerate() {
        for op in rank_ops {
            if let Pred::Msg { src, src_op, msg } = op.pred {
                cross_edges.push(CrossEdge {
                    step: op.step,
                    src,
                    dst: r,
                    words: run.messages[msg].words,
                    wire_ps: op.end_ps - ops[src][src_op].start_ps,
                    wait_ps: (op.end_ps - op.start_ps).saturating_sub(op.cost_ps),
                });
            }
        }
    }

    // Per-step path shares and dominant (rank, phase).
    let mut per_step: BTreeMap<u32, BTreeMap<(usize, u8), u64>> = BTreeMap::new();
    for h in &hops {
        *per_step
            .entry(h.step)
            .or_default()
            .entry((h.rank, phase_order(h.phase)))
            .or_default() += h.dur_ps;
    }
    let step_rows: Vec<StepRow> = per_step
        .iter()
        .map(|(&step, by_actor)| {
            let path_ps = by_actor.values().sum();
            let (&(rank, ph), &dom) = by_actor
                .iter()
                .max_by_key(|&(&(r, p), &v)| (v, usize::MAX - r, u8::MAX - p))
                .unwrap_or_else(|| panic!("step {step} bucket is nonempty"));
            StepRow {
                step,
                path_ps,
                dominant_rank: rank,
                dominant_phase: [Phase::Ps, Phase::Ds, Phase::Outside][ph as usize],
                dominant_ps: dom,
            }
        })
        .collect();

    // Per-rank slack and path participation.
    let rank_rows: Vec<RankRow> = (0..n)
        .map(|r| {
            // Slack over the rank's *start* nodes only: an op's end can
            // be pinned by a join or an incoming wire (someone else's
            // doing), but the start is where the rank's own compute and
            // cost feed in — that is what can slip.
            let slack_ps = ops[r]
                .iter()
                .map(|o| o.latest_start_ps.saturating_sub(o.start_ps))
                .min()
                .unwrap_or(0);
            let on_path: Vec<&Hop> = hops.iter().filter(|h| h.rank == r).collect();
            RankRow {
                rank: r,
                slack_ps,
                on_path_ps: on_path.iter().map(|h| h.dur_ps).sum(),
                on_path_hops: on_path.len(),
            }
        })
        .collect();

    // Straggler attribution: path time by (rank, phase, kind), largest
    // first.
    let mut attr: BTreeMap<(usize, u8, &'static str), (u64, usize)> = BTreeMap::new();
    for h in &hops {
        let e = attr
            .entry((h.rank, phase_order(h.phase), h.kind))
            .or_default();
        e.0 += h.dur_ps;
        e.1 += 1;
    }
    let mut attribution: Vec<AttributionRow> = attr
        .into_iter()
        .map(|((rank, ph, kind), (path_ps, hops))| AttributionRow {
            rank,
            phase: [Phase::Ps, Phase::Ds, Phase::Outside][ph as usize],
            kind,
            path_ps,
            hops,
        })
        .collect();
    attribution.sort_by(|a, b| {
        b.path_ps
            .cmp(&a.path_ps)
            .then(a.rank.cmp(&b.rank))
            .then(phase_order(a.phase).cmp(&phase_order(b.phase)))
            .then(a.kind.cmp(b.kind))
    });

    Ok(CritPath {
        ranks: n,
        ops: ops.iter().map(Vec::len).sum(),
        messages: run.messages.len(),
        reductions: run.reductions.len(),
        steps: step_rows.len(),
        total_path_ps,
        hops,
        step_rows,
        rank_rows,
        attribution,
        cross_edges,
    })
}

impl CritPath {
    /// The straggler: the (rank, phase) holding the largest share of the
    /// path (summed over hop kinds).
    pub fn blame(&self) -> Option<(usize, Phase)> {
        let mut by_actor: BTreeMap<(usize, u8), u64> = BTreeMap::new();
        for a in &self.attribution {
            *by_actor.entry((a.rank, phase_order(a.phase))).or_default() += a.path_ps;
        }
        by_actor
            .into_iter()
            .max_by_key(|&((r, p), v)| (v, usize::MAX - r, u8::MAX - p))
            .map(|((r, p), _)| (r, [Phase::Ps, Phase::Ds, Phase::Outside][p as usize]))
    }

    /// Per-step path lengths in picoseconds, step-tag order.
    pub fn per_step_path_ps(&self) -> Vec<(u32, u64)> {
        self.step_rows.iter().map(|s| (s.step, s.path_ps)).collect()
    }

    /// Deterministic text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {} ranks, {} ops, {} messages, {} reductions, {} steps",
            self.ranks, self.ops, self.messages, self.reductions, self.steps
        );
        let _ = writeln!(out, "total path: {} us", us(self.total_path_ps));

        let _ = writeln!(out, "\n[per-step critical path]");
        let _ = writeln!(
            out,
            "  {:<6} {:>16} {:<12} {:>16} {:>7}",
            "step", "path_us", "dominant", "dominant_us", "share"
        );
        for s in &self.step_rows {
            let share = if s.path_ps == 0 {
                0.0
            } else {
                s.dominant_ps as f64 / s.path_ps as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  {:<6} {:>16} {:<12} {:>16} {:>6.1}%",
                s.step,
                us(s.path_ps),
                format!("r{}/{}", s.dominant_rank, phase_label(s.dominant_phase)),
                us(s.dominant_ps),
                share
            );
        }

        // Chain, consecutive same-rank hops merged into segments.
        let _ = writeln!(out, "\n[critical path chain]");
        let mut i = 0usize;
        while i < self.hops.len() {
            let rank = self.hops[i].rank;
            let mut dur = 0u64;
            let mut count = 0usize;
            let mut by_phase: BTreeMap<u8, u64> = BTreeMap::new();
            let (step_lo, mut step_hi) = (self.hops[i].step, self.hops[i].step);
            let mut j = i;
            while j < self.hops.len() && self.hops[j].rank == rank {
                // A cross-kind hop ends the segment *after* being counted
                // on the destination rank's row only if it is local;
                // wire/reduce hops start a new segment boundary below.
                if j > i
                    && matches!(self.hops[j].kind, "wire" | "reduce")
                    && self.hops[j - 1].rank == rank
                    && self.hops[j].rank == rank
                {
                    // reduce self-join stays in segment
                }
                dur += self.hops[j].dur_ps;
                count += 1;
                step_hi = self.hops[j].step;
                *by_phase.entry(phase_order(self.hops[j].phase)).or_default() +=
                    self.hops[j].dur_ps;
                j += 1;
            }
            let (&domp, _) = by_phase
                .iter()
                .max_by_key(|&(&p, &v)| (v, u8::MAX - p))
                .unwrap_or_else(|| panic!("segment at rank {rank} is nonempty"));
            let steps = if step_lo == step_hi {
                format!("step {step_lo}")
            } else {
                format!("steps {step_lo}-{step_hi}")
            };
            let _ = writeln!(
                out,
                "  r{rank} {:<8} {}  {} us ({} hops)",
                phase_label([Phase::Ps, Phase::Ds, Phase::Outside][domp as usize]),
                steps,
                us(dur),
                count
            );
            i = j;
            if i < self.hops.len() {
                let h = &self.hops[i];
                let _ = writeln!(out, "    ={}=> r{}", h.kind, h.rank);
            }
        }

        let _ = writeln!(out, "\n[per-rank slack]");
        let _ = writeln!(
            out,
            "  {:<6} {:>16} {:>16} {:>14}",
            "rank", "slack_us", "on_path_us", "on_path_hops"
        );
        for r in &self.rank_rows {
            let _ = writeln!(
                out,
                "  {:<6} {:>16} {:>16} {:>14}",
                r.rank,
                us(r.slack_ps),
                us(r.on_path_ps),
                r.on_path_hops
            );
        }

        let _ = writeln!(out, "\n[straggler attribution]");
        let _ = writeln!(
            out,
            "  {:<6} {:<8} {:<8} {:>16} {:>6} {:>7}",
            "rank", "phase", "kind", "path_us", "hops", "share"
        );
        for a in &self.attribution {
            let share = if self.total_path_ps == 0 {
                0.0
            } else {
                a.path_ps as f64 / self.total_path_ps as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  {:<6} {:<8} {:<8} {:>16} {:>6} {:>6.1}%",
                a.rank,
                phase_label(a.phase),
                a.kind,
                us(a.path_ps),
                a.hops,
                share
            );
        }
        if let Some((rank, phase)) = self.blame() {
            let _ = writeln!(out, "  blame: rank {rank} {}", phase_label(phase));
        }

        let _ = writeln!(out, "\n[wait vs wire] (wire-bound receives across the DAG)");
        let _ = writeln!(
            out,
            "  {:<6} {:<10} {:>8} {:>16} {:>16}",
            "step", "edge", "words", "wire_us", "wait_us"
        );
        for e in &self.cross_edges {
            let _ = writeln!(
                out,
                "  {:<6} {:<10} {:>8} {:>16} {:>16}",
                e.step,
                format!("r{}->r{}", e.src, e.dst),
                e.words,
                us(e.wire_ps),
                us(e.wait_ps)
            );
        }
        let wire_total: u64 = self.cross_edges.iter().map(|e| e.wire_ps).sum();
        let wait_total: u64 = self.cross_edges.iter().map(|e| e.wait_ps).sum();
        let _ = writeln!(
            out,
            "  total: {} edges, wire {} us, wait {} us (wire from the interconnect \
             point-to-point model; wait is schedule stall beyond the charged op cost)",
            self.cross_edges.len(),
            us(wire_total),
            us(wait_total)
        );
        out
    }

    /// Deterministic machine-readable summary.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"critpath\":{");
        let _ = write!(
            out,
            "\"ranks\":{},\"ops\":{},\"messages\":{},\"reductions\":{},\"steps\":{},\
             \"total_path_us\":{}",
            self.ranks,
            self.ops,
            self.messages,
            self.reductions,
            self.steps,
            us(self.total_path_ps)
        );
        out.push_str(",\"per_step\":[");
        for (i, s) in self.step_rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"step\":{},\"path_us\":{},\"dominant\":\"r{}/{}\"}}",
                s.step,
                us(s.path_ps),
                s.dominant_rank,
                phase_label(s.dominant_phase)
            );
        }
        out.push_str("],\"slack_us\":[");
        for (i, r) in self.rank_rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", us(r.slack_ps));
        }
        out.push(']');
        match self.blame() {
            Some((rank, phase)) => {
                let _ = write!(
                    out,
                    ",\"blame\":{{\"rank\":{rank},\"phase\":\"{}\"}}",
                    phase_label(phase)
                );
            }
            None => out.push_str(",\"blame\":null"),
        }
        let wire_total: u64 = self.cross_edges.iter().map(|e| e.wire_ps).sum();
        let wait_total: u64 = self.cross_edges.iter().map(|e| e.wait_ps).sum();
        let _ = write!(
            out,
            ",\"cross_edges\":{},\"wire_us\":{},\"wait_us\":{}}}}}",
            self.cross_edges.len(),
            us(wire_total),
            us(wait_total)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commlog::CommEvent;

    /// Build a stamped log by accumulating a local clock: items are
    /// (compute_before_ps, cost_ps, events, step, phase).
    fn rank_log(items: &[(u64, u64, Vec<CommEvent>, u32, Phase)]) -> Vec<Stamped> {
        let mut clock = 0u64;
        let mut out = Vec::new();
        for (op, (compute, cost, evs, step, phase)) in items.iter().enumerate() {
            clock += compute + cost;
            for ev in evs {
                out.push(Stamped {
                    ev: *ev,
                    at_ps: clock,
                    cost_ps: *cost,
                    op: op as u32 + 1,
                    step: *step,
                    phase: *phase,
                });
            }
        }
        out
    }

    const WIRE: fn(usize) -> u64 = |words| words as u64 * 10;

    #[test]
    fn empty_and_untimed_logs_are_rejected() {
        assert_eq!(analyze(&[], &WIRE), Err(CritPathError::Empty));
        assert_eq!(analyze(&[vec![], vec![]], &WIRE), Err(CritPathError::Empty));
        let untimed = vec![vec![Stamped {
            ev: CommEvent::Reduce { generation: 0 },
            at_ps: 0,
            cost_ps: 0,
            op: 0,
            step: 0,
            phase: Phase::Outside,
        }]];
        assert_eq!(analyze(&untimed, &WIRE), Err(CritPathError::Untimed));
    }

    #[test]
    fn straggler_rank_owns_the_path_through_a_reduce() {
        // Two ranks, one reduction. Rank 1 computes 10x longer before
        // joining: the path must run through rank 1's compute and blame
        // it, and rank 0 must show slack equal to the compute gap.
        let logs = vec![
            rank_log(&[(
                100,
                50,
                vec![CommEvent::Reduce { generation: 0 }],
                1,
                Phase::Ds,
            )]),
            rank_log(&[(
                1000,
                50,
                vec![CommEvent::Reduce { generation: 0 }],
                1,
                Phase::Ds,
            )]),
        ];
        let cp = analyze(&logs, &WIRE).expect("clean run");
        assert_eq!(cp.total_path_ps, 1050);
        assert_eq!(cp.blame(), Some((1, Phase::Ds)));
        assert_eq!(cp.rank_rows[1].slack_ps, 0, "straggler has no slack");
        assert_eq!(cp.rank_rows[0].slack_ps, 900, "fast rank can slip");
        // Path hops sum exactly to the makespan.
        let hop_sum: u64 = cp.hops.iter().map(|h| h.dur_ps).sum();
        assert_eq!(hop_sum, cp.total_path_ps);
    }

    #[test]
    fn wire_edge_binds_when_the_sender_is_late() {
        // Rank 0 sends to rank 1 (exchange pair). Rank 0 enters late, so
        // rank 1's receive is bound by the wire edge, not its own cost.
        let logs = vec![
            rank_log(&[(
                2000,
                40,
                vec![
                    CommEvent::Send { to: 1, words: 8 },
                    CommEvent::Recv { from: 1, words: 8 },
                ],
                1,
                Phase::Ps,
            )]),
            rank_log(&[(
                100,
                40,
                vec![
                    CommEvent::Send { to: 0, words: 8 },
                    CommEvent::Recv { from: 0, words: 8 },
                ],
                1,
                Phase::Ps,
            )]),
        ];
        let cp = analyze(&logs, &WIRE).expect("clean run");
        // Rank 1's end = rank 0's start (2000) + wire (80) = 2080; rank
        // 0's own end = 2040 local vs rank 1's start (100) + 80 < that.
        assert_eq!(cp.total_path_ps, 2080);
        assert_eq!(cp.cross_edges.len(), 1);
        let e = cp.cross_edges[0];
        assert_eq!((e.src, e.dst, e.words, e.wire_ps), (0, 1, 8, 80));
        // Wait: rank 1's op spanned 2080-100=1980, charged 40 -> 1940.
        assert_eq!(e.wait_ps, 1940);
        assert_eq!(cp.blame(), Some((0, Phase::Ps)));
    }

    #[test]
    fn per_step_rows_partition_the_path() {
        let logs = vec![
            rank_log(&[
                (
                    100,
                    50,
                    vec![CommEvent::Reduce { generation: 0 }],
                    1,
                    Phase::Ps,
                ),
                (
                    700,
                    50,
                    vec![CommEvent::Reduce { generation: 1 }],
                    2,
                    Phase::Ds,
                ),
            ]),
            rank_log(&[
                (
                    400,
                    50,
                    vec![CommEvent::Reduce { generation: 0 }],
                    1,
                    Phase::Ps,
                ),
                (
                    200,
                    50,
                    vec![CommEvent::Reduce { generation: 1 }],
                    2,
                    Phase::Ds,
                ),
            ]),
        ];
        let cp = analyze(&logs, &WIRE).expect("clean run");
        assert_eq!(cp.steps, 2);
        let total: u64 = cp.step_rows.iter().map(|s| s.path_ps).sum();
        assert_eq!(total, cp.total_path_ps);
        // Step 1's straggler is rank 1 (400 vs 100); step 2's is rank 0
        // (700 vs 200, measured from the common join).
        assert_eq!(cp.step_rows[0].dominant_rank, 1);
        assert_eq!(cp.step_rows[1].dominant_rank, 0);
    }

    #[test]
    fn report_and_json_are_deterministic_and_labelled() {
        let logs = || {
            vec![
                rank_log(&[(
                    100,
                    50,
                    vec![CommEvent::Reduce { generation: 0 }],
                    1,
                    Phase::Ds,
                )]),
                rank_log(&[(
                    900,
                    50,
                    vec![CommEvent::Reduce { generation: 0 }],
                    1,
                    Phase::Ds,
                )]),
            ]
        };
        let a = analyze(&logs(), &WIRE).unwrap();
        let b = analyze(&logs(), &WIRE).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render_json(), b.render_json());
        let r = a.render();
        for needle in [
            "critical path: 2 ranks",
            "[per-step critical path]",
            "[critical path chain]",
            "[per-rank slack]",
            "[straggler attribution]",
            "blame: rank 1 ds",
            "[wait vs wire]",
        ] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
        let j = a.render_json();
        assert!(j.starts_with("{\"critpath\":{\"ranks\":2"));
        assert!(j.contains("\"blame\":{\"rank\":1,\"phase\":\"ds\"}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn ordering_bugs_surface_as_match_errors() {
        let logs = vec![
            rank_log(&[(
                10,
                5,
                vec![CommEvent::Reduce { generation: 0 }],
                1,
                Phase::Ps,
            )]),
            rank_log(&[(
                10,
                5,
                vec![CommEvent::Reduce { generation: 1 }],
                1,
                Phase::Ps,
            )]),
        ];
        assert!(matches!(
            analyze(&logs, &WIRE),
            Err(CritPathError::Match(MatchError::ReduceMismatch { .. }))
        ));
    }
}

//! Thread-local flight recorder built on [`hyades_des::trace::Trace`].
//!
//! Simulated components (Arctic routers, NIU state machines) call
//! [`record`] at interesting event-path points; the call is a no-op
//! unless a harness has [`install`]ed a trace on this thread. Test
//! harnesses dump the buffer when an assertion fails — the event history
//! that led to the failure, like a black box pulled from wreckage.

use hyades_des::trace::Trace;
use hyades_des::{ActorId, SimTime};
use std::cell::{Cell, RefCell};

thread_local! {
    static INSTALLED: Cell<bool> = const { Cell::new(false) };
    static FLIGHT: RefCell<Option<Trace>> = const { RefCell::new(None) };
}

/// Install a bounded flight recorder on this thread (capacity records;
/// oldest are dropped first). Replaces any existing recorder.
pub fn install(capacity: usize) {
    FLIGHT.with(|f| *f.borrow_mut() = Some(Trace::new(capacity)));
    INSTALLED.with(|i| i.set(true));
}

/// Is a flight recorder installed on this thread?
#[inline]
pub fn installed() -> bool {
    INSTALLED.with(|i| i.get())
}

/// Append a record if a recorder is installed; otherwise a no-op.
#[inline]
pub fn record(at: SimTime, actor: ActorId, label: &'static str, detail: u64) {
    if !installed() {
        return;
    }
    FLIGHT.with(|f| {
        if let Some(tr) = f.borrow_mut().as_mut() {
            tr.record(at, actor, label, detail);
        }
    });
}

/// Convenience for model-side callers (the GCM monitor) that live
/// outside the DES and have no natural [`SimTime`]/[`ActorId`]: stamp
/// the crumb with the timestep number as microseconds and the rank as
/// the actor, so sentinel breadcrumbs interleave readably with a
/// `Trace::dump`.
#[inline]
pub fn crumb(step: u64, rank: usize, label: &'static str, detail: u64) {
    record(
        SimTime::from_us_f64(step as f64),
        ActorId(rank),
        label,
        detail,
    );
}

/// Remove and return the recorder (for dumping after a failure).
pub fn take() -> Option<Trace> {
    INSTALLED.with(|i| i.set(false));
    FLIGHT.with(|f| f.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_noop_without_install() {
        assert!(!installed());
        record(SimTime::ZERO, ActorId(0), "ev", 1);
        assert!(take().is_none());
    }

    #[test]
    fn installed_recorder_captures_events() {
        install(8);
        assert!(installed());
        record(SimTime::from_us_f64(1.0), ActorId(2), "router.tx", 7);
        record(SimTime::from_us_f64(2.0), ActorId(3), "router.rx", 7);
        let tr = take().unwrap();
        assert!(!installed());
        assert_eq!(tr.len(), 2);
        let labels: Vec<&str> = tr.iter().map(|r| r.label).collect();
        assert_eq!(labels, ["router.tx", "router.rx"]);
        assert!(tr.dump().contains("router.tx"));
    }

    #[test]
    fn reinstall_replaces_buffer() {
        install(4);
        record(SimTime::ZERO, ActorId(0), "old", 0);
        install(4);
        record(SimTime::ZERO, ActorId(0), "new", 0);
        let tr = take().unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.iter().next().unwrap().label, "new");
    }
}

//! The unified export surface.
//!
//! Before this module, every telemetry producer grew its own ad-hoc
//! exporter: the run recorder rendered Chrome-trace JSON and a text
//! summary, the diagnostics series rendered text/JSON/Prometheus, the
//! critical-path profiler rendered text/JSON, and the fabric
//! observatory rendered Prometheus plus a JSON manifest — five surfaces
//! with five call shapes, and every harness (bench, tour, examples)
//! hand-wired `fs::write` calls per format.
//!
//! [`Exporter`] collapses those into one shape: a producer yields
//! [`Artifact`]s — named, typed, fully rendered documents — and callers
//! handle them uniformly: [`Exporter::export_all`] streams them to any
//! `Write` with `tail(1)`-style headers, and [`write_artifacts_to_dir`]
//! lands one file per artifact using the kind's canonical extension.
//!
//! The artifacts themselves are the *same bytes* the legacy render
//! methods produce (each impl delegates to them), so every determinism
//! guarantee in `tests/determinism.rs` carries over: same seed, same
//! artifacts, byte for byte. Producers outside this crate (e.g. the
//! Arctic observatory's `FabricReport`) participate via [`Prebuilt`],
//! which wraps already-rendered strings.

use crate::critpath::CritPath;
use crate::diag::DiagSeries;
use crate::export::RunTelemetry;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// What a rendered artifact is, which fixes its file extension and how
/// downstream tooling should parse it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Machine-readable JSON (manifests, series, summaries).
    Json,
    /// Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
    ChromeTrace,
    /// Prometheus text exposition.
    Prom,
    /// Human-readable deterministic text report.
    Text,
}

impl ArtifactKind {
    pub fn extension(self) -> &'static str {
        match self {
            ArtifactKind::Json | ArtifactKind::ChromeTrace => "json",
            ArtifactKind::Prom => "prom",
            ArtifactKind::Text => "txt",
        }
    }
}

/// One named, fully rendered export document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// Base name, without extension (e.g. `"fabric_manifest"`).
    pub name: String,
    pub kind: ArtifactKind,
    /// The rendered document. Producers guarantee these bytes are
    /// deterministic for a given seed.
    pub bytes: String,
}

impl Artifact {
    pub fn new(name: &str, kind: ArtifactKind, bytes: String) -> Artifact {
        Artifact {
            name: name.to_string(),
            kind,
            bytes,
        }
    }

    /// `name.ext` with the kind's canonical extension.
    pub fn file_name(&self) -> String {
        format!("{}.{}", self.name, self.kind.extension())
    }
}

/// Anything that can hand over its run artifacts.
pub trait Exporter {
    /// Render every artifact this producer owns, in a deterministic
    /// order.
    fn artifacts(&self) -> Vec<Artifact>;

    /// Stream every artifact to one writer, each prefixed with a
    /// `==> name.ext <==` header line (the `tail -n +1` convention) and
    /// terminated by a newline.
    fn export_all(&self, w: &mut dyn Write) -> io::Result<()> {
        for a in self.artifacts() {
            writeln!(w, "==> {} <==", a.file_name())?;
            w.write_all(a.bytes.as_bytes())?;
            if !a.bytes.ends_with('\n') {
                writeln!(w)?;
            }
        }
        Ok(())
    }
}

/// Already-rendered artifacts wrapped as an [`Exporter`] — the adapter
/// for producers that live outside this crate (the Arctic observatory,
/// the Ethernet control-network sim) or for harnesses assembling a
/// mixed bundle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Prebuilt {
    artifacts: Vec<Artifact>,
}

impl Prebuilt {
    pub fn new(artifacts: Vec<Artifact>) -> Prebuilt {
        Prebuilt { artifacts }
    }

    /// Builder-style append.
    pub fn with(mut self, name: &str, kind: ArtifactKind, bytes: String) -> Prebuilt {
        self.artifacts.push(Artifact::new(name, kind, bytes));
        self
    }

    /// Absorb every artifact of another exporter.
    pub fn extend_from(mut self, other: &dyn Exporter) -> Prebuilt {
        self.artifacts.extend(other.artifacts());
        self
    }
}

impl Exporter for Prebuilt {
    fn artifacts(&self) -> Vec<Artifact> {
        self.artifacts.clone()
    }
}

/// Write one file per artifact into `dir` (created if missing),
/// returning the paths written. Two artifacts rendering to the same
/// file name is a caller bug and panics rather than silently clobbering.
pub fn write_artifacts_to_dir(exporter: &dyn Exporter, dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written: Vec<PathBuf> = Vec::new();
    for a in exporter.artifacts() {
        let path = dir.join(a.file_name());
        assert!(
            !written.contains(&path),
            "duplicate artifact file name {}",
            a.file_name()
        );
        std::fs::write(&path, a.bytes.as_bytes())?;
        written.push(path);
    }
    Ok(written)
}

impl Exporter for RunTelemetry {
    /// `trace.json` (Chrome trace) + `telemetry.txt` (text summary).
    fn artifacts(&self) -> Vec<Artifact> {
        vec![
            Artifact::new("trace", ArtifactKind::ChromeTrace, self.chrome_trace_json()),
            Artifact::new("telemetry", ArtifactKind::Text, self.text_summary()),
        ]
    }
}

impl Exporter for DiagSeries {
    /// `diag_<name>.{txt,json,prom}` — all three diagnostic renderings.
    fn artifacts(&self) -> Vec<Artifact> {
        let base = format!("diag_{}", self.name());
        vec![
            Artifact::new(&base, ArtifactKind::Text, self.render_text()),
            Artifact::new(&base, ArtifactKind::Json, self.render_json()),
            Artifact::new(&base, ArtifactKind::Prom, self.render_prom("hyades")),
        ]
    }
}

impl Exporter for CritPath {
    /// `critpath.txt` (blame report) + `critpath.json` (summary).
    fn artifacts(&self) -> Vec<Artifact> {
        vec![
            Artifact::new("critpath", ArtifactKind::Text, self.render()),
            Artifact::new("critpath", ArtifactKind::Json, self.render_json()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagRow;

    fn sample_series() -> DiagSeries {
        let mut s = DiagSeries::new("ocean");
        let mut r = DiagRow::new(1);
        r.set("cfl_adv", 0.25).set("ke_u", 12.5);
        s.push(r);
        s
    }

    #[test]
    fn kinds_pick_canonical_extensions() {
        assert_eq!(ArtifactKind::Json.extension(), "json");
        assert_eq!(ArtifactKind::ChromeTrace.extension(), "json");
        assert_eq!(ArtifactKind::Prom.extension(), "prom");
        assert_eq!(ArtifactKind::Text.extension(), "txt");
        let a = Artifact::new("fabric_manifest", ArtifactKind::Json, "{}".into());
        assert_eq!(a.file_name(), "fabric_manifest.json");
    }

    #[test]
    fn diag_series_exports_all_three_renderings() {
        let s = sample_series();
        let arts = s.artifacts();
        assert_eq!(arts.len(), 3);
        assert_eq!(arts[0].file_name(), "diag_ocean.txt");
        assert_eq!(arts[1].file_name(), "diag_ocean.json");
        assert_eq!(arts[2].file_name(), "diag_ocean.prom");
        // Identical bytes to the legacy render methods.
        assert_eq!(arts[0].bytes, s.render_text());
        assert_eq!(arts[1].bytes, s.render_json());
        assert_eq!(arts[2].bytes, s.render_prom("hyades"));
    }

    #[test]
    fn export_all_streams_with_tail_headers() {
        let s = sample_series();
        let mut buf: Vec<u8> = Vec::new();
        s.export_all(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("==> diag_ocean.txt <=="));
        assert!(text.contains("==> diag_ocean.json <=="));
        assert!(text.contains("==> diag_ocean.prom <=="));
        assert!(text.contains("cfl_adv"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn prebuilt_bundles_and_extends() {
        let bundle = Prebuilt::default()
            .with("fabric", ArtifactKind::Prom, "# TYPE x gauge\n".into())
            .extend_from(&sample_series());
        let arts = bundle.artifacts();
        assert_eq!(arts.len(), 4);
        assert_eq!(arts[0].file_name(), "fabric.prom");
        assert_eq!(arts[3].file_name(), "diag_ocean.prom");
    }

    #[test]
    fn write_to_dir_lands_one_file_per_artifact() {
        let dir = std::env::temp_dir().join(format!("hyades-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_artifacts_to_dir(&sample_series(), &dir).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            let body = std::fs::read_to_string(p).unwrap();
            assert!(!body.is_empty(), "{p:?} empty");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate artifact file name")]
    fn duplicate_file_names_panic() {
        let dir = std::env::temp_dir().join(format!("hyades-artifact-dup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bundle = Prebuilt::default()
            .with("x", ArtifactKind::Text, "a".into())
            .with("x", ArtifactKind::Text, "b".into());
        let _ = write_artifacts_to_dir(&bundle, &dir);
    }
}

//! Per-component metric registry.
//!
//! A keyed collection of the `hyades_des::stats` primitives — counters,
//! Welford online statistics, and log₂ histograms — indexed by
//! `(component, metric)` name pairs. `BTreeMap` keys give deterministic
//! iteration order for exporters, and every metric kind supports `merge`
//! so per-rank registries can be pooled at end of run.

use hyades_des::stats::{Log2Histogram, OnlineStats};
use hyades_des::SimDuration;
use std::collections::BTreeMap;

type Key = (&'static str, &'static str);

/// Metric store for one rank (or one merged run).
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    stats: BTreeMap<Key, OnlineStats>,
    hists: BTreeMap<Key, Log2Histogram>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Bump a monotonic counter.
    pub fn add_count(&mut self, component: &'static str, metric: &'static str, delta: u64) {
        *self.counters.entry((component, metric)).or_insert(0) += delta;
    }

    /// Record one sample into an online-statistics series.
    pub fn observe(&mut self, component: &'static str, metric: &'static str, value: f64) {
        self.stats
            .entry((component, metric))
            .or_insert_with(OnlineStats::new)
            .push(value);
    }

    /// Record a duration sample (stored in microseconds).
    pub fn observe_duration_us(
        &mut self,
        component: &'static str,
        metric: &'static str,
        d: SimDuration,
    ) {
        self.observe(component, metric, d.as_us_f64());
    }

    /// Record one sample into a log₂ histogram.
    pub fn observe_hist(&mut self, component: &'static str, metric: &'static str, value: u64) {
        self.hists
            .entry((component, metric))
            .or_insert_with(Log2Histogram::new)
            .record(value);
    }

    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, component: &str, metric: &str) -> u64 {
        self.counters
            .iter()
            .find(|((c, m), _)| *c == component && *m == metric)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Online statistics for a series, if any samples were recorded.
    pub fn stat(&self, component: &str, metric: &str) -> Option<&OnlineStats> {
        self.stats
            .iter()
            .find(|((c, m), _)| *c == component && *m == metric)
            .map(|(_, s)| s)
    }

    /// Histogram for a series, if any samples were recorded.
    pub fn hist(&self, component: &str, metric: &str) -> Option<&Log2Histogram> {
        self.hists
            .iter()
            .find(|((c, m), _)| *c == component && *m == metric)
            .map(|(_, h)| h)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.stats.is_empty() && self.hists.is_empty()
    }

    /// Pool another registry into this one (rank merge).
    pub fn merge(&mut self, other: &Registry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, s) in &other.stats {
            self.stats
                .entry(k)
                .or_insert_with(OnlineStats::new)
                .merge(s);
        }
        for (&k, h) in &other.hists {
            self.hists
                .entry(k)
                .or_insert_with(Log2Histogram::new)
                .merge(h);
        }
    }

    /// Counters in deterministic `(component, metric)` order.
    pub fn iter_counters(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Statistics series in deterministic `(component, metric)` order.
    pub fn iter_stats(&self) -> impl Iterator<Item = (Key, &OnlineStats)> + '_ {
        self.stats.iter().map(|(&k, s)| (k, s))
    }

    /// Histograms in deterministic `(component, metric)` order.
    pub fn iter_hists(&self) -> impl Iterator<Item = (Key, &Log2Histogram)> + '_ {
        self.hists.iter().map(|(&k, h)| (k, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        r.add_count("arctic.router", "packets", 3);
        r.add_count("arctic.router", "packets", 2);
        assert_eq!(r.counter("arctic.router", "packets"), 5);
        assert_eq!(r.counter("arctic.router", "nope"), 0);
        assert!(!r.is_empty());
    }

    #[test]
    fn stats_and_hists_record() {
        let mut r = Registry::new();
        r.observe("comms.gsum", "latency_us", 4.0);
        r.observe("comms.gsum", "latency_us", 6.0);
        r.observe_duration_us("comms.gsum", "span_us", SimDuration::from_us(8));
        r.observe_hist("startx.vi", "bytes", 1024);
        let s = r.stat("comms.gsum", "latency_us").unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(r.hist("startx.vi", "bytes").unwrap().total(), 1);
        assert!(r.stat("comms.gsum", "missing").is_none());
        assert!(r.hist("comms.gsum", "missing").is_none());
    }

    #[test]
    fn merge_pools_all_metric_kinds() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add_count("c", "n", 1);
        b.add_count("c", "n", 2);
        b.add_count("c", "only_b", 7);
        a.observe("c", "x", 1.0);
        b.observe("c", "x", 3.0);
        a.observe_hist("c", "h", 4);
        b.observe_hist("c", "h", 5);
        a.merge(&b);
        assert_eq!(a.counter("c", "n"), 3);
        assert_eq!(a.counter("c", "only_b"), 7);
        let s = a.stat("c", "x").unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.hist("c", "h").unwrap().total(), 2);
    }

    #[test]
    fn iteration_order_is_sorted() {
        let mut r = Registry::new();
        r.add_count("z", "b", 1);
        r.add_count("a", "y", 1);
        r.add_count("a", "x", 1);
        let keys: Vec<_> = r.iter_counters().map(|(k, _)| k).collect();
        assert_eq!(keys, [("a", "x"), ("a", "y"), ("z", "b")]);
    }
}

//! # hyades-telemetry — the Hyades flight recorder
//!
//! A deterministic, zero-cost-when-disabled instrumentation layer threaded
//! through every tier of the reproduction: the Arctic router pipeline, the
//! StarT-X NIU, the comms primitives (`exchange` / `global sum` / barrier),
//! and the GCM driver's PS/DS phase boundaries.
//!
//! The paper's argument (§5–§6) rests on decomposing the GCM into PS/DS
//! phases and comparing *measured* primitive latencies against an
//! *analytical* model. This crate records where simulated time actually
//! goes, so that the comparison is a continuously-checkable artifact
//! rather than a one-off table.
//!
//! Design rules:
//!
//! * **Simulated time only.** Every span is stamped with [`SimTime`] /
//!   [`SimDuration`]; wall-clock types are banned here by `hyades-lint`'s
//!   `instant-wallclock` rule. Exports are therefore bit-identical across
//!   double runs with the same seed (enforced by `tests/determinism.rs`).
//! * **Zero cost when disabled.** Every recording entry point is
//!   `#[inline]` and begins with a single `thread_local` [`Cell`] load
//!   (the same idiom as `gcm::flops`); the bench suite pins the overhead
//!   of the disabled path at ≤ 2 %.
//! * **Per-rank, merged at end of run.** State is thread-local; each rank
//!   of a `ThreadWorld` run enables its own recorder and returns a
//!   [`RankTelemetry`], merged in rank order into a [`RunTelemetry`] —
//!   no locks, no cross-thread ordering hazards.
//!
//! Two exporters: [`RunTelemetry::chrome_trace_json`] (loadable in
//! `chrome://tracing` / Perfetto) and [`RunTelemetry::text_summary`]
//! (a deterministic text report).
//!
//! [`Cell`]: std::cell::Cell
//! [`SimTime`]: hyades_des::SimTime
//! [`SimDuration`]: hyades_des::SimDuration

pub mod artifact;
pub mod commlog;
pub mod critpath;
pub mod diag;
pub mod export;
pub mod flight;
pub mod matcher;
pub mod prom;
pub mod recorder;
pub mod registry;
pub mod sampler;

pub use artifact::{write_artifacts_to_dir, Artifact, ArtifactKind, Exporter, Prebuilt};
pub use critpath::{CritPath, CritPathError};
pub use diag::{DiagRow, DiagSeries};
pub use export::{flows_from_stamped, FlowEvent, RunTelemetry};
pub use prom::PromText;
pub use recorder::{
    charge_comm, charge_flops, count, current_phase, disable, enable, enable_with_rates, enabled,
    observe, observe_duration_us, observe_hist, phase_totals, record_span, set_phase, Phase,
    PhaseTotals, RankTelemetry, SpanRecord, DES_PID, GCM_PID,
};
pub use registry::Registry;
pub use sampler::{SampleSet, SampleTick, SamplerActor, Series, SeriesKey};

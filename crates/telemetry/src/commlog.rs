//! Thread-local communication event log for `ThreadWorld` ranks.
//!
//! The happens-before checker in `hyades-lint` (`lint::hb`) needs the
//! exact sequence of communication operations each rank performed —
//! keyed channel sends/recvs and shared-memory reductions — to replay
//! them under vector clocks and prove every matched send/recv pair is
//! ordered. Each rank [`install`]s a log on its own thread before the
//! run and [`take`]s it after; recording is a no-op otherwise (same
//! zero-cost-when-disabled idiom as [`crate::flight`]).
//!
//! Since the critical-path profiler ([`crate::critpath`]) the log keeps
//! more than the bare event stream: every event is a [`Stamped`] record
//! carrying the rank's charged simulated clock at record time, the
//! charged cost of the primitive op the event belongs to (stamped by
//! `TimedWorld` through [`begin_op`]), the op ordinal, the current
//! timestep tag ([`mark_step`]), and the PS/DS phase. All of it is
//! simulated time and per-rank counters — nothing wall-clock, so
//! stamped logs replay byte-identically across double runs. Callers
//! that only need the communication structure (the hb checker) use
//! [`take`], a projection that drops the stamps.

use crate::recorder::{self, Phase};
use std::cell::{Cell, RefCell};

/// One communication operation performed by the recording rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommEvent {
    /// Posted `words` values on the keyed channel to rank `to`.
    Send { to: usize, words: usize },
    /// Consumed `words` values from the keyed channel from rank `from`.
    Recv { from: usize, words: usize },
    /// Joined the all-ranks shared-memory reduction numbered `generation`
    /// (a global sum / max / barrier; the generation counter totally
    /// orders reductions across the run).
    Reduce { generation: u64 },
}

/// One logged event plus the timing/attribution metadata the
/// critical-path profiler reconstructs the global event DAG from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    pub ev: CommEvent,
    /// The rank's charged simulated clock (integer picoseconds) when the
    /// event was recorded — i.e. *after* the op's cost was charged.
    /// Zero on untimed runs (no recorder enabled).
    pub at_ps: u64,
    /// Charged cost of the primitive op this event belongs to, stamped
    /// by the enclosing [`begin_op`]. Zero on untimed runs.
    pub cost_ps: u64,
    /// Primitive-op ordinal on this rank (one `begin_op` = one op).
    /// Zero before the first `begin_op`.
    pub op: u32,
    /// Timestep tag set by [`mark_step`]; zero before the first mark.
    pub step: u32,
    /// PS/DS phase the op was charged to.
    pub phase: Phase,
}

thread_local! {
    static INSTALLED: Cell<bool> = const { Cell::new(false) };
    static LOG: RefCell<Vec<Stamped>> = const { RefCell::new(Vec::new()) };
    static OP: Cell<u32> = const { Cell::new(0) };
    static OP_COST: Cell<u64> = const { Cell::new(0) };
    static STEP: Cell<u32> = const { Cell::new(0) };
}

/// Start logging communication events on this thread (clears any
/// previous log and resets the op/step tags).
pub fn install() {
    LOG.with(|l| l.borrow_mut().clear());
    OP.with(|o| o.set(0));
    OP_COST.with(|c| c.set(0));
    STEP.with(|s| s.set(0));
    INSTALLED.with(|i| i.set(true));
}

/// Is a log installed on this thread?
#[inline]
pub fn installed() -> bool {
    INSTALLED.with(|i| i.get())
}

/// Open a new primitive op with charged cost `cost_ps`: subsequent
/// events belong to it until the next call. `TimedWorld` calls this once
/// per primitive (exchange / reduction / gather), right after charging
/// the cost model. No-op without an installed log.
#[inline]
pub fn begin_op(cost_ps: u64) {
    if !installed() {
        return;
    }
    OP.with(|o| o.set(o.get() + 1));
    OP_COST.with(|c| c.set(cost_ps));
}

/// Tag subsequent events with timestep `step` (1-based by convention).
/// The critical-path report segments its per-step tables on this tag.
#[inline]
pub fn mark_step(step: u32) {
    if !installed() {
        return;
    }
    STEP.with(|s| s.set(step));
}

/// Append an event if a log is installed; otherwise a no-op. The stamp
/// is read from the telemetry recorder's charged clock (zero when no
/// recorder is enabled).
#[inline]
pub fn record(ev: CommEvent) {
    if !installed() {
        return;
    }
    let stamped = Stamped {
        ev,
        at_ps: recorder::charged_clock_ps(),
        cost_ps: OP_COST.with(|c| c.get()),
        op: OP.with(|o| o.get()),
        step: STEP.with(|s| s.get()),
        phase: recorder::current_phase(),
    };
    LOG.with(|l| l.borrow_mut().push(stamped));
}

/// Stop logging and return the bare events recorded on this thread (the
/// happens-before checker's input; stamps dropped).
pub fn take() -> Vec<CommEvent> {
    take_stamped().into_iter().map(|s| s.ev).collect()
}

/// Stop logging and return the full stamped records (the critical-path
/// profiler's input).
pub fn take_stamped() -> Vec<Stamped> {
    INSTALLED.with(|i| i.set(false));
    LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_noop_without_install() {
        assert!(!installed());
        record(CommEvent::Send { to: 1, words: 4 });
        assert!(take().is_empty());
    }

    #[test]
    fn installed_log_captures_in_order() {
        install();
        record(CommEvent::Send { to: 2, words: 8 });
        record(CommEvent::Recv { from: 2, words: 8 });
        record(CommEvent::Reduce { generation: 0 });
        let log = take();
        assert!(!installed());
        assert_eq!(
            log,
            vec![
                CommEvent::Send { to: 2, words: 8 },
                CommEvent::Recv { from: 2, words: 8 },
                CommEvent::Reduce { generation: 0 },
            ]
        );
    }

    #[test]
    fn reinstall_clears_previous_log() {
        install();
        record(CommEvent::Reduce { generation: 7 });
        install();
        record(CommEvent::Reduce { generation: 8 });
        assert_eq!(take(), vec![CommEvent::Reduce { generation: 8 }]);
    }

    #[test]
    fn ops_and_steps_tag_stamped_records() {
        install();
        record(CommEvent::Send { to: 1, words: 4 }); // before any op
        begin_op(250);
        mark_step(1);
        record(CommEvent::Send { to: 1, words: 2 });
        record(CommEvent::Recv { from: 1, words: 2 });
        begin_op(90);
        mark_step(2);
        record(CommEvent::Reduce { generation: 0 });
        let log = take_stamped();
        assert!(!installed());
        assert_eq!(log.len(), 4);
        assert_eq!((log[0].op, log[0].step, log[0].cost_ps), (0, 0, 0));
        assert_eq!((log[1].op, log[1].step, log[1].cost_ps), (1, 1, 250));
        assert_eq!((log[2].op, log[2].step, log[2].cost_ps), (1, 1, 250));
        assert_eq!((log[3].op, log[3].step, log[3].cost_ps), (2, 2, 90));
        // No recorder enabled: stamps are zero, phase Outside.
        assert!(log.iter().all(|s| s.at_ps == 0));
        assert!(log.iter().all(|s| s.phase == Phase::Outside));
    }

    #[test]
    fn stamps_follow_the_charged_clock() {
        use hyades_des::SimDuration;
        crate::recorder::enable_with_rates(0, 50.0, 60.0);
        install();
        crate::recorder::set_phase(Phase::Ds);
        let cost = SimDuration::from_us(3);
        begin_op(cost.as_ps());
        crate::recorder::charge_comm("gsum", cost);
        record(CommEvent::Reduce { generation: 0 });
        let log = take_stamped();
        let tel = crate::recorder::disable().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].at_ps, cost.as_ps());
        assert_eq!(log[0].cost_ps, cost.as_ps());
        assert_eq!(log[0].phase, Phase::Ds);
        assert_eq!(tel.phases.ds_comm, cost);
    }
}

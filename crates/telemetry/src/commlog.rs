//! Thread-local communication event log for `ThreadWorld` ranks.
//!
//! The happens-before checker in `hyades-lint` (`lint::hb`) needs the
//! exact sequence of communication operations each rank performed —
//! keyed channel sends/recvs and shared-memory reductions — to replay
//! them under vector clocks and prove every matched send/recv pair is
//! ordered. Each rank [`install`]s a log on its own thread before the
//! run and [`take`]s it after; recording is a no-op otherwise (same
//! zero-cost-when-disabled idiom as [`crate::flight`]).
//!
//! Events carry ranks and payload lengths only — enough to rebuild the
//! communication structure, nothing order-sensitive to merge across
//! threads.

use std::cell::{Cell, RefCell};

/// One communication operation performed by the recording rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommEvent {
    /// Posted `words` values on the keyed channel to rank `to`.
    Send { to: usize, words: usize },
    /// Consumed `words` values from the keyed channel from rank `from`.
    Recv { from: usize, words: usize },
    /// Joined the all-ranks shared-memory reduction numbered `generation`
    /// (a global sum / max / barrier; the generation counter totally
    /// orders reductions across the run).
    Reduce { generation: u64 },
}

thread_local! {
    static INSTALLED: Cell<bool> = const { Cell::new(false) };
    static LOG: RefCell<Vec<CommEvent>> = const { RefCell::new(Vec::new()) };
}

/// Start logging communication events on this thread (clears any
/// previous log).
pub fn install() {
    LOG.with(|l| l.borrow_mut().clear());
    INSTALLED.with(|i| i.set(true));
}

/// Is a log installed on this thread?
#[inline]
pub fn installed() -> bool {
    INSTALLED.with(|i| i.get())
}

/// Append an event if a log is installed; otherwise a no-op.
#[inline]
pub fn record(ev: CommEvent) {
    if !installed() {
        return;
    }
    LOG.with(|l| l.borrow_mut().push(ev));
}

/// Stop logging and return the events recorded on this thread.
pub fn take() -> Vec<CommEvent> {
    INSTALLED.with(|i| i.set(false));
    LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_noop_without_install() {
        assert!(!installed());
        record(CommEvent::Send { to: 1, words: 4 });
        assert!(take().is_empty());
    }

    #[test]
    fn installed_log_captures_in_order() {
        install();
        record(CommEvent::Send { to: 2, words: 8 });
        record(CommEvent::Recv { from: 2, words: 8 });
        record(CommEvent::Reduce { generation: 0 });
        let log = take();
        assert!(!installed());
        assert_eq!(
            log,
            vec![
                CommEvent::Send { to: 2, words: 8 },
                CommEvent::Recv { from: 2, words: 8 },
                CommEvent::Reduce { generation: 0 },
            ]
        );
    }

    #[test]
    fn reinstall_clears_previous_log() {
        install();
        record(CommEvent::Reduce { generation: 7 });
        install();
        record(CommEvent::Reduce { generation: 8 });
        assert_eq!(take(), vec![CommEvent::Reduce { generation: 8 }]);
    }
}

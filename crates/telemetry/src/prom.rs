//! Prometheus text-exposition rendering.
//!
//! A tiny, deterministic writer for the Prometheus text format
//! (`# TYPE` headers, `name{label="value"} 1.000000` samples). There is
//! no HTTP endpoint here — simulations run to completion, so exporters
//! write the whole exposition once at the end of a run. Everything is
//! rendered with fixed six-decimal formatting from caller-supplied
//! values in caller-determined (sorted) order, so two same-seed runs
//! produce byte-identical expositions (asserted by
//! `tests/determinism.rs`).

use crate::registry::Registry;
use std::fmt::Write as _;

/// Render an `f64` the way every exporter in this crate does: fixed six
/// decimals, no exponent. Non-finite values use the spellings the
/// Prometheus text format requires (`NaN`, `+Inf`, `-Inf`) — Rust's
/// default `{:.6}` would emit `NaN`/`inf`/`-inf`, and lowercase `inf`
/// is not parseable by Prometheus. Deterministic for every value.
pub fn fixed(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:.6}")
    }
}

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emit a `# TYPE` header. Call once per metric family, before its
    /// samples.
    pub fn type_line(&mut self, name: &str, kind: &str) {
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit one sample line. Labels are rendered in the order given —
    /// callers sort them (or use a fixed order) for determinism.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", fixed(value));
    }

    /// The finished exposition.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a [`Registry`] as an exposition: counters as `counter`
/// families, online stats as mean/min/max gauges, histograms as
/// quantile-bound gauges. Iteration order is the registry's `BTreeMap`
/// order, so the output is deterministic.
pub fn render_registry(prefix: &str, reg: &Registry) -> String {
    let mut p = PromText::new();

    let counters: Vec<_> = reg.iter_counters().collect();
    if !counters.is_empty() {
        let name = format!("{prefix}_events_total");
        p.type_line(&name, "counter");
        for ((component, metric), v) in counters {
            p.sample(
                &name,
                &[("component", component), ("metric", metric)],
                v as f64,
            );
        }
    }

    let stats: Vec<_> = reg.iter_stats().collect();
    if !stats.is_empty() {
        let name = format!("{prefix}_stat");
        p.type_line(&name, "gauge");
        for ((component, metric), s) in stats {
            let labels = |agg| [("component", component), ("metric", metric), ("agg", agg)];
            p.sample(&name, &labels("count"), s.count() as f64);
            p.sample(&name, &labels("mean"), s.mean());
            p.sample(&name, &labels("min"), s.min());
            p.sample(&name, &labels("max"), s.max());
        }
    }

    let hists: Vec<_> = reg.iter_hists().collect();
    if !hists.is_empty() {
        let name = format!("{prefix}_hist_bound");
        p.type_line(&name, "gauge");
        for ((component, metric), h) in hists {
            let labels = |q| [("component", component), ("metric", metric), ("q", q)];
            p.sample(&name, &labels("0.5"), h.p50() as f64);
            p.sample(&name, &labels("0.9"), h.p90() as f64);
            p.sample(&name, &labels("0.99"), h.p99() as f64);
        }
    }

    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_lines_render_exactly() {
        let mut p = PromText::new();
        p.type_line("hyades_link_util", "gauge");
        p.sample(
            "hyades_link_util",
            &[("link", "l0.w1.p2"), ("vc", "high")],
            0.5,
        );
        p.sample("hyades_link_util", &[], 2.0);
        assert_eq!(
            p.finish(),
            "# TYPE hyades_link_util gauge\n\
             hyades_link_util{link=\"l0.w1.p2\",vc=\"high\"} 0.500000\n\
             hyades_link_util 2.000000\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn hostile_link_and_flow_names_render_parseably() {
        // Link/flow names are caller-supplied strings; a name containing
        // the format's own metacharacters must round-trip through label
        // escaping without breaking the sample line.
        let mut p = PromText::new();
        p.type_line("hyades_flow_bytes", "gauge");
        p.sample(
            "hyades_flow_bytes",
            &[("flow", "src=\"a\\b\"\ndst=c"), ("link", "l0.\"w1\".p2")],
            7.0,
        );
        assert_eq!(
            p.finish(),
            "# TYPE hyades_flow_bytes gauge\n\
             hyades_flow_bytes{flow=\"src=\\\"a\\\\b\\\"\\ndst=c\",link=\"l0.\\\"w1\\\".p2\"} 7.000000\n"
        );
    }

    #[test]
    fn fixed_is_six_decimals() {
        assert_eq!(fixed(0.0), "0.000000");
        assert_eq!(fixed(1.0 / 3.0), "0.333333");
        assert_eq!(fixed(1234.5), "1234.500000");
    }

    #[test]
    fn fixed_renders_non_finite_per_spec() {
        // The sentinel publishes gauges that can legitimately be
        // non-finite (that is what it exists to catch); the exposition
        // must use the spec spellings, not Rust's `inf`.
        assert_eq!(fixed(f64::NAN), "NaN");
        assert_eq!(fixed(f64::INFINITY), "+Inf");
        assert_eq!(fixed(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn registry_rendering_is_deterministic() {
        let mut reg = Registry::new();
        reg.add_count("arctic.fault", "corrupted", 2);
        reg.add_count("arctic.fault", "dropped", 1);
        reg.observe("net", "latency_us", 12.5);
        reg.observe_hist("net", "bytes", 96);
        let a = render_registry("hyades", &reg);
        let b = render_registry("hyades", &reg);
        assert_eq!(a, b);
        assert!(a.contains("# TYPE hyades_events_total counter"));
        assert!(a.contains(
            "hyades_events_total{component=\"arctic.fault\",metric=\"corrupted\"} 2.000000"
        ));
        assert!(a.contains("agg=\"mean\"} 12.500000"));
        assert!(a.contains("q=\"0.99\"}"));
    }
}

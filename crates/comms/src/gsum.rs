//! The optimized global sum (§4.2).
//!
//! For `N` endpoints (a power of two), `N · log2 N` messages are sent over
//! `log2 N` rounds. In round `i`, node `me` exchanges its running partial
//! sum with partner `me XOR 2^i`; after round `i` every node holds the sum
//! for the group of nodes whose identifiers differ only in the lowest
//! `i+1` bits (Figure 8). The algorithm minimizes latency at the expense of
//! message count — every node owns the full result with no broadcast step.
//!
//! Per-round cost on Hyades: one PIO send (`Os`), the network transit, one
//! status poll plus PIO receive (`poll + Or`), and the floating-point add.
//! Summed over rounds this reproduces the paper's measured latencies
//! (4.0 / 8.3 / 12.8 / 18.2 µs for 2/4/8/16-way) and their least-squares
//! fit `t = 4.67·log2 N − 0.95` µs.
//!
//! ## Recovery (fault-injection subsystem)
//!
//! The butterfly keeps every partial sum it has sent (`sent[r]`), so a
//! lost or corrupted round value is recoverable: a corrupted arrival is
//! NAKed immediately with `RETRY(r)` (the tag survives — the fault model
//! flips payload bits only), a missing value is re-requested after a
//! timeout with capped exponential backoff, and the partner answers a
//! RETRY with `RESEND(r)` carrying `sent[r]`. Duplicates are idempotent:
//! the `got` set records rounds whose value has been accepted, so a late
//! original plus a RESEND never double-adds. The tree-gsum ablation
//! baseline intentionally keeps the paper's catastrophic-failure model.

use crate::recovery::{RecoveryCounters, RecoveryEvent};
use hyades_arctic::network::{ArcticNetwork, Delivered, Inject};
use hyades_arctic::packet::{f64_from_words, words_from_f64, Packet, Priority};
use hyades_des::event::Payload;
use hyades_des::{Actor, ActorId, Ctx, SimDuration, SimTime, Simulator};
use hyades_fault::{FaultPlan, RetryPolicy};
use hyades_startx::HostParams;
use hyades_telemetry as telemetry;
use hyades_telemetry::flight;
use std::collections::{BTreeMap, BTreeSet};

/// Recovery tag bases (round values travel under their bare round index,
/// so these start above any realistic `log2 N`).
const GSUM_RETRY_BASE: u16 = 0x40; // + round: "resend me round r"
const GSUM_RESEND_BASE: u16 = 0x60; // + round: the resent value

/// Kick event: begin a global sum contributing `value`.
pub struct StartGsum {
    pub value: f64,
}

/// Self event: the CPU has finished reading a round message.
struct RxReady {
    round: u32,
    value: f64,
}

/// Self event: the wait for the current round's value timed out.
struct GsumTimeout {
    epoch: u64,
}

/// Cost of the floating-point add + loop bookkeeping per round.
const ADD_COST_US: f64 = 0.05;

/// One participant in the butterfly.
pub struct GsumNode {
    pub me: u16,
    n: u16,
    host: HostParams,
    tx_port: ActorId,
    /// Extra cost charged before the network phase (intra-SMP combine) and
    /// after it (intra-SMP broadcast) in mixed mode.
    pre_cost: SimDuration,
    post_cost: SimDuration,

    round: u32,
    partial: f64,
    /// BTreeMap, not HashMap: keeps early-arrival bookkeeping free of
    /// hash-iteration order (lint rule `hash-iteration`).
    early: BTreeMap<u32, f64>,
    /// Partial sums as sent, indexed by round, so a RETRY from the
    /// partner can be answered long after this node moved on.
    sent: Vec<f64>,
    /// Rounds whose incoming value has been accepted — makes duplicate
    /// deliveries (late original + RESEND) idempotent.
    got: BTreeSet<u32>,
    policy: RetryPolicy,
    epoch: u64,
    attempts: u32,
    pub recovery: RecoveryCounters,
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
    pub result: Option<f64>,
}

impl GsumNode {
    pub fn new(me: u16, n: u16, host: HostParams, tx_port: ActorId) -> Self {
        GsumNode {
            me,
            n,
            host,
            tx_port,
            pre_cost: SimDuration::ZERO,
            post_cost: SimDuration::ZERO,
            round: 0,
            partial: 0.0,
            early: BTreeMap::new(),
            sent: Vec::new(),
            got: BTreeSet::new(),
            policy: RetryPolicy::default(),
            epoch: 0,
            attempts: 0,
            recovery: RecoveryCounters::default(),
            started: None,
            finished: None,
            result: None,
        }
    }

    /// Override the retransmit policy (tests tighten the timeout).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn arm_timeout(&mut self, ctx: &mut Ctx<'_>) {
        let wait = self.policy.arm(self.attempts);
        let epoch = self.epoch;
        ctx.wake_after(wait, GsumTimeout { epoch });
    }

    fn new_wait(&mut self) {
        self.epoch += 1;
        self.attempts = 0;
    }

    /// Add the intra-SMP combine/broadcast costs of the mixed-mode scheme
    /// (§4.2: "about 1 µs" total on the two-way SMPs).
    pub fn with_smp_step(mut self, pre: SimDuration, post: SimDuration) -> Self {
        self.pre_cost = pre;
        self.post_cost = post;
        self
    }

    fn rounds(&self) -> u32 {
        self.n.trailing_zeros()
    }

    fn partner_of(&self, round: u32) -> u16 {
        self.me ^ (1u16 << round)
    }

    fn send_value(&self, ctx: &mut Ctx<'_>, round: u32, tag: u16, value: f64) {
        let partner = self.partner_of(round);
        let os = self.host.pio.send_overhead(8);
        let pkt = Packet::new(self.me, partner, Priority::High, tag, words_from_f64(value));
        ctx.send_after(os, self.tx_port, Inject(pkt));
    }

    fn send_round(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert_eq!(self.sent.len(), self.round as usize);
        self.sent.push(self.partial);
        self.send_value(ctx, self.round, self.round as u16, self.partial);
    }

    fn send_ctrl(&self, ctx: &mut Ctx<'_>, dst: u16, tag: u16) {
        let os = self.host.pio.send_overhead(8);
        let pkt = Packet::new(self.me, dst, Priority::High, tag, vec![0, 0]);
        ctx.send_after(os, self.tx_port, Inject(pkt));
    }

    /// Accept an incoming round value (original or RESEND), with the
    /// `got`-set dedup making duplicates idempotent.
    fn accept_value(&mut self, round: u32, value: f64, ctx: &mut Ctx<'_>) {
        if round < self.round || self.got.contains(&round) {
            self.recovery.bump(RecoveryEvent::StaleIgnored);
            return;
        }
        if round == self.round {
            // Blocked waiting on this message: one status poll plus
            // the PIO read of header+payload.
            self.got.insert(round);
            self.new_wait();
            let cost = self.host.status_poll + self.host.pio.recv_overhead(8);
            ctx.wake_after(cost, RxReady { round, value });
        } else {
            // A fast partner ran ahead; stash until we get there.
            self.early.insert(round, value);
        }
    }

    fn advance(&mut self, value: f64, ctx: &mut Ctx<'_>) {
        self.partial += value;
        self.round += 1;
        let add = SimDuration::from_us_f64(ADD_COST_US);
        if self.round == self.rounds() {
            let done = ctx.now() + add + self.post_cost;
            self.finished = Some(done);
            self.result = Some(self.partial);
            if let Some(started) = self.started {
                telemetry::record_span(
                    u64::from(self.me),
                    "comms",
                    "gsum.node",
                    started,
                    done.since(started),
                );
            }
            telemetry::count("comms.gsum", "rounds", u64::from(self.rounds()));
            flight::record(done, ctx.self_id(), "gsum.finished", u64::from(self.round));
        } else {
            // The add happens before the next send; fold its cost in by
            // delaying the send kick.
            let round = self.round;
            ctx.wake_after(
                add,
                RxReady {
                    round,
                    value: f64::NAN, // marker: "send next round" (value unused)
                },
            );
        }
    }
}

impl Actor for GsumNode {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        let ev = match ev.downcast::<StartGsum>() {
            Ok(s) => {
                assert!(self.n.is_power_of_two() && self.n >= 2);
                assert!(
                    self.rounds() < u32::from(GSUM_RETRY_BASE),
                    "round index must stay below the recovery tag bases"
                );
                self.partial = s.value;
                self.round = 0;
                self.started = Some(ctx.now());
                self.finished = None;
                self.result = None;
                self.early.clear();
                self.sent.clear();
                self.got.clear();
                self.new_wait();
                // Mixed mode: combine the SMP-local values first.
                let pre = self.pre_cost;
                ctx.wake_after(
                    pre,
                    RxReady {
                        round: 0,
                        value: f64::NAN,
                    },
                );
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<Delivered>() {
            Ok(del) => {
                let pkt = del.pkt;
                let tag = pkt.usr_tag;
                if pkt.corrupted {
                    // The CRC caught it; the payload is never trusted. The
                    // tag survives (the fault model flips payload bits
                    // only), so a corrupted value can be NAKed right away;
                    // a corrupted RETRY is covered by the requester's
                    // backoff.
                    self.recovery.bump(RecoveryEvent::CorruptDiscard);
                    let value_round = if tag < GSUM_RETRY_BASE {
                        Some(u32::from(tag))
                    } else if tag >= GSUM_RESEND_BASE {
                        Some(u32::from(tag - GSUM_RESEND_BASE))
                    } else {
                        None
                    };
                    if let Some(r) = value_round {
                        if !self.got.contains(&r) {
                            self.recovery.bump(RecoveryEvent::Retry);
                            self.send_ctrl(ctx, pkt.src, GSUM_RETRY_BASE + r as u16);
                        }
                    }
                    return;
                }
                if tag >= GSUM_RESEND_BASE {
                    let round = u32::from(tag - GSUM_RESEND_BASE);
                    self.accept_value(round, f64_from_words(&pkt.payload), ctx);
                } else if tag >= GSUM_RETRY_BASE {
                    // The partner is missing our round-r value: resend the
                    // recorded partial, or ignore if we haven't sent it yet
                    // (their backoff will re-ask once we have).
                    let round = (tag - GSUM_RETRY_BASE) as usize;
                    if let Some(&v) = self.sent.get(round) {
                        self.recovery.bump(RecoveryEvent::ValueResend);
                        self.send_value(ctx, round as u32, GSUM_RESEND_BASE + round as u16, v);
                    } else {
                        self.recovery.bump(RecoveryEvent::StaleIgnored);
                    }
                } else {
                    self.accept_value(u32::from(tag), f64_from_words(&pkt.payload), ctx);
                }
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<GsumTimeout>() {
            Ok(t) => {
                self.on_timeout(t.epoch, ctx);
                return;
            }
            Err(e) => e,
        };
        let Ok(rx) = ev.downcast::<RxReady>() else {
            panic!("GsumNode received an unexpected event type");
        };
        if rx.value.is_nan() {
            // Marker: kick off the send for the current round, then check
            // whether the partner's message already arrived.
            debug_assert_eq!(rx.round, self.round);
            self.send_round(ctx);
            if let Some(v) = self.early.remove(&self.round) {
                self.got.insert(self.round);
                self.new_wait();
                let cost = self.host.status_poll + self.host.pio.recv_overhead(8);
                let round = self.round;
                ctx.wake_after(cost, RxReady { round, value: v });
            } else {
                // Now blocked on the partner: guard the wait.
                self.new_wait();
                self.arm_timeout(ctx);
            }
            return;
        }
        debug_assert_eq!(rx.round, self.round);
        self.advance(rx.value, ctx);
    }
}

impl GsumNode {
    /// The wait for the current round's value expired: re-request it.
    fn on_timeout(&mut self, epoch: u64, ctx: &mut Ctx<'_>) {
        if epoch != self.epoch || self.finished.is_some() {
            return; // stale guard from a wait that already resolved
        }
        if self.got.contains(&self.round) {
            return; // value accepted, RxReady in flight
        }
        assert!(
            self.attempts < self.policy.max_attempts,
            "node {}: gsum retries exhausted in round {}",
            self.me,
            self.round
        );
        self.attempts += 1;
        self.recovery.bump(RecoveryEvent::Timeout);
        self.recovery.bump(RecoveryEvent::Retry);
        flight::record(
            ctx.now(),
            ctx.self_id(),
            "gsum.retry",
            u64::from(self.round),
        );
        let partner = self.partner_of(self.round);
        self.send_ctrl(ctx, partner, GSUM_RETRY_BASE + self.round as u16);
        self.arm_timeout(ctx);
    }
}

/// Result of a simulated `N`-way global sum.
#[derive(Clone, Copy, Debug)]
pub struct GsumMeasurement {
    pub n: u16,
    /// Latency from common start to the *last* node holding the result.
    pub elapsed: SimDuration,
    pub value: f64,
}

/// Run one `n`-way global sum on a fresh fabric; node `i` contributes
/// `values[i]`. When `smp_step` is set, each node charges the intra-SMP
/// combine/broadcast costs (the paper's `2×N`-way configuration).
pub fn measure_gsum(host: HostParams, values: &[f64], smp_step: bool) -> GsumMeasurement {
    measure_gsum_inner(host, values, smp_step, None).0
}

/// Measurement under a [`FaultPlan`]: same butterfly, with the plan's link
/// windows and NIU stalls installed. Returns the measurement (recovery
/// charged to simulated time) plus the summed recovery counters; the sum
/// must still be exact on every node.
pub fn measure_gsum_faulty(
    host: HostParams,
    values: &[f64],
    plan: &FaultPlan,
) -> (GsumMeasurement, RecoveryCounters) {
    measure_gsum_inner(host, values, false, Some(plan))
}

fn measure_gsum_inner(
    host: HostParams,
    values: &[f64],
    smp_step: bool,
    plan: Option<&FaultPlan>,
) -> (GsumMeasurement, RecoveryCounters) {
    let n = values.len() as u16;
    let mut sim = Simulator::new();
    let ids: Vec<ActorId> = (0..n).map(|_| sim.add_actor(Slot)).collect();
    let net = ArcticNetwork::build(&mut sim, &ids, Default::default());
    if let Some(plan) = plan {
        net.apply_fault_plan(&mut sim, plan);
    }
    for e in 0..n {
        let mut node = GsumNode::new(e, n, host, net.tx_port(e));
        if smp_step {
            node = node.with_smp_step(SimDuration::from_us_f64(0.6), SimDuration::from_us_f64(0.4));
        }
        let _ = sim.remove_actor(ids[e as usize]);
        sim.insert_actor_at(ids[e as usize], Box::new(node));
    }
    for (e, &v) in values.iter().enumerate() {
        sim.schedule(SimTime::ZERO, ids[e], StartGsum { value: v });
    }
    sim.run();
    let mut last = SimTime::ZERO;
    let mut result = None;
    let mut recovery = RecoveryCounters::default();
    for (e, &id) in ids.iter().enumerate() {
        let node = sim.actor::<GsumNode>(id);
        let f = node
            .finished
            .unwrap_or_else(|| panic!("node {e} never finished"));
        last = last.max(f);
        recovery.merge(&node.recovery);
        let r = node
            .result
            .unwrap_or_else(|| panic!("node {e} finished without a result"));
        if let Some(prev) = result {
            assert_eq!(prev, r, "nodes disagree on the global sum");
        }
        result = Some(r);
    }
    (
        GsumMeasurement {
            n,
            elapsed: last.since(SimTime::ZERO),
            value: result.unwrap_or_else(|| panic!("gsum over zero nodes has no result")),
        },
        recovery,
    )
}

/// Measure the §4.2 latency table: 2/4/8/16-way, with and without the SMP
/// step.
pub fn latency_table(host: HostParams) -> Vec<(u16, GsumMeasurement, GsumMeasurement)> {
    [2u16, 4, 8, 16]
        .iter()
        .map(|&n| {
            let vals: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            (
                n,
                measure_gsum(host, &vals, false),
                measure_gsum(host, &vals, true),
            )
        })
        .collect()
}

struct Slot;
impl Actor for Slot {
    fn on_event(&mut self, _ev: Payload, _ctx: &mut Ctx<'_>) {
        panic!("slot actor received an event");
    }
}

// ---------------------------------------------------------------------------
// Ablation comparator: tree reduce + broadcast
// ---------------------------------------------------------------------------

/// The conventional alternative the butterfly beats: reduce partial sums
/// up a binary tree to node 0, then broadcast the result back down. Same
/// arithmetic, `2·N − 2` messages instead of `N·log2 N`, but the critical
/// path is `2·log2 N` message latencies instead of `log2 N` — the paper's
/// §4.2 design trades extra messages for exactly this halving of latency.
pub struct TreeGsumNode {
    pub me: u16,
    n: u16,
    host: HostParams,
    tx_port: ActorId,
    partial: f64,
    children_pending: u32,
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
    pub result: Option<f64>,
}

/// Message tags: reduce contributions go up, the broadcast comes down.
const TAG_REDUCE: u16 = 0x51;
const TAG_BCAST: u16 = 0x52;

impl TreeGsumNode {
    pub fn new(me: u16, n: u16, host: HostParams, tx_port: ActorId) -> Self {
        // Children of `me`: me + 2^i for each i with 2^i > lowest set bit
        // span... simpler: me XOR 2^i for i in (level(me)..log2 n) where
        // level = index of lowest set bit (or log2 n for node 0).
        let rounds = n.trailing_zeros();
        let level = if me == 0 { rounds } else { me.trailing_zeros() };
        let children = (0..level).filter(|i| me + (1u16 << i) < n).count() as u32;
        TreeGsumNode {
            me,
            n,
            host,
            tx_port,
            partial: 0.0,
            children_pending: children,
            started: None,
            finished: None,
            result: None,
        }
    }

    fn parent(&self) -> u16 {
        debug_assert_ne!(self.me, 0);
        self.me & (self.me - 1) // clear lowest set bit
    }

    fn children(&self) -> Vec<u16> {
        let rounds = self.n.trailing_zeros();
        let level = if self.me == 0 {
            rounds
        } else {
            self.me.trailing_zeros()
        };
        (0..level)
            .map(|i| self.me + (1u16 << i))
            .filter(|&c| c < self.n)
            .collect()
    }

    fn send(&self, ctx: &mut Ctx<'_>, dst: u16, tag: u16, value: f64) {
        let os = self.host.pio.send_overhead(8);
        let pkt = Packet::new(self.me, dst, Priority::High, tag, words_from_f64(value));
        ctx.send_after(os, self.tx_port, Inject(pkt));
    }

    fn maybe_send_up(&mut self, ctx: &mut Ctx<'_>) {
        if self.children_pending > 0 || self.started.is_none() {
            return;
        }
        if self.me == 0 {
            // Root holds the total: broadcast.
            self.result = Some(self.partial);
            self.finished = Some(ctx.now());
            for c in self.children() {
                self.send(ctx, c, TAG_BCAST, self.partial);
            }
        } else {
            self.send(ctx, self.parent(), TAG_REDUCE, self.partial);
        }
    }
}

/// Self event: receive cost paid; process the value.
struct TreeRx {
    tag: u16,
    value: f64,
}

impl Actor for TreeGsumNode {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        let ev = match ev.downcast::<StartGsum>() {
            Ok(s) => {
                self.partial = s.value;
                self.started = Some(ctx.now());
                self.maybe_send_up(ctx);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<Delivered>() {
            Ok(del) => {
                assert!(!del.pkt.corrupted);
                let cost = self.host.status_poll + self.host.pio.recv_overhead(8);
                ctx.wake_after(
                    cost,
                    TreeRx {
                        tag: del.pkt.usr_tag,
                        value: f64_from_words(&del.pkt.payload),
                    },
                );
                return;
            }
            Err(e) => e,
        };
        let Ok(rx) = ev.downcast::<TreeRx>() else {
            panic!("TreeGsumNode received an unexpected event type");
        };
        match rx.tag {
            TAG_REDUCE => {
                self.partial += rx.value;
                self.children_pending -= 1;
                self.maybe_send_up(ctx);
            }
            TAG_BCAST => {
                self.result = Some(rx.value);
                self.finished = Some(ctx.now());
                for c in self.children() {
                    self.send(ctx, c, TAG_BCAST, rx.value);
                }
            }
            t => panic!("unexpected tag {t:#x}"),
        }
    }
}

/// Measure the tree reduce+broadcast variant (the ablation baseline).
pub fn measure_gsum_tree(host: HostParams, values: &[f64]) -> GsumMeasurement {
    let n = values.len() as u16;
    assert!(n.is_power_of_two() && n >= 2);
    let mut sim = Simulator::new();
    let ids: Vec<ActorId> = (0..n).map(|_| sim.add_actor(Slot)).collect();
    let net = ArcticNetwork::build(&mut sim, &ids, Default::default());
    for e in 0..n {
        let node = TreeGsumNode::new(e, n, host, net.tx_port(e));
        let _ = sim.remove_actor(ids[e as usize]);
        sim.insert_actor_at(ids[e as usize], Box::new(node));
    }
    for (e, &v) in values.iter().enumerate() {
        sim.schedule(SimTime::ZERO, ids[e], StartGsum { value: v });
    }
    sim.run();
    let mut last = SimTime::ZERO;
    let mut result = None;
    for (e, &id) in ids.iter().enumerate() {
        let node = sim.actor::<TreeGsumNode>(id);
        last = last.max(
            node.finished
                .unwrap_or_else(|| panic!("tree node {e} never finished")),
        );
        let r = node
            .result
            .unwrap_or_else(|| panic!("tree node {e} finished without a result"));
        if let Some(prev) = result {
            assert_eq!(prev, r, "tree nodes disagree");
        }
        result = Some(r);
    }
    GsumMeasurement {
        n,
        elapsed: last.since(SimTime::ZERO),
        value: result.unwrap_or_else(|| panic!("tree gsum over zero nodes has no result")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_the_right_sum() {
        let vals = [3.25, -1.5, 10.0, 0.125, 7.0, 2.0, -4.0, 0.5];
        let m = measure_gsum(HostParams::default(), &vals, false);
        assert_eq!(m.value, vals.iter().sum::<f64>());
    }

    #[test]
    fn two_way_latency_matches_paper() {
        let m = measure_gsum(HostParams::default(), &[1.0, 2.0], false);
        // Paper: 4.0 µs.
        let us = m.elapsed.as_us_f64();
        assert!((3.0..5.0).contains(&us), "2-way gsum {us} µs");
    }

    #[test]
    fn sixteen_way_latency_matches_paper() {
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let m = measure_gsum(HostParams::default(), &vals, false);
        // Paper: 18.2 µs; accept the same order with ~20% slack.
        let us = m.elapsed.as_us_f64();
        assert!((13.0..22.0).contains(&us), "16-way gsum {us} µs");
    }

    #[test]
    fn latency_grows_linearly_in_log_n() {
        let t = latency_table(HostParams::default());
        let us: Vec<f64> = t.iter().map(|(_, m, _)| m.elapsed.as_us_f64()).collect();
        // Per-round increments should be roughly constant (C·log2 N form).
        let d1 = us[1] - us[0];
        let d2 = us[2] - us[1];
        let d3 = us[3] - us[2];
        let max = d1.max(d2).max(d3);
        let min = d1.min(d2).min(d3);
        assert!(max / min < 1.6, "increments not linear in log2 N: {us:?}");
    }

    #[test]
    fn smp_step_adds_about_a_microsecond() {
        let t = latency_table(HostParams::default());
        for (n, plain, smp) in &t {
            let d = smp.elapsed.as_us_f64() - plain.elapsed.as_us_f64();
            assert!((0.8..1.3).contains(&d), "{n}-way SMP step added {d} µs");
        }
    }

    #[test]
    fn faulty_gsum_is_exact_and_deterministic() {
        // A harsh corrupt+drop window over the whole butterfly: the sum
        // must still be exact on every node (values are resent, never
        // reconstructed), recovery must actually fire, and a re-run must
        // be bit-identical.
        let vals: Vec<f64> = (0..8).map(|i| (i as f64) * 1.25 - 2.0).collect();
        let plan = FaultPlan::new(0x65)
            .link_window(0.0, 40.0, 0.25, 0.2)
            .niu_stall(2, 2.0, 10.0);
        let (m, r) = measure_gsum_faulty(HostParams::default(), &vals, &plan);
        assert_eq!(m.value, vals.iter().sum::<f64>(), "sum must stay exact");
        assert!(
            r.corrupt_discarded + r.timeouts > 0,
            "fault window never hit the butterfly: {r:?}"
        );
        assert!(r.total_retransmits() > 0, "no recovery traffic: {r:?}");
        let clean = measure_gsum(HostParams::default(), &vals, false);
        assert!(
            m.elapsed > clean.elapsed,
            "recovery must cost simulated time"
        );
        let (m2, r2) = measure_gsum_faulty(HostParams::default(), &vals, &plan);
        assert_eq!(m.elapsed, m2.elapsed, "faulty gsum must be deterministic");
        assert_eq!(r, r2);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let vals: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let clean = measure_gsum(HostParams::default(), &vals, false);
        let (m, r) = measure_gsum_faulty(HostParams::default(), &vals, &FaultPlan::new(9));
        assert_eq!(m.elapsed, clean.elapsed);
        assert_eq!(m.value, clean.value);
        assert_eq!(r, RecoveryCounters::default());
    }

    #[test]
    fn identical_across_runs() {
        let vals: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let a = measure_gsum(HostParams::default(), &vals, false);
        let b = measure_gsum(HostParams::default(), &vals, false);
        assert_eq!(a.elapsed, b.elapsed, "simulation must be deterministic");
        assert_eq!(a.value, b.value);
    }
}

#[cfg(test)]
mod tree_tests {
    use super::*;

    #[test]
    fn tree_computes_the_same_sum() {
        let vals: Vec<f64> = (0..16).map(|i| (i as f64) * 1.5 - 3.0).collect();
        let tree = measure_gsum_tree(HostParams::default(), &vals);
        let fly = measure_gsum(HostParams::default(), &vals, false);
        assert_eq!(tree.value, fly.value);
    }

    #[test]
    fn butterfly_beats_tree_on_latency() {
        // The design point of §4.2: minimize latency at the expense of
        // messages. The tree's critical path is ~2 log2 N latencies vs the
        // butterfly's log2 N.
        for n in [4usize, 8, 16] {
            let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let tree = measure_gsum_tree(HostParams::default(), &vals);
            let fly = measure_gsum(HostParams::default(), &vals, false);
            let ratio = tree.elapsed.as_us_f64() / fly.elapsed.as_us_f64();
            assert!(
                ratio > 1.4,
                "{n}-way: tree {} vs butterfly {} (ratio {ratio:.2})",
                tree.elapsed,
                fly.elapsed
            );
        }
    }

    #[test]
    fn two_way_tree_is_a_send_and_a_broadcast() {
        let m = measure_gsum_tree(HostParams::default(), &[2.0, 3.0]);
        assert_eq!(m.value, 5.0);
        // Two user-to-user message latencies ≈ 7–9 µs.
        assert!(
            (6.0..10.0).contains(&m.elapsed.as_us_f64()),
            "{}",
            m.elapsed
        );
    }
}

#[cfg(test)]
mod figure8_tests {
    /// Figure 8's defining property, checked round by round on a pure
    /// model of the butterfly: after round `i`, every node holds the sum
    /// over the group of nodes whose identifiers differ from its own only
    /// in the lowest `i+1` bits.
    #[test]
    fn butterfly_partial_sums_match_figure_8() {
        let n = 8usize;
        let d: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 10.0).collect();
        let mut partial = d.clone();
        for round in 0..3 {
            let mut next = partial.clone();
            for (me, slot) in next.iter_mut().enumerate() {
                let partner = me ^ (1 << round);
                *slot = partial[me] + partial[partner];
            }
            partial = next;
            // Check the group property after this round.
            let mask = !((1usize << (round + 1)) - 1);
            for (me, &got) in partial.iter().enumerate() {
                let expect: f64 = (0..n)
                    .filter(|&o| o & mask == me & mask)
                    .map(|o| d[o])
                    .sum();
                assert_eq!(got, expect, "round {round}, node {me}: Figure 8 violated");
            }
        }
        // After the last round every node holds the full sum — with no
        // broadcast step, the property the paper's design buys with
        // N·log2(N) messages.
        let total: f64 = d.iter().sum();
        assert!(partial.iter().all(|&p| p == total));
    }

    /// The same property, observed through the DES protocol: every node's
    /// final result equals the total (the protocol IS the Figure 8
    /// butterfly; intermediate rounds are validated by the model test
    /// above and by the exact result here).
    #[test]
    fn des_butterfly_reaches_figure_8_endpoint() {
        use super::*;
        let d: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0) * 10.0).collect();
        let m = measure_gsum(HostParams::default(), &d, false);
        assert_eq!(m.value, d.iter().sum::<f64>());
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;

    /// The fabric and butterfly generalize beyond the paper's 16 nodes:
    /// the log-linear latency law holds at 32 and 64 endpoints (what a
    /// bigger Hyades would have measured).
    #[test]
    fn gsum_scales_log_linearly_to_64_endpoints() {
        let host = HostParams::default();
        let mut pts = Vec::new();
        for n in [4u16, 8, 16, 32, 64] {
            let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let m = measure_gsum(host, &vals, false);
            assert_eq!(m.value, vals.iter().sum::<f64>());
            pts.push(((n as f64).log2(), m.elapsed.as_us_f64()));
        }
        // Fit t = C·log2 N + B over the five points; residuals must be
        // small (log-linear law) and C in the paper's regime.
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let c = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let b = (sy - c * sx) / n;
        assert!((3.5..5.5).contains(&c), "slope {c}");
        for &(x, y) in &pts {
            let pred = c * x + b;
            assert!(
                (y - pred).abs() < 0.15 * y.max(4.0),
                "log-linear law broken at log2N={x}: {y} vs {pred}"
            );
        }
    }
}

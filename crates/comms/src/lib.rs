//! # hyades-comms — application-specific communication primitives
//!
//! The software heart of the SC'99 paper (§4): two primitives tailored to
//! the MIT GCM's communication pattern, implemented in "less than one
//! man-month" and credited with unlocking fine-grain parallel execution on
//! commodity hardware.
//!
//! * [`gsum`] — the **optimized global sum** (§4.2): an `N·log2 N`-message
//!   butterfly that computes `N` reductions concurrently, minimizing
//!   latency at the expense of message count. Measured on the simulated
//!   fabric it reproduces the paper's `4.67·log2 N − 0.95` µs fit.
//! * [`exchange`] — the **optimized exchange** (§4.1): brings tile halo
//!   regions into a consistent state with two sequential VI-mode transfers
//!   per neighbor pair (a single transfer saturates PCI), chunked staging
//!   copies overlapped with DMA, and an 8.6 µs negotiation per transfer.
//! * [`barrier`] — a butterfly barrier, used for the HPVM comparison (§6).
//! * [`mixmode`] — the mixed-mode SMP scheme (§4.1–4.2): one processor per
//!   SMP is the *communication master* owning the NIU; slaves post requests
//!   through shared-memory semaphores.
//! * [`world`] — the `CommWorld` abstraction the GCM runs against, with a
//!   serial backend and a real multi-threaded backend (crossbeam channels +
//!   shared-memory reductions).
//! * [`schedule`] — the exchange/gsum schedules reified as static
//!   send/recv dependency graphs, proven deadlock-free and tag-unique by
//!   `hyades-lint`'s `lint::schedule` analyzer.
//! * [`mpistart`] — the general-purpose MPI layer comparison (§6): the
//!   same algorithms through a portable library's per-message costs,
//!   quantifying the "generality tax" the custom primitives avoid.
//! * [`measured`] — runs the simulation microbenchmarks and fits a
//!   [`hyades_cluster::interconnect::PrimitiveModel`] for Arctic, the
//!   "stand-alone benchmark" step of the paper's methodology.

pub mod barrier;
pub mod exchange;
pub mod gsum;
pub mod measured;
pub mod mixmode;
pub mod mpistart;
pub mod recovery;
pub mod schedule;
pub mod timed;
pub mod world;

pub use recovery::RecoveryCounters;

pub use timed::TimedWorld;
pub use world::{CommWorld, SerialWorld, ThreadWorld};

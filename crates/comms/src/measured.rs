//! Stand-alone benchmarks → interconnect model (the paper's methodology).
//!
//! §5.2–5.3: "The exchange and global sum cost is determined using
//! stand-alone benchmarks." This module runs those benchmarks on the
//! *simulated* Arctic fabric and fits a
//! [`hyades_cluster::interconnect::PrimitiveModel`] that the performance
//! model and the Pfpp analysis consume. The Arctic column of Figure 12 is
//! thus produced by simulation, not copied from the paper.

use crate::barrier::measure_barrier;
use crate::exchange::measure_exchange;
use crate::gsum::measure_gsum;
use crate::mixmode::SmpCosts;
use hyades_cluster::interconnect::PrimitiveModel;
use hyades_des::SimDuration;
use hyades_startx::HostParams;

/// Raw measurements from the simulated fabric.
#[derive(Clone, Debug)]
pub struct ArcticMeasurements {
    /// `(n, µs)` global-sum latencies, single processor per SMP.
    pub gsum: Vec<(u32, f64)>,
    /// `(n, µs)` with the intra-SMP combine (the `2×N`-way rows).
    pub gsum_smp: Vec<(u32, f64)>,
    /// `(leg_bytes, µs)` full 8-leg exchange times on the 4×2 grid.
    pub exchange: Vec<(u64, f64)>,
    /// 16-way barrier, µs.
    pub barrier16_us: f64,
}

/// Run the full microbenchmark suite.
pub fn measure_arctic(host: HostParams) -> ArcticMeasurements {
    let sizes = [2u16, 4, 8, 16];
    let gsum = sizes
        .iter()
        .map(|&n| {
            let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
            (
                n as u32,
                measure_gsum(host, &vals, false).elapsed.as_us_f64(),
            )
        })
        .collect();
    let gsum_smp = sizes
        .iter()
        .map(|&n| {
            let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
            (
                n as u32,
                measure_gsum(host, &vals, true).elapsed.as_us_f64(),
            )
        })
        .collect();
    let exchange = [256u64, 1024, 3840, 15360]
        .iter()
        .map(|&b| (b, measure_exchange(host, 4, 2, b).as_us_f64()))
        .collect();
    ArcticMeasurements {
        gsum,
        gsum_smp,
        exchange,
        barrier16_us: measure_barrier(host, 16).as_us_f64(),
    }
}

/// Ordinary least squares for `y = a·x + b`.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let b = (sy - a * sx) / n;
    (a, b)
}

/// Fit the primitive model from the measurements.
pub fn fit_model(m: &ArcticMeasurements) -> PrimitiveModel {
    // Global sum: t = gsum_round · log2 N + gsum_base (the paper fits
    // 4.67·log2 N − 0.95 to its measurements).
    let pts: Vec<(f64, f64)> = m
        .gsum
        .iter()
        .map(|&(n, us)| ((n as f64).log2(), us))
        .collect();
    let (gsum_round_us, gsum_base_us) = linear_fit(&pts);

    // Exchange: total = legs · (overhead + bytes · cost); fit per-leg
    // affine over all measured sizes.
    let legs = 8.0;
    let pts: Vec<(f64, f64)> = m
        .exchange
        .iter()
        .map(|&(b, us)| (b as f64, us / legs))
        .collect();
    let (exch_byte_us, leg_overhead_us) = linear_fit(&pts);

    // SMP local step: mean additional latency.
    let smp_local_us = m
        .gsum
        .iter()
        .zip(&m.gsum_smp)
        .map(|(&(_, a), &(_, b))| b - a)
        .sum::<f64>()
        / m.gsum.len() as f64;

    PrimitiveModel {
        name: "Arctic (simulated)".to_string(),
        leg_overhead_us,
        exch_byte_us,
        ptp_byte_us: exch_byte_us,
        gsum_round_us,
        gsum_base_us,
        smp_local_us,
        barrier_round_us: m.barrier16_us / 4.0,
    }
}

/// Convenience: measure and fit in one call with default host parameters.
pub fn simulated_arctic_model() -> PrimitiveModel {
    fit_model(&measure_arctic(HostParams::default()))
}

/// Mixed-mode exchange (§4.1): both processors of each SMP own a tile.
/// The master runs its own 8-leg schedule on the NIU, then serves the
/// slave's remote legs through the shared-memory semaphore at ~30 % lower
/// bandwidth. Splitting the endpoint tile in two leaves each half one
/// intra-SMP neighbour (shared memory, negligible) and six remote legs.
///
/// This is the configuration Figure 11's PS exchange times were measured
/// in ("sixteen processors on eight SMPs"); the DS exchange runs
/// master-only on the vertically-integrated field.
pub fn measure_exchange_mixmode(host: HostParams, px: u16, py: u16, leg_bytes: u64) -> SimDuration {
    let master = measure_exchange(host, px, py, leg_bytes);
    let legs = 8u64;
    let master_leg = master / legs;
    let smp = SmpCosts::default();
    let slave_remote_legs = 6u64;
    let mut total = master;
    for _ in 0..slave_remote_legs {
        total += smp.slave_leg_time(master_leg, leg_bytes, host.vi_payload_mbyte_per_sec);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyades_cluster::interconnect::{arctic_paper, ExchangeShape, Interconnect};

    #[test]
    fn linear_fit_exact_line() {
        let (a, b) = linear_fit(&[(1.0, 5.0), (2.0, 7.0), (3.0, 9.0)]);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fitted_model_close_to_paper_constants() {
        let model = simulated_arctic_model();
        let paper = arctic_paper();
        // Global sum per-round constant: paper 4.67 µs.
        assert!(
            (paper.gsum_round_us * 0.6..paper.gsum_round_us * 1.3).contains(&model.gsum_round_us),
            "gsum round {} vs paper {}",
            model.gsum_round_us,
            paper.gsum_round_us
        );
        // Exchange streaming cost: paper 1/110 µs/B.
        assert!(
            (model.exch_byte_us * 110.0 - 1.0).abs() < 0.3,
            "byte cost {} µs/B",
            model.exch_byte_us
        );
        // Per-leg overhead: paper 8.6 µs; ours includes the pairing
        // control traffic, expect the same order.
        assert!(
            (6.0..25.0).contains(&model.leg_overhead_us),
            "leg overhead {}",
            model.leg_overhead_us
        );
    }

    #[test]
    fn fitted_model_predicts_ds_exchange() {
        let model = simulated_arctic_model();
        let ds = model.exchange_time(&ExchangeShape::square_tile(32, 1, 1, 8));
        // Paper's measured texch_xy is 115 µs; we must land in the same
        // regime (tens to ~200 µs), far below Gigabit Ethernet's 1789 µs.
        let us = ds.as_us_f64();
        assert!((60.0..250.0).contains(&us), "DS exchange {us} µs");
    }

    #[test]
    fn gsum_base_is_small() {
        let model = simulated_arctic_model();
        assert!(
            model.gsum_base_us.abs() < 3.0,
            "gsum base {} should be near zero",
            model.gsum_base_us
        );
    }
}

#[cfg(test)]
mod mixmode_tests {
    use super::*;

    #[test]
    fn mixed_mode_costs_roughly_double_the_master_pass() {
        let host = HostParams::default();
        for leg in [3840u64, 11520] {
            let single = measure_exchange(host, 4, 2, leg);
            let mixed = measure_exchange_mixmode(host, 4, 2, leg);
            let ratio = mixed.as_us_f64() / single.as_us_f64();
            assert!(
                (1.6..2.4).contains(&ratio),
                "leg {leg}: mixed/single = {ratio:.2}"
            );
        }
    }

    #[test]
    fn slave_pass_pays_the_bandwidth_penalty() {
        let host = HostParams::default();
        let leg = 11520u64;
        let single = measure_exchange(host, 4, 2, leg).as_us_f64();
        let mixed = measure_exchange_mixmode(host, 4, 2, leg).as_us_f64();
        // The slave's six legs each cost at least the master leg plus the
        // 30% streaming penalty.
        let master_leg = single / 8.0;
        let stream_penalty = leg as f64 * (1.0 / 77.0 - 1.0 / 110.0);
        assert!(
            mixed - single >= 6.0 * (master_leg + stream_penalty) - 1.0,
            "mixed {mixed} single {single}"
        );
    }
}

//! Mixed-mode SMP operation (§4.1–4.2).
//!
//! When both processors of an SMP participate, one is designated the
//! *communication master* with sole control of the NIU; the slave posts
//! remote-exchange requests through a shared-memory semaphore. For the
//! global sum, processors first combine locally through shared memory, the
//! master joins the system-wide butterfly, and finally distributes the
//! result locally.
//!
//! Consequences modeled here (both measured by the paper):
//! * the local combine + broadcast adds ~1 µs to a global sum;
//! * slave-to-slave exchange bandwidth is ~30 % below master-to-master.

use hyades_des::SimDuration;

/// Costs of the shared-memory semaphore protocol between the two
/// processors of an SMP.
#[derive(Clone, Copy, Debug)]
pub struct SmpCosts {
    /// Slave posts its operand / request and the master picks it up.
    pub combine: SimDuration,
    /// Master publishes the result and the slave picks it up.
    pub broadcast: SimDuration,
    /// Fractional exchange-bandwidth loss when a slave's halo moves through
    /// the master (extra staging copy through shared memory).
    pub slave_bandwidth_penalty: f64,
}

impl Default for SmpCosts {
    fn default() -> Self {
        SmpCosts {
            combine: SimDuration::from_us_f64(0.6),
            broadcast: SimDuration::from_us_f64(0.4),
            slave_bandwidth_penalty: 0.30,
        }
    }
}

impl SmpCosts {
    /// Total latency added to a global sum by the local combine and
    /// broadcast steps (§4.2: "about 1 µs").
    pub fn gsum_overhead(&self) -> SimDuration {
        self.combine + self.broadcast
    }

    /// Effective bandwidth of a slave-to-slave exchange leg given the
    /// master-to-master bandwidth (§4.1: "about 30 % lower").
    pub fn slave_bandwidth(&self, master_mbyte_per_sec: f64) -> f64 {
        master_mbyte_per_sec * (1.0 - self.slave_bandwidth_penalty)
    }

    /// Time for a slave's exchange leg of `bytes`, given the
    /// master-to-master leg time: the request/response semaphore hops plus
    /// the bandwidth penalty on the streaming portion.
    pub fn slave_leg_time(
        &self,
        master_leg: SimDuration,
        bytes: u64,
        master_mbyte_per_sec: f64,
    ) -> SimDuration {
        let stream_master = SimDuration::for_bytes_at(bytes, master_mbyte_per_sec);
        let stream_slave =
            SimDuration::for_bytes_at(bytes, self.slave_bandwidth(master_mbyte_per_sec));
        master_leg + self.combine + self.broadcast + (stream_slave - stream_master)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsum_overhead_about_one_microsecond() {
        let c = SmpCosts::default();
        let us = c.gsum_overhead().as_us_f64();
        assert!((0.9..1.1).contains(&us));
    }

    #[test]
    fn slave_bandwidth_is_thirty_percent_lower() {
        let c = SmpCosts::default();
        assert!((c.slave_bandwidth(110.0) - 77.0).abs() < 1e-9);
    }

    #[test]
    fn slave_leg_slower_than_master_leg() {
        let c = SmpCosts::default();
        let master = SimDuration::from_us_f64(43.5); // 3840 B leg
        let slave = c.slave_leg_time(master, 3840, 110.0);
        assert!(slave > master);
        // Penalty should be dominated by the extra streaming time:
        // 3840 B at 77 vs 110 MB/s is ~15 µs slower.
        let extra = slave.as_us_f64() - master.as_us_f64();
        assert!((10.0..20.0).contains(&extra), "extra {extra} µs");
    }
}

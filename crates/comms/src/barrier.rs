//! Butterfly barrier (dissemination pattern), used for the HPVM
//! comparison in §6: a 16-way barrier on Hyades completes in well under
//! 20 µs where HPVM needs more than 50 µs.

use crate::gsum::{measure_gsum, GsumMeasurement};
use hyades_des::SimDuration;
use hyades_startx::HostParams;

/// A barrier is a global sum whose value nobody reads: the synchronization
/// structure (log2 N rounds of pairwise messages) is identical, minus the
/// floating-point add. We reuse the global-sum machinery and report its
/// latency as the barrier time — the add costs 0.05 µs/round, i.e. noise.
pub fn measure_barrier(host: HostParams, n: u16) -> SimDuration {
    let values = vec![0.0f64; n as usize];
    let m: GsumMeasurement = measure_gsum(host, &values, false);
    m.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_way_barrier_beats_hpvm() {
        let t = measure_barrier(HostParams::default(), 16);
        // §6: HPVM's 16-way barrier takes more than 50 µs, "more than 2.5
        // times longer than Hyades's context-specific primitive" — so ours
        // must land under 20 µs.
        assert!(t.as_us_f64() < 20.0, "16-way barrier {t} should be < 20 µs");
    }

    #[test]
    fn barrier_grows_with_participants() {
        let t2 = measure_barrier(HostParams::default(), 2);
        let t16 = measure_barrier(HostParams::default(), 16);
        assert!(t16 > t2 * 2);
        assert!(t16 < t2 * 8, "should grow like log N, not N");
    }
}

//! MPI-StarT: the general-purpose layer the paper declines to use (§6).
//!
//! Hyades *has* general-purpose interfaces — MPI-StarT (Husbands & Hoe,
//! SC'98) and Cilk — that drive the same hardware. The paper's argument
//! is that "in an application-specific cluster, there is little reason to
//! give up any performance for an API that is more general than
//! required". This module quantifies that trade: the same butterfly
//! reduction and pairwise exchange, run through an MPI-style library
//! layer whose per-message costs include the envelope matching, request
//! bookkeeping, and extra buffering a portable MPI must do.
//!
//! Library cost model (calibrated to MPI-StarT's reported small-message
//! latency of ~15–25 µs versus raw StarT-X's ~4 µs):
//!
//! * +4 µs software per send (envelope construction, request setup);
//! * +6 µs per receive (unexpected-message queue search, tag matching,
//!   request completion);
//! * bulk transfers take an extra staging copy, capping effective
//!   bandwidth near 75 MB/s versus the 110 MB/s of the raw VI path.

use crate::gsum::{measure_gsum, GsumMeasurement};
use hyades_cluster::interconnect::PrimitiveModel;
use hyades_des::SimDuration;
use hyades_startx::pio::PioCosts;
use hyades_startx::HostParams;

/// Software overhead MPI adds to each send.
pub const MPI_SEND_SW_US: f64 = 4.0;
/// Software overhead MPI adds to each receive.
pub const MPI_RECV_SW_US: f64 = 6.0;
/// Effective MPI bulk bandwidth (MB/s): the raw 110 MB/s VI stream minus
/// one intermediate copy.
pub const MPI_BULK_MBS: f64 = 75.0;

/// Host parameters with the MPI library tax folded into the per-message
/// software costs (the hardware underneath is identical).
pub fn mpi_host() -> HostParams {
    let base = HostParams::default();
    HostParams {
        pio: PioCosts {
            send_sw: SimDuration::from_us_f64(MPI_SEND_SW_US),
            recv_sw: SimDuration::from_us_f64(MPI_RECV_SW_US),
            ..base.pio
        },
        ..base
    }
}

/// `MPI_Allreduce` on the simulated fabric: recursive doubling — the same
/// butterfly as the custom global sum, each message paying the library
/// costs. This is exactly how a good MPI implements small allreduce, so
/// the *entire* measured difference is API overhead.
pub fn measure_mpi_allreduce(values: &[f64]) -> GsumMeasurement {
    measure_gsum(mpi_host(), values, false)
}

/// The MPI-StarT primitive-cost model for the performance analysis: a
/// rendezvous handshake (request + clear-to-send, each a taxed small
/// message) per exchange leg plus the reduced-bandwidth stream.
pub fn mpistart_model() -> PrimitiveModel {
    // One-way taxed small message: Os' + L + poll + Or' with the MPI
    // software constants.
    let small_msg_us = (0.36 + MPI_SEND_SW_US) + 1.2 + 0.93 + (1.86 + MPI_RECV_SW_US);
    let leg_overhead_us = 8.6 + 2.0 * small_msg_us; // VI negotiation + rendezvous
    PrimitiveModel {
        name: "MPI-StarT".to_string(),
        leg_overhead_us,
        exch_byte_us: 1.0 / MPI_BULK_MBS,
        ptp_byte_us: 1.0 / MPI_BULK_MBS,
        // Allreduce round: one taxed message latency + the add.
        gsum_round_us: small_msg_us + 0.05,
        gsum_base_us: 0.0,
        smp_local_us: 1.0,
        barrier_round_us: small_msg_us,
    }
}

/// Measured generality tax: (custom µs, mpi µs) for an `n`-way reduction.
pub fn reduction_tax(n: u16) -> (f64, f64) {
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let custom = measure_gsum(HostParams::default(), &vals, false);
    let mpi = measure_mpi_allreduce(&vals);
    (custom.elapsed.as_us_f64(), mpi.elapsed.as_us_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyades_cluster::interconnect::{arctic_paper, ExchangeShape, Interconnect};

    #[test]
    fn allreduce_matches_custom_result_exactly() {
        let vals: Vec<f64> = (0..8).map(|i| (i * i) as f64 - 3.5).collect();
        let custom = measure_gsum(HostParams::default(), &vals, false);
        let mpi = measure_mpi_allreduce(&vals);
        assert_eq!(custom.value, mpi.value, "same arithmetic, same answer");
    }

    #[test]
    fn generality_tax_is_2x_to_4x_on_reductions() {
        for n in [4u16, 8, 16] {
            let (custom, mpi) = reduction_tax(n);
            let tax = mpi / custom;
            assert!(
                (2.0..4.5).contains(&tax),
                "{n}-way: custom {custom} vs MPI {mpi} ({tax:.1}x)"
            );
        }
    }

    #[test]
    fn mpi_exchange_slower_but_not_ethernet_slow() {
        let mpi = mpistart_model();
        let arctic = arctic_paper();
        let ds = ExchangeShape::square_tile(32, 1, 1, 8);
        let t_mpi = mpi.exchange_time(&ds).as_us_f64();
        let t_arc = arctic.exchange_time(&ds).as_us_f64();
        // MPI on the same fabric: a few times slower than the custom
        // primitive…
        assert!((2.0..8.0).contains(&(t_mpi / t_arc)), "{t_mpi} vs {t_arc}");
        // …but still 1–2 orders faster than Ethernet MPI (10 ms): the
        // hardware matters even through a general API.
        assert!(t_mpi < 1000.0, "{t_mpi}");
    }

    #[test]
    fn mpi_would_still_fail_the_fine_grain_budget_at_scale() {
        // §5.4's DS budget is 306 µs for tgsum + texch_xy. MPI-StarT's
        // exchange alone eats most of it — the reason the paper pays one
        // man-month for custom primitives.
        let mpi = mpistart_model();
        let ds = ExchangeShape::square_tile(32, 1, 1, 8);
        let sum = mpi.gsum_time(8).as_us_f64() + mpi.exchange_time(&ds).as_us_f64();
        let custom_sum = {
            let a = arctic_paper();
            a.gsum_time(8).as_us_f64() + a.exchange_time(&ds).as_us_f64()
        };
        assert!(sum > 1.3 * custom_sum);
        // Custom fits the 306 µs budget comfortably; MPI eats > 100% of
        // the *gsum+exchange* share.
        assert!(custom_sum < 150.0);
        assert!(sum > 300.0, "MPI DS comm {sum} µs");
    }
}

//! `CommWorld` — the communication interface the GCM runs against.
//!
//! The paper's GCM isolates communication behind two primitives (exchange
//! and global sum, §4); everything else is sequential Fortran per tile.
//! This module gives the Rust GCM the same shape: a trait with exchange /
//! global-sum / barrier, and two functional backends:
//!
//! * [`SerialWorld`] — a single rank; exchanges are identities (used for
//!   single-tile runs and tests);
//! * [`ThreadWorld`] — one OS thread per rank with crossbeam channels for
//!   halo exchange and a shared-memory reduction tree for global sums
//!   (deterministic: contributions are summed in rank order).
//!
//! Timing studies use the simulated interconnects instead (the
//! time-charging executor in `hyades-perf` / `hyades-gcm`); these backends
//! provide *functional* parallelism.

use crossbeam::channel::{unbounded, Receiver, Sender};
use hyades_telemetry::commlog::{self, CommEvent};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// The communication surface of one parallel process (rank).
pub trait CommWorld {
    fn rank(&self) -> usize;
    fn size(&self) -> usize;

    /// Exchange with neighbors: send each `(neighbor, data)` pair and
    /// receive the message each of those neighbors sent to this rank in
    /// the same exchange. The pattern must be symmetric (if `i` sends to
    /// `j`, `j` sends to `i`), as halo exchanges are.
    fn exchange(&mut self, outgoing: Vec<(usize, Vec<f64>)>) -> Vec<(usize, Vec<f64>)>;

    /// Sum `x` across all ranks; every rank receives the total.
    /// Deterministic: contributions are combined in rank order.
    fn global_sum(&mut self, x: f64) -> f64 {
        let mut v = [x];
        self.global_sum_vec(&mut v);
        v[0]
    }

    /// Element-wise global sum of a small vector (one synchronization for
    /// several reductions).
    fn global_sum_vec(&mut self, xs: &mut [f64]);

    /// Maximum of `x` across all ranks.
    fn global_max(&mut self, x: f64) -> f64;

    /// Block until every rank has arrived.
    fn barrier(&mut self);

    /// Gather every rank's `data` to rank 0, which receives the per-rank
    /// vectors in rank order; other ranks receive `None`. (The paper's
    /// "non-critical communication" class — used for diagnostics and
    /// output, not the inner loop.)
    fn gather(&mut self, data: Vec<f64>) -> Option<Vec<Vec<f64>>>;

    // --- monitor reductions -----------------------------------------------
    // Derived collectives for the run-health monitor (`gcm::monitor`).
    // They are provided in terms of the two core reductions so every
    // backend — serial, threaded, time-charged — inherits them with the
    // same determinism and cost accounting as the primitives they wrap.

    /// Minimum of `x` across all ranks.
    fn global_min(&mut self, x: f64) -> f64 {
        -self.global_max(-x)
    }

    /// Deterministic argmax: the global maximum of `value` together with
    /// the smallest `tag` among the ranks whose contribution equals that
    /// maximum (ties broken toward the smallest tag, so the result is
    /// independent of reduction order). `tag` must be exactly
    /// representable in an `f64` (< 2^53); callers pack rank/level/cell
    /// coordinates into it. Returns `u64::MAX` as the tag when no rank's
    /// value matches the maximum (all contributions NaN).
    fn global_argmax(&mut self, value: f64, tag: u64) -> (f64, u64) {
        debug_assert!(tag < (1u64 << 53), "argmax tag must fit in f64");
        let m = self.global_max(value);
        let mine = if value == m {
            tag as f64
        } else {
            f64::INFINITY
        };
        let t = self.global_min(mine);
        (m, if t.is_finite() { t as u64 } else { u64::MAX })
    }

    /// Deterministic argmin; same tag contract as [`global_argmax`].
    ///
    /// [`global_argmax`]: CommWorld::global_argmax
    fn global_argmin(&mut self, value: f64, tag: u64) -> (f64, u64) {
        let (neg_min, t) = self.global_argmax(-value, tag);
        (-neg_min, t)
    }
}

/// Single-rank world.
#[derive(Default)]
pub struct SerialWorld;

impl CommWorld for SerialWorld {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn exchange(&mut self, outgoing: Vec<(usize, Vec<f64>)>) -> Vec<(usize, Vec<f64>)> {
        // With one rank the only legal neighbor is yourself (periodic
        // wrap): the data comes straight back.
        for (n, _) in &outgoing {
            assert_eq!(*n, 0, "serial world has no neighbor {n}");
        }
        outgoing
    }
    fn global_sum_vec(&mut self, _xs: &mut [f64]) {}
    fn global_max(&mut self, x: f64) -> f64 {
        x
    }
    fn barrier(&mut self) {}
    fn gather(&mut self, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        Some(vec![data])
    }
}

/// Shared state for deterministic reductions and barriers.
struct RendezvousCore {
    m: Mutex<RendezvousState>,
    cv: Condvar,
    n: usize,
}

struct RendezvousState {
    /// Per-rank contribution for the in-flight operation.
    slots: Vec<Option<Vec<f64>>>,
    arrived: usize,
    generation: u64,
    /// Result of the last completed operation.
    result: Vec<f64>,
}

impl RendezvousCore {
    fn new(n: usize) -> Self {
        RendezvousCore {
            m: Mutex::new(RendezvousState {
                slots: vec![None; n],
                arrived: 0,
                generation: 0,
                result: Vec::new(),
            }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Deposit this rank's contribution; the last arriver combines all
    /// contributions in rank order with `combine` and publishes the
    /// result. Also returns the reduction's generation number (the
    /// all-ranks join point, recorded in the comm log for the
    /// happens-before checker).
    fn reduce(
        &self,
        rank: usize,
        contribution: Vec<f64>,
        combine: fn(&mut [f64], &[f64]),
    ) -> (Vec<f64>, u64) {
        let mut st = self.m.lock();
        let my_gen = st.generation;
        debug_assert!(st.slots[rank].is_none(), "rank {rank} reduced twice");
        st.slots[rank] = Some(contribution);
        st.arrived += 1;
        if st.arrived == self.n {
            let mut acc: Vec<f64> = Vec::new();
            let mut seen = 0usize;
            for v in st.slots.iter_mut().filter_map(Option::take) {
                if seen == 0 {
                    acc = v;
                } else {
                    combine(&mut acc, &v);
                }
                seen += 1;
            }
            debug_assert_eq!(seen, self.n, "missing contribution");
            st.result = acc;
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        } else {
            while st.generation == my_gen {
                self.cv.wait(&mut st);
            }
        }
        (st.result.clone(), my_gen)
    }
}

/// A rank of the thread-parallel world.
pub struct ThreadWorld {
    rank: usize,
    size: usize,
    /// tx[d]: channel from this rank to rank d.
    tx: Vec<Sender<Vec<f64>>>,
    /// rx[s]: channel from rank s to this rank.
    rx: Vec<Receiver<Vec<f64>>>,
    red: Arc<RendezvousCore>,
}

impl ThreadWorld {
    /// Build the `n` connected worlds.
    pub fn create(n: usize) -> Vec<ThreadWorld> {
        assert!(n >= 1);
        // txs[s][d] / rxs[d][s]
        let mut txs: Vec<Vec<Option<Sender<Vec<f64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Vec<f64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for s in 0..n {
            for d in 0..n {
                let (tx, rx) = unbounded();
                txs[s][d] = Some(tx);
                rxs[d][s] = Some(rx);
            }
        }
        let red = Arc::new(RendezvousCore::new(n));
        let mut worlds = Vec::with_capacity(n);
        for ((rank, tx_row), rx_row) in txs.into_iter().enumerate().zip(rxs) {
            worlds.push(ThreadWorld {
                rank,
                size: n,
                tx: tx_row.into_iter().map(Option::unwrap).collect(),
                rx: rx_row.into_iter().map(Option::unwrap).collect(),
                red: Arc::clone(&red),
            });
        }
        worlds
    }

    /// Run `f` on `n` ranks across `n` scoped threads; returns the
    /// per-rank results in rank order.
    pub fn run<R: Send>(n: usize, f: impl Fn(&mut ThreadWorld) -> R + Send + Sync) -> Vec<R> {
        let worlds = Self::create(n);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rank, mut w) in worlds.into_iter().enumerate() {
                let f = &f;
                handles.push((rank, scope.spawn(move || f(&mut w))));
            }
            for (rank, h) in handles {
                match h.join() {
                    Ok(r) => out[rank] = Some(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }
}

impl CommWorld for ThreadWorld {
    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.size
    }

    fn exchange(&mut self, outgoing: Vec<(usize, Vec<f64>)>) -> Vec<(usize, Vec<f64>)> {
        // Self-sends (periodic wrap onto the same rank) bypass the
        // channels so a rank never blocks on itself.
        let mut selfs = Vec::new();
        let mut awaiting = Vec::new();
        for (nbr, data) in outgoing {
            if nbr == self.rank {
                selfs.push((nbr, data));
            } else {
                commlog::record(CommEvent::Send {
                    to: nbr,
                    words: data.len(),
                });
                self.tx[nbr].send(data).unwrap_or_else(|_| {
                    panic!(
                        "rank {}: channel to rank {nbr} closed (peer exited early)",
                        self.rank
                    )
                });
                awaiting.push(nbr);
            }
        }
        let mut incoming = selfs;
        for nbr in awaiting {
            let data = self.rx[nbr].recv().unwrap_or_else(|_| {
                panic!(
                    "rank {}: channel from rank {nbr} closed (peer exited early)",
                    self.rank
                )
            });
            commlog::record(CommEvent::Recv {
                from: nbr,
                words: data.len(),
            });
            incoming.push((nbr, data));
        }
        incoming
    }

    fn global_sum_vec(&mut self, xs: &mut [f64]) {
        let (res, generation) = self.red.reduce(self.rank, xs.to_vec(), |a, b| {
            for (ai, bi) in a.iter_mut().zip(b) {
                *ai += bi;
            }
        });
        commlog::record(CommEvent::Reduce { generation });
        xs.copy_from_slice(&res);
    }

    fn global_max(&mut self, x: f64) -> f64 {
        let (res, generation) = self.red.reduce(self.rank, vec![x], |a, b| {
            for (ai, bi) in a.iter_mut().zip(b) {
                *ai = ai.max(*bi);
            }
        });
        commlog::record(CommEvent::Reduce { generation });
        res[0]
    }

    fn barrier(&mut self) {
        let (_, generation) = self.red.reduce(self.rank, Vec::new(), |_a, _b| {});
        commlog::record(CommEvent::Reduce { generation });
    }

    fn gather(&mut self, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        if self.rank == 0 {
            let mut out = vec![data];
            for src in 1..self.size {
                let v = self.rx[src].recv().unwrap_or_else(|_| {
                    panic!(
                        "rank {}: gather channel from rank {src} closed (peer exited early)",
                        self.rank
                    )
                });
                commlog::record(CommEvent::Recv {
                    from: src,
                    words: v.len(),
                });
                out.push(v);
            }
            Some(out)
        } else {
            commlog::record(CommEvent::Send {
                to: 0,
                words: data.len(),
            });
            self.tx[0].send(data).unwrap_or_else(|_| {
                panic!(
                    "rank {}: gather channel to rank 0 closed (peer exited early)",
                    self.rank
                )
            });
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_world_identities() {
        let mut w = SerialWorld;
        assert_eq!(w.global_sum(3.5), 3.5);
        assert_eq!(w.global_max(-2.0), -2.0);
        let back = w.exchange(vec![(0, vec![1.0, 2.0])]);
        assert_eq!(back, vec![(0, vec![1.0, 2.0])]);
        w.barrier();
    }

    #[test]
    fn thread_global_sum() {
        let results = ThreadWorld::run(8, |w| w.global_sum(w.rank() as f64 + 1.0));
        let expected: f64 = (1..=8).map(|i| i as f64).sum();
        assert!(results.iter().all(|&r| r == expected));
    }

    #[test]
    fn serial_monitor_reductions_are_identities() {
        let mut w = SerialWorld;
        assert_eq!(w.global_min(4.5), 4.5);
        assert_eq!(w.global_argmax(2.0, 17), (2.0, 17));
        assert_eq!(w.global_argmin(-3.0, 9), (-3.0, 9));
    }

    #[test]
    fn thread_argmax_attributes_the_owning_rank() {
        let vals = [1.0, 9.0, 3.0, -2.0];
        let results = ThreadWorld::run(4, move |w| {
            let r = w.rank();
            w.global_argmax(vals[r], r as u64)
        });
        assert!(results.iter().all(|&r| r == (9.0, 1)));
    }

    #[test]
    fn thread_argmin_breaks_ties_toward_smallest_tag() {
        // Ranks 1 and 3 share the minimum; the winner must be the
        // smaller tag regardless of reduction order.
        let vals = [5.0, -1.0, 4.0, -1.0];
        let results = ThreadWorld::run(4, move |w| {
            let r = w.rank();
            w.global_argmin(vals[r], 100 + r as u64)
        });
        assert!(results.iter().all(|&r| r == (-1.0, 101)));
    }

    #[test]
    fn thread_argmax_of_all_nan_has_no_owner() {
        let results = ThreadWorld::run(4, |w| w.global_argmax(f64::NAN, w.rank() as u64));
        for &(m, tag) in &results {
            assert!(m.is_nan());
            assert_eq!(tag, u64::MAX);
        }
    }

    #[test]
    fn thread_global_sum_is_deterministic_in_rank_order() {
        // Values chosen so that different summation orders give different
        // floating-point results; rank-order combination must make every
        // run identical.
        let vals: Vec<f64> = (0..8).map(|i| 1.0 + 1e-16 * i as f64 * 3.7).collect();
        let run = || {
            ThreadWorld::run(8, |w| {
                let mut acc = 0.0f64;
                for _ in 0..50 {
                    acc = w.global_sum(vals[w.rank()] + acc * 1e-20);
                }
                acc
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_global_max() {
        let results = ThreadWorld::run(4, |w| w.global_max((w.rank() as f64 - 1.5).abs()));
        assert!(results.iter().all(|&r| r == 1.5));
    }

    #[test]
    fn thread_exchange_ring() {
        // Each rank sends its rank to both ring neighbors and should
        // receive the neighbors' ranks back.
        let n = 6;
        let results = ThreadWorld::run(n, |w| {
            let me = w.rank();
            let left = (me + n - 1) % n;
            let right = (me + 1) % n;
            let got = w.exchange(vec![
                (left, vec![me as f64]),
                (right, vec![me as f64 + 100.0]),
            ]);
            let mut from_left = None;
            let mut from_right = None;
            for (nbr, data) in got {
                if nbr == left {
                    from_left = Some(data[0]);
                } else if nbr == right {
                    from_right = Some(data[0]);
                }
            }
            (from_left.unwrap(), from_right.unwrap())
        });
        for (me, &(fl, fr)) in results.iter().enumerate() {
            let left = (me + n - 1) % n;
            let right = (me + 1) % n;
            // Left neighbor sent us its "+100" message (we are its right),
            // right neighbor sent its plain rank (we are its left).
            assert_eq!(fl, left as f64 + 100.0);
            assert_eq!(fr, right as f64);
        }
    }

    #[test]
    fn thread_exchange_self_wrap() {
        let results = ThreadWorld::run(1, |w| {
            let got = w.exchange(vec![(0, vec![42.0])]);
            got[0].1[0]
        });
        assert_eq!(results[0], 42.0);
    }

    #[test]
    fn thread_barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let results = ThreadWorld::run(8, |w| {
            phase1.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&r| r == 8));
    }

    #[test]
    fn vector_reduction() {
        let results = ThreadWorld::run(4, |w| {
            let mut v = vec![w.rank() as f64, 1.0];
            w.global_sum_vec(&mut v);
            v
        });
        for r in results {
            assert_eq!(r, vec![6.0, 4.0]);
        }
    }
}

#[cfg(test)]
mod gather_tests {
    use super::*;

    #[test]
    fn serial_gather_returns_own_data() {
        let mut w = SerialWorld;
        let got = w.gather(vec![1.0, 2.0]).unwrap();
        assert_eq!(got, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn thread_gather_collects_in_rank_order() {
        let results = ThreadWorld::run(6, |w| {
            let me = w.rank() as f64;
            w.gather(vec![me, me * 10.0])
        });
        // Only rank 0 gets the data.
        assert!(results[1..].iter().all(|r| r.is_none()));
        let all = results[0].as_ref().unwrap();
        assert_eq!(all.len(), 6);
        for (rank, v) in all.iter().enumerate() {
            assert_eq!(v, &vec![rank as f64, rank as f64 * 10.0]);
        }
    }

    #[test]
    fn gather_interleaves_with_exchanges() {
        // A gather between two exchanges must not scramble the per-pair
        // channel streams (rank 0's gather uses the same channels).
        let results = ThreadWorld::run(4, |w| {
            let me = w.rank();
            let next = (me + 1) % 4;
            let prev = (me + 3) % 4;
            let a = w.exchange(vec![(next, vec![me as f64]), (prev, vec![me as f64])]);
            let _ = w.gather(vec![me as f64]);
            let b = w.exchange(vec![
                (next, vec![me as f64 + 100.0]),
                (prev, vec![me as f64 + 100.0]),
            ]);
            let from = |set: &[(usize, Vec<f64>)], nbr: usize| -> f64 {
                set.iter().find(|(n, _)| *n == nbr).unwrap().1[0]
            };
            (from(&a, prev), from(&b, next))
        });
        for (me, &(a, b)) in results.iter().enumerate() {
            let prev = (me + 3) % 4;
            let next = (me + 1) % 4;
            assert_eq!(a, prev as f64, "first exchange");
            assert_eq!(b, next as f64 + 100.0, "second exchange");
        }
    }
}

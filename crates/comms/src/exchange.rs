//! The optimized exchange primitive (§4.1).
//!
//! An exchange brings halo regions into a consistent state. On Hyades it is
//! implemented as *two separate VI-mode transfers in opposite directions*,
//! carried out sequentially because a single transfer alone saturates the
//! PCI bus. Each transfer pays a one-time ~8.6 µs negotiation; data then
//! streams at 110 MByte/s with staging copies overlapped with DMA.
//!
//! A full exchange pairs each node with its grid neighbors in a fixed
//! schedule (an edge coloring of the tile graph): in each round every node
//! belongs to exactly one pair, the designated member sends first, then the
//! roles reverse. A 4-neighbor tile therefore performs 8 sequential
//! transfer legs per field.
//!
//! ## Recovery (fault-injection subsystem)
//!
//! The paper treated a failed CRC as catastrophic; here every leg of the
//! envelope survives corrupt *and* dropped packets:
//!
//! * corrupted packets are discarded at delivery (the payload is never
//!   trusted; the header/tag survives — the fault model flips payload
//!   bits only, mirroring Arctic's per-stage data CRC);
//! * the DATA stream is go-back-N: the receiver tracks the next expected
//!   sequence number and NAKs a corrupt data packet with `RETRY(seq)`;
//! * every blocking wait on the sender side (WaitAck, WaitDone) is
//!   guarded by a timeout with capped exponential backoff
//!   ([`hyades_fault::RetryPolicy`]): a missing ACK resends the REQ, a
//!   missing DONE sends a PROBE that the receiver answers with either
//!   `RETRY(next_seq)` (stream incomplete) or a resent DONE;
//! * each retransmitted control message travels under its own tag base
//!   (REQ2/ACK2/DONE2/PROBE/RETRY) so the static schedule proof in
//!   `lint::schedule` keeps per-channel tag uniqueness, and duplicates
//!   are idempotent by the dedup rules in `on_packet`.

use crate::recovery::{RecoveryCounters, RecoveryEvent};
use hyades_arctic::network::{ArcticNetwork, Delivered, Inject};
use hyades_arctic::packet::{Packet, Priority};
use hyades_des::event::Payload;
use hyades_des::{Actor, ActorId, Ctx, SimDuration, SimTime, Simulator};
use hyades_fault::{FaultPlan, RetryPolicy};
use hyades_startx::msg::{bulk_packet, segment};
use hyades_startx::HostParams;
use hyades_telemetry as telemetry;
use hyades_telemetry::flight;
use std::collections::{BTreeMap, BTreeSet};

// Tag layout (Arctic's usr_tag is 11 bits, so everything must fit in
// 0x7FF): bits 8..10 select the message kind, bit 7 marks the recovery
// variant of that kind, bits 0..6 carry the round. Rounds are therefore
// capped at 127 — far beyond any torus schedule.
const TAG_REQ_BASE: u16 = 0x100; // + round
const TAG_ACK_BASE: u16 = 0x200;
const TAG_DONE_BASE: u16 = 0x300;
/// Recovery legs: each retransmitted message kind has its own tag base,
/// keeping per-channel tags unique for the static schedule proof.
const TAG_REQ2_BASE: u16 = 0x180; // resent REQ
const TAG_ACK2_BASE: u16 = 0x280; // resent ACK
const TAG_DONE2_BASE: u16 = 0x380; // resent DONE
const TAG_PROBE_BASE: u16 = 0x400; // sender -> receiver: how far did you get?
const TAG_RETRY_BASE: u16 = 0x480; // receiver -> sender: restart DATA at payload seq
const TAG_BASE_MASK: u16 = 0xF80;
const TAG_ROUND_MASK: u16 = 0x07F;
const TAG_DATA: u16 = 0x0FF;

/// One pairing round of the exchange schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairPlan {
    pub partner: u16,
    pub bytes: u64,
    /// Whether this node initiates the first transfer of the pair.
    pub sends_first: bool,
}

/// The full per-node schedule: one pairing per round (None = idle round,
/// e.g. at non-periodic domain edges).
pub type Schedule = Vec<Option<PairPlan>>;

/// Build the edge-colored schedule for a periodic `px × py` tile grid where
/// every leg moves `bytes`. Rounds: x-pairs at even x, x-pairs at odd x,
/// then the same in y (skipped when the dimension is 1).
pub fn torus_schedule(px: u16, py: u16, bytes: u64) -> Vec<Schedule> {
    assert!(px >= 1 && py >= 1);
    assert!(
        px == 1 || px.is_multiple_of(2),
        "px must be even (or 1) for pairing"
    );
    assert!(
        py == 1 || py.is_multiple_of(2),
        "py must be even (or 1) for pairing"
    );
    let n = px * py;
    let rank = |x: u16, y: u16| y * px + x;
    let mut schedules: Vec<Schedule> = vec![Vec::new(); n as usize];
    let push_round = |pairs: &[(u16, u16)], schedules: &mut Vec<Schedule>| {
        let mut round: Vec<Option<PairPlan>> = vec![None; n as usize];
        for &(a, b) in pairs {
            round[a as usize] = Some(PairPlan {
                partner: b,
                bytes,
                sends_first: true,
            });
            round[b as usize] = Some(PairPlan {
                partner: a,
                bytes,
                sends_first: false,
            });
        }
        for (s, r) in schedules.iter_mut().zip(round) {
            s.push(r);
        }
    };
    for parity in 0..2u16 {
        if px < 2 {
            break;
        }
        let mut pairs = Vec::new();
        for y in 0..py {
            for x in (parity..px).step_by(2) {
                let nx = (x + 1) % px;
                if px == 2 && parity == 1 {
                    // Two columns: both colors map to the same single pair;
                    // keep the second round so both directions of halo move
                    // (east and west edges are distinct data).
                }
                pairs.push((rank(x, y), rank(nx, y)));
            }
        }
        push_round(&pairs, &mut schedules);
    }
    for parity in 0..2u16 {
        if py < 2 {
            break;
        }
        let mut pairs = Vec::new();
        for x in 0..px {
            for y in (parity..py).step_by(2) {
                let ny = (y + 1) % py;
                pairs.push((rank(x, y), rank(x, ny)));
            }
        }
        push_round(&pairs, &mut schedules);
    }
    schedules
}

/// Per-node exchange state machine.
enum LegPhase {
    /// Waiting to begin the round (or for the partner's REQ).
    Start,
    /// Sender: REQ sent, waiting for ACK. Carries the leg parameters so
    /// later phases never have to re-derive the plan from the schedule.
    WaitAck { partner: u16, bytes: u64 },
    /// Sender: streaming packets (`left` packets remain).
    Streaming {
        queue: Vec<u64>,
        seq: u32,
        partner: u16,
    },
    /// Sender: all packets emitted, waiting for DONE. Carries the leg
    /// parameters so a RETRY can rebuild the stream.
    WaitDone { partner: u16, bytes: u64 },
    /// Receiver: ACK sent, accumulating DATA in go-back-N order
    /// (`queue[next_seq]` is the next packet's byte count).
    Receiving {
        queue: Vec<u64>,
        next_seq: u32,
        expected: u64,
        got: u64,
    },
}

/// Which half of the round we are in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Half {
    First,
    Second,
    DoneRound,
}

enum SelfEv {
    /// CPU finished processing a control message; proceed.
    Proceed,
    /// Emit the next data packet of the stream.
    Emit,
    /// Receiver finished the final copy-out; send DONE.
    RxDone,
    /// A guarded wait timed out. Stale timeouts (epoch mismatch) are
    /// no-ops.
    Timeout { epoch: u64 },
}

pub struct ExchangeNode {
    pub me: u16,
    host: HostParams,
    tx_port: ActorId,
    schedule: Schedule,
    round: usize,
    half: Half,
    phase: LegPhase,
    /// REQs that arrived before this node entered the matching round.
    /// BTreeMap, not HashMap: hash-iteration order could differ between
    /// runs and leak into event ordering (lint rule `hash-iteration`).
    early_reqs: BTreeMap<u16, u64>,
    /// Rounds whose *receiving* leg this node has completed (a node
    /// receives in exactly one half of each paired round), so a late
    /// PROBE can be answered with a resent DONE.
    rx_done: BTreeSet<u16>,
    /// Retransmit policy guarding every sender-side wait.
    policy: RetryPolicy,
    /// Bumped on every state transition; pending timeouts carrying an
    /// older epoch are stale.
    epoch: u64,
    /// Retries of the currently guarded wait (drives the backoff).
    attempts: u32,
    pub recovery: RecoveryCounters,
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
    /// Staging chunk size for copy/DMA overlap.
    chunk: u64,
}

/// Kick event: run the exchange schedule.
pub struct StartExchange;

impl ExchangeNode {
    pub fn new(me: u16, host: HostParams, tx_port: ActorId, schedule: Schedule) -> Self {
        assert!(
            schedule.len() <= TAG_ROUND_MASK as usize,
            "round index must fit the 7-bit tag field"
        );
        ExchangeNode {
            me,
            host,
            tx_port,
            schedule,
            round: 0,
            half: Half::First,
            phase: LegPhase::Start,
            early_reqs: BTreeMap::new(),
            rx_done: BTreeSet::new(),
            policy: RetryPolicy::default(),
            epoch: 0,
            attempts: 0,
            recovery: RecoveryCounters::default(),
            started: None,
            finished: None,
            chunk: 512,
        }
    }

    /// Override the retransmit policy (tests tighten the timeout).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arm the timeout guarding the current wait; `attempts` picks the
    /// backoff step.
    fn arm_timeout(&mut self, ctx: &mut Ctx<'_>) {
        let wait = self.policy.arm(self.attempts);
        let epoch = self.epoch;
        ctx.wake_after(wait, SelfEv::Timeout { epoch });
    }

    /// Invalidate pending timeouts and reset the backoff ladder.
    fn new_wait(&mut self) {
        self.epoch += 1;
        self.attempts = 0;
    }

    fn plan(&self) -> Option<PairPlan> {
        self.schedule.get(self.round).copied().flatten()
    }

    fn ctrl_cost_rx(&self) -> SimDuration {
        self.host.status_poll + self.host.pio.recv_overhead(8)
    }

    fn send_ctrl(&self, ctx: &mut Ctx<'_>, dst: u16, tag: u16, word: u32) {
        let os = self.host.pio.send_overhead(8);
        let pkt = Packet::new(self.me, dst, Priority::High, tag, vec![word, 0]);
        ctx.send_after(os, self.tx_port, Inject(pkt));
    }

    /// Am I the sender in the current half-round?
    fn i_send_now(&self, plan: &PairPlan) -> bool {
        match self.half {
            Half::First => plan.sends_first,
            Half::Second => !plan.sends_first,
            Half::DoneRound => false,
        }
    }

    fn begin_half(&mut self, ctx: &mut Ctx<'_>) {
        self.new_wait();
        let Some(plan) = self.plan() else {
            self.advance_round(ctx);
            return;
        };
        if self.i_send_now(&plan) {
            // Sender leg: negotiate.
            self.phase = LegPhase::WaitAck {
                partner: plan.partner,
                bytes: plan.bytes,
            };
            self.send_ctrl(
                ctx,
                plan.partner,
                TAG_REQ_BASE + self.round as u16,
                plan.bytes as u32,
            );
            self.arm_timeout(ctx);
        } else {
            // Receiver leg: if the REQ already arrived, answer it now.
            self.phase = LegPhase::Start;
            if let Some(bytes) = self.early_reqs.remove(&(self.round as u16)) {
                let cost = self.ctrl_cost_rx();
                self.accept_req(bytes);
                ctx.wake_after(cost, SelfEv::Proceed);
            }
        }
    }

    fn accept_req(&mut self, bytes: u64) {
        self.phase = LegPhase::Receiving {
            queue: segment(bytes),
            next_seq: 0,
            expected: bytes,
            got: 0,
        };
    }

    fn advance_half(&mut self, ctx: &mut Ctx<'_>) {
        match self.half {
            Half::First => {
                self.half = Half::Second;
                self.begin_half(ctx);
            }
            Half::Second => {
                self.half = Half::DoneRound;
                self.advance_round(ctx);
            }
            Half::DoneRound => unreachable!(),
        }
    }

    fn advance_round(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        self.half = Half::First;
        self.phase = LegPhase::Start;
        telemetry::count("comms.exchange", "rounds_completed", 1);
        if self.round >= self.schedule.len() {
            self.mark_finished(ctx);
        } else {
            self.begin_half(ctx);
        }
    }

    /// Record completion: span over the whole schedule plus flight crumbs.
    fn mark_finished(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.finished = Some(now);
        if let Some(started) = self.started {
            telemetry::record_span(
                u64::from(self.me),
                "comms",
                "exchange.node",
                started,
                now.since(started),
            );
        }
        telemetry::count("comms.exchange", "nodes_finished", 1);
        flight::record(now, ctx.self_id(), "exchange.finished", u64::from(self.me));
    }

    fn start_stream(&mut self, ctx: &mut Ctx<'_>, partner: u16, bytes: u64) {
        // Stage the first chunk (halo gather into the VI region), kick the
        // DMA, then emit paced packets. Later staging copies overlap the
        // stream (copy bandwidth exceeds the PCI payload rate).
        let first = bytes.min(self.chunk);
        let queue = segment(bytes);
        self.phase = LegPhase::Streaming {
            queue,
            seq: 0,
            partner,
        };
        let lead = self.host.memcpy_time(first) + self.host.dma_kick;
        ctx.wake_after(lead, SelfEv::Emit);
    }
}

impl Actor for ExchangeNode {
    fn on_event(&mut self, ev: Payload, ctx: &mut Ctx<'_>) {
        let ev = match ev.downcast::<StartExchange>() {
            Ok(_) => {
                self.started = Some(ctx.now());
                self.round = 0;
                self.half = Half::First;
                self.phase = LegPhase::Start;
                self.early_reqs.clear();
                self.rx_done.clear();
                self.new_wait();
                flight::record(
                    ctx.now(),
                    ctx.self_id(),
                    "exchange.start",
                    u64::from(self.me),
                );
                if self.schedule.is_empty() {
                    self.mark_finished(ctx);
                } else {
                    self.begin_half(ctx);
                }
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<Delivered>() {
            Ok(del) => {
                self.on_packet(del.pkt, ctx);
                return;
            }
            Err(e) => e,
        };
        let Ok(ev) = ev.downcast::<SelfEv>() else {
            panic!("node {}: unexpected event type", self.me);
        };
        match *ev {
            SelfEv::Proceed => self.on_proceed(ctx),
            SelfEv::Emit => self.on_emit(ctx),
            SelfEv::RxDone => {
                // Send DONE to the sender, then move on. Remember the
                // completed receive so a late PROBE can be answered with a
                // resent DONE after this node has moved past the round.
                self.rx_done.insert(self.round as u16);
                if let Some(plan) = self.plan() {
                    self.send_ctrl(ctx, plan.partner, TAG_DONE_BASE + self.round as u16, 0);
                }
                self.advance_half(ctx);
            }
            SelfEv::Timeout { epoch } => self.on_timeout(epoch, ctx),
        }
    }
}

impl ExchangeNode {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let tag = pkt.usr_tag;
        if pkt.corrupted {
            // The CRC caught it: the payload is never trusted. A corrupt
            // DATA packet is NAKed immediately (the header's tag + src
            // survive — the fault model flips payload bits only) so the
            // sender can rewind without waiting for a PROBE round-trip.
            self.recovery.bump(RecoveryEvent::CorruptDiscard);
            if tag == TAG_DATA {
                let nak = match &self.phase {
                    LegPhase::Receiving { next_seq, .. } => Some(*next_seq),
                    _ => None,
                };
                if let Some(next_seq) = nak {
                    self.recovery.bump(RecoveryEvent::Retry);
                    self.send_ctrl(ctx, pkt.src, TAG_RETRY_BASE + self.round as u16, next_seq);
                }
            }
            return;
        }
        if tag == TAG_DATA {
            let LegPhase::Receiving {
                queue,
                next_seq,
                expected,
                got,
            } = &mut self.phase
            else {
                // A duplicate from a rewound stream after this leg closed.
                self.recovery.bump(RecoveryEvent::StaleIgnored);
                return;
            };
            let seq = pkt.payload[0];
            if seq != *next_seq {
                // Go-back-N: anything out of order (a gap after a drop, or
                // a duplicate behind the rewind point) is ignored; the
                // sender re-emits from the NAKed sequence number.
                self.recovery.bump(RecoveryEvent::StaleIgnored);
                return;
            }
            *got += queue[seq as usize].min(*expected - *got);
            *next_seq += 1;
            if *got >= *expected {
                let tail = (*expected).min(self.chunk);
                let cost = self.host.memcpy_time(tail);
                ctx.wake_after(cost, SelfEv::RxDone);
            }
            return;
        }
        let (base, round) = (tag & TAG_BASE_MASK, (tag & TAG_ROUND_MASK) as usize);
        match base {
            TAG_REQ_BASE | TAG_REQ2_BASE => {
                let bytes = u64::from(pkt.payload[0]);
                if self.rx_done.contains(&(round as u16)) {
                    // Receive already completed; DONE (or DONE2 via PROBE)
                    // covers the sender.
                    self.recovery.bump(RecoveryEvent::StaleIgnored);
                    return;
                }
                let live_next_seq = match &self.phase {
                    LegPhase::Receiving { next_seq, .. } if self.round == round => Some(*next_seq),
                    _ => None,
                };
                if let Some(next_seq) = live_next_seq {
                    // Duplicate REQ for the leg we are already receiving:
                    // if no data arrived yet the original ACK may be lost,
                    // so resend it; otherwise the stream is live.
                    if next_seq == 0 {
                        self.recovery.bump(RecoveryEvent::AckResend);
                        self.send_ctrl(ctx, pkt.src, TAG_ACK2_BASE + round as u16, 0);
                    } else {
                        self.recovery.bump(RecoveryEvent::StaleIgnored);
                    }
                    return;
                }
                let here = self.round == round
                    && matches!(self.phase, LegPhase::Start)
                    && self.plan().map(|p| !self.i_send_now(&p)).unwrap_or(false);
                if here {
                    let cost = self.ctrl_cost_rx();
                    self.accept_req(bytes);
                    ctx.wake_after(cost, SelfEv::Proceed);
                } else {
                    self.early_reqs.insert(round as u16, bytes);
                }
            }
            TAG_ACK_BASE | TAG_ACK2_BASE => {
                if self.round == round && matches!(self.phase, LegPhase::WaitAck { .. }) {
                    self.new_wait();
                    let cost = self.ctrl_cost_rx();
                    ctx.wake_after(cost, SelfEv::Proceed);
                } else {
                    self.recovery.bump(RecoveryEvent::StaleIgnored);
                }
            }
            TAG_DONE_BASE | TAG_DONE2_BASE => {
                if self.round == round && matches!(self.phase, LegPhase::WaitDone { .. }) {
                    self.new_wait();
                    let cost = self.ctrl_cost_rx();
                    ctx.wake_after(cost, SelfEv::Proceed);
                } else {
                    self.recovery.bump(RecoveryEvent::StaleIgnored);
                }
            }
            TAG_PROBE_BASE => {
                if self.rx_done.contains(&(round as u16)) {
                    self.recovery.bump(RecoveryEvent::DoneResend);
                    self.send_ctrl(ctx, pkt.src, TAG_DONE2_BASE + round as u16, 0);
                    return;
                }
                let live_next_seq = match &self.phase {
                    LegPhase::Receiving { next_seq, .. } if self.round == round => Some(*next_seq),
                    _ => None,
                };
                if let Some(next_seq) = live_next_seq {
                    // Stream incomplete: tell the sender where to restart.
                    self.recovery.bump(RecoveryEvent::Retry);
                    self.send_ctrl(ctx, pkt.src, TAG_RETRY_BASE + round as u16, next_seq);
                } else {
                    self.recovery.bump(RecoveryEvent::StaleIgnored);
                }
            }
            TAG_RETRY_BASE => self.on_retry(round, pkt.payload[0], ctx),
            other => panic!("node {}: unexpected tag {other:#x}", self.me),
        }
    }

    /// A RETRY (go-back-N NAK) from the receiver: rewind the DATA stream
    /// to `restart`.
    fn on_retry(&mut self, round: usize, restart: u32, ctx: &mut Ctx<'_>) {
        if self.round != round {
            self.recovery.bump(RecoveryEvent::StaleIgnored);
            return;
        }
        let rewound = match &mut self.phase {
            LegPhase::Streaming { seq, .. } => {
                // Live stream: pull the cursor back; the pending Emit chain
                // re-emits from there.
                if restart < *seq {
                    *seq = restart;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if rewound {
            self.recovery.bump(RecoveryEvent::DataRewind);
            return;
        }
        let wait_done = match &self.phase {
            LegPhase::WaitDone { partner, bytes } => Some((*partner, *bytes)),
            _ => None,
        };
        let Some((partner, bytes)) = wait_done else {
            self.recovery.bump(RecoveryEvent::StaleIgnored);
            return;
        };
        let queue = segment(bytes);
        if (restart as usize) >= queue.len() {
            self.recovery.bump(RecoveryEvent::StaleIgnored);
            return;
        }
        // Stream already drained: re-enter it at the rewind point (stage
        // the chunk again, kick the DMA).
        self.new_wait();
        self.recovery.bump(RecoveryEvent::DataRewind);
        let first = bytes.min(self.chunk);
        let lead = self.host.memcpy_time(first) + self.host.dma_kick;
        self.phase = LegPhase::Streaming {
            queue,
            seq: restart,
            partner,
        };
        ctx.wake_after(lead, SelfEv::Emit);
    }

    /// A guarded wait expired: resend the blocking control message with
    /// backoff. WaitAck resends the REQ (as REQ2); WaitDone probes the
    /// receiver, which answers RETRY (stream incomplete) or DONE2.
    fn on_timeout(&mut self, epoch: u64, ctx: &mut Ctx<'_>) {
        if epoch != self.epoch {
            return; // stale guard from a wait that already resolved
        }
        let action = match &self.phase {
            LegPhase::WaitAck { partner, bytes } => Some((*partner, *bytes as u32, true)),
            LegPhase::WaitDone { partner, .. } => Some((*partner, 0, false)),
            _ => None,
        };
        let Some((partner, word, is_req)) = action else {
            return;
        };
        assert!(
            self.attempts < self.policy.max_attempts,
            "node {}: retries exhausted in round {} (wait for {})",
            self.me,
            self.round,
            if is_req { "ACK" } else { "DONE" }
        );
        self.attempts += 1;
        self.recovery.bump(RecoveryEvent::Timeout);
        let (tag_base, crumb, ev) = if is_req {
            (TAG_REQ2_BASE, "exchange.req2", RecoveryEvent::ReqResend)
        } else {
            (TAG_PROBE_BASE, "exchange.probe", RecoveryEvent::Probe)
        };
        self.recovery.bump(ev);
        flight::record(ctx.now(), ctx.self_id(), crumb, u64::from(self.me));
        self.send_ctrl(ctx, partner, tag_base + self.round as u16, word);
        self.arm_timeout(ctx);
    }

    fn on_proceed(&mut self, ctx: &mut Ctx<'_>) {
        match &self.phase {
            LegPhase::Receiving { .. } => {
                // REQ processed: post RX descriptors and acknowledge.
                if let Some(plan) = self.plan() {
                    let kick = self.host.dma_kick;
                    let round = self.round as u16;
                    let partner = plan.partner;
                    // ACK after the descriptor post.
                    let os = self.host.pio.send_overhead(8);
                    let pkt = Packet::new(
                        self.me,
                        partner,
                        Priority::High,
                        TAG_ACK_BASE + round,
                        vec![0, 0],
                    );
                    ctx.send_after(kick + os, self.tx_port, Inject(pkt));
                }
            }
            LegPhase::WaitAck { partner, bytes } => {
                // ACK processed: start streaming.
                let (partner, bytes) = (*partner, *bytes);
                self.start_stream(ctx, partner, bytes);
            }
            LegPhase::WaitDone { .. } => {
                // DONE processed: this half-round is complete.
                self.advance_half(ctx);
            }
            _ => panic!("node {}: Proceed in unexpected phase", self.me),
        }
    }

    fn on_emit(&mut self, ctx: &mut Ctx<'_>) {
        let LegPhase::Streaming {
            queue,
            seq,
            partner,
        } = &mut self.phase
        else {
            panic!("node {}: Emit outside streaming", self.me);
        };
        let idx = *seq as usize;
        let bytes = queue[idx];
        let pkt = bulk_packet(self.me, *partner, TAG_DATA, *seq, bytes);
        *seq += 1;
        let more = (*seq as usize) < queue.len();
        let partner = *partner;
        let total: u64 = queue.iter().sum();
        ctx.send_now(self.tx_port, Inject(pkt));
        let gap = self.host.vi_dma_time(bytes);
        if more {
            ctx.wake_after(gap, SelfEv::Emit);
        } else {
            self.phase = LegPhase::WaitDone {
                partner,
                bytes: total,
            };
            self.new_wait();
            self.arm_timeout(ctx);
        }
    }
}

/// Measurement: run one exchange over a `px × py` periodic tile grid with
/// `leg_bytes` per transfer leg; returns the time until the last node
/// finishes its schedule.
pub fn measure_exchange(host: HostParams, px: u16, py: u16, leg_bytes: u64) -> SimDuration {
    measure_exchange_inner(host, px, py, leg_bytes, None).0
}

/// Measurement under a [`FaultPlan`]: same exchange, but with the plan's
/// link-fault windows and NIU stalls installed on every port. Returns the
/// completion time (recovery is charged to simulated time) and the summed
/// per-node recovery counters.
pub fn measure_exchange_faulty(
    host: HostParams,
    px: u16,
    py: u16,
    leg_bytes: u64,
    plan: &FaultPlan,
) -> (SimDuration, RecoveryCounters) {
    measure_exchange_inner(host, px, py, leg_bytes, Some(plan))
}

fn measure_exchange_inner(
    host: HostParams,
    px: u16,
    py: u16,
    leg_bytes: u64,
    plan: Option<&FaultPlan>,
) -> (SimDuration, RecoveryCounters) {
    let n = px * py;
    assert!(
        n.is_power_of_two(),
        "fabric needs a power-of-two endpoint count"
    );
    let schedules = torus_schedule(px, py, leg_bytes);
    let mut sim = Simulator::new();
    let ids: Vec<ActorId> = (0..n).map(|_| sim.add_actor(Slot)).collect();
    let net = ArcticNetwork::build(&mut sim, &ids, Default::default());
    if let Some(plan) = plan {
        net.apply_fault_plan(&mut sim, plan);
    }
    for e in 0..n {
        let node = ExchangeNode::new(e, host, net.tx_port(e), schedules[e as usize].clone());
        let _ = sim.remove_actor(ids[e as usize]);
        sim.insert_actor_at(ids[e as usize], Box::new(node));
    }
    for &id in &ids {
        sim.schedule(SimTime::ZERO, id, StartExchange);
    }
    sim.run();
    let mut last = SimTime::ZERO;
    let mut recovery = RecoveryCounters::default();
    for (e, &id) in ids.iter().enumerate() {
        let node = sim.actor::<ExchangeNode>(id);
        let f = node
            .finished
            .unwrap_or_else(|| panic!("node {e} never finished its exchange"));
        last = last.max(f);
        recovery.merge(&node.recovery);
    }
    (last.since(SimTime::ZERO), recovery)
}

struct Slot;
impl Actor for Slot {
    fn on_event(&mut self, _ev: Payload, _ctx: &mut Ctx<'_>) {
        panic!("slot actor received an event");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_pairs_are_consistent() {
        for (px, py) in [(4u16, 2u16), (2, 2), (4, 4), (8, 2)] {
            let s = torus_schedule(px, py, 100);
            let n = (px * py) as usize;
            let rounds = s[0].len();
            #[allow(clippy::needless_range_loop)]
            for r in 0..rounds {
                for me in 0..n {
                    if let Some(plan) = s[me][r] {
                        let back = s[plan.partner as usize][r].expect("partner idle");
                        assert_eq!(back.partner as usize, me, "round {r}: asymmetric pair");
                        assert_ne!(
                            back.sends_first, plan.sends_first,
                            "round {r}: both sides claim the same role"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn four_by_two_has_eight_legs() {
        // The 8-endpoint isomorph grid: 4 rounds × 2 legs each = 8
        // sequential transfers per node (4 neighbors).
        let s = torus_schedule(4, 2, 256);
        assert_eq!(s[0].len(), 4);
        assert!(s.iter().all(|sched| sched.iter().all(|r| r.is_some())));
    }

    #[test]
    fn ds_exchange_latency_matches_paper_order() {
        // DS shape: 32×32 tile, halo 1, one level, 8 B elements → 256 B per
        // leg, 8 legs. Paper (Figure 11): texch_xy = 115 µs.
        let t = measure_exchange(HostParams::default(), 4, 2, 256);
        let us = t.as_us_f64();
        assert!(
            (80.0..190.0).contains(&us),
            "DS exchange {us} µs vs paper 115 µs"
        );
    }

    #[test]
    fn ps_exchange_latency_scales_with_block() {
        // PS atmosphere shape: halo 3 × 5 levels → 3840 B per leg.
        let ps = measure_exchange(HostParams::default(), 4, 2, 3840);
        let ds = measure_exchange(HostParams::default(), 4, 2, 256);
        assert!(ps > ds * 2, "PS exchange should dominate DS: {ps} vs {ds}");
        // Streaming bound: 8 legs × 3840 B at 110 MB/s ≈ 279 µs of pure
        // data time; with per-leg overheads expect 380–700 µs.
        let us = ps.as_us_f64();
        assert!((330.0..800.0).contains(&us), "PS exchange {us} µs");
    }

    #[test]
    fn two_by_two_grid_works() {
        let t = measure_exchange(HostParams::default(), 2, 2, 512);
        assert!(t.as_us_f64() > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = measure_exchange(HostParams::default(), 4, 2, 1024);
        let b = measure_exchange(HostParams::default(), 4, 2, 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let clean = measure_exchange(HostParams::default(), 4, 2, 1024);
        let (t, r) =
            measure_exchange_faulty(HostParams::default(), 4, 2, 1024, &FaultPlan::new(0xEC));
        assert_eq!(t, clean);
        assert_eq!(r, RecoveryCounters::default());
    }

    #[test]
    fn faulty_exchange_recovers_and_is_deterministic() {
        // Aggressive corrupt+drop window over the opening legs plus an NIU
        // stall: the protocol must still complete every schedule, and do it
        // identically on a re-run.
        let plan = FaultPlan::new(0xEC)
            .link_window(0.0, 120.0, 0.3, 0.15)
            .niu_stall(1, 10.0, 60.0);
        let (t, r) = measure_exchange_faulty(HostParams::default(), 4, 2, 1024, &plan);
        let clean = measure_exchange(HostParams::default(), 4, 2, 1024);
        assert!(
            r.corrupt_discarded > 0,
            "corruption window never hit a packet: {r:?}"
        );
        assert!(
            r.total_retransmits() > 0,
            "recovery never retransmitted: {r:?}"
        );
        assert!(t > clean, "recovery must cost simulated time");
        let (t2, r2) = measure_exchange_faulty(HostParams::default(), 4, 2, 1024, &plan);
        assert_eq!(t, t2, "faulty run must be deterministic");
        assert_eq!(r, r2, "recovery counters must be deterministic");
    }

    #[test]
    fn drop_only_window_recovers_via_timeouts() {
        // No corruption (no NAK fast path): dropped packets are recovered
        // purely by the timeout ladder (REQ2 / PROBE / RETRY).
        let plan = FaultPlan::new(0x0D).link_window(0.0, 80.0, 0.0, 0.4);
        let (t, r) = measure_exchange_faulty(HostParams::default(), 2, 2, 512, &plan);
        assert!(t.as_us_f64() > 0.0);
        if r.timeouts == 0 {
            // The seed could in principle drop nothing; make sure that's
            // actually why.
            assert_eq!(r.total_retransmits(), 0);
        } else {
            assert!(
                r.req_resends + r.probes > 0,
                "timeouts without resends: {r:?}"
            );
        }
    }

    #[test]
    fn exchange_time_grows_linearly_in_bytes_past_overhead() {
        let t1 = measure_exchange(HostParams::default(), 4, 2, 4096).as_us_f64();
        let t2 = measure_exchange(HostParams::default(), 4, 2, 8192).as_us_f64();
        let t3 = measure_exchange(HostParams::default(), 4, 2, 16384).as_us_f64();
        let d1 = t2 - t1;
        let d2 = t3 - t2;
        assert!(
            (d2 / (2.0 * d1) - 1.0).abs() < 0.25,
            "non-linear growth: {t1} {t2} {t3}"
        );
    }
}
